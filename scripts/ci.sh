#!/usr/bin/env bash
# The full CI gate, runnable locally: `scripts/ci.sh`.
#
# Everything here is offline-safe: the workspace has no external
# dependencies (the bench harness is plain `std::time::Instant` binaries,
# so even the benchmarks build without registry access).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test (HETSIM_THREADS=1, fully serial)"
HETSIM_THREADS=1 cargo test --workspace -q

echo "==> cargo test (HETSIM_THREADS=4, parallel sweep executor)"
HETSIM_THREADS=4 cargo test --workspace -q

echo "==> spec sanitizer gate (hetsim check --all --deny warnings)"
./target/release/hetsim-cli check --all --deny warnings --format json > /dev/null
./target/release/hetsim-cli check --all --deny warnings

echo "==> transfer-mode advisor gate (hetsim advise --all)"
# The static advisor must run clean over the whole registry (text and
# JSON surfaces) — its top-1 accuracy against the simulator is pinned by
# tests/advisor_validation.rs; this gate pins the CLI plumbing. A single
# overlap-free workload is also checked under --deny so the SAN-P lint
# exit path stays wired.
./target/release/hetsim-cli advise --all --size tiny > /dev/null
./target/release/hetsim-cli advise --all --size tiny --format json > /dev/null
if ./target/release/hetsim-cli advise vector_seq --size tiny --deny warnings \
  > /dev/null 2>&1; then
  echo "FAIL: advise --deny warnings did not fail on a workload with advisories"
  exit 1
fi

echo "==> JSON schema golden gate (check/advise --format json)"
scripts/schema_gate.sh

echo "==> crate lint-attribute gate"
for lib in crates/*/src/lib.rs; do
  for attr in '#!\[forbid(unsafe_code)\]' '#!\[warn(missing_docs)\]'; do
    grep -q "$attr" "$lib" \
      || { echo "FAIL: $lib is missing $attr"; exit 1; }
  done
done

echo "==> bench harness smoke test"
scripts/bench.sh --smoke

echo "==> trace smoke test"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
./target/release/hetsim-cli trace vector_seq --mode uvm --size small --out "$out/t.json"
./target/release/hetsim-cli trace vector_seq --mode uvm --size small --out "$out/t2.json"
cmp "$out/t.json" "$out/t2.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/t.json" 2>/dev/null \
  || echo "(python3 not available; skipping JSON validation)"

echo "==> streaming determinism gate (stream vs buffer, threads 1 vs 4)"
# A streamed export must be byte-identical to a buffered export of the
# same deterministic run, in both wire formats, at any thread count —
# the contract that makes --trace-stream a pure memory knob.
HETSIM_THREADS=1 ./target/release/hetsim-cli run vector_seq --size small --runs 2 \
  --trace "$out/buf.json" > /dev/null
HETSIM_THREADS=1 ./target/release/hetsim-cli run vector_seq --size small --runs 2 \
  --trace-stream "$out/stream_t1.json" --trace-format chrome > /dev/null
HETSIM_THREADS=4 ./target/release/hetsim-cli run vector_seq --size small --runs 2 \
  --trace-stream "$out/stream_t4.json" --trace-format chrome > /dev/null
cmp "$out/buf.json" "$out/stream_t1.json" \
  || { echo "FAIL: streamed chrome trace differs from buffered export"; exit 1; }
cmp "$out/stream_t1.json" "$out/stream_t4.json" \
  || { echo "FAIL: streamed chrome trace differs across thread counts"; exit 1; }
HETSIM_THREADS=1 ./target/release/hetsim-cli run vector_seq --size small --runs 2 \
  --trace "$out/buf.jsonl" > /dev/null
HETSIM_THREADS=4 ./target/release/hetsim-cli run vector_seq --size small --runs 2 \
  --trace-stream "$out/stream.jsonl" > /dev/null
cmp "$out/buf.jsonl" "$out/stream.jsonl" \
  || { echo "FAIL: streamed jsonl trace differs from buffered export"; exit 1; }
grep -q '"type":"summary"' "$out/stream.jsonl" \
  || { echo "FAIL: streamed jsonl lacks the summary record"; exit 1; }
grep -q '"dropped":0' "$out/stream.jsonl" \
  || { echo "FAIL: streamed jsonl reports dropped events"; exit 1; }

echo "==> chaos determinism gate (fixed seed matrix, threads 1 vs 4)"
# The same fixed-seed fault plan must produce byte-identical degradation
# reports (table + JSON) and chaos traces at any worker-thread count —
# the chaos layer's determinism contract, enforced on the real binary.
for seed in 7 42; do
  HETSIM_THREADS=1 ./target/release/hetsim-cli chaos --size tiny \
    --seed "$seed" --seeds 4 --rates 0,0.5,1 --format json \
    --trace "$out/chaos_t1_$seed.json" > "$out/chaos1_$seed.json"
  HETSIM_THREADS=4 ./target/release/hetsim-cli chaos --size tiny \
    --seed "$seed" --seeds 4 --rates 0,0.5,1 --format json \
    --trace "$out/chaos_t4_$seed.json" > "$out/chaos4_$seed.json"
  cmp "$out/chaos1_$seed.json" "$out/chaos4_$seed.json" \
    || { echo "FAIL: chaos report differs across thread counts (seed $seed)"; exit 1; }
  cmp "$out/chaos_t1_$seed.json" "$out/chaos_t4_$seed.json" \
    || { echo "FAIL: chaos trace differs across thread counts (seed $seed)"; exit 1; }
done
cmp -s "$out/chaos1_7.json" "$out/chaos1_42.json" \
  && { echo "FAIL: different seeds produced identical chaos reports"; exit 1; }

echo "==> chaos plan verification gate (impossible plans rejected up front)"
if ./target/release/hetsim-cli chaos --size tiny --retries 0 --rates 0.5 \
  > "$out/chaos_bad.txt" 2>&1; then
  echo "FAIL: impossible chaos plan (retries 0, rate 0.5) was accepted"
  exit 1
fi
grep -q "retry budget" "$out/chaos_bad.txt" \
  || { echo "FAIL: rejection lacks the plan diagnostic"; exit 1; }

echo "==> serve determinism gate (fleet reports + streamed traces, threads 1 vs 4)"
# The serving layer's contract: a fixed (policy, mix, seed) cell produces
# byte-identical report JSON and streamed fleet traces at any worker
# thread count, for every shipped policy.
for policy in mode_packing uvm_spillover chaos_failover mode_advisor slo_deadline; do
  HETSIM_THREADS=1 ./target/release/hetsim-cli serve --policy "$policy" \
    --mix bursty --rate 400 --seed 11 --gpus 4 --requests 120 --size tiny \
    --format json --trace-stream "$out/serve_t1_$policy.jsonl" \
    > "$out/serve1_$policy.json" 2> /dev/null
  HETSIM_THREADS=4 ./target/release/hetsim-cli serve --policy "$policy" \
    --mix bursty --rate 400 --seed 11 --gpus 4 --requests 120 --size tiny \
    --format json --trace-stream "$out/serve_t4_$policy.jsonl" \
    > "$out/serve4_$policy.json" 2> /dev/null
  cmp "$out/serve1_$policy.json" "$out/serve4_$policy.json" \
    || { echo "FAIL: serve report differs across thread counts ($policy)"; exit 1; }
  cmp "$out/serve_t1_$policy.jsonl" "$out/serve_t4_$policy.jsonl" \
    || { echo "FAIL: serve trace differs across thread counts ($policy)"; exit 1; }
  grep -q '"dropped":0' "$out/serve_t1_$policy.jsonl" \
    || { echo "FAIL: serve trace reports dropped events ($policy)"; exit 1; }
done
cmp -s "$out/serve1_mode_packing.json" "$out/serve1_uvm_spillover.json" \
  && { echo "FAIL: different policies produced identical serve reports"; exit 1; }

echo "==> serve-resilience determinism gate (availability sweeps + fleet traces, threads 1 vs 4)"
# The resilience layer's contract: a (policy x rate x intensity)
# availability sweep renders byte-identically at any worker-thread count,
# a single resilient cell's streamed fleet trace is thread-invariant and
# carries the lifecycle instants, and intensity 0 reproduces the plain
# serve report exactly (separability on the real binary).
HETSIM_THREADS=1 ./target/release/hetsim-cli serve --chaos --policy all \
  --mix poisson --rates 200,400 --intensities 0,0.5,1 --seed 11 --gpus 3 \
  --requests 80 --size tiny --format json > "$out/avail1.json" 2> /dev/null
HETSIM_THREADS=4 ./target/release/hetsim-cli serve --chaos --policy all \
  --mix poisson --rates 200,400 --intensities 0,0.5,1 --seed 11 --gpus 3 \
  --requests 80 --size tiny --format json > "$out/avail4.json" 2> /dev/null
cmp "$out/avail1.json" "$out/avail4.json" \
  || { echo "FAIL: availability sweep differs across thread counts"; exit 1; }
for t in 1 4; do
  HETSIM_THREADS=$t ./target/release/hetsim-cli serve --chaos \
    --policy chaos_failover --mix poisson --rate 400 --intensities 1 \
    --seed 7 --gpus 3 --requests 80 --size tiny --format json \
    --trace-stream "$out/res_trace_t$t.jsonl" > /dev/null 2> /dev/null
done
cmp "$out/res_trace_t1.jsonl" "$out/res_trace_t4.jsonl" \
  || { echo "FAIL: resilient fleet trace differs across thread counts"; exit 1; }
grep -q 'quarantine\[gpu' "$out/res_trace_t1.jsonl" \
  || { echo "FAIL: resilient trace lacks lifecycle instants"; exit 1; }
HETSIM_THREADS=4 ./target/release/hetsim-cli serve --policy slo_deadline \
  --mix poisson --rate 400 --seed 11 --gpus 3 --requests 80 --size tiny \
  --format json > "$out/plain_cell.json" 2> /dev/null
HETSIM_THREADS=4 ./target/release/hetsim-cli serve --chaos --policy slo_deadline \
  --mix poisson --rate 400 --intensities 0 --seed 11 --gpus 3 --requests 80 \
  --size tiny --format json > "$out/res_cell.json" 2> /dev/null
if command -v python3 > /dev/null; then
  python3 - "$out/plain_cell.json" "$out/res_cell.json" <<'PY' \
    || { echo "FAIL: intensity-0 resilient cell differs from plain serve"; exit 1; }
import json, sys
plain = json.load(open(sys.argv[1]))["cells"][0]
res = json.load(open(sys.argv[2]))["cells"][0]
assert res["intensity"] == 0.0, res["intensity"]
assert res["report"] == plain, "reports diverge at intensity 0"
PY
else
  # Structural fallback: the embedded report must appear verbatim inside
  # the availability cell.
  grep -q "\"policy\": \"slo_deadline\"" "$out/res_cell.json" \
    || { echo "FAIL: resilient cell lacks the embedded report"; exit 1; }
fi

echo "==> result-cache correctness gate (cold vs warm, byte-identical, no warm misses)"
# The incremental-sweep contract on the real binary: a warm rerun against
# the on-disk store must reproduce the cold stdout byte-for-byte while
# reporting zero misses on stderr — and the cache admin subcommand must
# see, then clear, exactly the entries the sweep stored.
cachedir="$out/result-cache"
./target/release/hetsim-cli micro --size tiny --runs 2 --cache "$cachedir" \
  > "$out/cache_cold.txt" 2> "$out/cache_cold.err"
./target/release/hetsim-cli micro --size tiny --runs 2 --cache "$cachedir" \
  > "$out/cache_warm.txt" 2> "$out/cache_warm.err"
cmp "$out/cache_cold.txt" "$out/cache_warm.txt" \
  || { echo "FAIL: warm cached rerun differs from the cold run"; exit 1; }
grep -q 'cache: 0 hits, [1-9][0-9]* misses' "$out/cache_cold.err" \
  || { echo "FAIL: cold run did not report all-miss cache stats"; exit 1; }
grep -q 'cache: [1-9][0-9]* hits, 0 misses' "$out/cache_warm.err" \
  || { echo "FAIL: warm run was not simulation-free (expected all hits)"; exit 1; }
./target/release/hetsim-cli cache stats --cache "$cachedir" > "$out/cache_stats.txt"
grep -q 'entries:    [1-9]' "$out/cache_stats.txt" \
  || { echo "FAIL: cache stats does not see the stored entries"; exit 1; }
./target/release/hetsim-cli cache clear --cache "$cachedir" > "$out/cache_clear.txt"
grep -q 'removed [1-9]' "$out/cache_clear.txt" \
  || { echo "FAIL: cache clear removed nothing"; exit 1; }
./target/release/hetsim-cli cache stats --cache "$cachedir" > "$out/cache_stats2.txt"
grep -q 'entries:    0' "$out/cache_stats2.txt" \
  || { echo "FAIL: cache store not empty after clear"; exit 1; }
# The HETSIM_CACHE env fallback and the --cache off override.
HETSIM_CACHE="$cachedir" ./target/release/hetsim-cli micro --size tiny --runs 2 \
  > /dev/null 2> "$out/cache_env.err"
grep -q '^cache:' "$out/cache_env.err" \
  || { echo "FAIL: HETSIM_CACHE env did not enable the cache"; exit 1; }
HETSIM_CACHE="$cachedir" ./target/release/hetsim-cli micro --size tiny --runs 2 \
  --cache off > /dev/null 2> "$out/cache_off.err"
grep -q '^cache:' "$out/cache_off.err" \
  && { echo "FAIL: --cache off did not override HETSIM_CACHE"; exit 1; }

echo "==> bench regression gate (full sweep vs committed baseline, >2x fails)"
BENCH_RESULT="$out/bench_fresh.json" scripts/bench.sh > "$out/bench_fresh.log" 2>&1 \
  || { echo "FAIL: full bench sweep failed"; tail -20 "$out/bench_fresh.log"; exit 1; }
scripts/bench_check.sh BENCH_sweep.json "$out/bench_fresh.json"

echo "CI OK"
