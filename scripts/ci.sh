#!/usr/bin/env bash
# The full CI gate, runnable locally: `scripts/ci.sh`.
#
# Everything here is offline-safe: the workspace has no external
# dependencies (crates/bench, which needs criterion from the registry,
# is excluded from the workspace and not built here).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test (HETSIM_THREADS=1, fully serial)"
HETSIM_THREADS=1 cargo test --workspace -q

echo "==> cargo test (HETSIM_THREADS=4, parallel sweep executor)"
HETSIM_THREADS=4 cargo test --workspace -q

echo "==> spec sanitizer gate (hetsim check --all --deny warnings)"
./target/release/hetsim-cli check --all --deny warnings --format json > /dev/null
./target/release/hetsim-cli check --all --deny warnings

echo "==> crate lint-attribute gate"
for lib in crates/*/src/lib.rs; do
  for attr in '#!\[forbid(unsafe_code)\]' '#!\[warn(missing_docs)\]'; do
    grep -q "$attr" "$lib" \
      || { echo "FAIL: $lib is missing $attr"; exit 1; }
  done
done

echo "==> bench harness smoke test"
scripts/bench.sh --smoke

echo "==> trace smoke test"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
./target/release/hetsim-cli trace vector_seq --mode uvm --size small --out "$out/t.json"
./target/release/hetsim-cli trace vector_seq --mode uvm --size small --out "$out/t2.json"
cmp "$out/t.json" "$out/t2.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/t.json" 2>/dev/null \
  || echo "(python3 not available; skipping JSON validation)"

echo "CI OK"
