#!/usr/bin/env bash
# JSON output-schema golden gate for the machine-readable CLI surfaces.
#
# `check --format json` and `advise --format json` are consumed by
# scripts and CI, so their *shape* — the set of key paths with coarse
# value kinds — is pinned in scripts/golden/*.schema. A renamed or
# dropped field fails CI even though the values themselves (timings,
# advisory counts, rationale strings) move with the cost model.
#
# Usage:
#   scripts/schema_gate.sh           # compare live output against goldens
#   scripts/schema_gate.sh --update  # regenerate the goldens in place
#
# Numbers are normalized to one "number" kind: JSON has a single number
# type, and a field that happens to be integral in one cell (e.g. a 0.0
# serialized as "0") must not flap the schema.
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=./target/release/hetsim-cli
if [[ ! -x "$CLI" ]]; then
  echo "==> building release CLI for the schema gate"
  cargo build --release -q -p hetsim-cli
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "schema gate: python3 not available; skipping"
  exit 0
fi

GOLDEN=scripts/golden
UPDATE=0
if [[ "${1:-}" == "--update" ]]; then
  UPDATE=1
  mkdir -p "$GOLDEN"
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

schema_of() { # JSON_FILE -> sorted key paths on stdout
  python3 - "$1" <<'PY'
import json, sys

def kind(v):
    if isinstance(v, bool):
        return "bool"
    if isinstance(v, (int, float)):
        return "number"
    if isinstance(v, str):
        return "string"
    return "null"

def walk(v, path, out):
    if isinstance(v, dict):
        if not v:
            out.add((path or "(root)") + ": empty object")
        for k, x in v.items():
            walk(x, f"{path}.{k}" if path else k, out)
    elif isinstance(v, list):
        if not v:
            out.add((path or "(root)") + "[]: empty array")
        for x in v:
            walk(x, path + "[]", out)
    else:
        out.add(f"{path or '(root)'}: {kind(v)}")

paths = set()
walk(json.load(open(sys.argv[1])), "", paths)
print("\n".join(sorted(paths)))
PY
}

gate() { # NAME JSON_FILE — diff (or rewrite) the golden for one surface
  local name="$1" json="$2"
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$json" \
    || { echo "FAIL: $name output is not valid JSON"; exit 1; }
  schema_of "$json" > "$out/$name.schema"
  if [[ $UPDATE -eq 1 ]]; then
    cp "$out/$name.schema" "$GOLDEN/$name.schema"
    echo "updated $GOLDEN/$name.schema"
    return 0
  fi
  [[ -f "$GOLDEN/$name.schema" ]] \
    || { echo "FAIL: $GOLDEN/$name.schema missing (run scripts/schema_gate.sh --update)"; exit 1; }
  diff -u "$GOLDEN/$name.schema" "$out/$name.schema" \
    || { echo "FAIL: $name --format json schema drifted from the golden"; exit 1; }
  echo "schema ok: $name"
}

"$CLI" check --all --deny warnings --format json > "$out/check.json"
gate check "$out/check.json"

"$CLI" advise --all --size tiny --format json > "$out/advise.json"
gate advise "$out/advise.json"
