#!/usr/bin/env bash
# Wall-clock benchmark of the hot paths this repo optimizes, writing
# BENCH_sweep.json so future changes have a recorded baseline:
#
#   * the Fig 7/8 figure grids, serial (--threads 1) vs parallel
#     (--threads 4) — the parallel sweep executor's headline win;
#   * the static spec sanitizer over the full registry (`check --all`) —
#     the pre-sweep verification pass must stay negligible next to a sweep;
#   * the Mega-size bfs fault path under plain uvm — the page table's
#     O(1) register/touch/evict hot loop;
#   * the chaos degradation sweep over the irregular trio — the fault
#     injector's end-to-end cost on top of the plain grid;
#   * the serving layer's arrival-rate sweep (`serve --policy all`) —
#     three policies x four rates on a 4-GPU fleet, serial vs parallel;
#   * the streaming trace exporter — a five-mode sweep drained to JSONL
#     during the merge, recorded as events/sec;
#   * the on-disk result cache — cold vs warm Fig 7/8 grid reruns, with
#     byte-identity and zero-warm-miss gates and (in full mode) a hard
#     >= 5x incremental-speedup assertion;
#   * the memo/trace-merge overhead — a --self-profile grid rerun plus a
#     traced five-mode run, so the sweep executor's bookkeeping cost
#     (vs pure simulation time) is recorded per PR alongside the
#     serial-vs-threads4 walls it explains;
#   * the hetsim-bench binaries (fig07 regeneration, sampling ablation),
#     plain std::time::Instant timings with no external framework.
#
# Usage:
#   scripts/bench.sh            # full sizes, writes BENCH_sweep.json
#   scripts/bench.sh --smoke    # tiny sizes, CI keep-alive; writes the
#                               # same JSON shape to a scratch file so the
#                               # committed baseline is not clobbered
#
# Robustness contract: every stage runs under `timeout` and records
# `{status, wall_ms}` ("ok" | "fail" | "timeout") in the JSON. A failing
# or hung stage does not abort the others — the script finishes the
# sweep, writes the full record, and only then exits non-zero if any
# stage was not ok. Byte-identity between the serial and parallel grid
# runs is itself a recorded stage, so a determinism regression shows up
# in the baseline file, not just in the exit code.
set -uo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
fi

if [[ $SMOKE -eq 1 ]]; then
  GRID_SIZE=tiny
  GRID_RUNS=3
  BFS_SIZE=small
  CHAOS_SIZE=tiny
  SERVE_REQUESTS=120
  BENCH_ITERS=3
  STAGE_TIMEOUT="${STAGE_TIMEOUT:-300}"
else
  GRID_SIZE=large
  GRID_RUNS=30
  BFS_SIZE=mega
  CHAOS_SIZE=small
  SERVE_REQUESTS=400
  BENCH_ITERS=10
  STAGE_TIMEOUT="${STAGE_TIMEOUT:-1800}"
fi

CLI=./target/release/hetsim-cli
BENCH_DIR=./target/release
if [[ ! -x "$CLI" || ! -x "$BENCH_DIR/bench_fig07_micro_comparison" ]]; then
  echo "==> building release CLI + bench binaries"
  cargo build --release -q -p hetsim-cli -p hetsim-bench \
    || { echo "FAIL: build"; exit 1; }
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# Millisecond clock. GNU date is a few ms; the python3 fallback (for
# platforms whose date lacks %N) costs ~40ms of interpreter startup,
# which would put a floor under every recorded stage — so it is the
# fallback, not the default.
now_ms() {
  local ms
  ms="$(date +%s%3N 2>/dev/null)"
  if [[ "$ms" =~ ^[0-9]+$ ]]; then
    echo "$ms"
  else
    python3 -c 'import time; print(int(time.time()*1000))'
  fi
}

FAILED_STAGES=""
STAGE_RECORDS=""

# record_stage NAME STATUS WALL_MS — appends one JSON stage record and
# tracks failures for the final exit code.
record_stage() {
  local name="$1" status="$2" wall="$3"
  if [[ -n "$STAGE_RECORDS" ]]; then
    STAGE_RECORDS+=$',\n'
  fi
  STAGE_RECORDS+="    \"$name\": {\"status\": \"$status\", \"wall_ms\": $wall}"
  if [[ "$status" != "ok" ]]; then
    FAILED_STAGES+=" $name"
  fi
}

# run_stage NAME CAPTURE_FILE CMD... — runs CMD under the stage timeout,
# times it, and records {status, wall_ms}. Never aborts the script.
run_stage() {
  local name="$1" capture="$2"; shift 2
  local t0 t1 rc status
  echo "==> $name"
  t0="$(now_ms)"
  timeout "$STAGE_TIMEOUT" "$@" > "$capture" 2> "$out/$name.err"
  rc=$?
  t1="$(now_ms)"
  TIMED_MS=$((t1 - t0))
  if [[ $rc -eq 0 && -s "$capture" ]]; then
    status=ok
  elif [[ $rc -eq 124 ]]; then
    status=timeout
    echo "    TIMEOUT after ${STAGE_TIMEOUT}s"
  else
    status=fail
    echo "    FAIL (exit $rc)"
    sed 's/^/    stderr: /' "$out/$name.err" | tail -5
  fi
  echo "    ${TIMED_MS} ms [$status]"
  record_stage "$name" "$status" "$TIMED_MS"
  [[ "$status" == "ok" ]]
}

# check_stage NAME CMD... — a zero-duration assertion stage (e.g. the
# serial-vs-parallel byte-identity check); records ok/fail.
check_stage() {
  local name="$1"; shift
  if "$@"; then
    record_stage "$name" ok 0
  else
    echo "==> $name: FAIL"
    record_stage "$name" fail 0
  fi
}

run_stage fig7_micro_grid_serial "$out/micro1.txt" \
  "$CLI" micro --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 1
FIG7_SERIAL_MS=$TIMED_MS
run_stage fig7_micro_grid_threads4 "$out/micro4.txt" \
  "$CLI" micro --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 4
FIG7_T4_MS=$TIMED_MS
check_stage fig7_determinism cmp -s "$out/micro1.txt" "$out/micro4.txt"

run_stage fig8_apps_grid_serial "$out/apps1.txt" \
  "$CLI" apps --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 1
FIG8_SERIAL_MS=$TIMED_MS
run_stage fig8_apps_grid_threads4 "$out/apps4.txt" \
  "$CLI" apps --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 4
FIG8_T4_MS=$TIMED_MS
check_stage fig8_determinism cmp -s "$out/apps1.txt" "$out/apps4.txt"

# Memo/trace-merge overhead (ROADMAP's sweep-throughput item asked why
# threads=4 was slower than serial on this 1-core host). The grid rerun
# under --self-profile makes the CLI report how much wall time the
# sharded memo spent on bookkeeping versus simulating, and a traced
# five-mode run reports the serial trace-merge tail. Both are recorded
# in the baseline next to the serial-vs-threads4 walls they explain —
# profiling shows memo + merge are sub-millisecond, so any remaining gap
# is core oversubscription (see "host_parallelism"), not the executor.
scrape_ms() { # FILE PATTERN -> the number in the first "<PATTERN> N ms"-ish match
  grep -o "$2" "$1" 2>/dev/null | grep -o '[0-9][0-9.]*' | head -1 || true
}
MEMO_OVERHEAD_MS=0
MEMO_SIMULATE_MS=0
TRACE_MERGE_MS=0
if run_stage fig7_selfprof_grid "$out/selfprof7.txt" \
  "$CLI" micro --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 4 --self-profile; then
  MEMO_OVERHEAD_MS="$(scrape_ms "$out/fig7_selfprof_grid.err" \
    'memo overhead [0-9.]* ms')"
  MEMO_SIMULATE_MS="$(scrape_ms "$out/fig7_selfprof_grid.err" \
    '[0-9.]* ms simulating')"
fi
if run_stage trace_merge_selfprof "$out/mergeprof.txt" \
  "$CLI" run vector_seq --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 1 \
  --trace "$out/selfprof_trace.json" --self-profile; then
  TRACE_MERGE_MS="$(scrape_ms "$out/trace_merge_selfprof.err" \
    'trace merge [0-9.]* ms')"
fi
MEMO_OVERHEAD_MS="${MEMO_OVERHEAD_MS:-0}"
MEMO_SIMULATE_MS="${MEMO_SIMULATE_MS:-0}"
TRACE_MERGE_MS="${TRACE_MERGE_MS:-0}"

# Incremental sweep: the Fig 7/8 grids against the on-disk result cache.
# The cold pass fills a fresh store (all misses), the warm pass replays
# it (zero misses) and must reproduce the cold stdout byte-for-byte —
# which the uncached grid stages above also pin, so a cache bug cannot
# hide behind a deterministic-but-wrong store. The hit/miss counts come
# from the CLI's stderr stats line; the warm/cold ratio is the caching
# win recorded in the baseline (asserted >= 5x in full mode, where the
# grids dwarf process startup).
CACHE_DIR="$out/result-cache"
cache_count() { # FILE FIELD -> count scraped from "cache: H hits, M misses, S stored"
  grep -o "[0-9]* $2" "$1" | grep -o '[0-9]*' | head -1 || echo 0
}
run_stage fig7_grid_cached_cold "$out/micro_cold.txt" \
  "$CLI" micro --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 4 --cache "$CACHE_DIR"
FIG7_COLD_MS=$TIMED_MS
FIG7_COLD_MISSES="$(cache_count "$out/fig7_grid_cached_cold.err" misses)"
run_stage fig7_grid_cached_warm "$out/micro_warm.txt" \
  "$CLI" micro --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 4 --cache "$CACHE_DIR"
FIG7_WARM_MS=$TIMED_MS
FIG7_WARM_HITS="$(cache_count "$out/fig7_grid_cached_warm.err" hits)"
FIG7_WARM_MISSES="$(cache_count "$out/fig7_grid_cached_warm.err" misses)"
check_stage fig7_cache_byte_identity cmp -s "$out/micro_cold.txt" "$out/micro_warm.txt"
check_stage fig7_cache_matches_uncached cmp -s "$out/micro4.txt" "$out/micro_warm.txt"
check_stage fig7_cache_warm_has_no_misses test "$FIG7_WARM_MISSES" = 0

run_stage fig8_grid_cached_cold "$out/apps_cold.txt" \
  "$CLI" apps --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 4 --cache "$CACHE_DIR"
FIG8_COLD_MS=$TIMED_MS
FIG8_COLD_MISSES="$(cache_count "$out/fig8_grid_cached_cold.err" misses)"
run_stage fig8_grid_cached_warm "$out/apps_warm.txt" \
  "$CLI" apps --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 4 --cache "$CACHE_DIR"
FIG8_WARM_MS=$TIMED_MS
FIG8_WARM_HITS="$(cache_count "$out/fig8_grid_cached_warm.err" hits)"
FIG8_WARM_MISSES="$(cache_count "$out/fig8_grid_cached_warm.err" misses)"
check_stage fig8_cache_byte_identity cmp -s "$out/apps_cold.txt" "$out/apps_warm.txt"
check_stage fig8_cache_matches_uncached cmp -s "$out/apps4.txt" "$out/apps_warm.txt"
check_stage fig8_cache_warm_has_no_misses test "$FIG8_WARM_MISSES" = 0

if [[ $SMOKE -eq 0 ]]; then
  # Startup noise is negligible at full sizes, so the >= 5x incremental
  # win is a hard gate there (smoke grids are too small to assert it).
  check_stage fig7_cache_speedup_5x \
    awk "BEGIN{exit !($FIG7_COLD_MS >= 5 * $FIG7_WARM_MS)}"
  check_stage fig8_cache_speedup_5x \
    awk "BEGIN{exit !($FIG8_COLD_MS >= 5 * $FIG8_WARM_MS)}"
fi

# The zero-dependency bench binaries (formerly the criterion harness):
# each regenerates its figure data and prints `bench: ... ns/iter` lines
# for its timed hot paths; the stage wall time is the recorded baseline.
run_stage bench_fig07_micro_comparison "$out/bench_fig07.txt" \
  "$BENCH_DIR/bench_fig07_micro_comparison" \
  --size "$GRID_SIZE" --runs "$GRID_RUNS" --iters "$BENCH_ITERS"
run_stage bench_ablation_sampling "$out/bench_abl.txt" \
  "$BENCH_DIR/bench_ablation_sampling" \
  --size "$GRID_SIZE" --iters "$BENCH_ITERS"

if run_stage sanitizer_check_all "$out/check.txt" \
  "$CLI" check --all --deny warnings --size "$GRID_SIZE"; then
  check_stage sanitizer_clean grep -q "0 errors, 0 warnings" "$out/check.txt"
fi

run_stage bfs_uvm_fault_path "$out/bfs.txt" \
  "$CLI" run bfs --size "$BFS_SIZE" --mode uvm --runs 1 --threads 1

run_stage chaos_degradation_sweep "$out/chaos.txt" \
  "$CLI" chaos --size "$CHAOS_SIZE" --seeds 4 --rates 0,0.5,1 --threads 1

# The serving layer's arrival-rate sweep: all three policies across a
# quiet->saturated rate ladder on a 4-GPU fleet, the hot path behind
# `hetsim-cli serve` (EXPERIMENTS.md latency-under-load appendix). The
# threads-4 rerun must be byte-identical — the serve determinism gate,
# recorded here as a baseline stage as well as asserted in ci.sh.
run_stage serve_latency_sweep "$out/serve1.txt" \
  "$CLI" serve --policy all --mix poisson --rates 50,200,800,3200 \
  --seed 42 --gpus 4 --requests "$SERVE_REQUESTS" --size "$CHAOS_SIZE" --threads 1
run_stage serve_latency_sweep_threads4 "$out/serve4.txt" \
  "$CLI" serve --policy all --mix poisson --rates 50,200,800,3200 \
  --seed 42 --gpus 4 --requests "$SERVE_REQUESTS" --size "$CHAOS_SIZE" --threads 4
check_stage serve_determinism cmp -s "$out/serve1.txt" "$out/serve4.txt"

# The resilience layer's availability sweep: every policy across a
# fault-intensity ramp at a mid-ladder rate, the hot path behind
# `hetsim-cli serve --chaos`. Intensity 0 rides along as the fault-free
# control row, so this stage also times the separability-gated code path.
run_stage serve_availability_sweep "$out/serve_chaos.txt" \
  "$CLI" serve --chaos --policy all --mix poisson --rates 200,800 \
  --intensities 0,0.5,1 --seed 42 --gpus 4 --requests "$SERVE_REQUESTS" \
  --size "$CHAOS_SIZE" --threads 1

# Streaming trace export: a five-mode sweep drained to JSONL during the
# merge. The wall time covers simulation + export (the export is the
# delta over an untraced run, which the grid stages above record); the
# events/sec figure is the baseline for exporter-overhead regressions.
TRACE_EVENTS=0
TRACE_MS=1
if run_stage trace_export_throughput "$out/tracestream.txt" \
  "$CLI" run vector_seq --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 1 \
  --trace-stream "$out/stream.jsonl"; then
  TRACE_EVENTS="$(grep -o 'streamed [0-9]* events' \
    "$out/trace_export_throughput.err" | grep -o '[0-9]*' | head -1)"
  TRACE_EVENTS="${TRACE_EVENTS:-0}"
  TRACE_MS=$TIMED_MS
fi
TRACE_EPS="$(awk "BEGIN{ms=$TRACE_MS; if (ms <= 0) ms = 1; \
  printf \"%.0f\", $TRACE_EVENTS * 1000 / ms}")"

# The parallel stages can only beat serial when the host has cores to
# spare; record the machine's parallelism so the baseline is
# interpretable (on a 1-core CI container the --threads 4 numbers are
# expected to match serial within noise, while byte-identity must hold
# everywhere).
HOST_PARALLELISM="$(nproc 2>/dev/null || echo 1)"

# BENCH_RESULT overrides the output path (CI writes smoke runs to a
# scratch file for the regression comparator without clobbering the
# committed full-mode baseline).
RESULT="${BENCH_RESULT:-BENCH_sweep.json}"
if [[ $SMOKE -eq 1 && -z "${BENCH_RESULT:-}" ]]; then
  RESULT="$out/BENCH_smoke.json"
fi

FIG7_SPEEDUP="$(awk "BEGIN{w=$FIG7_WARM_MS; if (w <= 0) w = 1; \
  printf \"%.1f\", $FIG7_COLD_MS / w}")"
FIG8_SPEEDUP="$(awk "BEGIN{w=$FIG8_WARM_MS; if (w <= 0) w = 1; \
  printf \"%.1f\", $FIG8_COLD_MS / w}")"

cat > "$RESULT" <<EOF
{
  "smoke": $SMOKE,
  "host_parallelism": $HOST_PARALLELISM,
  "grid_size": "$GRID_SIZE",
  "grid_runs": $GRID_RUNS,
  "bfs_size": "$BFS_SIZE",
  "chaos_size": "$CHAOS_SIZE",
  "serve_requests": $SERVE_REQUESTS,
  "stage_timeout_s": $STAGE_TIMEOUT,
  "trace_export": {
    "events": $TRACE_EVENTS,
    "wall_ms": $TRACE_MS,
    "events_per_sec": $TRACE_EPS
  },
  "parallel_overhead": {
    "fig7_serial_wall_ms": $FIG7_SERIAL_MS,
    "fig7_threads4_wall_ms": $FIG7_T4_MS,
    "fig8_serial_wall_ms": $FIG8_SERIAL_MS,
    "fig8_threads4_wall_ms": $FIG8_T4_MS,
    "memo_overhead_ms": $MEMO_OVERHEAD_MS,
    "memo_simulate_ms": $MEMO_SIMULATE_MS,
    "trace_merge_ms": $TRACE_MERGE_MS
  },
  "result_cache": {
    "fig7": {"cold_wall_ms": $FIG7_COLD_MS, "warm_wall_ms": $FIG7_WARM_MS,
             "cold_misses": $FIG7_COLD_MISSES, "warm_hits": $FIG7_WARM_HITS,
             "speedup_x": $FIG7_SPEEDUP},
    "fig8": {"cold_wall_ms": $FIG8_COLD_MS, "warm_wall_ms": $FIG8_WARM_MS,
             "cold_misses": $FIG8_COLD_MISSES, "warm_hits": $FIG8_WARM_HITS,
             "speedup_x": $FIG8_SPEEDUP}
  },
  "stages": {
$STAGE_RECORDS
  }
}
EOF
echo "==> wrote $RESULT"
cat "$RESULT"

if [[ -n "$FAILED_STAGES" ]]; then
  echo "FAIL: stages not ok:$FAILED_STAGES"
  exit 1
fi
