#!/usr/bin/env bash
# Wall-clock benchmark of the hot paths this repo optimizes, writing
# BENCH_sweep.json so future changes have a recorded baseline:
#
#   * the Fig 7/8 figure grids, serial (--threads 1) vs parallel
#     (--threads 4) — the parallel sweep executor's headline win;
#   * the static spec sanitizer over the full registry (`check --all`) —
#     the pre-sweep verification pass must stay negligible next to a sweep;
#   * the Mega-size bfs fault path under plain uvm — the page table's
#     O(1) register/touch/evict hot loop.
#
# Usage:
#   scripts/bench.sh            # full sizes, writes BENCH_sweep.json
#   scripts/bench.sh --smoke    # tiny sizes, CI keep-alive; writes the
#                               # same JSON shape to a scratch file so the
#                               # committed baseline is not clobbered
#
# The CLI's output is asserted byte-identical between the serial and the
# parallel grid run — the determinism guarantee, enforced here end to end
# on the real binary, not just in unit tests.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
fi

if [[ $SMOKE -eq 1 ]]; then
  GRID_SIZE=tiny
  GRID_RUNS=3
  BFS_SIZE=small
else
  GRID_SIZE=large
  GRID_RUNS=30
  BFS_SIZE=mega
fi

CLI=./target/release/hetsim-cli
if [[ ! -x "$CLI" ]]; then
  echo "==> building release CLI"
  cargo build --release -q -p hetsim-cli
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# Milliseconds of wall clock for a command, stdout captured to a file.
# Sets TIMED_MS; called at top level so `set -e` still aborts on a
# failing CLI invocation (command substitution would swallow it).
now_ms() { python3 -c 'import time; print(int(time.time()*1000))' 2>/dev/null \
  || date +%s%3N; }
run_timed() {
  local capture="$1"; shift
  local t0 t1
  t0="$(now_ms)"
  "$@" > "$capture"
  t1="$(now_ms)"
  TIMED_MS=$((t1 - t0))
}

echo "==> Fig 7 grid (micro suite @ $GRID_SIZE, $GRID_RUNS runs): serial"
run_timed "$out/micro1.txt" \
  "$CLI" micro --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 1
MICRO_SERIAL_MS=$TIMED_MS
echo "    ${MICRO_SERIAL_MS} ms"

echo "==> Fig 7 grid: parallel (--threads 4)"
run_timed "$out/micro4.txt" \
  "$CLI" micro --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 4
MICRO_PARALLEL_MS=$TIMED_MS
echo "    ${MICRO_PARALLEL_MS} ms"
[[ -s "$out/micro1.txt" ]] || { echo "FAIL: empty Fig 7 output"; exit 1; }
cmp "$out/micro1.txt" "$out/micro4.txt" \
  || { echo "FAIL: Fig 7 output differs between --threads 1 and 4"; exit 1; }

echo "==> Fig 8 grid (app suite @ $GRID_SIZE, $GRID_RUNS runs): serial"
run_timed "$out/apps1.txt" \
  "$CLI" apps --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 1
APPS_SERIAL_MS=$TIMED_MS
echo "    ${APPS_SERIAL_MS} ms"

echo "==> Fig 8 grid: parallel (--threads 4)"
run_timed "$out/apps4.txt" \
  "$CLI" apps --size "$GRID_SIZE" --runs "$GRID_RUNS" --threads 4
APPS_PARALLEL_MS=$TIMED_MS
echo "    ${APPS_PARALLEL_MS} ms"
[[ -s "$out/apps1.txt" ]] || { echo "FAIL: empty Fig 8 output"; exit 1; }
cmp "$out/apps1.txt" "$out/apps4.txt" \
  || { echo "FAIL: Fig 8 output differs between --threads 1 and 4"; exit 1; }

echo "==> spec sanitizer (check --all @ $GRID_SIZE, full registry, no simulation)"
run_timed "$out/check.txt" \
  "$CLI" check --all --deny warnings --size "$GRID_SIZE"
CHECK_MS=$TIMED_MS
echo "    ${CHECK_MS} ms"
grep -q "0 errors, 0 warnings" "$out/check.txt" \
  || { echo "FAIL: sanitizer sweep not clean"; exit 1; }

echo "==> bfs fault path (@ $BFS_SIZE, plain uvm, single run)"
run_timed "$out/bfs.txt" \
  "$CLI" run bfs --size "$BFS_SIZE" --mode uvm --runs 1 --threads 1
BFS_MS=$TIMED_MS
echo "    ${BFS_MS} ms"
[[ -s "$out/bfs.txt" ]] || { echo "FAIL: empty bfs output"; exit 1; }

# The parallel stages can only beat serial when the host has cores to
# spare; record the machine's parallelism so the baseline is
# interpretable (on a 1-core CI container the --threads 4 numbers are
# expected to match serial within noise, while byte-identity must hold
# everywhere).
HOST_PARALLELISM="$(nproc 2>/dev/null || echo 1)"

RESULT=BENCH_sweep.json
if [[ $SMOKE -eq 1 ]]; then
  RESULT="$out/BENCH_smoke.json"
fi

cat > "$RESULT" <<EOF
{
  "smoke": $SMOKE,
  "host_parallelism": $HOST_PARALLELISM,
  "grid_size": "$GRID_SIZE",
  "grid_runs": $GRID_RUNS,
  "bfs_size": "$BFS_SIZE",
  "stages_ms": {
    "fig7_micro_grid_serial": $MICRO_SERIAL_MS,
    "fig7_micro_grid_threads4": $MICRO_PARALLEL_MS,
    "fig8_apps_grid_serial": $APPS_SERIAL_MS,
    "fig8_apps_grid_threads4": $APPS_PARALLEL_MS,
    "sanitizer_check_all": $CHECK_MS,
    "bfs_uvm_fault_path": $BFS_MS
  }
}
EOF
echo "==> wrote $RESULT"
cat "$RESULT"
