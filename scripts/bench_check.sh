#!/usr/bin/env bash
# Bench regression gate: compares a fresh bench run against a recorded
# baseline and fails when any shared stage got more than REGRESSION_X
# times slower.
#
# Usage:
#   scripts/bench_check.sh BASELINE.json FRESH.json
#
# Rules:
#   * only stages present in BOTH files are compared (renamed or new
#     stages are reported, not failed);
#   * stages that were not "ok" in either file are skipped — a failing
#     stage is bench.sh's problem, not a timing regression;
#   * stages under MIN_BASELINE_MS in the baseline are skipped: at
#     startup-dominated durations the ratio is pure noise;
#   * the two files must agree on the "smoke" flag — comparing a tiny
#     smoke run against a full-size baseline (or vice versa) would make
#     every ratio meaningless, so that is a usage error.
#
# Knobs: REGRESSION_X (default 2), MIN_BASELINE_MS (default 20).
set -euo pipefail

BASELINE="${1:?usage: bench_check.sh BASELINE.json FRESH.json}"
FRESH="${2:?usage: bench_check.sh BASELINE.json FRESH.json}"
REGRESSION_X="${REGRESSION_X:-2}"
MIN_BASELINE_MS="${MIN_BASELINE_MS:-20}"

[[ -f "$BASELINE" ]] || { echo "FAIL: baseline $BASELINE not found"; exit 1; }
[[ -f "$FRESH" ]] || { echo "FAIL: fresh result $FRESH not found"; exit 1; }

mode_of() { sed -n 's/.*"smoke": *\([01]\).*/\1/p' "$1" | head -1; }
BASE_MODE="$(mode_of "$BASELINE")"
FRESH_MODE="$(mode_of "$FRESH")"
if [[ "$BASE_MODE" != "$FRESH_MODE" ]]; then
  echo "FAIL: smoke flags differ (baseline=$BASE_MODE fresh=$FRESH_MODE);"
  echo "      regenerate the baseline in the same mode before comparing"
  exit 1
fi

# Each stage record is one line of the uniform shape bench.sh writes:
#   "name": {"status": "ok", "wall_ms": 123}
extract() {
  sed -n 's/.*"\([a-z0-9_]*\)": {"status": "\([a-z]*\)", "wall_ms": \([0-9]*\)}.*/\1 \2 \3/p' "$1"
}

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
extract "$BASELINE" > "$tmp/base"
extract "$FRESH" > "$tmp/fresh"
[[ -s "$tmp/base" ]] || { echo "FAIL: no stage records in $BASELINE"; exit 1; }
[[ -s "$tmp/fresh" ]] || { echo "FAIL: no stage records in $FRESH"; exit 1; }

awk -v limit="$REGRESSION_X" -v floor="$MIN_BASELINE_MS" '
  NR == FNR { base_ms[$1] = $3; base_st[$1] = $2; next }
  {
    if (!($1 in base_ms)) { printf "  new stage (no baseline): %s\n", $1; next }
    seen[$1] = 1
    if (base_st[$1] != "ok" || $2 != "ok") {
      printf "  skip (not ok): %s\n", $1; next
    }
    if (base_ms[$1] < floor) { next }
    if ($3 > limit * base_ms[$1]) {
      printf "  REGRESSION: %s took %d ms, baseline %d ms (> %gx)\n", \
        $1, $3, base_ms[$1], limit
      bad = 1
      next
    }
    printf "  ok: %s %d ms (baseline %d ms)\n", $1, $3, base_ms[$1]
  }
  END {
    for (name in base_ms) {
      if (!(name in seen)) printf "  stage missing from fresh run: %s\n", name
    }
    exit bad
  }
' "$tmp/base" "$tmp/fresh" || { echo "FAIL: bench regression over ${REGRESSION_X}x"; exit 1; }

echo "bench_check OK (no stage over ${REGRESSION_X}x baseline)"
