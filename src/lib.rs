//! # hetsim-suite
//!
//! The end-to-end suite package of the hetsim workspace: it hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). All functionality lives in the [`hetsim`] facade crate and
//! the substrate crates it re-exports; this package only re-exports the
//! facade for convenience.

#![forbid(unsafe_code)]

pub use hetsim::*;
