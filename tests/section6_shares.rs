//! The paper's §6 observations: once UVM + Async Memcpy shrink transfer
//! time, allocation becomes the bottleneck, occupancy rises, and the
//! inter-job pipeline recovers >30%.

use hetsim::batch::{InterJobPipeline, JobStages};
use hetsim::experiment::Experiment;
use hetsim::figures;
use hetsim::headline::Section6;
use hetsim::prelude::*;

#[test]
fn share_shift_matches_section6() {
    let exp = Experiment::new().with_runs(2);
    let suite = figures::fig8_at(&exp, InputSize::Medium);
    let s6 = Section6::from_suite(&suite);

    // Paper: memcpy share 55.86% -> 24.55%.
    assert!(
        s6.memcpy_share_pfa < s6.memcpy_share_standard,
        "memcpy share must shrink: {:.2} !< {:.2}",
        s6.memcpy_share_pfa,
        s6.memcpy_share_standard
    );
    assert!(
        s6.memcpy_share_standard > 0.4,
        "standard runs are transfer-dominated, got {:.2}",
        s6.memcpy_share_standard
    );

    // Paper: allocation share 18.99% -> 37.66%.
    assert!(
        s6.alloc_share_pfa > s6.alloc_share_standard,
        "allocation share must grow: {:.2} !> {:.2}",
        s6.alloc_share_pfa,
        s6.alloc_share_standard
    );
    assert!(
        s6.alloc_share_pfa > 0.30,
        "allocation becomes the bottleneck, got {:.2}",
        s6.alloc_share_pfa
    );
}

#[test]
fn occupancy_rises_with_overlap() {
    // Paper: achieved occupancy 25.15% -> 37.79% once transfers overlap
    // computation. Our proxy is the SM-busy share of wall time; we assert
    // it on uvm_prefetch, whose kernel time tracks standard's (in our
    // calibration the pfa kernels get *faster* than the paper's, which
    // deflates the share — EXPERIMENTS.md deviation #2).
    let runner = Runner::new(Device::a100_epyc());
    let mut improved = 0;
    let mut total = 0;
    for entry in hetsim_workloads::suite::app_names() {
        let w = (entry.build)(InputSize::Medium);
        let std = runner.run_base(&w, TransferMode::Standard);
        let pf = runner.run_base(&w, TransferMode::UvmPrefetch);
        total += 1;
        if pf.counters.occupancy.achieved() > std.counters.occupancy.achieved() {
            improved += 1;
        }
    }
    assert!(
        improved * 10 >= total * 7,
        "occupancy should improve for most apps: {improved}/{total}"
    );
}

#[test]
fn interjob_pipeline_recovers_over_thirty_percent() {
    // §6.2: with allocation ~37.7% and GPU work ~37.8% of the breakdown,
    // overlapping them across jobs buys >30% in the ideal case.
    let runner = Runner::new(Device::a100_epyc());
    let w = hetsim_workloads::micro::vector_seq(InputSize::Medium);
    let report = runner.run_base(&w, TransferMode::UvmPrefetchAsync);
    let stages = JobStages::from_report(&report);
    let est = InterJobPipeline::homogeneous(stages, 64).estimate();
    assert!(
        est.improvement() > 0.25,
        "inter-job overlap should recover >25-30%, got {:.1}%",
        est.improvement() * 100.0
    );
    assert!(est.pipelined < est.sequential);
}

#[test]
fn interjob_estimate_is_stage_bounded() {
    let runner = Runner::new(Device::a100_epyc());
    let w = hetsim_workloads::micro::saxpy(InputSize::Small);
    let report = runner.run_base(&w, TransferMode::UvmPrefetch);
    let stages = JobStages::from_report(&report);
    let jobs = 16u32;
    let est = InterJobPipeline::homogeneous(stages, jobs).estimate();
    let cpu_total = stages.cpu * jobs as u64;
    let gpu_total = stages.gpu * jobs as u64;
    assert!(est.pipelined >= cpu_total.max(gpu_total));
    assert!(est.pipelined <= est.sequential);
}
