//! Trace record/replay integration: every workload's kernels survive a
//! record → serialize → parse → replay round trip with identical executor
//! results.

use hetsim::prelude::*;
use hetsim_gpu::exec::{ExecEnv, KernelExecutor};
use hetsim_gpu::trace::KernelTrace;
use hetsim_gpu::GpuConfig;
use hetsim_workloads::suite;

#[test]
fn every_workload_kernel_round_trips_through_a_trace() {
    let exec = KernelExecutor::new(GpuConfig::a100());
    for entry in suite::micro_names().into_iter().chain(suite::app_names()) {
        let w = (entry.build)(InputSize::Tiny);
        for kernel in w.kernels() {
            let trace = KernelTrace::record(kernel, 6);
            let style = kernel.standard_style();
            let original = exec.execute(kernel, style, &ExecEnv::standard());
            let replayed = exec.execute(&trace, style, &ExecEnv::standard());
            assert_eq!(
                original.cycles,
                replayed.cycles,
                "{}: trace replay must reproduce timing",
                kernel.name()
            );
            assert_eq!(
                original.l1,
                replayed.l1,
                "{}: trace replay must reproduce L1 behaviour",
                kernel.name()
            );
        }
    }
}

#[test]
fn text_serialization_round_trips_for_an_irregular_kernel() {
    // lud: random streams + windowed stores — the hardest case for a
    // textual round trip.
    let w = suite::by_name("lud", InputSize::Small).unwrap();
    let kernels = w.kernels();
    let kernel = kernels[0];
    let trace = KernelTrace::record(kernel, 4);
    let text = trace.to_trace_text();
    let parsed = KernelTrace::from_trace_text(
        "lud.trace",
        kernel.launch(),
        kernel.tile_ops(),
        kernel.regularity(),
        &text,
    )
    .expect("parse");
    assert_eq!(parsed.recorded_accesses(), trace.recorded_accesses());

    let exec = KernelExecutor::new(GpuConfig::a100());
    use hetsim_gpu::kernel::KernelStyle;
    let a = exec.execute(&trace, KernelStyle::Direct, &ExecEnv::standard());
    let b = exec.execute(&parsed, KernelStyle::Direct, &ExecEnv::standard());
    assert_eq!(a.l1, b.l1, "textual round trip preserves cache behaviour");
}
