//! Shape tests for the irregular-access trio (bfs, kmeans, pathfinder):
//! the workloads whose temporal touch models drive the UVM fault batcher
//! instead of the address-ordered blanket fallback.
//!
//! The paper's observation (§4.1.2, §4.2.2) is that prefetching pays off
//! when access is streaming and predictable, and that plain UVM inflates
//! kernel time through fault-handling stalls. Irregular workloads push on
//! both claims from the other side: scattered frontiers fill fault batches
//! poorly, so `uvm_prefetch`'s advantage over plain `uvm` *shrinks*
//! relative to streaming microbenchmarks, and the kernel inflation is
//! attributable to fault stalls rather than compute.
//!
//! Like `headline_shapes.rs`, these assertions pin orderings and coarse
//! factors — never absolute nanoseconds. Comparisons use kernel + memcpy
//! components (or raw fault counters), not run totals, because the fixed
//! per-run system overhead (~190 ms) dwarfs everything else at Medium.

use hetsim::experiment::Experiment;
use hetsim::prelude::*;

fn exp() -> Experiment {
    Experiment::new().with_runs(3)
}

fn w(name: &str) -> hetsim::workloads::Workload {
    suite::by_name(name, InputSize::Medium).expect("workload resolves")
}

/// kernel + memcpy: the UVM-sensitive part of a report (alloc and system
/// don't depend on the touch sequence).
fn uvm_sensitive(r: &RunReport) -> f64 {
    (r.kernel + r.memcpy).as_nanos() as f64
}

/// How much `uvm_prefetch` improves over plain `uvm` on the
/// UVM-sensitive components (>1 means prefetch wins).
fn prefetch_benefit(exp: &Experiment, name: &str) -> f64 {
    let wl = w(name);
    let plain = exp.runner().run_base(&wl, TransferMode::Uvm);
    let pf = exp.runner().run_base(&wl, TransferMode::UvmPrefetch);
    uvm_sensitive(&plain) / uvm_sensitive(&pf)
}

#[test]
fn trio_runs_in_all_five_modes() {
    let e = exp();
    for name in hetsim::figures::IRREGULAR_WORKLOADS {
        let wl = w(name);
        for mode in TransferMode::ALL {
            let r = e.runner().run_base(&wl, mode);
            assert!(r.kernel.as_nanos() > 0, "{name}/{} kernel", mode.name());
            assert!(r.total() > r.system, "{name}/{} total", mode.name());
            if mode.uses_uvm() {
                assert!(
                    r.counters.uvm.page_faults() > 0 || mode.uses_prefetch(),
                    "{name}/{} should fault or prefetch",
                    mode.name()
                );
            }
        }
    }
}

/// The tentpole shape: prefetching helps streaming workloads far more than
/// frontier-driven ones. A scattered fault stream defeats the
/// region-growing heuristic, so bfs keeps paying fault costs that
/// vector_seq and saxpy prefetch away.
#[test]
fn prefetch_benefit_shrinks_for_irregular_access() {
    let e = exp();
    let bfs = prefetch_benefit(&e, "bfs");
    let vector_seq = prefetch_benefit(&e, "vector_seq");
    let saxpy = prefetch_benefit(&e, "saxpy");

    assert!(
        bfs * 1.05 < vector_seq,
        "bfs prefetch benefit ({bfs:.2}x) must trail vector_seq ({vector_seq:.2}x)"
    );
    assert!(
        bfs * 1.05 < saxpy,
        "bfs prefetch benefit ({bfs:.2}x) must trail saxpy ({saxpy:.2}x)"
    );
    // Prefetch still helps bfs a little (bulk graph data is contiguous),
    // it just can't hide the frontier's scattered faults.
    assert!(bfs > 1.0, "prefetch should not hurt bfs, got {bfs:.2}x");
}

/// Scattered frontiers leave fault batches underfilled; streaming access
/// retires them full. This is the batcher-level mechanism behind the
/// shrinking prefetch benefit above.
#[test]
fn irregular_fault_batches_are_underfilled() {
    let e = exp();
    let bfs = e.runner().run_base(&w("bfs"), TransferMode::Uvm);
    let seq = e.runner().run_base(&w("vector_seq"), TransferMode::Uvm);

    let bfs_fill = bfs.counters.uvm.mean_batch_fill();
    let seq_fill = seq.counters.uvm.mean_batch_fill();
    assert!(
        bfs_fill < seq_fill,
        "bfs mean batch fill ({bfs_fill:.1}) must be below vector_seq ({seq_fill:.1})"
    );
    assert!(
        bfs.counters.uvm.underfilled_batch_fraction()
            > seq.counters.uvm.underfilled_batch_fraction(),
        "bfs must retire more underfilled batches than a streaming workload"
    );
    assert!(
        bfs.counters.uvm.fault_batches() > 1,
        "a frontier sweep needs multiple fault batches"
    );
}

/// Plain-UVM kernel inflation on the trio is fault-driven: the kernel runs
/// longer than standard mode, and the counters attribute nonzero stall to
/// fault handling (paper §4.2.2's "kernel time absorbs the page faults").
#[test]
fn uvm_kernel_inflation_is_fault_driven() {
    let e = exp();
    for name in hetsim::figures::IRREGULAR_WORKLOADS {
        let wl = w(name);
        let std = e.runner().run_base(&wl, TransferMode::Standard);
        let uvm = e.runner().run_base(&wl, TransferMode::Uvm);
        assert!(
            uvm.kernel > std.kernel,
            "{name}: uvm kernel ({}) must exceed standard ({})",
            uvm.kernel,
            std.kernel
        );
        assert!(
            uvm.counters.uvm.fault_stall().as_nanos() > 0,
            "{name}: fault stall must be attributed"
        );
        assert!(
            uvm.counters.uvm.page_faults() > 0,
            "{name}: plain uvm must take page faults"
        );
    }
}

/// kmeans re-touches its full dataset every pass; with device memory
/// tightened below the footprint, the second pass refaults pages the
/// eviction loop pushed out — the thrashing signature the refault counter
/// exists to expose.
#[test]
fn kmeans_thrashes_when_capacity_is_tight() {
    let mut dev = Device::a100_epyc();
    // Medium kmeans has a 64 MB footprint; a 16 MB carveout forces the
    // retouch passes to evict and re-migrate.
    dev.uvm.device_capacity = 16 << 20;
    let e = Experiment::new().with_runs(3).with_device(dev);

    let r = e.runner().run_base(&w("kmeans"), TransferMode::Uvm);
    let uvm = &r.counters.uvm;
    assert!(uvm.pages_evicted() > 0, "tight capacity must evict");
    assert!(
        uvm.refaults() > 0,
        "retouch passes must refault evicted pages"
    );

    // At the default 40 GB capacity the same run never thrashes.
    let roomy = exp().runner().run_base(&w("kmeans"), TransferMode::Uvm);
    assert_eq!(roomy.counters.uvm.refaults(), 0);
    assert_eq!(roomy.counters.uvm.pages_evicted(), 0);
}

/// The lane-interleaved kmeans stream still has enough short runs for the
/// inline region-growing heuristic to pull some pages without faults.
#[test]
fn kmeans_heuristic_prefetch_fires_on_bursts() {
    let r = exp().runner().run_base(&w("kmeans"), TransferMode::Uvm);
    assert!(
        r.counters.uvm.pages_heuristic() > 0,
        "burst adjacency should trigger heuristic pulls"
    );
    // Heuristic pages are migrations that took no fault, so migrated
    // pages must exceed faulted pages.
    assert!(r.counters.uvm.pages_migrated() > r.counters.uvm.page_faults());
}
