//! The paper's headline result *shapes*: who wins, by roughly what factor,
//! and where the exceptions fall (§4, Takeaways 1–3).
//!
//! These assertions encode orderings and coarse factors, not the A100's
//! absolute numbers — the fidelity contract documented in EXPERIMENTS.md.

use hetsim::experiment::Experiment;
use hetsim::figures;
use hetsim::headline::Headline;
use hetsim::prelude::*;

fn exp() -> Experiment {
    Experiment::new().with_runs(3)
}

/// §4.1.1 on the microbenchmark suite (the paper runs Large and Super).
#[test]
fn micro_geomeans_match_paper_shape() {
    let suite = figures::fig7(&exp(), InputSize::Large);
    let h = Headline::from_suite(&suite);

    // async ~= standard overall (paper: +0.27%/+0.36%).
    let async_gain = h.row(TransferMode::Async).improvement_pct;
    assert!(
        (-3.0..8.0).contains(&async_gain),
        "async should be near-neutral overall, got {async_gain:+.2}%"
    );

    // uvm without prefetch is a net loss (paper: -13%/-17%).
    let uvm_gain = h.row(TransferMode::Uvm).improvement_pct;
    assert!(
        uvm_gain < 0.0,
        "plain uvm must lose overall, got {uvm_gain:+.2}%"
    );

    // uvm_prefetch is a clear win (paper: up to +28.4% at Super).
    let pf_gain = h.row(TransferMode::UvmPrefetch).improvement_pct;
    assert!(
        pf_gain > 15.0,
        "uvm_prefetch should win clearly, got {pf_gain:+.2}%"
    );

    // On micro, adding async to prefetch does not help further
    // (paper: 27.01% vs 28.40% at Super).
    let pfa_gain = h.row(TransferMode::UvmPrefetchAsync).improvement_pct;
    assert!(
        pfa_gain <= pf_gain + 1.0,
        "micro: pfa ({pfa_gain:+.2}%) should not beat prefetch ({pf_gain:+.2}%)"
    );
}

/// §4.1.1 transfer-time and kernel-time components.
#[test]
fn micro_component_effects_match_paper() {
    let suite = figures::fig7(&exp(), InputSize::Large);
    let h = Headline::from_suite(&suite);

    // uvm saves ~31-35% of transfer time...
    let uvm_memcpy = h.row(TransferMode::Uvm).memcpy_savings_pct;
    assert!(
        (20.0..45.0).contains(&uvm_memcpy),
        "uvm memcpy savings {uvm_memcpy:.1}% (paper ~32%)"
    );
    // ...but about doubles kernel time.
    let uvm_kernel = h.row(TransferMode::Uvm).kernel_overhead_pct;
    assert!(
        (60.0..180.0).contains(&uvm_kernel),
        "uvm kernel inflation {uvm_kernel:.1}% (paper ~100-120%)"
    );
    // Prefetch saves much more transfer time (paper: 45-64%).
    let pf_memcpy = h.row(TransferMode::UvmPrefetch).memcpy_savings_pct;
    assert!(
        pf_memcpy > uvm_memcpy + 10.0,
        "prefetch {pf_memcpy:.1}% vs uvm {uvm_memcpy:.1}%"
    );
}

/// vector_seq's async kernel reduction (paper: 41.78% at Large) with a
/// near-zero overall effect ("less than 1% overall").
#[test]
fn vector_seq_async_kernel_reduction() {
    let e = exp();
    let w = hetsim_workloads::micro::vector_seq(InputSize::Large);
    let cmp = e.compare_modes(&w);
    use hetsim_runtime::report::Component;
    let std_k = cmp
        .mean(TransferMode::Standard)
        .component(Component::Kernel);
    let asy_k = cmp.mean(TransferMode::Async).component(Component::Kernel);
    let reduction = 1.0 - asy_k.as_nanos() as f64 / std_k.as_nanos() as f64;
    assert!(
        (0.25..0.55).contains(&reduction),
        "async kernel reduction {:.1}% (paper 41.78%)",
        reduction * 100.0
    );
    let overall = cmp.improvement_pct(TransferMode::Async);
    assert!(
        overall.abs() < 3.0,
        "vector_seq async overall effect should be tiny, got {overall:+.2}%"
    );
}

/// §4.1.2 on the application suite.
#[test]
fn app_geomeans_match_paper_shape() {
    let suite = figures::fig8_at(&exp(), InputSize::Medium);
    let h = Headline::from_suite(&suite);

    // Paper: +2.81% / -4.41% / +20.96% / +22.52%.
    let async_gain = h.row(TransferMode::Async).improvement_pct;
    let uvm_gain = h.row(TransferMode::Uvm).improvement_pct;
    let pf_gain = h.row(TransferMode::UvmPrefetch).improvement_pct;
    let pfa_gain = h.row(TransferMode::UvmPrefetchAsync).improvement_pct;

    assert!(
        async_gain > 0.0,
        "apps: async should help a little, got {async_gain:+.2}%"
    );
    assert!(
        uvm_gain < 0.0,
        "apps: plain uvm should lose, got {uvm_gain:+.2}%"
    );
    assert!(pf_gain > 15.0, "apps: prefetch wins, got {pf_gain:+.2}%");
    assert!(
        pfa_gain > pf_gain,
        "apps: prefetch+async ({pfa_gain:+.2}%) should edge out prefetch ({pf_gain:+.2}%)"
    );

    // Transfer-time savings (paper: 32.70% / 64.24% / 64.18%).
    let uvm_m = h.row(TransferMode::Uvm).memcpy_savings_pct;
    let pf_m = h.row(TransferMode::UvmPrefetch).memcpy_savings_pct;
    assert!(
        (20.0..45.0).contains(&uvm_m),
        "uvm memcpy savings {uvm_m:.1}%"
    );
    assert!(
        (45.0..72.0).contains(&pf_m),
        "prefetch memcpy savings {pf_m:.1}%"
    );
}

/// Takeaway 2's per-workload exceptions.
#[test]
fn per_workload_exceptions_hold() {
    let suite = figures::fig8_at(&exp(), InputSize::Medium);

    // lud: Async Memcpy wins; UVM prefetch does not (its irregular access
    // defeats the prefetcher). Paper: async up to 1.24x over UVM.
    let lud = suite.workload("lud").expect("lud");
    assert!(
        lud.normalized_total(TransferMode::Async) < lud.normalized_total(TransferMode::UvmPrefetch),
        "lud: async must beat uvm_prefetch"
    );
    assert!(
        lud.normalized_total(TransferMode::Async) < 0.95,
        "lud: async must beat standard clearly"
    );

    // kmeans: async beats plain uvm by a wide margin (paper ~20%).
    let kmeans = suite.workload("kmeans").expect("kmeans");
    let ratio =
        kmeans.normalized_total(TransferMode::Uvm) / kmeans.normalized_total(TransferMode::Async);
    assert!(
        ratio > 1.15,
        "kmeans: uvm/async ratio {ratio:.2} (paper ~1.2)"
    );

    // nw: prefetch makes things worse than both uvm and standard.
    let nw = suite.workload("nw").expect("nw");
    assert!(
        nw.normalized_total(TransferMode::UvmPrefetch) > nw.normalized_total(TransferMode::Uvm),
        "nw: prefetch must be worse than uvm"
    );
    assert!(
        nw.normalized_total(TransferMode::UvmPrefetch) > 1.0,
        "nw: prefetch must be worse than standard"
    );

    // yolov3: regular gemm kernels — prefetch alone beats prefetch+async.
    let yolo = suite.workload("yolov3").expect("yolov3");
    assert!(
        yolo.normalized_total(TransferMode::UvmPrefetchAsync)
            >= yolo.normalized_total(TransferMode::UvmPrefetch),
        "yolov3: adding async must not help"
    );
}
