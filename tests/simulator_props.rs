//! Randomized cross-crate simulator invariants, driven by the engine's
//! deterministic [`SimRng`] (no external test dependencies).

use hetsim::engine::rng::SimRng;
use hetsim::prelude::*;
use hetsim_workloads::{micro, suite};

const CASES: u64 = 16;

fn pick_mode(rng: &mut SimRng) -> TransferMode {
    TransferMode::ALL[rng.below(5) as usize]
}

/// The same (workload, mode, run index) triple is bit-reproducible.
#[test]
fn run_reports_are_deterministic() {
    let mut rng = SimRng::seed_from_parts(&["props", "run_reports_deterministic"], 0);
    let r = Runner::new(Device::a100_epyc());
    let w = micro::saxpy(InputSize::Tiny);
    for _ in 0..CASES {
        let mode = pick_mode(&mut rng);
        let run = rng.below(64);
        let a = r.run(&w, mode, run);
        let b = r.run(&w, mode, run);
        assert_eq!(a, b);
    }
}

/// Noise is multiplicative and bounded: no component strays far from its
/// noise-free base at sub-spill footprints.
#[test]
fn noise_is_bounded_below_spill() {
    let mut rng = SimRng::seed_from_parts(&["props", "noise_bounded"], 0);
    let r = Runner::new(Device::a100_epyc());
    let w = micro::vector_seq(InputSize::Small);
    for _ in 0..CASES {
        let mode = pick_mode(&mut rng);
        let run = rng.below(64);
        let base = r.run_base(&w, mode);
        let noisy = r.apply_noise(&base, &w, mode, run);
        let ratio = noisy.total().as_nanos() as f64 / base.total().as_nanos() as f64;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }
}

/// More data never means less transfer time, for every mode.
#[test]
fn transfer_time_is_monotonic_in_footprint() {
    let r = Runner::new(Device::a100_epyc());
    for mode in TransferMode::ALL {
        let small = r.run_base(&micro::vector_seq(InputSize::Small), mode);
        let medium = r.run_base(&micro::vector_seq(InputSize::Medium), mode);
        assert!(medium.memcpy >= small.memcpy, "{mode}: memcpy");
        assert!(medium.alloc >= small.alloc, "{mode}: alloc");
    }
}

/// Occupancy fractions stay in [0, 1] for every workload/mode combination.
#[test]
fn occupancy_is_a_fraction() {
    let mut rng = SimRng::seed_from_parts(&["props", "occupancy_fraction"], 0);
    let entries: Vec<_> = suite::micro_names()
        .into_iter()
        .chain(suite::app_names())
        .collect();
    for entry in &entries {
        let mode = pick_mode(&mut rng);
        let w = (entry.build)(InputSize::Tiny);
        let rep = Runner::new(Device::a100_epyc()).run_base(&w, mode);
        let occ = rep.counters.occupancy;
        assert!((0.0..=1.0).contains(&occ.theoretical()));
        assert!((0.0..=1.0).contains(&occ.achieved()));
        assert!(occ.achieved() <= occ.theoretical() + 1e-9);
    }
}

/// L1 miss rates are well-formed for every workload and mode.
#[test]
fn miss_rates_are_fractions() {
    let mut rng = SimRng::seed_from_parts(&["props", "miss_rates_fractions"], 0);
    let entries: Vec<_> = suite::micro_names()
        .into_iter()
        .chain(suite::app_names())
        .collect();
    for entry in &entries {
        let mode = pick_mode(&mut rng);
        let w = (entry.build)(InputSize::Tiny);
        let rep = Runner::new(Device::a100_epyc()).run_base(&w, mode);
        for rate in [
            rep.counters.l1.load_miss_rate(),
            rep.counters.l1.store_miss_rate(),
            rep.counters.l2.miss_rate(),
        ] {
            assert!((0.0..=1.0).contains(&rate));
        }
    }
}

/// UVM page conservation: for conflict-free programs, pages moved
/// (migrated + prefetched) never exceed the footprint's chunk count.
/// Programs with an inter-kernel prefetch conflict (nw) deliberately
/// re-migrate displaced chunks each sweep, so they get a bounded thrash
/// allowance instead.
#[test]
fn uvm_page_conservation() {
    use hetsim_runtime::GpuProgram;
    let entries: Vec<_> = suite::micro_names()
        .into_iter()
        .chain(suite::app_names())
        .collect();
    for idx in 0..entries.len() {
        let w = (entries[idx].build)(InputSize::Small);
        let rep = Runner::new(Device::a100_epyc()).run_base(&w, TransferMode::UvmPrefetch);
        let chunk = Device::a100_epyc().uvm.chunk_size;
        let chunks = w.footprint().div_ceil(chunk) + entries.len() as u64;
        // Conflicted programs re-fault the displaced fraction up to 4
        // rounds per later kernel.
        let max_chunks = if w.prefetch_conflict() < 1.0 {
            chunks * 6
        } else {
            chunks
        };
        let moved = rep.counters.uvm.pages_migrated() + rep.counters.uvm.pages_prefetched();
        assert!(
            moved <= max_chunks,
            "{}: moved {} chunks, bound {}",
            entries[idx].name,
            moved,
            max_chunks
        );
    }
}
