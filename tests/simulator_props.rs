//! Property-based tests on cross-crate simulator invariants.

use hetsim::prelude::*;
use hetsim_workloads::{micro, suite};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = TransferMode> {
    prop::sample::select(TransferMode::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same (workload, mode, run index) triple is bit-reproducible.
    #[test]
    fn run_reports_are_deterministic(mode in mode_strategy(), run in 0u64..64) {
        let r = Runner::new(Device::a100_epyc());
        let w = micro::saxpy(InputSize::Tiny);
        let a = r.run(&w, mode, run);
        let b = r.run(&w, mode, run);
        prop_assert_eq!(a, b);
    }

    /// Noise is multiplicative and bounded: no component strays far from
    /// its noise-free base at sub-spill footprints.
    #[test]
    fn noise_is_bounded_below_spill(mode in mode_strategy(), run in 0u64..64) {
        let r = Runner::new(Device::a100_epyc());
        let w = micro::vector_seq(InputSize::Small);
        let base = r.run_base(&w, mode);
        let noisy = r.apply_noise(&base, &w, mode, run);
        let ratio = noisy.total().as_nanos() as f64 / base.total().as_nanos() as f64;
        prop_assert!((0.7..1.3).contains(&ratio), "ratio {}", ratio);
    }

    /// More data never means less transfer time, for every mode.
    #[test]
    fn transfer_time_is_monotonic_in_footprint(mode in mode_strategy()) {
        let r = Runner::new(Device::a100_epyc());
        let small = r.run_base(&micro::vector_seq(InputSize::Small), mode);
        let medium = r.run_base(&micro::vector_seq(InputSize::Medium), mode);
        prop_assert!(medium.memcpy >= small.memcpy);
        prop_assert!(medium.alloc >= small.alloc);
    }

    /// Occupancy fractions stay in [0, 1] for arbitrary workload/mode
    /// combinations.
    #[test]
    fn occupancy_is_a_fraction(
        mode in mode_strategy(),
        idx in 0usize..21,
    ) {
        let entries: Vec<_> = suite::micro_names().into_iter().chain(suite::app_names()).collect();
        let w = (entries[idx].build)(InputSize::Tiny);
        let rep = Runner::new(Device::a100_epyc()).run_base(&w, mode);
        let occ = rep.counters.occupancy;
        prop_assert!((0.0..=1.0).contains(&occ.theoretical()));
        prop_assert!((0.0..=1.0).contains(&occ.achieved()));
        prop_assert!(occ.achieved() <= occ.theoretical() + 1e-9);
    }

    /// L1 miss rates are well-formed for every workload and mode.
    #[test]
    fn miss_rates_are_fractions(mode in mode_strategy(), idx in 0usize..21) {
        let entries: Vec<_> = suite::micro_names().into_iter().chain(suite::app_names()).collect();
        let w = (entries[idx].build)(InputSize::Tiny);
        let rep = Runner::new(Device::a100_epyc()).run_base(&w, mode);
        for rate in [
            rep.counters.l1.load_miss_rate(),
            rep.counters.l1.store_miss_rate(),
            rep.counters.l2.miss_rate(),
        ] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    /// UVM page conservation: for conflict-free programs, pages moved
    /// (migrated + prefetched) never exceed the footprint's chunk count.
    /// Programs with an inter-kernel prefetch conflict (nw) deliberately
    /// re-migrate displaced chunks each sweep, so they get a bounded
    /// thrash allowance instead.
    #[test]
    fn uvm_page_conservation(idx in 0usize..21) {
        use hetsim_runtime::GpuProgram;
        let entries: Vec<_> = suite::micro_names().into_iter().chain(suite::app_names()).collect();
        let w = (entries[idx].build)(InputSize::Small);
        let rep = Runner::new(Device::a100_epyc()).run_base(&w, TransferMode::UvmPrefetch);
        let chunk = Device::a100_epyc().uvm.chunk_size;
        let chunks = w.footprint().div_ceil(chunk) + entries.len() as u64;
        // Conflicted programs re-fault the displaced fraction up to 4
        // rounds per later kernel.
        let max_chunks = if w.prefetch_conflict() < 1.0 { chunks * 6 } else { chunks };
        let moved = rep.counters.uvm.pages_migrated() + rep.counters.uvm.pages_prefetched();
        prop_assert!(
            moved <= max_chunks,
            "moved {} chunks, bound {}",
            moved, max_chunks
        );
    }
}
