//! Resilience-layer properties: the fault model must be *separable*
//! (intensity zero reproduces the fault-free serving schedule
//! byte-for-byte), *monotone* (goodput does not improve as the fault
//! intensity rises), and *deterministic* (availability reports and
//! fleet traces are byte-identical at any worker-thread count).

use hetsim::pool;
use hetsim_engine::time::Nanos;
use hetsim_serve::{
    ArrivalMix, AvailabilitySweep, Fleet, PolicyKind, ResilienceConfig, ServeConfig, ServeReport,
};
use hetsim_trace::TraceConfig;
use hetsim_workloads::InputSize;

/// Runs `f` under both thread counts and returns the two results.
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let serial = pool::with_threads(1, &f);
    let parallel = pool::with_threads(4, &f);
    (serial, parallel)
}

fn config(policy: PolicyKind, seed: u64, requests: u64) -> ServeConfig {
    ServeConfig {
        policy,
        mix: ArrivalMix::by_name("poisson", 400.0).unwrap(),
        seed,
        requests,
    }
}

/// The three policies the monotonicity and separability properties pin.
const POLICIES: [PolicyKind; 3] = [
    PolicyKind::ModePacking,
    PolicyKind::ChaosFailover,
    PolicyKind::SloDeadline,
];

const SEEDS: [u64; 4] = [3, 7, 29, 41];

#[test]
fn intensity_zero_reproduces_the_fault_free_schedule_byte_for_byte() {
    // The acceptance bar for separability: with the fault plan off, the
    // resilient path must add no arithmetic and draw no randomness — the
    // report JSON *and* the rendered trace must match the plain serve
    // run exactly, for every policy and seed.
    for policy in POLICIES {
        for seed in SEEDS {
            let fleet = Fleet::nvlink(3, InputSize::Tiny);
            let cfg = config(policy, seed, 90);
            let render = |outcome: hetsim_serve::FleetOutcome| {
                let cap = outcome.trace_events().max(1);
                let trace = outcome.trace(TraceConfig::default().with_capacity(cap));
                let report = ServeReport {
                    cells: vec![outcome.report],
                }
                .to_json();
                (report, trace.to_jsonl())
            };
            let plain = render(fleet.serve(&cfg));
            let resilient = render(fleet.serve_resilient(&cfg, &ResilienceConfig::default()));
            assert_eq!(
                plain.0,
                resilient.0,
                "{}/{}: intensity-0 report must equal plain serve",
                policy.name(),
                seed
            );
            assert_eq!(
                plain.1,
                resilient.1,
                "{}/{}: intensity-0 trace must equal plain serve",
                policy.name(),
                seed
            );
        }
    }
}

#[test]
fn goodput_degrades_monotonically_with_fault_intensity() {
    // Averaged across seeds, injecting more downtime must never *help*.
    // The monotone quantity for a fixed offered load is useful goodput —
    // requests completed within their SLO — not `goodput_rps`: shedding
    // the slowest requests shrinks the makespan denominator, so the
    // *rate* can rise even as fewer requests finish. The per-seed curves
    // may wobble — a fault episode can land in an idle valley — so the
    // property is pinned on the seed-averaged curve, intensities
    // 0 → 0.25 → 0.5 → 0.75 → 1.0, with one request of slack.
    let fleet = Fleet::nvlink(3, InputSize::Tiny);
    for policy in POLICIES {
        let mut avg = Vec::new();
        for &intensity in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut total = 0.0;
            for seed in SEEDS {
                let out = fleet.serve_resilient(
                    &config(policy, seed, 120),
                    &ResilienceConfig::at_intensity(seed, intensity),
                );
                assert_eq!(
                    out.report.offered,
                    out.report.completed + out.report.shed,
                    "{}/{seed}@{intensity}: offered must split into completed + shed",
                    policy.name()
                );
                total += (out.report.completed - out.report.deadline_misses) as f64;
            }
            avg.push(total / SEEDS.len() as f64);
        }
        assert!(
            avg[0] > avg[avg.len() - 1],
            "{}: full intensity must visibly cost goodput: {:?}",
            policy.name(),
            avg
        );
        for pair in avg.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1.0,
                "{}: seed-averaged useful goodput must not improve with intensity: {:?}",
                policy.name(),
                avg
            );
        }
    }
}

#[test]
fn resilient_bookkeeping_is_internally_consistent() {
    let fleet = Fleet::nvlink(3, InputSize::Tiny);
    for policy in POLICIES {
        let out = fleet.serve_resilient(
            &config(policy, 17, 120),
            &ResilienceConfig::at_intensity(17, 1.0),
        );
        let r = &out.report;
        assert_eq!(r.offered, r.completed + r.shed);
        assert!((0.0..=1.0).contains(&r.slo_attainment));
        let misses = out
            .completed
            .iter()
            .filter(|c| c.completion() > c.deadline)
            .count();
        assert_eq!(r.deadline_misses, misses, "{}: misses", policy.name());
        let hedged = out.completed.iter().filter(|c| c.hedged).count();
        assert_eq!(r.hedges, hedged, "{}: hedges", policy.name());
        assert_eq!(out.hedges, hedged);
        let charged: u64 = out
            .completed
            .iter()
            .map(|c| c.recovery.total().as_nanos())
            .sum();
        assert!(
            r.recovery.total().as_nanos() >= charged,
            "{}: the report ledger must cover per-request charges",
            policy.name()
        );
        // Every completed request met its release: completion beyond
        // arrival, latency positive.
        for c in &out.completed {
            assert!(c.completion() > c.arrival);
        }
    }
}

#[test]
fn fully_shed_cell_reports_zeros_not_nan() {
    // A 1 ns SLO budget makes every request a predicted miss: the
    // slo_deadline policy sheds the entire offered load and the cell's
    // percentile columns must render as zeros, never NaN or a panic.
    let fleet = Fleet::nvlink(2, InputSize::Tiny);
    let res = ResilienceConfig {
        slo_budget: Nanos::from_nanos(1),
        ..ResilienceConfig::default()
    };
    let out = fleet.serve_resilient(&config(PolicyKind::SloDeadline, 7, 40), &res);
    assert_eq!(out.report.completed, 0, "1 ns budget must shed everything");
    assert_eq!(out.report.shed, 40);
    assert_eq!(out.report.slo_attainment, 0.0);
    assert_eq!(out.report.goodput_rps, 0.0);
    let report = ServeReport {
        cells: vec![out.report.clone()],
    };
    for rendered in [report.to_json(), format!("{}", report.to_table())] {
        assert!(
            !rendered.contains("NaN") && !rendered.contains("nan"),
            "empty cell must render digits, got: {rendered}"
        );
    }
}

#[test]
fn tight_budgets_trigger_hedging_onto_peers() {
    // A 2 ms budget is close enough to the service time that a degraded
    // primary predictably misses it while a healthy peer does not — the
    // hedge path must actually fire, every hedged completion must have
    // moved for a reason, and the hedge instants must reach the trace.
    let fleet = Fleet::nvlink(3, InputSize::Tiny);
    let res = ResilienceConfig {
        slo_budget: Nanos::from_millis(2),
        ..ResilienceConfig::at_intensity(7, 1.0)
    };
    let cfg = ServeConfig {
        policy: PolicyKind::ChaosFailover,
        mix: ArrivalMix::by_name("poisson", 800.0).unwrap(),
        seed: 7,
        requests: 200,
    };
    let out = fleet.serve_resilient(&cfg, &res);
    assert!(out.hedges > 0, "tight budget + faults must produce hedges");
    for c in out.completed.iter().filter(|c| c.hedged) {
        assert!(
            c.completion() <= c.deadline,
            "a hedge only commits when the peer makes the deadline"
        );
        assert!(
            c.recovery.total() > Nanos::ZERO,
            "a hedged request must have paid re-staging or backoff"
        );
    }
    let cap = out.trace_events().max(1);
    let trace = out.trace(TraceConfig::default().with_capacity(cap));
    assert!(
        trace.to_jsonl().contains("hedge["),
        "hedged completions must leave instants on the fleet track"
    );

    // Disabling hedging removes them without touching determinism.
    let no_hedge = fleet.serve_resilient(
        &cfg,
        &ResilienceConfig {
            hedging: false,
            ..res
        },
    );
    assert_eq!(no_hedge.hedges, 0, "hedging off must mean zero hedges");
}

#[test]
fn availability_sweeps_are_thread_count_invariant() {
    let (serial, parallel) = both(|| {
        let fleet = Fleet::nvlink(2, InputSize::Tiny);
        let sweep = AvailabilitySweep {
            policies: vec![PolicyKind::ChaosFailover, PolicyKind::SloDeadline],
            rates: vec![200.0],
            intensities: AvailabilitySweep::DEFAULT_INTENSITIES.to_vec(),
            mix: "bursty".into(),
            seed: 23,
            requests: 60,
            slo_budget: hetsim_serve::ArrivalPlan::DEFAULT_SLO_BUDGET,
        };
        sweep.run(&fleet).to_json()
    });
    assert_eq!(serial, parallel, "availability JSON must be byte-identical");
}

#[test]
fn resilient_traces_are_thread_count_invariant_and_carry_lifecycle_marks() {
    let (serial, parallel) = both(|| {
        let fleet = Fleet::nvlink(3, InputSize::Tiny);
        let out = fleet.serve_resilient(
            &config(PolicyKind::ChaosFailover, 11, 80),
            &ResilienceConfig::at_intensity(11, 1.0),
        );
        let cap = out.trace_events().max(1);
        let trace = out.trace(TraceConfig::default().with_capacity(cap));
        assert_eq!(trace.dropped(), 0, "trace capacity must cover the run");
        (out.lifecycle.len(), trace.to_jsonl())
    });
    assert_eq!(serial, parallel, "resilient trace must be byte-identical");
    let (events, jsonl) = serial;
    assert!(events > 0, "intensity 1.0 must produce lifecycle events");
    assert!(
        jsonl.contains("[gpu"),
        "fleet track must carry lifecycle instants"
    );
}
