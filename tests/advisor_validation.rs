//! Differential validation of the static performance advisor.
//!
//! The advisor's central claim is that the winning transfer mode is
//! predictable from workload structure alone — no simulation. This
//! harness makes that claim falsifiable the same way the stream-hazard
//! lints are: sweep the whole workload registry × input sizes × devices,
//! ask the advisor for its top-ranked mode, run the simulator's
//! noise-free base pipeline for all five modes, and compare winners.
//!
//! Assertions, in order of strength:
//!
//! 1. **Agreement** — the advisor's pick matches the measured winner on at
//!    least [`MIN_AGREEMENT`] of cells.
//! 2. **Bounded misses** — on every disagreeing cell, the advisor's pick
//!    measures within [`MISS_RATIO`] of the true winner, so a miss is
//!    never a catastrophic recommendation.
//! 3. **Zero false positives at `--deny warnings`** — on cells where the
//!    advisor's pick IS the measured winner, no `SAN-P*` lint may target
//!    that mode (the advisor never warns about the right answer).
//!
//! The comparison metric is `alloc + memcpy + kernel` from
//! [`Runner::run_base`]: mode-independent system overhead excluded,
//! measurement noise excluded (the advisor models the noise-free run).

use hetsim_runtime::{Device, Runner, TransferMode};
use hetsim_sanitizer::{advise, PerfConfig};
use hetsim_workloads::suite;
use hetsim_workloads::InputSize;

/// Minimum fraction of cells where the advisor's top-ranked mode must
/// equal the simulator's measured winner.
const MIN_AGREEMENT: f64 = 0.90;

/// On a disagreeing cell, `measured(advised pick) / measured(winner)`
/// must stay under this pinned ratio.
const MISS_RATIO: f64 = 1.05;

/// The devices swept: the paper's platform plus a reduced-L1 variant
/// (128 KiB shared carveout halves the L1 and cools the prefetch-mode
/// L2-warm bonus), exercising device sensitivity in both models.
fn devices() -> Vec<Device> {
    let base = Device::a100_epyc();
    let mut small_l1 = Device::a100_epyc();
    small_l1.name = "a100_small_l1";
    small_l1.gpu = small_l1.gpu.with_carveout(
        hetsim_mem::carveout::Carveout::with_shared_kib(128).expect("valid carveout"),
    );
    vec![base, small_l1]
}

/// Sizes swept: kept to the two smallest so the full 22-workload × 2-device
/// grid stays fast in debug builds; the advisor's cost primitives scale
/// with bytes, not with distinct code paths, so larger sizes add cells but
/// not new behavior.
const SIZES: [InputSize; 2] = [InputSize::Tiny, InputSize::Small];

struct Cell {
    workload: &'static str,
    size: InputSize,
    device: &'static str,
    advised: TransferMode,
    measured_winner: TransferMode,
    /// measured(advised) / measured(winner), ≥ 1.
    miss_ratio: f64,
    /// SAN-P lint codes that target the advised mode.
    false_positives: Vec<String>,
}

fn sweep() -> Vec<Cell> {
    let mut cells = Vec::new();
    for device in devices() {
        let runner = Runner::new(device.clone());
        for entry in suite::all_entries() {
            for size in SIZES {
                let w = (entry.build)(size);
                let advice = advise(&w, &device, &PerfConfig::default());
                let advised = advice.best().mode;

                let mut measured: Vec<(TransferMode, u64)> = TransferMode::ALL
                    .iter()
                    .map(|&mode| {
                        let r = runner.run_base(&w, mode);
                        (mode, (r.alloc + r.memcpy + r.kernel).as_nanos())
                    })
                    .collect();
                measured.sort_by_key(|&(_, t)| t);
                let (winner, winner_t) = measured[0];
                let advised_t = measured
                    .iter()
                    .find(|&&(m, _)| m == advised)
                    .expect("advised mode measured")
                    .1;

                // Lints whose message names the advised mode.
                let tag = format!("`{}`", advised.name());
                let false_positives: Vec<String> = advice
                    .report
                    .diagnostics
                    .iter()
                    .filter(|d| d.code().starts_with("SAN-P") && d.message.contains(&tag))
                    .map(|d| d.code().to_string())
                    .collect();

                cells.push(Cell {
                    workload: entry.name,
                    size,
                    device: device.name,
                    advised,
                    measured_winner: winner,
                    miss_ratio: advised_t as f64 / winner_t.max(1) as f64,
                    false_positives,
                });
            }
        }
    }
    cells
}

#[test]
fn advisor_matches_simulator_on_registry_sweep() {
    let cells = sweep();
    assert!(!cells.is_empty());

    let misses: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.advised != c.measured_winner)
        .collect();
    let agreement = 1.0 - misses.len() as f64 / cells.len() as f64;

    let mut detail = String::new();
    for c in &misses {
        detail.push_str(&format!(
            "  {} {} on {}: advised {}, measured winner {} (x{:.4})\n",
            c.workload,
            c.size,
            c.device,
            c.advised.name(),
            c.measured_winner.name(),
            c.miss_ratio,
        ));
    }
    println!(
        "advisor agreement: {}/{} cells ({:.1}%)\n{}",
        cells.len() - misses.len(),
        cells.len(),
        agreement * 100.0,
        detail
    );

    assert!(
        agreement >= MIN_AGREEMENT,
        "advisor agreed on only {:.1}% of {} cells (need ≥ {:.0}%):\n{}",
        agreement * 100.0,
        cells.len(),
        MIN_AGREEMENT * 100.0,
        detail
    );

    for c in &misses {
        assert!(
            c.miss_ratio <= MISS_RATIO,
            "{} {} on {}: advised {} measures x{:.4} of winner {} (cap {MISS_RATIO})",
            c.workload,
            c.size,
            c.device,
            c.advised.name(),
            c.miss_ratio,
            c.measured_winner.name(),
        );
    }
}

#[test]
fn no_false_positive_lints_on_winning_cells() {
    for c in sweep() {
        if c.advised == c.measured_winner {
            assert!(
                c.false_positives.is_empty(),
                "{} {} on {}: advisor picked the measured winner {} yet lints it: {:?}",
                c.workload,
                c.size,
                c.device,
                c.advised.name(),
                c.false_positives,
            );
        }
    }
}
