//! Streaming observability gates: the chunked exporters must produce
//! byte-identical output to the buffered ones, at every thread count and
//! at every chunk boundary; a sink-attached recorder must never drop an
//! event however small its ring; and the labeled metric dimensions must
//! answer per-mode and per-stream queries from a real five-mode sweep.
//!
//! Byte identity is the contract that makes `--trace-stream` a pure
//! memory knob: the buffered exporters *are* single-chunk streams through
//! the same writers, so any divergence here means a writer peeked at a
//! chunk boundary.

use hetsim::experiment::Experiment;
use hetsim::pool;
use hetsim_trace::{ChromeSink, Dim, JsonlSink, MetricsRegistry, SharedBuffer, Trace, TraceConfig};
use hetsim_workloads::{micro, InputSize};

fn exp() -> Experiment {
    Experiment::new().with_runs(2)
}

/// One five-mode traced sweep, buffered, at the given thread count.
fn buffered_sweep(threads: usize) -> Trace {
    pool::with_threads(threads, || {
        let (_, trace) = exp().traced_modes(&micro::vector_seq(InputSize::Tiny));
        trace
    })
}

/// The same sweep streamed through a sink during the merge, returning
/// `(finished_trace, streamed_bytes)`. The capacity applies to the
/// per-mode sessions too, so it must stay above any single mode's event
/// count (~40 at Tiny) while the five-mode merge (~170 events) overflows
/// it and chunks mid-run.
fn streamed_sweep(threads: usize, capacity: usize, chrome: bool) -> (Trace, String) {
    pool::with_threads(threads, || {
        let buf = SharedBuffer::new();
        let sink: Box<dyn hetsim_trace::TraceSink> = if chrome {
            Box::new(ChromeSink::new(buf.clone()))
        } else {
            Box::new(JsonlSink::new(buf.clone()))
        };
        let e = exp().with_trace(TraceConfig::default().with_capacity(capacity));
        let (_, trace) = e.traced_modes_streaming(&micro::vector_seq(InputSize::Tiny), sink);
        (trace, buf.into_string())
    })
}

#[test]
fn streamed_jsonl_is_byte_identical_to_buffered_export() {
    let buffered = buffered_sweep(1).to_jsonl();
    // A merge ring smaller than the sweep forces chunk boundaries mid-run.
    let (trace, streamed) = streamed_sweep(1, 64, false);
    assert_eq!(trace.dropped(), 0, "a sink-attached ring never drops");
    assert_eq!(streamed, buffered, "chunking must not leak into the bytes");
}

#[test]
fn streamed_chrome_is_byte_identical_to_buffered_export() {
    let buffered = buffered_sweep(1).to_chrome_json();
    let (trace, streamed) = streamed_sweep(1, 64, true);
    assert_eq!(trace.dropped(), 0);
    assert_eq!(streamed, buffered);
}

#[test]
fn streamed_export_is_thread_count_invariant() {
    // threads=1 vs threads=4, chunked vs buffered, one equality web:
    // every corner must produce the same bytes.
    let buffered_serial = buffered_sweep(1).to_chrome_json();
    let buffered_parallel = buffered_sweep(4).to_chrome_json();
    assert_eq!(buffered_serial, buffered_parallel);
    let (_, streamed_serial) = streamed_sweep(1, 64, true);
    let (_, streamed_parallel) = streamed_sweep(4, 64, true);
    assert_eq!(streamed_serial, streamed_parallel);
    assert_eq!(streamed_serial, buffered_serial);
}

#[test]
fn ring_smaller_than_event_count_streams_without_drops() {
    let full = buffered_sweep(1);
    let events = full.total_events();
    assert!(events > 64, "sweep must outgrow the ring for this gate");
    let (trace, _) = streamed_sweep(1, 64, false);
    assert_eq!(
        trace.dropped(),
        0,
        "capacity < total event count, zero drops"
    );
    assert_eq!(trace.streamed(), events, "every event reached the sink");
    assert!(trace.stream_error().is_none());
}

#[test]
fn streamed_summary_agrees_with_buffered_trace() {
    let buffered = buffered_sweep(1);
    let (trace, streamed) = streamed_sweep(1, 64, false);
    assert_eq!(trace.total_events(), buffered.total_events());
    let summary = streamed.lines().last().expect("summary line");
    assert!(summary.contains(&format!("\"events\":{}", buffered.total_events())));
    assert!(summary.contains("\"dropped\":0"));
}

#[test]
fn labeled_metrics_answer_per_mode_and_per_stream_queries() {
    let trace = buffered_sweep(1);
    let metrics = MetricsRegistry::from_trace(&trace);

    // Per-mode: fault counters exist only under the UVM modes, and the
    // uvm slice is non-empty while standard has no faults at all.
    let modes = metrics.label_values("uvm.page_faults", Dim::Mode);
    assert!(
        modes.contains(&"uvm"),
        "per-mode query must surface the uvm slice, got {modes:?}"
    );
    assert!(
        !metrics
            .series_where("uvm.page_faults", &[(Dim::Mode, "uvm")])
            .is_empty(),
        "uvm mode recorded page faults"
    );
    assert!(
        metrics
            .series_where("uvm.page_faults", &[(Dim::Mode, "standard")])
            .is_empty(),
        "standard mode takes no page faults"
    );
    let by_mode = metrics.group_by("uvm.page_faults", Dim::Mode);
    assert!(by_mode.contains_key("uvm"));

    // Per-stream: every traced event carries the stream label set by the
    // runtime phases; the h2d slice must be distinct from d2h.
    let mut streams: Vec<String> = Vec::new();
    for ev in trace.events() {
        if let Some(s) = trace.label(ev, Dim::Stream) {
            if !streams.iter().any(|x| x == s) {
                streams.push(s.to_string());
            }
        }
    }
    for expected in ["h2d", "d2h", "compute"] {
        assert!(
            streams.iter().any(|s| s == expected),
            "stream label `{expected}` missing from sweep, got {streams:?}"
        );
    }
}

#[test]
fn labeled_queries_are_thread_count_invariant() {
    let (serial, parallel) = (
        MetricsRegistry::from_trace(&buffered_sweep(1)).to_labeled_csv(),
        MetricsRegistry::from_trace(&buffered_sweep(4)).to_labeled_csv(),
    );
    assert_eq!(serial, parallel, "labels are functions of the work item");
}

#[test]
fn per_mode_slices_carry_the_job_dimension() {
    // traced_modes fans the five modes over the pool; each per-mode run
    // is job slot 0..5, stamped identically at any thread count.
    let trace = buffered_sweep(4);
    let mut jobs: Vec<String> = Vec::new();
    for ev in trace.events() {
        if let Some(j) = trace.label(ev, Dim::Job) {
            if !jobs.iter().any(|x| x == j) {
                jobs.push(j.to_string());
            }
        }
    }
    jobs.sort();
    assert_eq!(jobs, vec!["0", "1", "2", "3", "4"]);
}

#[test]
fn zero_event_run_streams_a_valid_empty_export() {
    let buf = SharedBuffer::new();
    let b = hetsim_trace::TraceBuilder::new(TraceConfig::default().with_capacity(4))
        .with_sink(Box::new(JsonlSink::new(buf.clone())));
    let trace = b.finish();
    assert_eq!(trace.total_events(), 0);
    assert_eq!(
        buf.into_string(),
        "{\"type\":\"summary\",\"events\":0,\"dropped\":0,\"end_cursor\":0}\n"
    );
}

#[test]
fn explicit_flush_boundary_does_not_change_the_bytes() {
    let record = |flush_every: Option<usize>| {
        let buf = SharedBuffer::new();
        let mut b = hetsim_trace::TraceBuilder::new(TraceConfig::default())
            .with_sink(Box::new(JsonlSink::new(buf.clone())));
        let t = b.track("gpu");
        for i in 0..10u64 {
            b.span_at(
                t,
                hetsim_trace::Category::Kernel,
                format!("k{i}"),
                i * 10,
                5,
            );
            if let Some(n) = flush_every {
                if (i as usize + 1).is_multiple_of(n) {
                    b.flush();
                }
            }
        }
        b.finish();
        buf.into_string()
    };
    let unflushed = record(None);
    assert_eq!(record(Some(1)), unflushed, "flush after every event");
    assert_eq!(record(Some(3)), unflushed, "flush at an odd stride");
}
