//! Structural and qualitative checks on every figure producer: the data
//! has the right dimensions and the paper's takeaway is visible in it.

use hetsim::experiment::Experiment;
use hetsim::figures;
use hetsim::prelude::*;
use hetsim_runtime::report::Component;

fn exp() -> Experiment {
    Experiment::new().with_runs(6)
}

/// Fig 4/5 (Takeaway 1): stability improves up to Large/Super, then Mega
/// degrades again because the footprint presses on a DRAM chip.
///
/// Uses the `standard` mode distributions directly (rather than the full
/// five-mode Fig 4 grid) to keep the debug-build cost down; the CV shape
/// is mode-independent.
#[test]
fn stability_u_shape_across_sizes() {
    let exp = Experiment::new().with_runs(12);
    let cv = |size: InputSize| -> f64 {
        let names = ["vector_seq", "saxpy", "gemv"];
        let cvs: Vec<f64> = names
            .iter()
            .map(|n| {
                let w = hetsim_workloads::suite::by_name(n, size).unwrap();
                let d = exp.distribution(&w, TransferMode::Standard);
                let totals: Vec<Nanos> = d.iter().map(|r| r.total()).collect();
                hetsim::engine::stats::Summary::from_nanos(&totals).cv()
            })
            .collect();
        cvs.iter().sum::<f64>() / cvs.len() as f64
    };
    let small = cv(InputSize::Small);
    let large = cv(InputSize::Large);
    let mega = cv(InputSize::Mega);
    assert!(
        large < small,
        "larger inputs amortize noise: cv(large)={large:.4} !< cv(small)={small:.4}"
    );
    assert!(
        mega > large,
        "Mega must be less stable than Large: cv(mega)={mega:.4} !> cv(large)={large:.4}"
    );
}

/// Fig 6: at Mega, the memcpy component is the unstable one.
#[test]
fn mega_noise_comes_from_memcpy() {
    let mb = figures::fig6(&Experiment::new().with_runs(20));
    let memcpy_cv = mb.component_cv(|r| r.memcpy);
    let alloc_cv = mb.component_cv(|r| r.alloc);
    let kernel_cv = mb.component_cv(|r| r.kernel);
    assert!(
        memcpy_cv > 2.0 * alloc_cv,
        "memcpy cv {memcpy_cv:.3} should dwarf alloc cv {alloc_cv:.3}"
    );
    assert!(
        memcpy_cv > 2.0 * kernel_cv,
        "memcpy cv {memcpy_cv:.3} should dwarf kernel cv {kernel_cv:.3}"
    );
    assert_eq!(mb.runs().len(), 20);
    assert_eq!(mb.to_table().len(), 20);
}

/// Fig 9 (Takeaway 3): async inflates control instructions by roughly the
/// 30-40% the paper measures on gemm/yolov3.
#[test]
fn async_control_inflation_in_range() {
    let counters = figures::fig9_fig10(&exp(), InputSize::Small);
    for w in ["gemm", "yolov3"] {
        let std = counters.row(w, TransferMode::Standard).unwrap();
        let asy = counters.row(w, TransferMode::Async).unwrap();
        let inflation = asy.control as f64 / std.control as f64 - 1.0;
        assert!(
            (0.1..0.9).contains(&inflation),
            "{w}: control inflation {:.1}% (paper 30-40%)",
            inflation * 100.0
        );
        // UVM modes leave the mix alone.
        let uvm = counters.row(w, TransferMode::Uvm).unwrap();
        assert_eq!(uvm.control, std.control, "{w}: uvm must not change the mix");
    }
}

/// Fig 10 (Takeaway 3): staging slashes lud's L1 miss rates.
#[test]
fn lud_miss_rates_drop_with_async() {
    // Large inputs: lud's cross-tile store reuse needs multiple tiles per
    // block to be visible.
    let counters = figures::fig9_fig10(&exp(), InputSize::Large);
    let std = counters.row("lud", TransferMode::Standard).unwrap();
    let asy = counters.row("lud", TransferMode::Async).unwrap();
    assert!(
        std.load_miss_rate > 0.5,
        "lud standard thrashes the L1: {:.3}",
        std.load_miss_rate
    );
    assert!(
        asy.load_miss_rate < std.load_miss_rate,
        "async must reduce lud load misses"
    );
    assert!(
        asy.store_miss_rate < std.store_miss_rate,
        "async must reduce lud store misses: {:.3} !< {:.3}",
        asy.store_miss_rate,
        std.store_miss_rate
    );
}

/// Fig 11 (Takeaway 4a): block count barely matters.
#[test]
fn block_sweep_is_flat() {
    let sweep = figures::fig11(&exp(), InputSize::Medium);
    for mode in TransferMode::ALL {
        for &(blocks, _) in sweep.points() {
            let n = sweep.normalized(blocks, mode);
            let reference = sweep.normalized(4096, mode);
            assert!(
                (n / reference - 1.0).abs() < 0.10,
                "{mode} at {blocks} blocks: {n:.3} deviates from {reference:.3}"
            );
        }
    }
}

/// Fig 12 (Takeaway 4b): few threads per block expose latency; async
/// copes far better.
#[test]
fn thread_sweep_kernel_sensitivity() {
    let sweep = figures::fig12(&exp(), InputSize::Medium);
    let kernel = |threads: u64, mode: TransferMode| {
        sweep
            .points()
            .iter()
            .find(|(t, _)| *t == threads)
            .unwrap()
            .1
            .mean(mode)
            .component(Component::Kernel)
            .as_nanos() as f64
    };
    let std_ratio = kernel(32, TransferMode::Standard) / kernel(128, TransferMode::Standard);
    let async_ratio = kernel(32, TransferMode::Async) / kernel(128, TransferMode::Async);
    assert!(
        std_ratio > 1.8,
        "standard kernel must degrade sharply at 32 threads: {std_ratio:.2}x (paper 3.95x)"
    );
    assert!(
        async_ratio < std_ratio,
        "async ({async_ratio:.2}x) must tolerate few threads better than standard ({std_ratio:.2}x)"
    );
}

/// Fig 13 (Takeaway 5): tiny shared memory hurts the async pipeline; tiny
/// L1 hurts the UVM-prefetch modes.
#[test]
fn carveout_sweep_shapes() {
    let sweep = figures::fig13(&exp(), InputSize::Medium);
    let kernel = |kib: u64, mode: TransferMode| {
        sweep
            .points()
            .iter()
            .find(|(k, _)| *k == kib)
            .unwrap()
            .1
            .mean(mode)
            .component(Component::Kernel)
            .as_nanos() as f64
    };
    // 2 KB shared: per-thread buffers too shallow for the async pipeline.
    assert!(
        kernel(2, TransferMode::UvmPrefetchAsync) > kernel(32, TransferMode::UvmPrefetchAsync),
        "tiny shared memory must hurt the async pipeline"
    );
    // 128 KB shared leaves 64 KB of L1: the prefetch-warm benefit shrinks.
    assert!(
        kernel(128, TransferMode::UvmPrefetch) > kernel(32, TransferMode::UvmPrefetch),
        "tiny L1 must hurt uvm_prefetch"
    );
}
