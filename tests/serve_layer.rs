//! Serving-layer invariants: the fleet's reports and traces must be
//! byte-identical at any worker-thread count, for every shipped policy.
//!
//! This extends the thread-invariance contract of
//! `parallel_determinism.rs` to the open-loop serving path: arrival
//! generation is a pure function of its seed, placement is one serial
//! pass in arrival order, and the only parallelism (cost-model prewarm
//! and sweep-cell fan-out) assembles results in index order.

use hetsim::pool;
use hetsim_serve::{
    ArrivalMix, ArrivalPlan, Fleet, PolicyKind, ServeConfig, ServeReport, ServeSweep,
};
use hetsim_trace::TraceConfig;
use hetsim_workloads::InputSize;

/// Runs `f` under both thread counts and returns the two results.
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let serial = pool::with_threads(1, &f);
    let parallel = pool::with_threads(4, &f);
    (serial, parallel)
}

fn config(policy: PolicyKind) -> ServeConfig {
    ServeConfig {
        policy,
        mix: ArrivalMix::by_name("bursty", 300.0).unwrap(),
        seed: 17,
        requests: 120,
    }
}

#[test]
fn arrival_plans_are_thread_count_invariant() {
    let (serial, parallel) = both(|| {
        let mix = ArrivalMix::by_name("diurnal", 250.0).unwrap();
        let plan =
            ArrivalPlan::generate(mix, 9, 200, &ArrivalPlan::full_catalog(), InputSize::Tiny);
        plan.requests
            .iter()
            .map(|r| format!("{}:{}:{}", r.id, r.arrival.as_nanos(), r.workload))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        serial, parallel,
        "arrival sequence must not depend on threads"
    );
}

#[test]
fn serve_reports_are_thread_count_invariant_for_every_policy() {
    for policy in PolicyKind::ALL {
        let (serial, parallel) = both(|| {
            let fleet = Fleet::nvlink(4, InputSize::Tiny);
            let outcome = fleet.serve(&config(policy));
            ServeReport {
                cells: vec![outcome.report],
            }
            .to_json()
        });
        assert_eq!(
            serial,
            parallel,
            "{} report JSON must be byte-identical",
            policy.name()
        );
    }
}

#[test]
fn serve_traces_are_thread_count_invariant_for_every_policy() {
    for policy in PolicyKind::ALL {
        let (serial, parallel) = both(|| {
            let fleet = Fleet::nvlink(4, InputSize::Tiny);
            let outcome = fleet.serve(&config(policy));
            let cap = outcome.trace_events().max(1);
            let trace = outcome.trace(TraceConfig::default().with_capacity(cap));
            assert_eq!(trace.dropped(), 0, "trace capacity must cover the run");
            trace.to_jsonl()
        });
        assert_eq!(
            serial,
            parallel,
            "{} trace must be byte-identical",
            policy.name()
        );
    }
}

#[test]
fn sweep_grids_are_thread_count_invariant() {
    let (serial, parallel) = both(|| {
        let fleet = Fleet::nvlink(2, InputSize::Tiny);
        let sweep = ServeSweep {
            policies: PolicyKind::ALL.to_vec(),
            rates: vec![50.0, 800.0],
            mix: "poisson".into(),
            seed: 5,
            requests: 80,
        };
        sweep.run(&fleet).to_json()
    });
    assert_eq!(serial, parallel, "sweep JSON must be byte-identical");
}

#[test]
fn fresh_fleets_reproduce_the_same_outcome() {
    // Determinism must hold across Fleet instances, not just across
    // thread counts: nothing may leak from the prewarm memo's fill order.
    let run = || {
        let fleet = Fleet::nvlink(2, InputSize::Tiny);
        let outcome = fleet.serve(&config(PolicyKind::ChaosFailover));
        ServeReport {
            cells: vec![outcome.report],
        }
        .to_json()
    };
    assert_eq!(run(), run());
}
