//! Thread-count invariance: every table, report, and trace export the
//! suite publishes must be byte-identical whether the grids run serially
//! (`threads = 1`) or on the parallel executor (`threads = 4`).
//!
//! This is the contract that lets `--threads N` be a pure wall-clock
//! knob: the pool assembles results by index, per-worker trace sessions
//! merge in mode order at end-cursor offsets, and nothing about
//! scheduling can leak into the output.

use hetsim::experiment::Experiment;
use hetsim::figures;
use hetsim::pool;
use hetsim_trace::Category;
use hetsim_workloads::{suite, InputSize};

fn exp() -> Experiment {
    Experiment::new().with_runs(3)
}

/// Runs `f` under both thread counts and returns the two results.
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let serial = pool::with_threads(1, &f);
    let parallel = pool::with_threads(4, &f);
    (serial, parallel)
}

#[test]
fn fig7_grid_is_thread_count_invariant() {
    let (serial, parallel) = both(|| {
        figures::fig7(&exp(), InputSize::Tiny)
            .to_table()
            .to_string()
    });
    assert_eq!(serial, parallel, "Fig 7 table must be byte-identical");
}

#[test]
fn fig8_grid_is_thread_count_invariant() {
    let (serial, parallel) = both(|| {
        figures::fig8_at(&exp(), InputSize::Tiny)
            .to_table()
            .to_csv()
    });
    assert_eq!(serial, parallel, "Fig 8 CSV must be byte-identical");
}

#[test]
fn fig4_distribution_grid_is_thread_count_invariant() {
    let (serial, parallel) = both(|| {
        figures::fig4(&exp(), &[InputSize::Tiny])
            .to_table()
            .to_string()
    });
    assert_eq!(serial, parallel);
}

#[test]
fn sensitivity_sweeps_are_thread_count_invariant() {
    let (serial, parallel) = both(|| {
        let e = exp();
        let mut out = figures::fig11(&e, InputSize::Tiny).to_table().to_string();
        out.push_str(&figures::fig12(&e, InputSize::Tiny).to_table().to_string());
        out.push_str(&figures::fig13(&e, InputSize::Tiny).to_table().to_string());
        out
    });
    assert_eq!(serial, parallel, "Figs 11-13 tables must be byte-identical");
}

#[test]
fn irregular_trio_tables_and_reports_are_thread_count_invariant() {
    let (serial, parallel) = both(|| {
        let e = exp();
        let s = figures::irregular(&e, InputSize::Tiny);
        let table = s.to_table().to_string();
        // The raw per-mode mean reports, not just their rendering.
        let reports: Vec<_> = s
            .comparisons()
            .iter()
            .flat_map(|c| {
                hetsim_runtime::TransferMode::ALL
                    .iter()
                    .map(|&m| c.mean(m).clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        (table, reports)
    });
    assert_eq!(serial.0, parallel.0, "irregular table");
    assert_eq!(serial.1, parallel.1, "irregular mean reports");
}

#[test]
fn traced_modes_exports_are_thread_count_invariant() {
    let w = suite::by_name("bfs", InputSize::Tiny).expect("bfs exists");
    let (serial, parallel) = both(|| {
        let (reports, trace) = exp().traced_modes(&w);
        (
            reports,
            trace.to_chrome_json(),
            trace.to_csv(),
            [
                trace.category_total(Category::Alloc),
                trace.category_total(Category::Memcpy),
                trace.category_total(Category::Kernel),
            ],
        )
    });
    assert_eq!(serial.0, parallel.0, "per-mode reports");
    assert_eq!(serial.1, parallel.1, "Chrome JSON export");
    assert_eq!(serial.2, parallel.2, "CSV export");
    assert_eq!(serial.3, parallel.3, "category totals");
}

#[test]
fn traced_modes_metrics_registry_is_thread_count_invariant() {
    let w = suite::by_name("kmeans", InputSize::Tiny).expect("kmeans exists");
    let (serial, parallel) = both(|| {
        let (_, trace) = exp().traced_modes(&w);
        hetsim_trace::MetricsRegistry::from_trace(&trace).to_csv()
    });
    assert_eq!(serial, parallel, "metrics registry rendering");
}
