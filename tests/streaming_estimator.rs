//! The streaming-percentile contract: once a serving cell outgrows the
//! exact buffer ([`LatencyAccumulator::EXACT_LIMIT`]), the fixed-memory
//! histogram takes over, and its p50/p99/p999 must stay within the
//! documented relative error bound of the exact sorted-sample oracle —
//! across every arrival mix and seed — while count, mean, and max stay
//! exact and the report bytes stay identical at any thread count.

use hetsim::pool;
use hetsim_serve::{
    ArrivalMix, Fleet, LatencyAccumulator, PolicyKind, ServeConfig, ServeReport, StreamingHistogram,
};
use hetsim_serve::{LatencyStats, PolicyReport};
use hetsim_workloads::InputSize;

/// Enough offered requests that every mix completes well past the exact
/// buffer and the histogram path is exercised for real.
const REQUESTS: u64 = 12_000;

fn config(mix_name: &str, seed: u64) -> ServeConfig {
    ServeConfig {
        policy: PolicyKind::ALL[0],
        mix: ArrivalMix::by_name(mix_name, 400.0).unwrap(),
        seed,
        requests: REQUESTS,
    }
}

/// |estimate - exact| must be within the histogram's relative error
/// bound of the exact value (plus 1 ns of integer rounding slack).
fn assert_within_bound(what: &str, estimate: u64, exact: u64) {
    let slack = (exact as f64 * StreamingHistogram::RELATIVE_ERROR_BOUND).ceil() as u64 + 1;
    let err = estimate.abs_diff(exact);
    assert!(
        err <= slack,
        "{what}: estimate {estimate} vs exact {exact} — off by {err}, bound {slack}"
    );
}

fn check_cell(fleet: &Fleet, mix_name: &str, seed: u64) -> PolicyReport {
    let outcome = fleet.serve(&config(mix_name, seed));
    let report = outcome.report.clone();
    let stats = report.latency;

    assert!(
        outcome.completed.len() > LatencyAccumulator::EXACT_LIMIT,
        "{mix_name}/{seed}: needs {} completions to stream, got {}",
        LatencyAccumulator::EXACT_LIMIT,
        outcome.completed.len()
    );

    // The exact oracle, recomputed from the raw schedule.
    let samples: Vec<_> = outcome.completed.iter().map(|c| c.latency()).collect();
    let exact = LatencyStats::from_samples(&samples);

    // Count, mean, and max never leave the exact path.
    assert_eq!(stats.count, exact.count, "{mix_name}/{seed}: count");
    assert_eq!(stats.mean, exact.mean, "{mix_name}/{seed}: mean");
    assert_eq!(stats.max, exact.max, "{mix_name}/{seed}: max");

    // The quantiles may move, but only within the documented bound.
    for (what, est, ex) in [
        ("p50", stats.p50, exact.p50),
        ("p99", stats.p99, exact.p99),
        ("p999", stats.p999, exact.p999),
    ] {
        assert_within_bound(
            &format!("{mix_name}/{seed}/{what}"),
            est.as_nanos(),
            ex.as_nanos(),
        );
    }
    report
}

#[test]
fn streaming_percentiles_track_the_exact_oracle_across_mixes_and_seeds() {
    let fleet = Fleet::nvlink(4, InputSize::Tiny);
    for mix_name in ArrivalMix::NAMES {
        for seed in [7, 42] {
            check_cell(&fleet, mix_name, seed);
        }
    }
}

#[test]
fn exact_regime_holds_through_the_spill_boundary_under_a_fleet_run() {
    // A cell that completes *exactly* EXACT_LIMIT requests must stay in
    // the exact regime: the report's percentiles are the sorted-sample
    // oracle's, bit for bit, with no histogram error introduced one
    // sample early.
    let fleet = Fleet::nvlink(4, InputSize::Tiny);
    let outcome = fleet.serve(&config("poisson", 42));
    assert_eq!(outcome.report.offered, REQUESTS as usize);

    let fleet_exact = Fleet::nvlink(4, InputSize::Tiny);
    let cfg = ServeConfig {
        requests: LatencyAccumulator::EXACT_LIMIT as u64,
        ..config("poisson", 42)
    };
    let out = fleet_exact.serve(&cfg);
    assert_eq!(
        out.report.completed,
        LatencyAccumulator::EXACT_LIMIT,
        "boundary cell must complete its entire offered load"
    );
    let samples: Vec<_> = out.completed.iter().map(|c| c.latency()).collect();
    let oracle = LatencyStats::from_samples(&samples);
    assert_eq!(
        out.report.latency, oracle,
        "at exactly EXACT_LIMIT samples the report must be the oracle"
    );

    // The accumulator itself: the 8192nd sample does not spill; the
    // 8193rd does, and count/mean/max survive the handoff exactly.
    let mut acc = LatencyAccumulator::new();
    for &s in &samples {
        acc.observe(s);
    }
    assert!(!acc.is_streaming(), "EXACT_LIMIT samples must stay exact");
    assert_eq!(acc.finalize(), oracle);
    acc.observe(oracle.max);
    assert!(acc.is_streaming(), "one more sample must trigger the spill");
    let spilled = acc.finalize();
    assert_eq!(spilled.count, LatencyAccumulator::EXACT_LIMIT + 1);
    assert_eq!(spilled.max, oracle.max);
}

#[test]
fn one_request_past_the_boundary_streams_within_the_bound() {
    let fleet = Fleet::nvlink(4, InputSize::Tiny);
    let cfg = ServeConfig {
        requests: LatencyAccumulator::EXACT_LIMIT as u64 + 1,
        ..config("poisson", 42)
    };
    let out = fleet.serve(&cfg);
    assert_eq!(out.report.completed, LatencyAccumulator::EXACT_LIMIT + 1);

    let samples: Vec<_> = out.completed.iter().map(|c| c.latency()).collect();
    let oracle = LatencyStats::from_samples(&samples);
    let stats = out.report.latency;
    assert_eq!(stats.count, oracle.count, "count stays exact past spill");
    assert_eq!(stats.mean, oracle.mean, "mean stays exact past spill");
    assert_eq!(stats.max, oracle.max, "max stays exact past spill");
    for (what, est, ex) in [
        ("p50", stats.p50, oracle.p50),
        ("p99", stats.p99, oracle.p99),
        ("p999", stats.p999, oracle.p999),
    ] {
        assert_within_bound(&format!("boundary+1/{what}"), est.as_nanos(), ex.as_nanos());
    }
}

#[test]
fn streaming_reports_are_byte_identical_across_thread_counts() {
    let render = || {
        let fleet = Fleet::nvlink(4, InputSize::Tiny);
        let outcome = fleet.serve(&config("bursty", 11));
        assert!(outcome.completed.len() > LatencyAccumulator::EXACT_LIMIT);
        ServeReport {
            cells: vec![outcome.report],
        }
        .to_json()
    };
    let serial = pool::with_threads(1, render);
    let parallel = pool::with_threads(4, render);
    assert_eq!(
        serial, parallel,
        "streaming-path serve report must not depend on thread count"
    );
}
