//! Every registered workload must be sanitizer-clean at `--deny warnings`.
//!
//! This is the repo-level contract behind the `hetsim check --all --deny
//! warnings` CI gate: the shipped registry (micro + apps + irregular) may
//! never regress into a spec the static checker objects to, at any input
//! size — lints like divided-to-zero store counts (SAN-B003) or
//! never-written outputs (SAN-T005) fire at the small sizes sweeps use for
//! smoke runs, which is exactly where silent spec damage hides.

use hetsim::verify;
use hetsim_workloads::{suite, InputSize};

#[test]
fn every_workload_is_clean_at_deny_warnings() {
    for size in [InputSize::Tiny, InputSize::Medium, InputSize::Large] {
        for entry in suite::all_entries() {
            let w = (entry.build)(size);
            let report = verify::check_program(&w);
            assert!(
                report.is_clean(true),
                "workload `{}` at {size} is not sanitizer-clean:\n{}",
                entry.name,
                report.to_text()
            );
        }
    }
}

#[test]
fn registry_sweep_matches_per_workload_checks() {
    // The merged registry report the CLI renders must agree with the
    // per-workload loop above: clean, and covering all 22 entries.
    let report = verify::check_registry(InputSize::Tiny);
    assert!(report.is_clean(true), "{}", report.to_text());
    assert_eq!(suite::all_entries().len(), 22);
    verify::enforce(&report, true).expect("enforce passes on a clean registry");
}
