//! End-to-end tests of the observability layer (`hetsim-trace`): phase
//! additivity against run reports, export determinism, and the invariant
//! that tracing never perturbs simulation results.

use hetsim::experiment::Experiment;
use hetsim_runtime::{GpuProgram, TransferMode};
use hetsim_trace::{Category, MetricsRegistry, TraceConfig};
use hetsim_workloads::{micro, suite, InputSize};

/// The central accounting contract: the runtime emits exactly one phase
/// span per accounted interval, so per-category span sums reproduce the
/// report's breakdown to the nanosecond — in every transfer mode.
#[test]
fn phase_spans_sum_to_report_components_in_every_mode() {
    let w = micro::vector_seq(InputSize::Small);
    let e = Experiment::new();
    for mode in TransferMode::ALL {
        let (report, trace) = e.traced_run(&w, mode);
        assert_eq!(
            trace.category_total(Category::Alloc),
            report.alloc.as_nanos(),
            "{}: alloc spans must sum to the alloc component",
            mode.name()
        );
        assert_eq!(
            trace.category_total(Category::Memcpy),
            report.memcpy.as_nanos(),
            "{}: memcpy spans must sum to the memcpy component",
            mode.name()
        );
        assert_eq!(
            trace.category_total(Category::Kernel),
            report.kernel.as_nanos(),
            "{}: kernel spans must sum to the kernel component",
            mode.name()
        );
        assert_eq!(
            trace.category_total(Category::Engine),
            report.system.as_nanos(),
            "{}: the system overhead span must match the system component",
            mode.name()
        );
    }
}

/// Same seed, same workload, same mode ⇒ byte-identical exports (with
/// self-profiling off, the default).
#[test]
fn exports_are_byte_identical_across_runs() {
    let w = suite::by_name("lud", InputSize::Small).unwrap();
    let e = Experiment::new();
    let (r1, t1) = e.traced_run(&w, TransferMode::Uvm);
    let (r2, t2) = e.traced_run(&w, TransferMode::Uvm);
    assert_eq!(r1, r2, "base runs are deterministic");
    assert_eq!(t1.to_chrome_json(), t2.to_chrome_json(), "chrome export");
    assert_eq!(t1.to_csv(), t2.to_csv(), "csv export");
    assert_eq!(t1.to_text(), t2.to_text(), "text export");
}

/// Recording a trace must not change what is simulated: the traced report
/// equals the untraced one, and the session is closed afterwards.
#[test]
fn tracing_does_not_change_results() {
    let w = micro::saxpy(InputSize::Small);
    let e = Experiment::new();
    let plain = e.runner().run_base(&w, TransferMode::UvmPrefetch);
    let (traced, trace) = e.traced_run(&w, TransferMode::UvmPrefetch);
    assert_eq!(plain, traced, "tracing must be a pure observer");
    assert!(!trace.is_empty(), "the observer still saw the run");
    assert!(
        !hetsim_trace::session::enabled(),
        "traced_run leaves no session behind"
    );
}

/// The irregular trio's touch sequences are deterministic at every layer:
/// the model yields the same page-touch list on every call, the run report
/// (fault counters included) is identical across repeated base runs, and
/// observing the run through the trace layer changes nothing — the same
/// observer-invariance contract as [`tracing_does_not_change_results`],
/// extended to the sequence-driven fault-batcher path.
#[test]
fn irregular_fault_sequences_are_deterministic_and_observer_invariant() {
    let e = Experiment::new();
    for name in hetsim_workloads::IRREGULAR_TRIO {
        let w = suite::by_name(name, InputSize::Small).unwrap();
        let model = w.touch_model().expect("trio workloads carry models");

        // The raw touch sequence is byte-identical across calls.
        let chunk = 2 << 20;
        let a = model.touches(name, 0, 0, chunk, &w.buffers());
        let b = model.touches(name, 0, 0, chunk, &w.buffers());
        assert_eq!(a, b, "{name}: touch sequence must be reproducible");
        assert!(
            a.expect("first invocation is modelled").len() > 1,
            "{name}: a modelled invocation touches pages"
        );

        // The full run — fault batching, migration, counters — replays
        // identically, and tracing is a pure observer over it.
        let r1 = e.runner().run_base(&w, TransferMode::Uvm);
        let r2 = e.runner().run_base(&w, TransferMode::Uvm);
        assert_eq!(r1, r2, "{name}: uvm base run must be deterministic");
        let (traced, trace) = e.traced_run(&w, TransferMode::Uvm);
        assert_eq!(r1, traced, "{name}: tracing must not perturb the run");
        assert!(
            trace.category_total(Category::Memcpy) == traced.memcpy.as_nanos(),
            "{name}: migration spans must sum to the memcpy component"
        );
    }
}

/// UVM runs surface their counters, and the metrics registry can group
/// and resample them.
#[test]
fn uvm_counters_feed_the_metrics_registry() {
    let w = micro::vector_seq(InputSize::Small);
    let (_, trace) = Experiment::new().traced_run(&w, TransferMode::Uvm);
    let names = trace.counter_names();
    assert!(names.contains(&"uvm.page_faults"), "counters: {names:?}");
    assert!(names.contains(&"dma.op_bytes"), "counters: {names:?}");

    let reg = MetricsRegistry::from_trace(&trace);
    let faults = reg.series("uvm.page_faults");
    assert!(!faults.is_empty());
    assert!(reg.peak("uvm.page_faults").unwrap() > 0.0);
    // Zero-order-hold resampling covers the whole horizon.
    let grid = reg.sampled("uvm.page_faults", 1_000_000, trace.horizon());
    assert!(grid.len() >= 2);
    assert_eq!(grid.first().unwrap().0, 0);
    assert!(grid.last().unwrap().0 >= trace.horizon());
}

/// The configurable counter interval decimates high-frequency counters
/// without touching spans (the accounting stays exact).
#[test]
fn counter_interval_decimates_without_touching_spans() {
    let w = micro::vector_seq(InputSize::Small);
    let (report, full) = Experiment::new().traced_run(&w, TransferMode::Uvm);
    let (_, dec) = Experiment::new()
        .with_trace(TraceConfig::default().with_counter_interval(1 << 40))
        .traced_run(&w, TransferMode::Uvm);
    let f = full.counter_series("dma.op_bytes").len();
    let d = dec.counter_series("dma.op_bytes").len();
    assert!(f > 1, "need several samples for decimation to matter");
    assert!(
        d < f,
        "huge interval keeps only the first sample per counter"
    );
    assert!(d >= 1, "the first sample is always kept");
    assert_eq!(
        dec.category_total(Category::Memcpy),
        report.memcpy.as_nanos(),
        "span accounting is untouched by counter decimation"
    );
}

/// Host self-profiling adds wall-clock spans on host tracks but leaves
/// the sim-time side of the trace untouched.
#[test]
fn self_profiling_leaves_sim_events_untouched() {
    let w = micro::saxpy(InputSize::Tiny);
    let (_, plain) = Experiment::new().traced_run(&w, TransferMode::Standard);
    let (_, prof) = Experiment::new()
        .with_trace(TraceConfig::default().with_self_profile())
        .traced_run(&w, TransferMode::Standard);
    assert_eq!(plain.category_count(Category::Host), 0);
    assert!(prof.category_count(Category::Host) > 0);
    // Host spans live outside sim accounting entirely.
    assert_eq!(prof.category_total(Category::Host), 0);
    assert_eq!(plain.horizon(), prof.horizon());
    assert_eq!(
        plain.category_total(Category::Kernel),
        prof.category_total(Category::Kernel)
    );
}

/// `traced_modes` lays the five modes back to back in one recording; the
/// horizon covers the sum of all five breakdowns.
#[test]
fn traced_modes_concatenates_all_five_runs() {
    let w = micro::saxpy(InputSize::Tiny);
    let (reports, trace) = Experiment::new().traced_modes(&w);
    let total: u64 = reports.iter().map(|r| r.total().as_nanos()).sum();
    assert!(
        trace.horizon() >= total,
        "all five runs are on the timeline"
    );
    // Each mode contributes at least one kernel span.
    assert!(trace.category_count(Category::Kernel) >= 5);
    let alloc: u64 = reports.iter().map(|r| r.alloc.as_nanos()).sum();
    assert_eq!(trace.category_total(Category::Alloc), alloc);
}
