//! Differential validation of the static stream-hazard checker.
//!
//! The sanitizer's central claim is that it predicts *execution-order
//! sensitivity* without simulating: a flagged hazard pair (SAN-S001/S002)
//! is a pair of conflicting accesses whose relative timing is at the mercy
//! of engine contention, while a clean schedule's conflicting pairs are
//! pinned by happens-before edges no matter how long each op takes.
//!
//! This harness cross-checks that claim against the simulator itself. Each
//! schedule is replayed many times with deterministically jittered op
//! durations (same structure, different timings — the static analysis sees
//! an identical schedule every time):
//!
//! * every statically flagged hazard pair must be **order-dependent**: over
//!   the jitter samples its interval relation varies, or the two ops
//!   actually overlap in time (the racing interleaving is reachable);
//! * every conflicting-but-ordered pair in a clean schedule must be
//!   **order-invariant**: the same before/after relation in every sample,
//!   and never overlapping (zero false positives).

use hetsim_engine::rng::SimRng;
use hetsim_engine::time::Nanos;
use hetsim_runtime::stream::{BufferAccess, Engine, ScheduleItem, StreamId, StreamSchedule};
use hetsim_sanitizer::{check_schedule, Lint, Span};

/// How two scheduled intervals relate on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Relation {
    /// First ends at or before the second starts.
    Before,
    /// First starts at or after the second ends.
    After,
    /// The intervals overlap — the conflicting accesses race.
    Overlap,
}

/// Replays `schedule` with every op duration rescaled by a seeded factor in
/// `[0.25x, 4x]`, preserving structure (streams, engines, accesses, event
/// identities). Returns the interval relation of the ops at `(first, second)`
/// op ordinals.
fn jittered_relation(schedule: &StreamSchedule, seed: u64, pair: (usize, usize)) -> Relation {
    let mut rng = SimRng::new(seed);
    let mut replay = StreamSchedule::new();
    for item in schedule.items() {
        let item = match item {
            ScheduleItem::Op {
                stream,
                engine,
                duration,
                label,
                access,
            } => {
                // Scale by 25%..400% so engine-contention outcomes actually
                // flip between samples; durations stay non-zero.
                let pct = 25 + rng.next_u64() % 376;
                ScheduleItem::Op {
                    stream: *stream,
                    engine: *engine,
                    duration: Nanos::from_nanos((duration.as_nanos() * pct / 100).max(1)),
                    label: label.clone(),
                    access: access.clone(),
                }
            }
            other => other.clone(),
        };
        replay.push_item(item);
    }
    let ops = replay.run().ops();
    let (a, b) = (&ops[pair.0], &ops[pair.1]);
    if a.end <= b.start {
        Relation::Before
    } else if b.end <= a.start {
        Relation::After
    } else {
        Relation::Overlap
    }
}

/// All op-ordinal pairs whose buffer accesses conflict (at least one write,
/// overlapping chunk ranges on the same buffer) — flagged or not.
fn conflicting_pairs(schedule: &StreamSchedule) -> Vec<(usize, usize)> {
    let ops: Vec<&BufferAccess> = schedule
        .items()
        .iter()
        .filter_map(|i| match i {
            ScheduleItem::Op { access, .. } => Some(access.as_ref()),
            _ => None,
        })
        .map(|a| a.expect("validation schedules annotate every op"))
        .collect();
    let mut pairs = Vec::new();
    for i in 0..ops.len() {
        for j in i + 1..ops.len() {
            if ops[i].conflicts_with(ops[j]) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

/// The op-ordinal pairs the static checker flagged as hazards.
fn flagged_pairs(schedule: &StreamSchedule) -> Vec<(usize, usize)> {
    check_schedule("validation", schedule)
        .diagnostics
        .iter()
        .filter(|d| matches!(d.lint, Lint::WriteWriteHazard | Lint::ReadWriteHazard))
        .filter_map(|d| match d.span {
            Span::OpPair { first, second } => Some((first, second)),
            _ => None,
        })
        .collect()
}

const SAMPLES: u64 = 16;

/// Asserts every statically flagged pair is order-dependent under jitter and
/// every unflagged conflicting pair is order-invariant, then returns the
/// flagged lints for hazard-class bookkeeping.
fn cross_check(name: &str, schedule: &StreamSchedule) -> Vec<Lint> {
    let flagged = flagged_pairs(schedule);
    for &pair in &flagged {
        let relations: std::collections::HashSet<Relation> = (0..SAMPLES)
            .map(|s| jittered_relation(schedule, 0xD1F5 + s, pair))
            .collect();
        assert!(
            relations.len() > 1 || relations.contains(&Relation::Overlap),
            "{name}: flagged pair {pair:?} kept relation {relations:?} across \
             all {SAMPLES} jitter samples — static hazard not order-dependent"
        );
    }
    for &pair in &conflicting_pairs(schedule) {
        if flagged.contains(&pair) {
            continue;
        }
        let relations: std::collections::HashSet<Relation> = (0..SAMPLES)
            .map(|s| jittered_relation(schedule, 0xC1EA + s, pair))
            .collect();
        assert_eq!(
            relations.len(),
            1,
            "{name}: unflagged conflicting pair {pair:?} changed order under \
             jitter ({relations:?}) — static checker missed a hazard"
        );
        assert!(
            !relations.contains(&Relation::Overlap),
            "{name}: unflagged conflicting pair {pair:?} overlaps in time"
        );
    }
    check_schedule("validation", schedule)
        .diagnostics
        .iter()
        .map(|d| d.lint)
        .collect()
}

const US: Nanos = Nanos::from_micros(10);

// ---------------------------------------------------------------------------
// Hazard class 1: write-write — concurrent h2d and kernel both write the
// same chunks from different streams with no ordering edge.
// ---------------------------------------------------------------------------
#[test]
fn ww_hazard_is_order_dependent() {
    let mut s = StreamSchedule::new();
    s.push_access(
        StreamId(0),
        Engine::CopyH2D,
        US,
        "h2d",
        BufferAccess::writes("data", 0..4),
    );
    s.push_access(
        StreamId(1),
        Engine::Compute,
        US,
        "kernel",
        BufferAccess::writes("data", 2..6),
    );
    let lints = cross_check("ww", &s);
    assert!(lints.contains(&Lint::WriteWriteHazard), "{lints:?}");
}

// ---------------------------------------------------------------------------
// Hazard class 2: read-write — a kernel reads chunks another stream's h2d
// is still (re)writing.
// ---------------------------------------------------------------------------
#[test]
fn upload_vs_read_hazard_is_order_dependent() {
    let mut s = StreamSchedule::new();
    s.push_access(
        StreamId(0),
        Engine::CopyH2D,
        US,
        "h2d",
        BufferAccess::writes("in", 0..8),
    );
    s.push_access(
        StreamId(1),
        Engine::Compute,
        US,
        "kernel",
        BufferAccess::reads("in", 4..8),
    );
    let lints = cross_check("upload-read", &s);
    assert!(lints.contains(&Lint::ReadWriteHazard), "{lints:?}");
}

// ---------------------------------------------------------------------------
// Hazard class 3: write-read on the way out — d2h drains chunks a kernel on
// another stream is still producing.
// ---------------------------------------------------------------------------
#[test]
fn produce_vs_download_hazard_is_order_dependent() {
    let mut s = StreamSchedule::new();
    s.push_access(
        StreamId(0),
        Engine::Compute,
        US,
        "kernel",
        BufferAccess::writes("out", 0..4),
    );
    s.push_access(
        StreamId(1),
        Engine::CopyD2H,
        US,
        "d2h",
        BufferAccess::reads("out", 0..4),
    );
    let lints = cross_check("produce-download", &s);
    assert!(lints.contains(&Lint::ReadWriteHazard), "{lints:?}");
}

// ---------------------------------------------------------------------------
// Clean cases: conflicting accesses serialized by each of the three
// happens-before edge kinds must stay order-invariant under jitter, with
// zero diagnostics (no false positives).
// ---------------------------------------------------------------------------
#[test]
fn event_serialized_conflict_is_order_invariant() {
    let mut s = StreamSchedule::new();
    s.push_access(
        StreamId(0),
        Engine::CopyH2D,
        US,
        "h2d",
        BufferAccess::writes("data", 0..4),
    );
    let ready = s.record_event(StreamId(0));
    s.wait_event(StreamId(1), ready);
    s.push_access(
        StreamId(1),
        Engine::Compute,
        US,
        "kernel",
        BufferAccess::reads("data", 0..4),
    );
    let lints = cross_check("event-serialized", &s);
    assert!(lints.is_empty(), "{lints:?}");
}

#[test]
fn same_stream_conflict_is_order_invariant() {
    let mut s = StreamSchedule::new();
    s.push_access(
        StreamId(0),
        Engine::CopyH2D,
        US,
        "h2d",
        BufferAccess::writes("data", 0..4),
    );
    s.push_access(
        StreamId(0),
        Engine::Compute,
        US,
        "kernel",
        BufferAccess::writes("data", 0..4),
    );
    let lints = cross_check("same-stream", &s);
    assert!(lints.is_empty(), "{lints:?}");
}

#[test]
fn same_engine_conflict_is_order_invariant() {
    // Two different streams, but both ops occupy the one compute engine:
    // issue order on the shared engine serializes them.
    let mut s = StreamSchedule::new();
    s.push_access(
        StreamId(0),
        Engine::Compute,
        US,
        "k0",
        BufferAccess::writes("data", 0..4),
    );
    s.push_access(
        StreamId(1),
        Engine::Compute,
        US,
        "k1",
        BufferAccess::writes("data", 0..4),
    );
    let lints = cross_check("same-engine", &s);
    assert!(lints.is_empty(), "{lints:?}");
}

#[test]
fn disjoint_chunks_are_conflict_free() {
    // Different chunk ranges on the same buffer: no conflict at all, so
    // nothing to flag and nothing to pin.
    let mut s = StreamSchedule::new();
    s.push_access(
        StreamId(0),
        Engine::CopyH2D,
        US,
        "h2d",
        BufferAccess::writes("data", 0..4),
    );
    s.push_access(
        StreamId(1),
        Engine::Compute,
        US,
        "kernel",
        BufferAccess::writes("data", 4..8),
    );
    assert!(conflicting_pairs(&s).is_empty());
    let lints = cross_check("disjoint", &s);
    assert!(lints.is_empty(), "{lints:?}");
}

#[test]
fn chunked_pipeline_is_clean_and_order_invariant() {
    // The canonical async-memcpy pipeline: every chunk's h2d → kernel → d2h
    // chain lives on one stream, so all its conflicts are program-ordered.
    let s = StreamSchedule::chunked_pipeline(4, 8, US, US, US);
    let lints = cross_check("chunked-pipeline", &s);
    assert!(lints.is_empty(), "{lints:?}");
}

// ---------------------------------------------------------------------------
// The fix direction the diagnostics suggest must actually work: take the
// flagged two-stream schedule, add the event edge, and watch both the
// diagnostics and the order-dependence disappear.
// ---------------------------------------------------------------------------
#[test]
fn adding_the_suggested_edge_clears_the_hazard() {
    let hazard = |serialize: bool| {
        let mut s = StreamSchedule::new();
        s.push_access(
            StreamId(0),
            Engine::CopyH2D,
            US,
            "h2d",
            BufferAccess::writes("data", 0..4),
        );
        if serialize {
            let e = s.record_event(StreamId(0));
            s.wait_event(StreamId(1), e);
        }
        s.push_access(
            StreamId(1),
            Engine::Compute,
            US,
            "kernel",
            BufferAccess::reads("data", 0..4),
        );
        s
    };
    assert!(!flagged_pairs(&hazard(false)).is_empty());
    assert!(flagged_pairs(&hazard(true)).is_empty());
    cross_check("fixed", &hazard(true));
}
