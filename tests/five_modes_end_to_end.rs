//! End-to-end integration: every Table 2 workload runs under every
//! transfer mode and produces a sane, deterministic breakdown.

use hetsim::prelude::*;
use hetsim_runtime::report::Component;
use hetsim_workloads::suite;

fn runner() -> Runner {
    Runner::new(Device::a100_epyc())
}

#[test]
fn all_21_workloads_run_under_all_modes() {
    let r = runner();
    let entries: Vec<_> = suite::micro_names()
        .into_iter()
        .chain(suite::app_names())
        .collect();
    assert_eq!(entries.len(), 21);
    for e in entries {
        let w = (e.build)(InputSize::Small);
        for mode in TransferMode::ALL {
            let rep = r.run(&w, mode, 0);
            assert!(
                rep.total() > Nanos::ZERO,
                "{} under {mode} produced zero time",
                e.name
            );
            assert!(rep.alloc > Nanos::ZERO, "{} {mode}: alloc", e.name);
            assert!(rep.kernel > Nanos::ZERO, "{} {mode}: kernel", e.name);
            assert!(rep.memcpy > Nanos::ZERO, "{} {mode}: memcpy", e.name);
        }
    }
}

#[test]
fn breakdown_shares_sum_to_one() {
    let r = runner();
    let w = suite::by_name("hotspot", InputSize::Small).unwrap();
    for mode in TransferMode::ALL {
        let rep = r.run(&w, mode, 1);
        let s = rep.share(Component::Alloc)
            + rep.share(Component::Memcpy)
            + rep.share(Component::Kernel);
        assert!((s - 1.0).abs() < 1e-9, "{mode}: shares sum to {s}");
    }
}

#[test]
fn runs_are_deterministic_and_noise_is_seeded() {
    let r = runner();
    let w = suite::by_name("saxpy", InputSize::Small).unwrap();
    for mode in TransferMode::ALL {
        let a = r.run(&w, mode, 7);
        let b = r.run(&w, mode, 7);
        assert_eq!(a, b, "{mode}: same run index must reproduce exactly");
        let c = r.run(&w, mode, 8);
        assert_ne!(a.total(), c.total(), "{mode}: different run index differs");
    }
}

#[test]
fn uvm_counters_only_under_uvm_modes() {
    let r = runner();
    let w = suite::by_name("vector_seq", InputSize::Small).unwrap();
    for mode in TransferMode::ALL {
        let rep = r.run(&w, mode, 0);
        if mode.uses_uvm() {
            assert!(
                rep.counters.uvm.page_faults() > 0 || rep.counters.uvm.pages_prefetched() > 0,
                "{mode}: expected UVM activity"
            );
        } else {
            assert_eq!(rep.counters.uvm.page_faults(), 0, "{mode}");
            assert!(rep.counters.transfer.explicit_copies() > 0, "{mode}");
        }
    }
}

#[test]
fn prefetch_modes_prefetch_most_pages() {
    let r = runner();
    let w = suite::by_name("vector_seq", InputSize::Small).unwrap();
    let rep = r.run(&w, TransferMode::UvmPrefetch, 0);
    assert!(
        rep.counters.uvm.prefetch_coverage() > 0.9,
        "regular workload should be mostly prefetched, got {}",
        rep.counters.uvm.prefetch_coverage()
    );
    let lud = suite::by_name("lud", InputSize::Small).unwrap();
    let rep_lud = r.run(&lud, TransferMode::UvmPrefetch, 0);
    assert!(
        rep_lud.counters.uvm.prefetch_coverage() < rep.counters.uvm.prefetch_coverage(),
        "irregular lud must be covered worse than vector_seq"
    );
}

#[test]
fn mega_footprints_oversubscribe_gracefully() {
    // 3DCONV at Mega exceeds the 40 GB device: the UVM path must evict
    // rather than fail.
    let r = runner();
    let w = suite::by_name("3DCONV", InputSize::Mega).unwrap();
    let rep = r.run(&w, TransferMode::Uvm, 0);
    assert!(rep.total() > Nanos::ZERO);
    assert!(
        rep.counters.uvm.pages_evicted() > 0,
        "64 GB of managed data on a 40 GB device must evict"
    );
}
