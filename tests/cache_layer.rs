//! The incremental-sweep contract: a warm rerun against the on-disk
//! result cache must reproduce a cold run byte-for-byte while skipping
//! every simulation, the cache key must invalidate on device changes,
//! and the in-memory memo must never run the same base simulation twice
//! no matter how many threads race for it.

use hetsim::cache::{CacheKey, DiskCache};
use hetsim::experiment::Experiment;
use hetsim::pool;
use hetsim_runtime::{Device, GpuProgram, TransferMode};
use hetsim_workloads::{suite, InputSize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A unique scratch directory per test invocation.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hetsim-cache-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn cached_experiment(dir: &Path) -> (Experiment, Arc<DiskCache>) {
    let disk = Arc::new(DiskCache::at(dir.to_path_buf()));
    (
        Experiment::new().with_runs(3).with_cache(disk.clone()),
        disk,
    )
}

#[test]
fn warm_rerun_is_byte_identical_and_simulation_free() {
    let dir = scratch_dir("warm");
    let w = suite::by_name("vector_seq", InputSize::Tiny).unwrap();

    // Cold: fresh experiment, empty store — every mode is a miss + store.
    let (cold_exp, cold_disk) = cached_experiment(&dir);
    let cold: Vec<_> = TransferMode::ALL
        .iter()
        .map(|&m| cold_exp.base_run(&w, m))
        .collect();
    let cold_stats = cold_disk.stats();
    assert_eq!(cold_stats.hits, 0, "empty store cannot hit");
    assert_eq!(cold_stats.misses, TransferMode::ALL.len() as u64);
    assert_eq!(cold_stats.stores, TransferMode::ALL.len() as u64);

    // Warm: a brand-new experiment (empty in-memory memo) over the same
    // store must replay every report exactly, with zero misses.
    let (warm_exp, warm_disk) = cached_experiment(&dir);
    let warm: Vec<_> = TransferMode::ALL
        .iter()
        .map(|&m| warm_exp.base_run(&w, m))
        .collect();
    let warm_stats = warm_disk.stats();
    assert_eq!(warm_stats.misses, 0, "warm rerun must not simulate");
    assert_eq!(warm_stats.hits, TransferMode::ALL.len() as u64);
    assert_eq!(cold, warm, "cached reports must round-trip exactly");

    // The memo counted zero disk-era computes on the warm side too: the
    // closure ran (to consult the disk) but produced no fresh simulation.
    assert_eq!(warm_exp.memo_stats().entries, TransferMode::ALL.len());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn device_change_invalidates_cached_entries() {
    let dir = scratch_dir("device");
    let w = suite::by_name("2DCONV", InputSize::Tiny).unwrap();

    let (exp_a, disk_a) = cached_experiment(&dir);
    exp_a.base_run(&w, TransferMode::Async);
    assert_eq!(disk_a.stats().stores, 1);

    // Same store, different device: the fingerprint changes, so the
    // entry written above must not be served.
    let mut device = Device::a100_epyc();
    device.system_overhead = device.system_overhead + device.system_overhead;
    let disk_b = Arc::new(DiskCache::at(dir.clone()));
    let exp_b = Experiment::new()
        .with_runs(3)
        .with_cache(disk_b.clone())
        .with_device(device);
    exp_b.base_run(&w, TransferMode::Async);
    let stats = disk_b.stats();
    assert_eq!(stats.hits, 0, "a different device must miss");
    assert_eq!(stats.misses, 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_key_collisions_degrade_to_misses() {
    let dir = scratch_dir("verify");
    let w = suite::by_name("vector_seq", InputSize::Tiny).unwrap();
    let (exp, disk) = cached_experiment(&dir);
    let report = exp.base_run(&w, TransferMode::Standard);

    // The stored entry answers only the exact key it was written under:
    // a lookup whose full key line differs (here: another mode) misses
    // even though nothing else about the store changed.
    let hit_key = CacheKey::new(&w.memo_key(), TransferMode::Standard, {
        hetsim::cache::device_fingerprint(&Device::a100_epyc())
    });
    let miss_key = CacheKey::new(&w.memo_key(), TransferMode::Uvm, {
        hetsim::cache::device_fingerprint(&Device::a100_epyc())
    });
    assert_eq!(disk.load(&hit_key), Some(report));
    assert_eq!(disk.load(&miss_key), None);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn racing_threads_never_duplicate_a_base_simulation() {
    let w = suite::by_name("kmeans", InputSize::Tiny).unwrap();
    let exp = Experiment::new().with_runs(3);
    // 32 tasks on 4 workers all demand the same (workload, mode) cell;
    // the sharded memo's single-flight cell must run it exactly once.
    pool::with_threads(4, || {
        pool::run(32, |_| {
            exp.base_run(&w, TransferMode::UvmPrefetchAsync);
        })
    });
    let stats = exp.memo_stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.lookups, 32);
    assert_eq!(
        stats.computes, 1,
        "check-then-insert race would simulate more than once"
    );
}

#[test]
fn warm_rerun_of_the_fig7_grid_reuses_the_store_across_thread_counts() {
    let dir = scratch_dir("grid");
    let w_names = suite::micro_names();

    let (cold_exp, cold_disk) = cached_experiment(&dir);
    let cold = pool::with_threads(4, || {
        hetsim::figures::fig7(&cold_exp, InputSize::Tiny)
            .to_table()
            .to_string()
    });
    let grid = w_names.len() * TransferMode::ALL.len();
    assert_eq!(cold_disk.stats().stores as usize, grid);

    // Warm rerun at a different thread count: same bytes, all hits.
    let (warm_exp, warm_disk) = cached_experiment(&dir);
    let warm = pool::with_threads(1, || {
        hetsim::figures::fig7(&warm_exp, InputSize::Tiny)
            .to_table()
            .to_string()
    });
    assert_eq!(cold, warm);
    let stats = warm_disk.stats();
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.hits as usize, grid);

    std::fs::remove_dir_all(&dir).ok();
}
