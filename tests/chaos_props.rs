//! Property suite for the chaos layer: the full 22-workload registry ×
//! the fault taxonomy × 8 seeds, at Tiny size.
//!
//! The contract under test (the ISSUE's acceptance gate):
//!
//! 1. **Totality** — every `(workload, plan, mode, seed)` cell either
//!    recovers (the recovery cost visible in the run breakdown) or
//!    returns a typed [`SimError`]; nothing panics.
//! 2. **Separability** — a recovered run minus its booked per-component
//!    chaos overhead reproduces the fault-free base run of the effective
//!    mode *exactly*, counters included. Injected faults never corrupt
//!    the simulated result, only its cost.
//! 3. **Determinism** — the same seed and plan give the same
//!    [`ChaosRunReport`] on every replay, and a whole degradation sweep
//!    renders byte-identically at any thread count.

use hetsim::degradation::{ChaosSweep, ChaosSweepConfig};
use hetsim::experiment::Experiment;
use hetsim::pool;
use hetsim_runtime::{ChaosRunReport, FaultPlan, RecoveryPolicy, SimError, TransferMode};
use hetsim_workloads::{suite, InputSize};

/// The fault-taxonomy corners the sweep cycles through per cell.
fn plan_for(kind: usize, seed: u64) -> FaultPlan {
    match kind {
        0 => FaultPlan::off(),
        1 => FaultPlan::light(seed),
        2 => FaultPlan::heavy(seed),
        3 => FaultPlan::storm(seed),
        _ => FaultPlan::at_intensity(seed, 0.6),
    }
}

fn assert_separable(exp: &Experiment, out: &ChaosRunReport, label: &str) {
    let base = exp.base_run(
        &suite::by_name(label.split_whitespace().next().unwrap(), InputSize::Tiny).unwrap(),
        out.effective_mode,
    );
    let oh = out.chaos.overhead;
    let mut stripped = out.report.clone();
    stripped.alloc -= oh.alloc;
    stripped.memcpy -= oh.memcpy;
    stripped.kernel -= oh.kernel;
    stripped.system -= oh.system;
    assert_eq!(stripped, base, "{label}: recovered run is not separable");
    assert_eq!(
        out.report.counters, base.counters,
        "{label}: chaos perturbed the counters"
    );
}

#[test]
fn registry_times_taxonomy_times_seeds_recovers_or_errors_typed() {
    let exp = Experiment::new().with_runs(1);
    let entries = suite::all_entries();
    assert_eq!(entries.len(), 22, "registry size drifted; update this gate");
    let mut recovered = 0u64;
    let mut degraded = 0u64;
    let mut failed = 0u64;
    for (wi, entry) in entries.iter().enumerate() {
        let w = (entry.build)(InputSize::Tiny);
        for seed in 0..8u64 {
            // Cycle plans and modes so every workload still meets every
            // plan kind across the seed axis, without a full 22x5x5x8
            // product blowing up the test's wall clock.
            let plan = plan_for((wi + seed as usize) % 5, seed);
            let mode = TransferMode::ALL[(wi + seed as usize) % 5];
            let label = format!("{} {} seed{seed}", entry.name, mode.name());
            let armed = exp.clone().with_chaos(plan, RecoveryPolicy::default());
            match armed.try_run(&w, mode) {
                Ok(out) => {
                    assert_separable(&exp, &out, &label);
                    if plan.is_active() && out.chaos.injected() > 0 {
                        // Recovery cost must be visible in the breakdown.
                        assert!(
                            out.report.total() > exp.base_run(&w, out.effective_mode).total(),
                            "{label}: injected faults left no cost"
                        );
                    }
                    if out.degraded() {
                        degraded += 1;
                    } else {
                        recovered += 1;
                    }
                }
                Err(
                    SimError::RetryExhausted { .. }
                    | SimError::ReplayExhausted { .. }
                    | SimError::PinnedAllocFailed { .. },
                ) => failed += 1,
                Err(other) => panic!("{label}: non-recovery error {other:?}"),
            }
        }
    }
    // The grid must actually exercise all three outcome classes.
    assert!(recovered > 0, "no cell recovered cleanly");
    assert!(degraded > 0, "no cell degraded (storm plans should)");
    assert!(
        recovered + degraded + failed == 22 * 8,
        "outcome classes don't partition the grid"
    );
}

#[test]
fn same_seed_and_plan_replay_identically() {
    let exp = Experiment::new().with_runs(1);
    for name in ["bfs", "gemm", "vector_rand"] {
        let w = suite::by_name(name, InputSize::Tiny).unwrap();
        let armed = exp
            .clone()
            .with_chaos(FaultPlan::heavy(5), RecoveryPolicy::default());
        let a = armed.try_run(&w, TransferMode::UvmPrefetchAsync);
        let b = armed.try_run(&w, TransferMode::UvmPrefetchAsync);
        assert_eq!(a, b, "{name}: replay diverged");
    }
}

#[test]
fn degradation_sweep_is_byte_identical_across_thread_counts() {
    let cfg = ChaosSweepConfig {
        workloads: vec!["bfs".into(), "kmeans".into(), "vector_seq".into()],
        size: InputSize::Tiny,
        rates: vec![0.0, 0.4, 1.0],
        seeds: 3,
        ..ChaosSweepConfig::default()
    };
    let run = || {
        let exp = Experiment::new().with_runs(1);
        ChaosSweep::run(&exp, &cfg)
    };
    let serial = pool::with_threads(1, run);
    let parallel = pool::with_threads(4, run);
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.to_table().to_csv(), parallel.to_table().to_csv());
}

#[test]
fn chaos_trace_is_seed_deterministic() {
    // Same seed + plan => byte-identical Chrome trace, including the
    // chaos track's injected-fault instants.
    let w = suite::by_name("kmeans", InputSize::Tiny).unwrap();
    let record = || {
        let exp = Experiment::new()
            .with_runs(1)
            .with_chaos(FaultPlan::heavy(9), RecoveryPolicy::default());
        hetsim_trace::session::start(hetsim_trace::TraceConfig::default());
        let out = exp.try_run(&w, TransferMode::Uvm);
        let trace = hetsim_trace::session::finish().expect("session active");
        (out, trace.to_chrome_json())
    };
    let (out_a, json_a) = record();
    let (out_b, json_b) = record();
    assert_eq!(out_a, out_b);
    assert_eq!(json_a, json_b);
    assert!(json_a.contains("\"chaos\""), "chaos track missing");
}

#[test]
fn impossible_plans_never_reach_simulation() {
    let exp = Experiment::new()
        .with_runs(1)
        .with_chaos(FaultPlan::light(1), RecoveryPolicy::brittle());
    let w = suite::by_name("saxpy", InputSize::Tiny).unwrap();
    match exp.try_run(&w, TransferMode::Standard) {
        Err(SimError::InvalidPlan(msg)) => assert!(msg.contains("retry budget"), "{msg}"),
        other => panic!("expected InvalidPlan, got {other:?}"),
    }
    assert!(hetsim::verify::check_plan(&FaultPlan::light(1), &RecoveryPolicy::brittle()).is_err());
    assert!(hetsim::verify::check_plan(&FaultPlan::light(1), &RecoveryPolicy::default()).is_ok());
}
