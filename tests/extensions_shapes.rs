//! Extension-study shapes: the classic alternatives behave as the
//! literature says they do, relative to each other and to UVM prefetch.

use hetsim::extensions::{
    alternatives_table, overlapped_standard, oversubscription_sweep, pinned_standard,
};
use hetsim::prelude::*;
use hetsim_workloads::{micro, suite};

#[test]
fn pinned_and_streams_both_beat_plain_pageable() {
    let runner = Runner::new(Device::a100_epyc());
    let w = micro::vector_seq(InputSize::Medium);
    let std = runner.run_base(&w, TransferMode::Standard);
    let pinned = pinned_standard(&runner, &w);
    let overlap = overlapped_standard(&runner, &w, 8, 4);
    assert!(
        pinned.total() < std.total(),
        "pinned {} !< pageable {}",
        pinned.total(),
        std.total()
    );
    assert!(
        overlap.overlapped_total() < std.total(),
        "streams {} !< pageable {}",
        overlap.overlapped_total(),
        std.total()
    );
}

#[test]
fn stream_count_helps_monotonically() {
    let runner = Runner::new(Device::a100_epyc());
    let w = micro::saxpy(InputSize::Medium);
    let t = |streams| {
        overlapped_standard(&runner, &w, 8, streams)
            .overlapped_total()
            .as_nanos()
    };
    assert!(t(2) <= t(1));
    assert!(t(4) <= t(2));
}

#[test]
fn alternatives_cover_transfer_bound_and_irregular_workloads() {
    let runner = Runner::new(Device::a100_epyc());
    for name in ["vector_seq", "lud", "gemm"] {
        let w = suite::by_name(name, InputSize::Small).unwrap();
        let t = alternatives_table(&runner, &w);
        assert_eq!(t.len(), 4, "{name}");
        // The table renders without panicking and mentions each approach.
        let text = t.to_string();
        for approach in ["pageable", "pinned", "streams", "uvm_prefetch"] {
            assert!(text.contains(approach), "{name}: missing {approach}");
        }
    }
}

#[test]
fn oversubscription_cliff_appears_past_capacity() {
    let points = oversubscription_sweep(
        || micro::vector_seq(InputSize::Medium),
        &[0.5, 1.0, 2.0, 4.0],
    );
    assert_eq!(points[0].evictions, 0);
    assert_eq!(points[1].evictions, 0);
    assert!(points[2].evictions > 0, "2x oversubscription must evict");
    assert!(
        points[3].evictions > points[2].evictions,
        "more pressure, more evictions"
    );
    assert!(points[3].slowdown >= points[2].slowdown * 0.99);
}
