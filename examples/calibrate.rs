//! Developer calibration harness: prints the headline figure shapes so the
//! cost-model constants can be compared against the paper's numbers.

use hetsim::experiment::Experiment;
use hetsim::figures;
use hetsim::headline::{Headline, Section6};
use hetsim_workloads::InputSize;

fn main() {
    let exp = Experiment::new().with_runs(5);

    for size in [InputSize::Large, InputSize::Super] {
        println!("==== Fig 7 micro @ {size} ====");
        let s = figures::fig7(&exp, size);
        println!("{}", s.to_table());
        println!("{}", Headline::from_suite(&s).to_table());
    }

    println!("==== Fig 8 apps @ super ====");
    let s8 = figures::fig8(&exp);
    println!("{}", s8.to_table());
    println!("{}", Headline::from_suite(&s8).to_table());
    println!("{}", Section6::from_suite(&s8).to_table());

    println!("==== Fig 9/10 counters @ large ====");
    println!("{}", figures::fig9_fig10(&exp, InputSize::Large).to_table());

    println!("==== Fig 12 threads sweep @ large ====");
    println!("{}", figures::fig12(&exp, InputSize::Large).to_table());

    println!("==== Fig 11 blocks sweep @ large ====");
    println!("{}", figures::fig11(&exp, InputSize::Large).to_table());
}
