//! Record a kernel's address streams as a portable text trace, replay it,
//! and verify the replayed kernel reproduces the original's timing and
//! cache behaviour — the "bring your own trace" path for running external
//! workloads on the simulator.
//!
//! ```text
//! cargo run --release --example trace_replay [workload] [out.trace]
//! ```

use hetsim::prelude::*;
use hetsim_gpu::exec::{ExecEnv, KernelExecutor};
use hetsim_gpu::trace::KernelTrace;
use hetsim_workloads::suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lud".into());
    let out = std::env::args().nth(2);

    let Some(workload) = suite::by_name(&name, InputSize::Small) else {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    };
    let kernels = workload.kernels();
    let kernel = kernels[0];

    // Record 6 blocks (the executor's default sampling width).
    let trace = KernelTrace::record(kernel, 6);
    println!(
        "recorded {} accesses over {} blocks of {}",
        trace.recorded_accesses(),
        trace.recorded_blocks(),
        kernel.name()
    );

    let exec = KernelExecutor::new(hetsim_gpu::GpuConfig::a100());
    let style = kernel.standard_style();
    let original = exec.execute(kernel, style, &ExecEnv::standard());
    let replayed = exec.execute(&trace, style, &ExecEnv::standard());
    println!(
        "original kernel {} | replayed {} | L1 miss {:.4} vs {:.4}",
        original.time,
        replayed.time,
        original.l1.load_miss_rate(),
        replayed.l1.load_miss_rate()
    );

    if let Some(path) = out {
        let text = trace.to_trace_text();
        std::fs::write(&path, &text).expect("write trace");
        println!(
            "wrote {} ({} bytes) — format: S|L L|S 0xADDR, T = tile, B = block",
            path,
            text.len()
        );
    }
}
