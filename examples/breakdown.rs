//! Absolute time-breakdown per mode for one workload — the raw numbers
//! behind the normalized figures.
//!
//! ```text
//! cargo run --release --example breakdown [workload] [large|super]
//! ```
use hetsim::prelude::*;
use hetsim_workloads::suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gemm".into());
    let size = match std::env::args().nth(2).as_deref() {
        Some("large") => InputSize::Large,
        _ => InputSize::Super,
    };
    let runner = Runner::new(Device::a100_epyc());
    let w = suite::by_name(&name, size).expect("workload");
    println!("{name} @ {size}");
    for mode in TransferMode::ALL {
        let r = runner.run_base(&w, mode);
        println!(
            "{:<20} alloc {:>12} memcpy {:>12} kernel {:>12} total {:>12}",
            mode.name(),
            r.alloc.to_string(),
            r.memcpy.to_string(),
            r.kernel.to_string(),
            r.total().to_string()
        );
    }
}
