//! Quickstart: simulate one workload under all five data-transfer modes
//! and print the paper-style breakdown.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [size]
//! ```
//!
//! Defaults to `kmeans` at `medium` inputs. Workload names follow the
//! paper's Table 2 (`vector_seq`, `gemm`, `lud`, `yolov3`, ...).

use hetsim::prelude::*;
use hetsim_workloads::suite;

fn parse_size(s: &str) -> Option<InputSize> {
    InputSize::ALL.into_iter().find(|x| x.name() == s)
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "kmeans".into());
    let size = std::env::args()
        .nth(2)
        .and_then(|s| parse_size(&s))
        .unwrap_or(InputSize::Medium);

    // The paper's platform: A100 + EPYC 7742 over PCIe 4.0 (its Table 1).
    let device = Device::a100_epyc();
    println!(
        "platform: {} SMs @ {:.0} MHz, {} GB HBM2, {} x {} GB DDR4",
        device.gpu.sm_count,
        device.gpu.clock.hz() / 1e6,
        device.gpu.hbm.capacity() >> 30,
        device.host.config().chips,
        device.host.config().chip_capacity >> 30,
    );

    let Some(workload) = suite::by_name(&name, size) else {
        eprintln!("unknown workload {name}; known:");
        for e in suite::micro_names().iter().chain(suite::app_names().iter()) {
            eprintln!("  {:<12} {}", e.name, e.description);
        }
        std::process::exit(1);
    };
    println!(
        "workload: {name} @ {size} ({} MB footprint)\n",
        workload.footprint() >> 20
    );

    // The paper's 30-run methodology, side by side over the five modes.
    let experiment = Experiment::new();
    let cmp = experiment.compare_modes(&workload);
    println!("{}", cmp.to_table());

    let best = TransferMode::ALL
        .into_iter()
        .min_by(|a, b| {
            cmp.mean_total(*a)
                .partial_cmp(&cmp.mean_total(*b))
                .expect("totals ordered")
        })
        .expect("five modes");
    println!(
        "best mode for {name}: {best} ({:+.2}% vs standard)",
        cmp.improvement_pct(best)
    );
}
