//! Characterize one application the way the paper's §4 does: absolute
//! breakdowns per mode, hardware counters, and the resulting programming
//! guidance.
//!
//! ```text
//! cargo run --release --example characterize_app [workload] [size]
//! ```
//!
//! Defaults to `lud` — the paper's exemplar of a workload that benefits
//! from Async Memcpy but not from UVM prefetch.

use hetsim::prelude::*;
use hetsim_counters::InstClass;
use hetsim_workloads::suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lud".into());
    let size = std::env::args()
        .nth(2)
        .and_then(|s| InputSize::ALL.into_iter().find(|x| x.name() == s))
        .unwrap_or(InputSize::Large);

    let runner = Runner::new(Device::a100_epyc());
    let Some(workload) = suite::by_name(&name, size) else {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    };

    println!("==== {name} @ {size}: execution-time breakdown ====");
    let mut table = Table::new(vec![
        "mode",
        "alloc",
        "memcpy",
        "kernel",
        "total",
        "occupancy",
    ]);
    let mut reports = Vec::new();
    for mode in TransferMode::ALL {
        let r = runner.run_base(&workload, mode);
        table.row(vec![
            mode.name().to_string(),
            r.alloc.to_string(),
            r.memcpy.to_string(),
            r.kernel.to_string(),
            r.total().to_string(),
            format!("{:.1}%", r.counters.occupancy.achieved() * 100.0),
        ]);
        reports.push((mode, r));
    }
    println!("{table}");

    println!("==== hardware counters (the paper's Figs 9/10 deep dive) ====");
    let mut counters = Table::new(vec![
        "mode",
        "control",
        "integer",
        "l1_load_miss",
        "l1_store_miss",
        "page_faults",
        "pages_prefetched",
    ]);
    for (mode, r) in &reports {
        counters.row(vec![
            mode.name().to_string(),
            r.counters.inst.get(InstClass::Control).to_string(),
            r.counters.inst.get(InstClass::Int).to_string(),
            format!("{:.4}", r.counters.l1.load_miss_rate()),
            format!("{:.4}", r.counters.l1.store_miss_rate()),
            r.counters.uvm.page_faults().to_string(),
            r.counters.uvm.pages_prefetched().to_string(),
        ]);
    }
    println!("{counters}");

    // The paper's decision guidance (its conclusion).
    let total = |m: TransferMode| {
        reports
            .iter()
            .find(|(mode, _)| *mode == m)
            .map(|(_, r)| r.total())
            .expect("mode present")
    };
    let std = total(TransferMode::Standard);
    let asy = total(TransferMode::Async);
    let pf = total(TransferMode::UvmPrefetch);
    println!("==== guidance ====");
    if pf < std.min(asy) {
        println!(
            "{name}: regular enough for the UVM prefetcher — use uvm_prefetch \
             (and add cp.async only if the kernel stages through shared memory)."
        );
    } else if asy < std {
        println!(
            "{name}: irregular access defeats the prefetcher — rewrite kernels \
             with cp.async (Async Memcpy) and keep explicit transfers."
        );
    } else {
        println!("{name}: the standard explicit-copy version is already the best choice.");
    }
}
