//! Extension study: what happens when managed footprints exceed the 40 GB
//! device — the oversubscription regime the paper's related work (Shao et
//! al.) studies. UVM keeps running; the eviction path pays for it.
//!
//! ```text
//! cargo run --release --example oversubscription [workload]
//! ```

use hetsim::extensions::{oversubscription_sweep, oversubscription_table};
use hetsim_workloads::{suite, InputSize};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vector_seq".into());
    println!("==== oversubscription sweep: {name} @ medium (capacity scaled) ====");
    let points = oversubscription_sweep(
        move || suite::by_name(&name, InputSize::Medium).expect("workload"),
        &[0.5, 1.0, 1.25, 1.5, 2.0, 3.0, 4.0],
    );
    println!("{}", oversubscription_table(&points));
    println!(
        "Reading: below 1.0 the working set fits and nothing evicts; past it,\n\
         every extra byte forces an LRU eviction (and a writeback when dirty),\n\
         so transfer time grows with the footprint/capacity ratio."
    );
}
