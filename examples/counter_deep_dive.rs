//! The paper's §4.2 in-depth analysis: use performance counters to reveal
//! *why* Async Memcpy helps some workloads and hurts others — control
//! instruction inflation (Fig 9) vs L1 miss-rate reduction (Fig 10).
//!
//! ```text
//! cargo run --release --example counter_deep_dive [size]
//! ```

use hetsim::experiment::Experiment;
use hetsim::figures::{self, DEEP_DIVE_WORKLOADS};
use hetsim_runtime::TransferMode;
use hetsim_workloads::InputSize;

fn main() {
    let size = std::env::args()
        .nth(1)
        .and_then(|s| InputSize::ALL.into_iter().find(|x| x.name() == s))
        .unwrap_or(InputSize::Large);
    let exp = Experiment::new();
    let counters = figures::fig9_fig10(&exp, size);

    println!("==== Figs 9 + 10: gemm / lud / yolov3 counters @ {size} ====");
    println!("{}", counters.to_table());

    println!("==== Takeaway 3, quantified ====");
    for w in DEEP_DIVE_WORKLOADS {
        let std = counters.row(w, TransferMode::Standard).expect("row");
        let asy = counters.row(w, TransferMode::Async).expect("row");
        let ctrl_inflation = asy.control as f64 / std.control as f64 - 1.0;
        let load_miss_delta = if std.load_miss_rate > 0.0 {
            1.0 - asy.load_miss_rate / std.load_miss_rate
        } else {
            0.0
        };
        let store_miss_delta = if std.store_miss_rate > 0.0 {
            1.0 - asy.store_miss_rate / std.store_miss_rate
        } else {
            0.0
        };
        println!(
            "{w:<8} async: control instructions {:+.1}%, L1 load-miss rate \
             {:+.1}%, store-miss rate {:+.1}%",
            ctrl_inflation * 100.0,
            -load_miss_delta * 100.0,
            -store_miss_delta * 100.0,
        );
    }
    println!(
        "\nReading: the cost of cp.async is control-instruction overhead; the \
         benefit only materializes where staging cuts cache miss rates (lud)."
    );
}
