//! Extension study: the classic alternatives to UVM — pinned host memory
//! and multi-stream copy/compute overlap (the prior art of the paper's
//! §2.2) — compared against uvm_prefetch on the same workload, with the
//! stream schedule drawn as a timeline.
//!
//! ```text
//! cargo run --release --example streams_overlap [workload] [size]
//! ```

use hetsim::extensions::{alternatives_table, overlap_table};
use hetsim::prelude::*;
use hetsim_engine::time::Nanos;
use hetsim_runtime::stream::StreamSchedule;
use hetsim_runtime::Timeline;
use hetsim_workloads::suite;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vector_seq".into());
    let size = std::env::args()
        .nth(2)
        .and_then(|s| InputSize::ALL.into_iter().find(|x| x.name() == s))
        .unwrap_or(InputSize::Large);

    let runner = Runner::new(Device::a100_epyc());
    let Some(w) = suite::by_name(&name, size) else {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    };

    println!("==== transfer-hiding alternatives: {name} @ {size} ====");
    println!("{}", alternatives_table(&runner, &w));

    println!("==== stream-count sweep (8 chunks) ====");
    println!("{}", overlap_table(&runner, &w, 8));

    // Draw a small 4-chunk, 2-stream schedule to show the overlap.
    let base = runner.run_base(&w, TransferMode::Standard);
    let schedule = StreamSchedule::chunked_pipeline(
        4,
        2,
        base.memcpy / 8u64,
        base.kernel / 4u64,
        base.memcpy / 8u64,
    );
    let outcome = schedule.run();
    println!("==== 4 chunks on 2 streams (h=H2D, k=kernel, d=D2H) ====");
    println!("{}", Timeline::from_schedule(&outcome));
    println!(
        "makespan {} vs serial {}",
        outcome.makespan(),
        base.memcpy + base.kernel + Nanos::ZERO
    );
}
