//! The paper's §6.2 proposal, implemented: overlap job *i+1*'s allocation
//! with job *i*'s GPU work in a KaaS-style batch (its Fig 14), on top of
//! `uvm_prefetch_async`.
//!
//! ```text
//! cargo run --release --example interjob_pipeline [workload] [jobs]
//! ```

use hetsim::batch::{InterJobPipeline, JobStages};
use hetsim::prelude::*;
use hetsim_workloads::suite;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vector_seq".into());
    let jobs: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    let runner = Runner::new(Device::a100_epyc());
    let Some(workload) = suite::by_name(&name, InputSize::Super) else {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    };

    // Measure one job under the best transfer mode, as §6.1 does.
    let report = runner.run_base(&workload, TransferMode::UvmPrefetchAsync);
    let stages = JobStages::from_report(&report);
    println!(
        "one {name} job under uvm_prefetch_async: cpu stage (alloc+free) {}, \
         gpu stage (transfer+kernel) {}",
        stages.cpu, stages.gpu
    );
    println!(
        "allocation share of the breakdown: {:.1}% (the paper reports ~37.7% \
         after UVM+Async Memcpy)\n",
        stages.cpu.as_nanos() as f64 / stages.total().as_nanos() as f64 * 100.0
    );

    let pipeline = InterJobPipeline::homogeneous(stages, jobs);
    println!("{}", pipeline.to_table());

    // The paper's Fig 14, drawn from the simulated schedules (first 4 jobs).
    let (serial, piped) = InterJobPipeline::homogeneous(stages, jobs.min(4)).timelines();
    println!("\nwithout inter-job pipeline:");
    println!("{serial}");
    println!("with inter-job pipeline:");
    println!("{piped}");

    let est = pipeline.estimate();
    println!(
        "\nwith {jobs} jobs: {:.1}% additional improvement from the inter-job \
         pipeline (the paper estimates >30% headroom in the ideal case)",
        est.improvement() * 100.0
    );
}
