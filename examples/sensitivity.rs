//! The paper's §5 sensitivity studies in one run: CUDA block count
//! (Fig 11), threads per block (Fig 12), and the L1-cache/shared-memory
//! carveout (Fig 13), on `vector_seq`.
//!
//! ```text
//! cargo run --release --example sensitivity [size]
//! ```

use hetsim::experiment::Experiment;
use hetsim::figures;
use hetsim_runtime::report::Component;
use hetsim_runtime::TransferMode;
use hetsim_workloads::InputSize;

fn main() {
    let size = std::env::args()
        .nth(1)
        .and_then(|s| InputSize::ALL.into_iter().find(|x| x.name() == s))
        .unwrap_or(InputSize::Large);
    let exp = Experiment::new().with_runs(10);

    println!("==== Fig 11: number of blocks (256 threads each) @ {size} ====");
    let blocks = figures::fig11(&exp, size);
    println!("{}", blocks.to_table());
    println!(
        "Takeaway 4a: totals stay within {:.1}% across 4096 -> 16 blocks.\n",
        (blocks.normalized(16, TransferMode::Standard) - 1.0).abs() * 100.0
    );

    println!("==== Fig 12: threads per block (64 blocks) @ {size} ====");
    let threads = figures::fig12(&exp, size);
    println!("{}", threads.to_table());
    println!("-- kernel-time series --");
    println!("{}", threads.kernel_table());
    let kernel = |t: u64, m: TransferMode| {
        threads
            .points()
            .iter()
            .find(|(p, _)| *p == t)
            .expect("point")
            .1
            .mean(m)
            .component(Component::Kernel)
            .as_nanos() as f64
    };
    println!(
        "Takeaway 4b: standard kernel time at 32 threads is {:.2}x the 128-thread \
         time; the async pipeline only degrades {:.2}x.\n",
        kernel(32, TransferMode::Standard) / kernel(128, TransferMode::Standard),
        kernel(32, TransferMode::Async) / kernel(128, TransferMode::Async),
    );

    println!("==== Fig 13: L1-cache/shared-memory carveout @ {size} ====");
    let carveout = figures::fig13(&exp, size);
    println!("{}", carveout.to_table());
    println!("-- kernel-time series --");
    println!("{}", carveout.kernel_table());
    println!(
        "Takeaway 5: tiny shared memory costs the async pipeline {:+.1}% vs its \
         32KB point; tiny L1 costs uvm_prefetch {:+.1}% vs its 32KB point.",
        (carveout.kernel_normalized(2, TransferMode::UvmPrefetchAsync)
            / carveout.kernel_normalized(32, TransferMode::UvmPrefetchAsync)
            - 1.0)
            * 100.0,
        (carveout.kernel_normalized(128, TransferMode::UvmPrefetch)
            / carveout.kernel_normalized(32, TransferMode::UvmPrefetch)
            - 1.0)
            * 100.0,
    );
}
