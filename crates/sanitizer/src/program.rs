//! Static checks over a [`GpuProgram`] description: buffer-role lints,
//! touch-sequence lints, and mode-compatibility lints.
//!
//! Everything here mirrors what the runtime's run pipeline actually does
//! with the description — every lint corresponds to a concrete silent
//! compensation (wrap, drop, no-op) or panic in `hetsim_runtime::run`.

use crate::diag::{Diagnostic, Lint, Report, Span};
use crate::CheckConfig;
use hetsim_gpu::kernel::KernelStyle;
use hetsim_runtime::program::{BufferRole, BufferSpec, GpuProgram};

/// Per-buffer aggregation of one lint across a kernel's touch sequences:
/// occurrence count plus the first offending touch.
#[derive(Debug, Clone)]
struct Agg {
    count: u64,
    first: Span,
    example: u64,
}

fn bump(map: &mut std::collections::BTreeMap<usize, Agg>, key: usize, span: Span, example: u64) {
    map.entry(key).and_modify(|a| a.count += 1).or_insert(Agg {
        count: 1,
        first: span,
        example,
    });
}

/// Runs every program-layer check against `program` and returns the
/// findings.
///
/// The checks are purely static: no simulation is run, only the
/// description (`buffers`, `kernels`, `page_touches`,
/// `prefetch_conflict`) is inspected, mirroring how the runtime consumes
/// it. Deterministic: the same program and config always produce the same
/// report, in the same order.
pub fn check_program(program: &dyn GpuProgram, cfg: &CheckConfig) -> Report {
    let mut report = Report::new();
    let name = program.name().to_string();
    let buffers = program.buffers();
    let kernels = program.kernels();
    let chunk = cfg.chunk_size.max(1);

    check_buffers(&mut report, &name, &buffers);
    check_stores(&mut report, &name, &buffers, &kernels);

    // --- touch-sequence lints -------------------------------------------
    let nchunks: Vec<u64> = buffers
        .iter()
        .map(|b| b.bytes.div_ceil(chunk).max(1))
        .collect();
    // (read, write) coverage per buffer across every kernel's sequences.
    let mut cov = vec![(false, false); buffers.len()];
    let mut all_sequenced = !kernels.is_empty();

    for (ki, kernel) in kernels.iter().enumerate() {
        if kernel.standard_style() == KernelStyle::StagedAsync {
            report.push(Diagnostic::new(
                Lint::UnhonorableStandardStyle,
                &name,
                Span::Kernel {
                    index: ki,
                    name: kernel.name().to_string(),
                },
                format!(
                    "kernel `{}` declares StagedAsync as its hand-written style, which \
                     standard and uvm modes cannot honor",
                    kernel.name()
                ),
                "only async modes run StagedAsync kernels; declare Direct or StagedSync \
                 as the standard style",
            ));
        }

        let rounds = kernel.invocations().min(cfg.max_rounds).max(1);
        let mut sequenced = false;
        let mut touches_seen = 0u64;
        let mut oob_buffer: Option<Agg> = None;
        let mut oob_chunk = std::collections::BTreeMap::new();
        let mut scratch = std::collections::BTreeMap::new();
        let mut input_write = std::collections::BTreeMap::new();

        for inv in 0..rounds {
            let Some(seq) = program.page_touches(ki, inv, chunk) else {
                break;
            };
            sequenced = true;
            touches_seen += seq.len() as u64;
            for (pos, t) in seq.iter().enumerate() {
                let span = Span::Touch {
                    kernel: ki,
                    invocation: inv,
                    position: pos,
                };
                if t.buffer >= buffers.len() {
                    match &mut oob_buffer {
                        Some(a) => a.count += 1,
                        None => {
                            oob_buffer = Some(Agg {
                                count: 1,
                                first: span,
                                example: t.buffer as u64,
                            })
                        }
                    }
                    continue;
                }
                let b = &buffers[t.buffer];
                if matches!(b.role, BufferRole::Scratch) {
                    bump(&mut scratch, t.buffer, span.clone(), t.chunk);
                }
                if t.chunk >= nchunks[t.buffer] {
                    bump(&mut oob_chunk, t.buffer, span.clone(), t.chunk);
                }
                if t.write && matches!(b.role, BufferRole::Input) {
                    bump(&mut input_write, t.buffer, span, t.chunk);
                }
                if t.write {
                    cov[t.buffer].1 = true;
                } else {
                    cov[t.buffer].0 = true;
                }
            }
        }

        if !sequenced {
            all_sequenced = false;
        } else if touches_seen == 0 {
            report.push(Diagnostic::new(
                Lint::EmptyTouchSequence,
                &name,
                Span::Kernel {
                    index: ki,
                    name: kernel.name().to_string(),
                },
                format!(
                    "kernel `{}` advertises a touch model but every sequence round is empty",
                    kernel.name()
                ),
                "an empty sequence still disables the address-ordered fallback; emit \
                 touches or return None",
            ));
        }

        if let Some(a) = oob_buffer {
            report.push(Diagnostic::new(
                Lint::TouchBufferOutOfRange,
                &name,
                a.first,
                format!(
                    "touch references buffer index {} but the program has {} buffers \
                     ({} touches affected)",
                    a.example,
                    buffers.len(),
                    a.count
                ),
                "the runtime panics resolving this touch; fix the model's buffer indices",
            ));
        }
        for (bi, a) in oob_chunk {
            report.push(Diagnostic::new(
                Lint::TouchChunkOutOfBounds,
                &name,
                a.first,
                format!(
                    "chunk {} is past buffer `{}` ({} chunks of {} bytes; {} touches affected)",
                    a.example, buffers[bi].name, nchunks[bi], chunk, a.count
                ),
                "the runtime silently wraps the index (chunk % count), touching a page \
                 the model did not intend; clamp or rescale the model",
            ));
        }
        for (bi, a) in scratch {
            report.push(Diagnostic::new(
                Lint::ScratchTouched,
                &name,
                a.first,
                format!(
                    "buffer `{}` is Scratch but the sequence touches it {} times",
                    buffers[bi].name, a.count
                ),
                "Scratch touches are silently dropped (device-only memory never \
                 far-faults); use a non-Scratch role or remove the touches",
            ));
        }
        for (bi, a) in input_write {
            report.push(Diagnostic::new(
                Lint::InputWritten,
                &name,
                a.first,
                format!(
                    "buffer `{}` is Input but the sequence writes it {} times",
                    buffers[bi].name, a.count
                ),
                "inputs are read-only on the device; declare InOut/Output or make the \
                 touches reads",
            ));
        }
    }

    // Coverage lints only make sense when every kernel is sequence-driven:
    // any non-sequenced kernel falls back to blanket address-ordered
    // touching, which migrates (and dirties) every buffer.
    if all_sequenced {
        for (bi, b) in buffers.iter().enumerate() {
            if matches!(b.role, BufferRole::Scratch) {
                continue;
            }
            let (read, write) = cov[bi];
            let span = Span::Buffer {
                index: bi,
                name: b.name.clone(),
            };
            if !read && !write {
                report.push(Diagnostic::new(
                    Lint::BufferNeverTouched,
                    &name,
                    span,
                    format!(
                        "buffer `{}` is never touched by any kernel's sequence",
                        b.name
                    ),
                    "sequence-driven kernels skip the blanket fallback, so the buffer \
                     silently never migrates; touch it or detach the model",
                ));
            } else if b.role.is_output() && !write {
                report.push(Diagnostic::new(
                    Lint::OutputNeverWritten,
                    &name,
                    span,
                    format!(
                        "buffer `{}` is {:?} but no sequence ever writes it",
                        b.name, b.role
                    ),
                    "the dirty-writeback phase transfers nothing for it; add write \
                     touches or declare it Input",
                ));
            }
        }
    }

    // --- mode-compatibility lints ---------------------------------------
    let conflict = program.prefetch_conflict();
    if conflict < 1.0 && kernels.len() == 1 {
        report.push(Diagnostic::new(
            Lint::ConflictWithoutSiblings,
            &name,
            Span::Workload,
            format!("prefetch_conflict is {conflict} but the program launches a single kernel"),
            "conflict refaults only apply from the second kernel onwards, so the \
             declared conflict never materializes; add the sibling kernel or declare 1.0",
        ));
    }
    if !buffers.is_empty()
        && buffers
            .iter()
            .all(|b| matches!(b.role, BufferRole::Scratch))
    {
        report.push(Diagnostic::new(
            Lint::AllScratch,
            &name,
            Span::Workload,
            format!(
                "all {} buffers are Scratch; no transfer mode moves any data",
                buffers.len()
            ),
            "the five configurations degenerate to identical runs; give at least one \
             buffer a transfer role",
        ));
    }

    report
}

fn check_buffers(report: &mut Report, name: &str, buffers: &[BufferSpec]) {
    for (i, b) in buffers.iter().enumerate() {
        if let Err(e) = BufferSpec::try_new(b.name.clone(), b.bytes, b.role) {
            report.push(Diagnostic::new(
                Lint::InvalidBufferSize,
                name,
                Span::Buffer {
                    index: i,
                    name: b.name.clone(),
                },
                e.to_string(),
                "construct buffers with BufferSpec::try_new to catch this at build time",
            ));
        }
        if let Some(j) = buffers[..i].iter().position(|p| p.name == b.name) {
            report.push(Diagnostic::new(
                Lint::DuplicateBufferName,
                name,
                Span::Buffer {
                    index: i,
                    name: b.name.clone(),
                },
                format!("buffer {i} `{}` duplicates buffer {j}", b.name),
                "rename the buffer; reports and access annotations key on buffer names",
            ));
        }
    }
}

fn check_stores(
    report: &mut Report,
    name: &str,
    buffers: &[BufferSpec],
    kernels: &[&dyn hetsim_gpu::kernel::KernelModel],
) {
    let outputs: Vec<&str> = buffers
        .iter()
        .filter(|b| b.role.is_output())
        .map(|b| b.name.as_str())
        .collect();
    if outputs.is_empty() || kernels.is_empty() {
        return;
    }
    let mut scratch_accesses = Vec::new();
    let any_store = kernels.iter().any(|k| {
        scratch_accesses.clear();
        k.local_accesses(0, 0, &mut scratch_accesses);
        scratch_accesses.iter().any(|a| !a.kind.is_load())
    });
    if !any_store {
        report.push(Diagnostic::new(
            Lint::OutputNeverStored,
            name,
            Span::Workload,
            format!(
                "program declares output buffers ({}) but no kernel's sampled access \
                 stream contains a store",
                outputs.join(", ")
            ),
            "give a kernel output stores (e.g. KernelSpec::with_stores) or declare the \
             buffers Input/Scratch",
        ));
    }
}
