//! Structured diagnostics: lint codes, severities, spans, and the
//! [`Report`] container with text and JSON renderers.

use std::fmt;

/// Every check the sanitizer performs, behind a stable lint code.
///
/// Codes are grouped by the description layer they inspect: `SAN-S*` for
/// stream schedules, `SAN-B*` for buffer specs, `SAN-T*` for page-touch
/// sequences, `SAN-M*` for transfer-mode compatibility, and `SAN-P*` for
/// the static performance advisor (see `crate::perf`). Codes are part of
/// the CLI contract (`hetsim check --format json`) and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// Two operations on different streams write overlapping chunk ranges
    /// of one buffer with no serializing stream, engine, or event edge.
    WriteWriteHazard,
    /// An unordered read/write pair on overlapping chunk ranges: one side
    /// may observe the other's partial update depending on timing.
    ReadWriteHazard,
    /// A stream waits on an event that is recorded later — or never — in
    /// issue order, making the wait a silent no-op at runtime.
    WaitUnrecordedEvent,
    /// A trace track carries stream spans under a name no [`Engine`]
    /// recognizes, so `ScheduleOutcome::ops` silently drops them.
    ///
    /// [`Engine`]: hetsim_runtime::stream::Engine
    UnknownEngineTrack,
    /// Under strict event semantics (`StreamSchedule::try_run`) the
    /// schedule cannot make progress: a cycle of event waits — including a
    /// stream waiting on an event it records itself — blocks every
    /// participating stream forever. The legacy `run()` entry point
    /// silently treats the waits as no-ops instead.
    EventWaitCycle,
    /// A buffer spec fails [`BufferSpec::try_new`] validation (zero size,
    /// or large enough to alias the next buffer's UVM base address).
    ///
    /// [`BufferSpec::try_new`]: hetsim_runtime::program::BufferSpec::try_new
    InvalidBufferSize,
    /// Two buffers share a name, making reports and access annotations
    /// ambiguous.
    DuplicateBufferName,
    /// The program declares `Output`/`InOut` buffers but no kernel's
    /// sampled access stream contains a single store.
    OutputNeverStored,
    /// A page touch indexes past the buffer list — the runtime's
    /// `resolve_touches` would panic on it.
    TouchBufferOutOfRange,
    /// A page touch's chunk index is at or past the buffer's chunk count;
    /// the runtime silently wraps it (`chunk % nchunks`), touching a
    /// different page than the model intended.
    TouchChunkOutOfBounds,
    /// A touch sequence addresses a `Scratch` buffer; the runtime silently
    /// drops those touches (device-only memory never far-faults).
    ScratchTouched,
    /// A touch sequence writes an `Input` buffer, contradicting its
    /// declared role (inputs are read-only on the device).
    InputWritten,
    /// An `Output`/`InOut` buffer is never written by any touch sequence,
    /// so the dirty-writeback phase transfers nothing for it.
    OutputNeverWritten,
    /// A non-`Scratch` buffer is never touched even though every kernel is
    /// sequence-driven — the blanket address-ordered fallback is skipped,
    /// so the buffer silently never migrates.
    BufferNeverTouched,
    /// A kernel advertises a touch model but every produced sequence is
    /// empty, which disables the fallback path without doing any work.
    EmptyTouchSequence,
    /// A kernel's hand-written style is already `StagedAsync`, so
    /// non-async transfer modes cannot honor their requested style.
    UnhonorableStandardStyle,
    /// `prefetch_conflict < 1.0` on a single-kernel program: the runtime
    /// only applies conflict refaults from the second kernel onwards, so
    /// the declared conflict can never materialize.
    ConflictWithoutSiblings,
    /// Every buffer is `Scratch`: no transfer mode moves any data, so all
    /// five configurations degenerate to the same run.
    AllScratch,
    /// A UVM mode was chosen (or would be) for a workload whose predicted
    /// fault-service stall exceeds the kernel's own compute time: demand
    /// paging dominates and an explicit-copy mode is predicted to win.
    UvmFaultDominated,
    /// An async mode is selected but the critical-path analysis finds zero
    /// overlap slack: kernels cannot hide any copy bytes, so `cp.async`
    /// staging pays its instruction overhead for nothing.
    AsyncZeroSlack,
    /// The program footprint exceeds the device's HBM carveout: the UVM
    /// LRU will thrash, re-migrating evicted chunks on every pass.
    ThrashPredicted,
    /// The bytes an async mode would stage through pinned host buffers
    /// exceed the configured pinned-memory budget.
    PinnedBudgetExceeded,
}

impl Lint {
    /// Every lint, in code order (the README table follows this order).
    pub const ALL: [Lint; 22] = [
        Lint::WriteWriteHazard,
        Lint::ReadWriteHazard,
        Lint::WaitUnrecordedEvent,
        Lint::UnknownEngineTrack,
        Lint::EventWaitCycle,
        Lint::InvalidBufferSize,
        Lint::DuplicateBufferName,
        Lint::OutputNeverStored,
        Lint::TouchBufferOutOfRange,
        Lint::TouchChunkOutOfBounds,
        Lint::ScratchTouched,
        Lint::InputWritten,
        Lint::OutputNeverWritten,
        Lint::BufferNeverTouched,
        Lint::EmptyTouchSequence,
        Lint::UnhonorableStandardStyle,
        Lint::ConflictWithoutSiblings,
        Lint::AllScratch,
        Lint::UvmFaultDominated,
        Lint::AsyncZeroSlack,
        Lint::ThrashPredicted,
        Lint::PinnedBudgetExceeded,
    ];

    /// The stable lint code, e.g. `SAN-S001`.
    pub fn code(self) -> &'static str {
        match self {
            Lint::WriteWriteHazard => "SAN-S001",
            Lint::ReadWriteHazard => "SAN-S002",
            Lint::WaitUnrecordedEvent => "SAN-S003",
            Lint::UnknownEngineTrack => "SAN-S004",
            Lint::EventWaitCycle => "SAN-S005",
            Lint::InvalidBufferSize => "SAN-B001",
            Lint::DuplicateBufferName => "SAN-B002",
            Lint::OutputNeverStored => "SAN-B003",
            Lint::TouchBufferOutOfRange => "SAN-T001",
            Lint::TouchChunkOutOfBounds => "SAN-T002",
            Lint::ScratchTouched => "SAN-T003",
            Lint::InputWritten => "SAN-T004",
            Lint::OutputNeverWritten => "SAN-T005",
            Lint::BufferNeverTouched => "SAN-T006",
            Lint::EmptyTouchSequence => "SAN-T007",
            Lint::UnhonorableStandardStyle => "SAN-M001",
            Lint::ConflictWithoutSiblings => "SAN-M002",
            Lint::AllScratch => "SAN-M003",
            Lint::UvmFaultDominated => "SAN-P001",
            Lint::AsyncZeroSlack => "SAN-P002",
            Lint::ThrashPredicted => "SAN-P003",
            Lint::PinnedBudgetExceeded => "SAN-P004",
        }
    }

    /// Short human title used as the diagnostic headline.
    pub fn title(self) -> &'static str {
        match self {
            Lint::WriteWriteHazard => "unordered write/write overlap across streams",
            Lint::ReadWriteHazard => "unordered read/write overlap across streams",
            Lint::WaitUnrecordedEvent => "wait on an event never recorded before it",
            Lint::UnknownEngineTrack => "stream spans on a track no engine recognizes",
            Lint::EventWaitCycle => "event-wait cycle deadlocks strict execution",
            Lint::InvalidBufferSize => "invalid buffer size",
            Lint::DuplicateBufferName => "duplicate buffer name",
            Lint::OutputNeverStored => "output buffers declared but no kernel stores",
            Lint::TouchBufferOutOfRange => "touch indexes past the buffer list",
            Lint::TouchChunkOutOfBounds => "touch chunk index out of bounds",
            Lint::ScratchTouched => "touch sequence addresses a Scratch buffer",
            Lint::InputWritten => "touch sequence writes an Input buffer",
            Lint::OutputNeverWritten => "output buffer never written by any sequence",
            Lint::BufferNeverTouched => "buffer never touched by any sequence",
            Lint::EmptyTouchSequence => "touch model produces only empty sequences",
            Lint::UnhonorableStandardStyle => "kernel style unhonorable outside async modes",
            Lint::ConflictWithoutSiblings => "prefetch conflict declared with a single kernel",
            Lint::AllScratch => "every buffer is Scratch",
            Lint::UvmFaultDominated => "UVM chosen but fault stalls predicted to dominate",
            Lint::AsyncZeroSlack => "async mode with zero overlap slack",
            Lint::ThrashPredicted => "footprint exceeds HBM carveout: thrash predicted",
            Lint::PinnedBudgetExceeded => "pinned staging bytes exceed the budget",
        }
    }

    /// The severity this lint fires at.
    pub fn severity(self) -> Severity {
        match self {
            Lint::WriteWriteHazard
            | Lint::ReadWriteHazard
            | Lint::EventWaitCycle
            | Lint::InvalidBufferSize
            | Lint::TouchBufferOutOfRange => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but survivable: the runtime silently compensates (wraps,
    /// drops, or no-ops) in a way that likely contradicts the spec's
    /// intent. Promoted to a failure under `--deny warnings`.
    Warning,
    /// The description is wrong: the runtime would panic, race, or produce
    /// order-dependent results.
    Error,
}

impl Severity {
    /// Lower-case name used by both renderers.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the description a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// The workload as a whole.
    Workload,
    /// One buffer of the program.
    Buffer {
        /// Index into `GpuProgram::buffers`.
        index: usize,
        /// The buffer's name.
        name: String,
    },
    /// One kernel of the program.
    Kernel {
        /// Index into `GpuProgram::kernels`.
        index: usize,
        /// The kernel's name.
        name: String,
    },
    /// One entry of a page-touch sequence.
    Touch {
        /// Kernel index the sequence belongs to.
        kernel: usize,
        /// Invocation (round) the sequence belongs to.
        invocation: u64,
        /// Position within the sequence.
        position: usize,
    },
    /// A pair of schedule operations (issue-order op indices).
    OpPair {
        /// Issue-order index of the earlier operation.
        first: usize,
        /// Issue-order index of the later operation.
        second: usize,
    },
    /// One schedule item (issue-order index over all items, including
    /// event markers).
    Item {
        /// Issue-order item index.
        index: usize,
    },
    /// A trace track.
    Track {
        /// The track's name.
        name: String,
    },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Workload => f.write_str("workload"),
            Span::Buffer { index, name } => write!(f, "buffer {index} `{name}`"),
            Span::Kernel { index, name } => write!(f, "kernel {index} `{name}`"),
            Span::Touch {
                kernel,
                invocation,
                position,
            } => write!(
                f,
                "kernel {kernel}, invocation {invocation}, touch {position}"
            ),
            Span::OpPair { first, second } => write!(f, "ops {first} and {second}"),
            Span::Item { index } => write!(f, "item {index}"),
            Span::Track { name } => write!(f, "track `{name}`"),
        }
    }
}

/// One finding: a lint instance tied to a workload and a span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which check fired.
    pub lint: Lint,
    /// Severity (the lint's default; kept on the diagnostic so renderers
    /// and JSON consumers need no lint table).
    pub severity: Severity,
    /// Workload (or schedule) name the finding belongs to.
    pub workload: String,
    /// Where the finding points.
    pub span: Span,
    /// What is wrong, with the concrete names/indices/ranges involved.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

impl Diagnostic {
    /// Builds a diagnostic for `lint` at its default severity.
    pub fn new<W, M, H>(lint: Lint, workload: W, span: Span, message: M, help: H) -> Self
    where
        W: Into<String>,
        M: Into<String>,
        H: Into<String>,
    {
        Diagnostic {
            lint,
            severity: lint.severity(),
            workload: workload.into(),
            span,
            message: message.into(),
            help: help.into(),
        }
    }

    /// The stable lint code, e.g. `SAN-T002`.
    pub fn code(&self) -> &'static str {
        self.lint.code()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code(), self.message)?;
        writeln!(f, "  --> {}: {}", self.workload, self.span)?;
        write!(f, "  = help: {}", self.help)
    }
}

/// The result of one or more checks: an ordered list of diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All findings, in check order (stable across runs).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends `diag` to the report.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether the report passes: no errors, and — under `deny_warnings` —
    /// no warnings either.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Renders every diagnostic plus a summary line as rustc-style text.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = write!(
            out,
            "{} error{}, {} warning{}",
            self.errors(),
            if self.errors() == 1 { "" } else { "s" },
            self.warnings(),
            if self.warnings() == 1 { "" } else { "s" },
        );
        out
    }

    /// Renders the report as a single JSON object:
    /// `{"diagnostics": [...], "errors": N, "warnings": M}`.
    ///
    /// Hand-rolled (the workspace is zero-dependency); strings are escaped
    /// per RFC 8259.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"workload\":\"{}\",\"span\":{},\"message\":\"{}\",\"help\":\"{}\"}}",
                d.code(),
                d.severity,
                escape(&d.workload),
                span_json(&d.span),
                escape(&d.message),
                escape(&d.help),
            );
        }
        let _ = write!(
            out,
            "],\"errors\":{},\"warnings\":{}}}",
            self.errors(),
            self.warnings()
        );
        out
    }
}

fn span_json(span: &Span) -> String {
    match span {
        Span::Workload => "{\"kind\":\"workload\"}".to_string(),
        Span::Buffer { index, name } => format!(
            "{{\"kind\":\"buffer\",\"index\":{index},\"name\":\"{}\"}}",
            escape(name)
        ),
        Span::Kernel { index, name } => format!(
            "{{\"kind\":\"kernel\",\"index\":{index},\"name\":\"{}\"}}",
            escape(name)
        ),
        Span::Touch {
            kernel,
            invocation,
            position,
        } => format!(
            "{{\"kind\":\"touch\",\"kernel\":{kernel},\"invocation\":{invocation},\"position\":{position}}}"
        ),
        Span::OpPair { first, second } => {
            format!("{{\"kind\":\"op_pair\",\"first\":{first},\"second\":{second}}}")
        }
        Span::Item { index } => format!("{{\"kind\":\"item\",\"index\":{index}}}"),
        Span::Track { name } => {
            format!("{{\"kind\":\"track\",\"name\":\"{}\"}}", escape(name))
        }
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Lint::TouchChunkOutOfBounds,
            "bfs",
            Span::Touch {
                kernel: 0,
                invocation: 3,
                position: 17,
            },
            "chunk 40 is past buffer `levels` (8 chunks)",
            "clamp the model's chunk indices to the buffer's chunk count",
        ));
        r.push(Diagnostic::new(
            Lint::WriteWriteHazard,
            "adv",
            Span::OpPair {
                first: 0,
                second: 1,
            },
            "both write \"data\" chunks 0..4",
            "serialize with an event",
        ));
        r
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for l in Lint::ALL {
            assert!(seen.insert(l.code()), "duplicate code {}", l.code());
            assert!(l.code().starts_with("SAN-"));
        }
        assert_eq!(Lint::WriteWriteHazard.code(), "SAN-S001");
        assert_eq!(Lint::TouchBufferOutOfRange.code(), "SAN-T001");
    }

    #[test]
    fn counts_and_clean() {
        let r = sample();
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(!r.is_clean(false));
        let clean = Report::new();
        assert!(clean.is_clean(true));
        let mut warn_only = Report::new();
        warn_only.push(Diagnostic::new(
            Lint::ScratchTouched,
            "w",
            Span::Workload,
            "m",
            "h",
        ));
        assert!(warn_only.is_clean(false));
        assert!(!warn_only.is_clean(true));
    }

    #[test]
    fn text_rendering() {
        let t = sample().to_text();
        assert!(t.contains("warning[SAN-T002]"), "{t}");
        assert!(t.contains("error[SAN-S001]"), "{t}");
        assert!(
            t.contains("--> bfs: kernel 0, invocation 3, touch 17"),
            "{t}"
        );
        assert!(t.ends_with("1 error, 1 warning"), "{t}");
    }

    #[test]
    fn json_is_valid_and_escaped() {
        let mut r = sample();
        r.push(Diagnostic::new(
            Lint::DuplicateBufferName,
            "quo\"ted",
            Span::Buffer {
                index: 1,
                name: "a\\b".to_string(),
            },
            "line\nbreak",
            "h",
        ));
        let j = r.to_json();
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"warnings\":2"));
        assert!(j.contains("quo\\\"ted"));
        assert!(j.contains("a\\\\b"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"span\":{\"kind\":\"op_pair\",\"first\":0,\"second\":1}"));
        // Structural sanity: balanced braces/brackets outside strings.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in j.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
