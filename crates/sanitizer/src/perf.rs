//! Static performance analysis: the transfer-mode advisor (`SAN-P*`).
//!
//! [`advise`] predicts, per workload × device, what each of the five
//! [`TransferMode`]s would cost — alloc, transfer, and kernel time —
//! *without running the simulator*. It does so by evaluating the same
//! closed-form cost primitives the runtime composes (link transfer times,
//! fault-batch service stalls, the analytic kernel executor, the affine
//! allocation model) over an independent mirror of the UVM residency state
//! machine: per-buffer chunk bitmaps driven by prefix prefetch, trailing
//! displacement, address-ordered range walks, and exact replay of
//! `page_touches` sequences through a [`FaultBatcher`].
//!
//! Because the mirror is a from-scratch reimplementation of the runtime's
//! memory-state evolution, agreement with the simulator is a *checkable
//! property*, not a tautology — `tests/advisor_validation.rs` sweeps the
//! whole workload registry and asserts the advisor's top-ranked mode
//! matches the measured winner.
//!
//! Three analyses feed the [`ModeAdvice`] verdict:
//!
//! * [`OverlapAnalysis`] — critical path of the explicit-copy stream DAG:
//!   total copy time vs. kernel time (what fraction of copy bytes *could*
//!   hide behind kernels), and whether `cp.async` staging actually speeds
//!   the kernels up.
//! * [`DataflowAnalysis`] — buffer dataflow over `page_touches` sequences:
//!   touch density, mean chunk reuse distance, predicted fault-batch fill,
//!   and the thrash onset from footprint vs. the HBM carveout.
//! * [`BudgetCheck`] — oversubscription ratio and the pinned-staging
//!   budget async modes would consume.
//!
//! Findings surface as advisory `SAN-P001`–`SAN-P004` lints (all
//! warnings), gated so they only fire on modes the advisor predicts to be
//! materially slower than the best — a mode the advisor itself ranks first
//! never lints.
//!
//! # Known blind spots
//!
//! The mirror models no LRU capacity eviction: footprints at or under the
//! device carveout never evict, and beyond it the advisor flags
//! `SAN-P003` instead of simulating the thrash (see `docs/SANITIZER.md`).
//! Measurement noise (jitter, host chip placement) is out of scope — the
//! advisor predicts the noise-free base run.

use crate::diag::{Diagnostic, Lint, Report, Span};
use hetsim_engine::time::Nanos;
use hetsim_gpu::exec::{ExecEnv, KernelExecutor};
use hetsim_mem::link::{CpuGpuLink, LinkPath};
use hetsim_mem::tlb::TlbConfig;
use hetsim_runtime::program::{BufferRole, BufferSpec, GpuProgram};
use hetsim_runtime::{Device, TransferMode};
use hetsim_uvm::fault::FaultConfig;
use hetsim_uvm::prefetch::PrefetchModel;
use hetsim_uvm::touch::{FaultBatcher, TouchConfig};

/// Upper bound on sequenced touch rounds replayed per kernel, mirroring
/// the runtime's own cap.
const MAX_SEQUENCED_ROUNDS: u64 = 64;

/// Knobs for [`advise`].
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Pinned host memory available for async-copy staging, bytes.
    /// [`Lint::PinnedBudgetExceeded`] fires when an async mode's input
    /// footprint exceeds it.
    pub pinned_budget: u64,
    /// A mode lints only when its predicted total exceeds the predicted
    /// best by this factor — the zero-false-positive gate: the advisor
    /// never warns about a mode it would itself recommend (or any mode
    /// within the ratio of it).
    pub lint_ratio: f64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            // 64 GiB: half the paper platform's host DRAM, comfortably
            // above every registry footprint.
            pinned_budget: 64 << 30,
            lint_ratio: 1.10,
        }
    }
}

/// Predicted cost breakdown of one transfer mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ModePrediction {
    /// The mode this prediction is for.
    pub mode: TransferMode,
    /// Predicted allocation (+teardown) time.
    pub alloc: Nanos,
    /// Predicted transfer time (copies, prefetch, migration, writeback).
    pub memcpy: Nanos,
    /// Predicted kernel time, including the exposed fault-stall residue.
    pub kernel: Nanos,
    /// Fault-service stall exposed as kernel inflation (zero outside UVM).
    pub fault_stall: Nanos,
    /// One-line explanation of where this mode's time goes.
    pub rationale: String,
}

impl ModePrediction {
    /// Total predicted time (alloc + memcpy + kernel; the constant system
    /// overhead is mode-independent and excluded from the ranking metric).
    pub fn total(&self) -> Nanos {
        self.alloc + self.memcpy + self.kernel
    }
}

/// Critical-path/overlap analysis of the explicit-copy stream DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapAnalysis {
    /// Total bytes crossing the link under explicit copies (h2d + d2h).
    pub copy_bytes: u64,
    /// Time those copies occupy the link (pageable path).
    pub copy_time: Nanos,
    /// Kernel time under each kernel's standard style.
    pub standard_kernel: Nanos,
    /// Kernel time with async modes' `cp.async` staging applied.
    pub async_kernel: Nanos,
    /// Fraction of copy time that kernels are long enough to hide if
    /// copies and compute overlapped perfectly (capped at 1).
    pub hidable_fraction: f64,
    /// Relative kernel speedup from `cp.async` staging:
    /// `1 - async/standard`. Non-positive means the staging overhead
    /// outweighs the overlap — zero slack.
    pub async_gain: f64,
}

/// Buffer dataflow analysis over `page_touches` sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct DataflowAnalysis {
    /// Whether any kernel models a temporal touch sequence.
    pub sequenced: bool,
    /// Total page touches across all kernels and rounds.
    pub total_touches: u64,
    /// Distinct chunks addressed by those touches.
    pub distinct_chunks: u64,
    /// Footprint in chunks (every non-`Scratch` buffer).
    pub footprint_chunks: u64,
    /// Touches per footprint chunk (≥ 1 means revisits; high density under
    /// demand paging predicts fault-dominated kernels).
    pub touch_density: f64,
    /// Mean distance (in touches) between successive touches of the same
    /// chunk; zero when no chunk is revisited.
    pub mean_reuse_distance: f64,
    /// Predicted mean fault-batch fill under plain demand paging (out of
    /// the device's batch capacity; low fill pays the fixed batch latency
    /// over few faults).
    pub mean_batch_fill: f64,
    /// Footprint over the device HBM carveout.
    pub oversubscription: f64,
    /// Fraction of the footprint that cannot be device-resident at once:
    /// `max(0, 1 - capacity/footprint)` — the predicted thrash share.
    pub thrash_fraction: f64,
}

/// Oversubscription and pinned-staging budget check.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetCheck {
    /// Bytes async modes would stage through pinned host memory (input
    /// buffers).
    pub staging_bytes: u64,
    /// The configured pinned budget.
    pub pinned_budget: u64,
    /// Program footprint, bytes.
    pub footprint: u64,
    /// Device HBM carveout available to managed memory, bytes.
    pub device_capacity: u64,
    /// `footprint / device_capacity`.
    pub oversubscription: f64,
    /// Whether the staging fits the pinned budget.
    pub within_budget: bool,
}

/// The advisor's verdict for one workload on one device: all five modes
/// ranked by predicted total time, the three analyses, and any advisory
/// `SAN-P*` findings.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeAdvice {
    /// Workload name.
    pub workload: String,
    /// Device name.
    pub device: &'static str,
    /// Predictions for every mode, ascending by [`ModePrediction::total`]
    /// (ties keep [`TransferMode::ALL`] order).
    pub ranked: Vec<ModePrediction>,
    /// Stream-DAG overlap analysis.
    pub overlap: OverlapAnalysis,
    /// Touch-sequence dataflow analysis.
    pub dataflow: DataflowAnalysis,
    /// Oversubscription/pinned budget check.
    pub budget: BudgetCheck,
    /// Advisory `SAN-P*` findings.
    pub report: Report,
}

impl ModeAdvice {
    /// The top-ranked (predicted fastest) mode.
    pub fn best(&self) -> &ModePrediction {
        &self.ranked[0]
    }

    /// Renders the advice as one JSON object (hand-rolled; the workspace
    /// is zero-dependency). The shape is part of the CLI contract
    /// (`hetsim advise --format json`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"workload\":\"{}\",\"device\":\"{}\",\"best\":\"{}\",\"ranked\":[",
            json_escape(&self.workload),
            json_escape(self.device),
            self.best().mode.name()
        );
        for (i, p) in self.ranked.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"mode\":\"{}\",\"alloc\":{},\"memcpy\":{},\"kernel\":{},\"fault_stall\":{},\"total\":{},\"rationale\":\"{}\"}}",
                p.mode.name(),
                p.alloc.as_nanos(),
                p.memcpy.as_nanos(),
                p.kernel.as_nanos(),
                p.fault_stall.as_nanos(),
                p.total().as_nanos(),
                json_escape(&p.rationale),
            );
        }
        let o = &self.overlap;
        let _ = write!(
            out,
            "],\"overlap\":{{\"copy_bytes\":{},\"copy_time\":{},\"standard_kernel\":{},\"async_kernel\":{},\"hidable_fraction\":{},\"async_gain\":{}}}",
            o.copy_bytes,
            o.copy_time.as_nanos(),
            o.standard_kernel.as_nanos(),
            o.async_kernel.as_nanos(),
            json_f64(o.hidable_fraction),
            json_f64(o.async_gain),
        );
        let d = &self.dataflow;
        let _ = write!(
            out,
            ",\"dataflow\":{{\"sequenced\":{},\"total_touches\":{},\"distinct_chunks\":{},\"footprint_chunks\":{},\"touch_density\":{},\"mean_reuse_distance\":{},\"mean_batch_fill\":{},\"oversubscription\":{},\"thrash_fraction\":{}}}",
            d.sequenced,
            d.total_touches,
            d.distinct_chunks,
            d.footprint_chunks,
            json_f64(d.touch_density),
            json_f64(d.mean_reuse_distance),
            json_f64(d.mean_batch_fill),
            json_f64(d.oversubscription),
            json_f64(d.thrash_fraction),
        );
        let b = &self.budget;
        let _ = write!(
            out,
            ",\"budget\":{{\"staging_bytes\":{},\"pinned_budget\":{},\"footprint\":{},\"device_capacity\":{},\"oversubscription\":{},\"within_budget\":{}}}",
            b.staging_bytes,
            b.pinned_budget,
            b.footprint,
            b.device_capacity,
            json_f64(b.oversubscription),
            b.within_budget,
        );
        let _ = write!(out, ",\"report\":{}}}", self.report.to_json());
        out
    }
}

/// Deterministic JSON float rendering; non-finite values render as 0.
fn json_f64(f: f64) -> String {
    if f.is_finite() {
        format!("{f}")
    } else {
        "0".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The UVM residency mirror.
// ---------------------------------------------------------------------------

/// One resolved touch against the mirror's buffer layout.
#[derive(Debug, Clone, Copy)]
struct MirrorTouch {
    buffer: usize,
    chunk: u64,
    write: bool,
    host_backed: bool,
}

/// Per-buffer chunk residency/dirty bitmaps, laid out at the same
/// chunk-aligned bases the runtime uses (`(i+1) << 42`).
struct BufMirror {
    base_chunk: u64,
    nchunks: u64,
    resident: Vec<bool>,
    dirty: Vec<bool>,
}

/// An independent mirror of the UVM space's state machine, priced with
/// the link's pure time queries. No LRU/capacity eviction is modelled —
/// the advisor's documented blind spot.
struct UvmMirror<'a> {
    chunk_size: u64,
    fault: FaultConfig,
    touch: TouchConfig,
    link: &'a CpuGpuLink,
    bufs: Vec<BufMirror>,
    migrated: u64,
    prefetched: u64,
    heuristic: u64,
    /// Every fault-batch fill observed, for [`DataflowAnalysis`].
    fills: Vec<u64>,
}

impl<'a> UvmMirror<'a> {
    fn new(device: &'a Device, buffers: &[BufferSpec]) -> Self {
        let chunk_size = device.uvm.chunk_size;
        let bufs = buffers
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let base = (i as u64 + 1) << 42;
                let nchunks = if b.bytes == 0 {
                    0
                } else {
                    b.bytes.div_ceil(chunk_size)
                };
                BufMirror {
                    base_chunk: base / chunk_size,
                    nchunks,
                    resident: vec![false; nchunks as usize],
                    dirty: vec![false; nchunks as usize],
                }
            })
            .collect();
        UvmMirror {
            chunk_size,
            fault: device.uvm.fault,
            touch: device.uvm.touch,
            link: &device.link,
            bufs,
            migrated: 0,
            prefetched: 0,
            heuristic: 0,
            fills: Vec::new(),
        }
    }

    /// `cudaMemPrefetchAsync` of a buffer's non-resident prefix.
    fn prefetch_range(&mut self, bi: usize, coverage: f64) -> Nanos {
        let b = &mut self.bufs[bi];
        let pending: Vec<usize> = (0..b.nchunks as usize)
            .filter(|&i| !b.resident[i])
            .collect();
        let n = (pending.len() as f64 * coverage).round() as usize;
        let mut moved = 0u64;
        for &i in pending.iter().take(n) {
            b.resident[i] = true;
            moved += 1;
        }
        if moved == 0 {
            return Nanos::ZERO;
        }
        self.prefetched += moved;
        self.link
            .transfer_time(LinkPath::BulkPrefetch, moved * self.chunk_size)
    }

    /// Address-ordered demand walk of a whole buffer.
    fn demand_touch_range(&mut self, bi: usize, write: bool, host_backed: bool) -> (Nanos, Nanos) {
        let b = &mut self.bufs[bi];
        let mut faulted = 0u64;
        for i in 0..b.nchunks as usize {
            if !b.resident[i] {
                b.resident[i] = true;
                faulted += 1;
            }
            b.dirty[i] = b.dirty[i] || write;
        }
        if faulted == 0 {
            return (Nanos::ZERO, Nanos::ZERO);
        }
        let stall = self.fault.service_stall(faulted);
        // An up-front sweep retires capacity-filled batches + a remainder.
        let cap = self.fault.batch_capacity as u64;
        let mut remaining = faulted;
        while remaining > 0 {
            let fill = remaining.min(cap);
            self.fills.push(fill);
            remaining -= fill;
        }
        let transfer = if host_backed {
            self.migrated += faulted;
            self.link.chunked_transfer_time(
                LinkPath::DemandMigration,
                faulted * self.chunk_size,
                self.chunk_size * cap,
            )
        } else {
            Nanos::ZERO
        };
        (stall, transfer)
    }

    /// Temporal-order sequence replay: partial batches via [`FaultBatcher`]
    /// plus the driver's region-growing speculation.
    fn demand_touch_sequence(&mut self, touches: &[MirrorTouch]) -> (Nanos, Nanos) {
        let mut batcher = FaultBatcher::new(self.fault, self.touch);
        let mut spec_block: u64 = 1;
        let mut last_fault: Option<u64> = None;
        let mut faulted = 0u64;
        let mut migrated = 0u64;
        let mut heuristic = 0u64;
        for t in touches {
            let b = &mut self.bufs[t.buffer];
            let i = t.chunk as usize;
            if b.resident[i] {
                b.dirty[i] = b.dirty[i] || t.write;
                batcher.hit();
                continue;
            }
            faulted += 1;
            batcher.fault();
            let gidx = b.base_chunk + t.chunk;
            let adjacent = last_fault.is_some_and(|p| gidx.abs_diff(p) <= spec_block.max(4));
            spec_block = if adjacent {
                (spec_block * 2).min(self.touch.max_spec_block.max(1))
            } else {
                1
            };
            last_fault = Some(gidx);
            b.resident[i] = true;
            b.dirty[i] = b.dirty[i] || t.write;
            if t.host_backed {
                migrated += 1;
            }
            // The speculative block after the faulting chunk, clipped to
            // managed ranges.
            for c in gidx + 1..gidx + spec_block {
                if let Some((bj, off)) = self.owner(c) {
                    let spec = &mut self.bufs[bj];
                    if !spec.resident[off] {
                        spec.resident[off] = true;
                        heuristic += 1;
                        if t.host_backed {
                            migrated += 1;
                        }
                    }
                }
            }
        }
        if faulted == 0 {
            return (Nanos::ZERO, Nanos::ZERO);
        }
        let fills = batcher.finish();
        let mut stall = Nanos::ZERO;
        for &fill in &fills {
            stall += self.fault.batch_latency + self.fault.per_fault * fill as u64;
            self.fills.push(fill as u64);
        }
        self.heuristic += heuristic;
        let transfer = if migrated > 0 {
            self.migrated += migrated;
            self.link.chunked_transfer_time(
                LinkPath::DemandMigration,
                migrated * self.chunk_size,
                self.chunk_size * self.fault.batch_capacity as u64,
            )
        } else {
            Nanos::ZERO
        };
        (stall, transfer)
    }

    /// Which buffer (if any) owns global chunk index `gidx`.
    fn owner(&self, gidx: u64) -> Option<(usize, usize)> {
        for (bi, b) in self.bufs.iter().enumerate() {
            if gidx >= b.base_chunk && gidx < b.base_chunk + b.nchunks {
                return Some((bi, (gidx - b.base_chunk) as usize));
            }
        }
        None
    }

    /// Displaces the trailing `fraction` of a buffer's resident chunks
    /// back to the host (prefetch-conflict pathology), clearing dirty.
    fn displace_fraction(&mut self, bi: usize, fraction: f64) {
        let b = &mut self.bufs[bi];
        let resident: Vec<usize> = (0..b.nchunks as usize).filter(|&i| b.resident[i]).collect();
        let n = (resident.len() as f64 * fraction).round() as usize;
        for &i in resident.iter().rev().take(n) {
            b.resident[i] = false;
            b.dirty[i] = false;
        }
    }

    /// Writes a buffer's dirty resident chunks back, clearing dirty.
    fn writeback_dirty(&mut self, bi: usize, path: LinkPath) -> Nanos {
        let b = &mut self.bufs[bi];
        let mut dirty = 0u64;
        for i in 0..b.nchunks as usize {
            if b.resident[i] && b.dirty[i] {
                b.dirty[i] = false;
                dirty += 1;
            }
        }
        if dirty == 0 {
            return Nanos::ZERO;
        }
        self.link.transfer_time(path, dirty * self.chunk_size)
    }

    /// `pages_migrated / (migrated + prefetched + heuristic)` — drives the
    /// managed-teardown cost.
    fn demand_fraction(&self) -> f64 {
        let touched = self.migrated + self.prefetched + self.heuristic;
        if touched == 0 {
            0.0
        } else {
            self.migrated as f64 / touched as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Per-mode prediction.
// ---------------------------------------------------------------------------

/// Everything one UVM-mode prediction produces beyond the breakdown.
struct UvmOutcome {
    memcpy: Nanos,
    kernel: Nanos,
    stall_exposed: Nanos,
    coverage: f64,
    demand_fraction: f64,
    fills: Vec<u64>,
}

fn ms(n: Nanos) -> f64 {
    n.as_millis_f64()
}

/// Predicts the explicit-copy path (`standard` / `async`).
fn predict_explicit(
    program: &dyn GpuProgram,
    device: &Device,
    executor: &KernelExecutor,
    mode: TransferMode,
    buffers: &[BufferSpec],
) -> (Nanos, Nanos) {
    let mut memcpy = Nanos::ZERO;
    for b in buffers {
        if b.role.is_input() {
            memcpy += device.link.transfer_time(LinkPath::PageableCopy, b.bytes);
        }
        if b.role.is_output() {
            memcpy += device.link.transfer_time(LinkPath::PageableCopy, b.bytes);
        }
    }
    let env = ExecEnv::standard();
    let mut kernel = Nanos::ZERO;
    for k in program.kernels() {
        let style = mode.kernel_style(k.standard_style());
        let r = executor.execute(k, style, &env);
        kernel += r.time * k.invocations().max(1);
    }
    (memcpy, kernel)
}

/// Predicts a managed-memory mode by driving the residency mirror through
/// the same phase sequence the runtime executes.
fn predict_uvm(
    program: &dyn GpuProgram,
    device: &Device,
    executor: &KernelExecutor,
    mode: TransferMode,
    buffers: &[BufferSpec],
) -> UvmOutcome {
    let mut mirror = UvmMirror::new(device, buffers);
    let kernels = program.kernels();
    let mut memcpy = Nanos::ZERO;
    let mut kernel = Nanos::ZERO;
    let mut stall_exposed = Nanos::ZERO;

    // Workload-level regularity: the least regular kernel decides.
    let regularity = kernels
        .iter()
        .map(|k| k.regularity())
        .max_by(|a, b| {
            a.residual_fault_fraction()
                .partial_cmp(&b.residual_fault_fraction())
                .expect("finite fractions")
        })
        .expect("at least one kernel");
    let prefetch_model = PrefetchModel::conflicting(program.prefetch_conflict());
    let coverage = prefetch_model.effective_coverage(regularity);

    let translation = if mode.uses_prefetch() {
        1.0 + (regularity.uvm_translation_penalty() - 1.0) * 0.35
    } else {
        regularity.uvm_translation_penalty()
    };
    let l2_warm = if mode.uses_prefetch() {
        device.l2_warm_fraction() * coverage.powi(4)
    } else {
        0.0
    };
    let tlb = if mode.uses_prefetch() {
        TlbConfig {
            page_bytes: 2 << 20,
            walk_cycles: 200.0,
            ..TlbConfig::a100_uvm()
        }
    } else {
        TlbConfig::a100_uvm()
    };
    let env = ExecEnv::new(translation, l2_warm).with_tlb(tlb);

    if mode.uses_prefetch() {
        for (bi, b) in buffers.iter().enumerate() {
            if b.role.is_input() {
                memcpy += mirror.prefetch_range(bi, coverage);
            }
        }
    }

    for (ki, k) in kernels.iter().enumerate() {
        let mut conflict_stall = Nanos::ZERO;
        let mut conflict_transfer = Nanos::ZERO;
        if ki > 0 && mode.uses_prefetch() && program.prefetch_conflict() < 1.0 {
            let displaced_fraction = 1.0 - program.prefetch_conflict();
            let rounds = k.invocations().clamp(1, 4);
            for _ in 0..rounds {
                for (bi, b) in buffers.iter().enumerate() {
                    mirror.displace_fraction(bi, displaced_fraction);
                    let (s, t) = mirror.demand_touch_range(bi, b.role.is_output(), true);
                    conflict_stall += s;
                    conflict_transfer += t;
                }
            }
        }

        let style = mode.kernel_style(k.standard_style());
        let r = executor.execute(*k, style, &env);
        kernel += r.time * k.invocations().max(1);

        let mut stall = conflict_stall;
        memcpy += conflict_transfer;

        let mut sequenced = false;
        for inv in 0..k.invocations().min(MAX_SEQUENCED_ROUNDS) {
            let Some(touches) = program.page_touches(ki, inv, mirror.chunk_size) else {
                break;
            };
            sequenced = true;
            let seq: Vec<MirrorTouch> = touches
                .iter()
                .filter_map(|t| {
                    let b = &buffers[t.buffer];
                    if matches!(b.role, BufferRole::Scratch) {
                        return None;
                    }
                    let nchunks = b.bytes.div_ceil(mirror.chunk_size).max(1);
                    Some(MirrorTouch {
                        buffer: t.buffer,
                        chunk: t.chunk % nchunks,
                        write: t.write,
                        host_backed: b.role.is_input(),
                    })
                })
                .collect();
            let (s, t) = mirror.demand_touch_sequence(&seq);
            stall += s;
            memcpy += t;
        }
        if !sequenced {
            for (bi, b) in buffers.iter().enumerate() {
                if matches!(b.role, BufferRole::Scratch) {
                    continue;
                }
                let (s, t) = mirror.demand_touch_range(bi, b.role.is_output(), b.role.is_input());
                stall += s;
                memcpy += t;
            }
        }
        let exposed = stall.scale(1.0 / device.fault_stall_overlap);
        kernel += exposed;
        stall_exposed += exposed;
    }

    for (bi, b) in buffers.iter().enumerate() {
        if b.role.is_output() {
            let path = if mode.uses_prefetch() {
                LinkPath::BulkPrefetch
            } else {
                LinkPath::DemandMigration
            };
            memcpy += mirror.writeback_dirty(bi, path);
        }
    }

    let demand_fraction = mirror.demand_fraction();
    UvmOutcome {
        memcpy,
        kernel,
        stall_exposed,
        coverage,
        demand_fraction,
        fills: std::mem::take(&mut mirror.fills),
    }
}

// ---------------------------------------------------------------------------
// The advisor entry point.
// ---------------------------------------------------------------------------

/// Runs the static performance analysis for `program` on `device`,
/// predicting all five transfer modes and emitting advisory `SAN-P*`
/// lints.
///
/// # Panics
///
/// Panics if the program has no kernels (the runtime rejects those before
/// any mode comparison is meaningful).
pub fn advise(program: &dyn GpuProgram, device: &Device, config: &PerfConfig) -> ModeAdvice {
    let buffers = program.buffers();
    let kernels = program.kernels();
    assert!(
        !kernels.is_empty(),
        "program `{}` has no kernels",
        program.name()
    );
    let executor = KernelExecutor::new(device.gpu.clone());

    // Shared allocation model: every mode allocates and frees each buffer.
    let alloc_for = |managed: bool| -> Nanos {
        buffers
            .iter()
            .map(|b| device.alloc.alloc_and_free(b.bytes, managed))
            .sum()
    };

    let mut predictions: Vec<ModePrediction> = Vec::with_capacity(TransferMode::ALL.len());
    let mut dataflow_fills: Vec<u64> = Vec::new();
    let mut overlap = None;

    for mode in TransferMode::ALL {
        let alloc_base = alloc_for(mode.uses_uvm());
        let (alloc, memcpy, kernel, fault_stall, rationale) = if mode.uses_uvm() {
            let out = predict_uvm(program, device, &executor, mode, &buffers);
            if mode == TransferMode::Uvm {
                dataflow_fills = out.fills.clone();
            }
            let teardown = device
                .alloc
                .managed_teardown(program.footprint(), out.demand_fraction);
            let rationale = if mode.uses_prefetch() {
                format!(
                    "prefetch covers {:.0}% of input chunks; {:.2} ms migration, {:.2} ms fault stall exposed",
                    out.coverage * 100.0,
                    ms(out.memcpy),
                    ms(out.stall_exposed),
                )
            } else {
                format!(
                    "demand paging migrates on touch: {:.2} ms transfer, {:.2} ms fault stall exposed",
                    ms(out.memcpy),
                    ms(out.stall_exposed),
                )
            };
            (
                alloc_base + teardown,
                out.memcpy,
                out.kernel,
                out.stall_exposed,
                rationale,
            )
        } else {
            let (memcpy, kernel) = predict_explicit(program, device, &executor, mode, &buffers);
            if mode == TransferMode::Standard {
                overlap = Some((memcpy, kernel));
            }
            let rationale = if mode.uses_async_copy() {
                format!(
                    "explicit pageable copies {:.2} ms; cp.async staged kernels {:.2} ms",
                    ms(memcpy),
                    ms(kernel),
                )
            } else {
                format!(
                    "explicit pageable copies {:.2} ms; kernels {:.2} ms",
                    ms(memcpy),
                    ms(kernel),
                )
            };
            (alloc_base, memcpy, kernel, Nanos::ZERO, rationale)
        };
        predictions.push(ModePrediction {
            mode,
            alloc,
            memcpy,
            kernel,
            fault_stall,
            rationale,
        });
    }

    // ---- analyses ----
    let (copy_time, standard_kernel) = overlap.expect("standard mode predicted");
    let async_kernel = predictions
        .iter()
        .find(|p| p.mode == TransferMode::Async)
        .map(|p| p.kernel)
        .expect("async mode predicted");
    let copy_bytes: u64 = buffers
        .iter()
        .map(|b| {
            let mut n = 0;
            if b.role.is_input() {
                n += b.bytes;
            }
            if b.role.is_output() {
                n += b.bytes;
            }
            n
        })
        .sum();
    let hidable_fraction = if copy_time.is_zero() {
        1.0
    } else {
        (standard_kernel.as_nanos() as f64 / copy_time.as_nanos() as f64).min(1.0)
    };
    let async_gain = if standard_kernel.is_zero() {
        0.0
    } else {
        1.0 - async_kernel.as_nanos() as f64 / standard_kernel.as_nanos() as f64
    };
    let overlap = OverlapAnalysis {
        copy_bytes,
        copy_time,
        standard_kernel,
        async_kernel,
        hidable_fraction,
        async_gain,
    };

    let dataflow = analyze_dataflow(program, device, &buffers, &dataflow_fills);

    let staging_bytes: u64 = buffers
        .iter()
        .filter(|b| b.role.is_input())
        .map(|b| b.bytes)
        .sum();
    let footprint = program.footprint();
    let device_capacity = device.uvm.device_capacity;
    let budget = BudgetCheck {
        staging_bytes,
        pinned_budget: config.pinned_budget,
        footprint,
        device_capacity,
        oversubscription: footprint as f64 / device_capacity.max(1) as f64,
        within_budget: staging_bytes <= config.pinned_budget,
    };

    // ---- ranking ----
    predictions.sort_by_key(|p| p.total().as_nanos());
    let best_total = predictions[0].total();

    // ---- advisory lints, gated on "materially slower than the best" ----
    let mut report = Report::new();
    let threshold = best_total.scale(config.lint_ratio).max(best_total);
    for p in &predictions {
        if p.total() <= threshold {
            continue;
        }
        let workload = program.name().to_string();
        if p.mode.uses_uvm() {
            let compute = p.kernel.saturating_sub(p.fault_stall);
            if p.fault_stall > compute {
                report.push(Diagnostic::new(
                    Lint::UvmFaultDominated,
                    workload.clone(),
                    Span::Workload,
                    format!(
                        "`{}` would spend {:.2} ms in exposed fault stalls vs {:.2} ms compute (touch density {:.1}); kernels are fault-dominated",
                        p.mode.name(),
                        ms(p.fault_stall),
                        ms(compute),
                        dataflow.touch_density,
                    ),
                    format!(
                        "prefer `{}` — explicit transfers avoid demand paging entirely",
                        predictions[0].mode.name()
                    ),
                ));
            }
            if footprint > device_capacity {
                report.push(Diagnostic::new(
                    Lint::ThrashPredicted,
                    workload.clone(),
                    Span::Workload,
                    format!(
                        "footprint {} GiB exceeds the {} GiB HBM carveout: thrash predicted at {:.0}% of the working set under `{}`",
                        footprint >> 30,
                        device_capacity >> 30,
                        dataflow.thrash_fraction * 100.0,
                        p.mode.name(),
                    ),
                    "shrink the working set below the carveout or stream it with explicit copies".to_string(),
                ));
            }
        }
        if p.mode.uses_async_copy() {
            if overlap.async_gain <= 0.0 {
                report.push(Diagnostic::new(
                    Lint::AsyncZeroSlack,
                    workload.clone(),
                    Span::Workload,
                    format!(
                        "`{}` has zero overlap slack: cp.async staging does not speed kernels up ({:.2} ms vs {:.2} ms standard)",
                        p.mode.name(),
                        ms(overlap.async_kernel),
                        ms(overlap.standard_kernel),
                    ),
                    "keep the kernels' standard style; async staging only pays when fetch overlaps compute".to_string(),
                ));
            }
            if staging_bytes > config.pinned_budget {
                report.push(Diagnostic::new(
                    Lint::PinnedBudgetExceeded,
                    workload.clone(),
                    Span::Workload,
                    format!(
                        "`{}` would stage {} MiB through pinned host memory, over the {} MiB budget",
                        p.mode.name(),
                        staging_bytes >> 20,
                        config.pinned_budget >> 20,
                    ),
                    "raise the pinned budget or fall back to pageable staging".to_string(),
                ));
            }
        }
    }

    ModeAdvice {
        workload: program.name().to_string(),
        device: device.name,
        ranked: predictions,
        overlap,
        dataflow,
        budget,
        report,
    }
}

/// Computes the touch-sequence dataflow statistics.
fn analyze_dataflow(
    program: &dyn GpuProgram,
    device: &Device,
    buffers: &[BufferSpec],
    fills: &[u64],
) -> DataflowAnalysis {
    use std::collections::HashMap;
    let chunk_size = device.uvm.chunk_size;
    let footprint_chunks: u64 = buffers
        .iter()
        .filter(|b| !matches!(b.role, BufferRole::Scratch))
        .map(|b| b.bytes.div_ceil(chunk_size).max(1))
        .sum();

    let mut sequenced = false;
    let mut total_touches = 0u64;
    let mut last_seen: HashMap<(usize, u64), u64> = HashMap::new();
    let mut reuse_sum = 0u64;
    let mut reuse_count = 0u64;
    let mut position = 0u64;
    for (ki, k) in program.kernels().iter().enumerate() {
        for inv in 0..k.invocations().min(MAX_SEQUENCED_ROUNDS) {
            let Some(touches) = program.page_touches(ki, inv, chunk_size) else {
                break;
            };
            sequenced = true;
            for t in &touches {
                let Some(b) = buffers.get(t.buffer) else {
                    continue;
                };
                if matches!(b.role, BufferRole::Scratch) {
                    continue;
                }
                let nchunks = b.bytes.div_ceil(chunk_size).max(1);
                let key = (t.buffer, t.chunk % nchunks);
                total_touches += 1;
                if let Some(&prev) = last_seen.get(&key) {
                    reuse_sum += position - prev;
                    reuse_count += 1;
                }
                last_seen.insert(key, position);
                position += 1;
            }
        }
    }
    let distinct_chunks = last_seen.len() as u64;
    let footprint = program.footprint();
    let capacity = device.uvm.device_capacity;
    let thrash_fraction = if footprint > capacity && footprint > 0 {
        1.0 - capacity as f64 / footprint as f64
    } else {
        0.0
    };
    let mean_batch_fill = if fills.is_empty() {
        0.0
    } else {
        fills.iter().sum::<u64>() as f64 / fills.len() as f64
    };
    DataflowAnalysis {
        sequenced,
        total_touches,
        distinct_chunks,
        footprint_chunks,
        touch_density: if sequenced {
            total_touches as f64 / footprint_chunks.max(1) as f64
        } else {
            1.0
        },
        mean_reuse_distance: if reuse_count == 0 {
            0.0
        } else {
            reuse_sum as f64 / reuse_count as f64
        },
        mean_batch_fill,
        oversubscription: footprint as f64 / capacity.max(1) as f64,
        thrash_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_gpu::kernel::{KernelModel, KernelStyle, LaunchConfig, TileOps};
    use hetsim_mem::addr::MemAccess;
    use hetsim_runtime::program::PageTouch;
    use hetsim_runtime::Runner;
    use hetsim_uvm::prefetch::Regularity;

    struct TestKernel {
        name: &'static str,
        style: KernelStyle,
        regularity: Regularity,
        invocations: u64,
    }

    impl Default for TestKernel {
        fn default() -> Self {
            TestKernel {
                name: "k",
                style: KernelStyle::Direct,
                regularity: Regularity::Regular,
                invocations: 1,
            }
        }
    }

    impl KernelModel for TestKernel {
        fn name(&self) -> &str {
            self.name
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(64, 128, 0)
        }
        fn tiles_per_block(&self) -> u64 {
            1
        }
        fn stream_accesses(&self, _block: u64, _tile: u64, out: &mut Vec<MemAccess>) {
            out.push(MemAccess::global_load(0));
        }
        fn local_accesses(&self, _block: u64, _tile: u64, out: &mut Vec<MemAccess>) {
            out.push(MemAccess::global_store(1 << 30));
        }
        fn tile_ops(&self) -> TileOps {
            TileOps::new(16.0, 16.0, 4.0)
        }
        fn regularity(&self) -> Regularity {
            self.regularity
        }
        fn standard_style(&self) -> KernelStyle {
            self.style
        }
        fn invocations(&self) -> u64 {
            self.invocations
        }
    }

    /// Synthetic program: scriptable buffers, kernels, and per-invocation
    /// touch sequences.
    struct TestProgram {
        buffers: Vec<BufferSpec>,
        kernels: Vec<TestKernel>,
        /// Touch sequence replayed on every invocation of every kernel
        /// when set.
        touches: Option<Vec<PageTouch>>,
        conflict: f64,
    }

    impl TestProgram {
        fn new(buffers: Vec<BufferSpec>) -> Self {
            TestProgram {
                buffers,
                kernels: vec![TestKernel::default()],
                touches: None,
                conflict: 1.0,
            }
        }
    }

    impl GpuProgram for TestProgram {
        fn name(&self) -> &str {
            "perf-test"
        }
        fn buffers(&self) -> Vec<BufferSpec> {
            self.buffers.clone()
        }
        fn kernels(&self) -> Vec<&dyn KernelModel> {
            self.kernels.iter().map(|k| k as &dyn KernelModel).collect()
        }
        fn prefetch_conflict(&self) -> f64 {
            self.conflict
        }
        fn page_touches(
            &self,
            _kernel: usize,
            _invocation: u64,
            _chunk_size: u64,
        ) -> Option<Vec<PageTouch>> {
            self.touches.clone()
        }
    }

    fn buf(name: &str, chunks: u64, role: BufferRole) -> BufferSpec {
        BufferSpec::new(name, chunks * hetsim_uvm::page::CHUNK_SIZE, role)
    }

    /// Asserts the advisor's per-mode breakdown equals the simulator's
    /// noise-free base run to the nanosecond, for every mode.
    fn assert_matches_runner(p: &TestProgram) {
        let device = Device::a100_epyc();
        let runner = Runner::new(device.clone());
        let advice = advise(p, &device, &PerfConfig::default());
        for mode in TransferMode::ALL {
            let predicted = advice
                .ranked
                .iter()
                .find(|r| r.mode == mode)
                .expect("all modes ranked");
            let measured = runner.run_base(p, mode);
            assert_eq!(predicted.alloc, measured.alloc, "alloc mismatch for {mode}");
            assert_eq!(
                predicted.memcpy, measured.memcpy,
                "memcpy mismatch for {mode}"
            );
            assert_eq!(
                predicted.kernel, measured.kernel,
                "kernel mismatch for {mode}"
            );
        }
    }

    #[test]
    fn matches_runner_range_walk() {
        // No touch model: the runtime's blanket range-walk fallback.
        let p = TestProgram::new(vec![
            buf("in", 64, BufferRole::Input),
            buf("out", 32, BufferRole::Output),
            buf("tmp", 8, BufferRole::Scratch),
        ]);
        assert_matches_runner(&p);
    }

    #[test]
    fn matches_runner_sequenced() {
        // Strided revisiting sequence exercising FaultBatcher speculation.
        let mut p = TestProgram::new(vec![
            buf("in", 48, BufferRole::Input),
            buf("out", 16, BufferRole::InOut),
        ]);
        let mut touches = Vec::new();
        for i in 0..96u64 {
            touches.push(PageTouch {
                buffer: (i % 2) as usize,
                chunk: (i * 7) % 48,
                write: i % 3 == 0,
            });
        }
        p.touches = Some(touches);
        p.kernels[0].regularity = Regularity::Irregular;
        p.kernels[0].invocations = 3;
        assert_matches_runner(&p);
    }

    #[test]
    fn matches_runner_prefetch_conflict() {
        // Two kernels with a prefetch conflict triggers the displacement/
        // refault rounds on the second kernel under prefetch modes.
        let mut p = TestProgram::new(vec![
            buf("in", 40, BufferRole::Input),
            buf("out", 24, BufferRole::Output),
        ]);
        p.kernels.push(TestKernel {
            name: "k2",
            invocations: 2,
            ..TestKernel::default()
        });
        p.conflict = 0.6;
        assert_matches_runner(&p);
    }

    #[test]
    fn matches_runner_async_styles() {
        let mut p = TestProgram::new(vec![
            buf("in", 16, BufferRole::Input),
            buf("out", 16, BufferRole::Output),
        ]);
        p.kernels[0].style = KernelStyle::StagedAsync;
        assert_matches_runner(&p);
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let p = TestProgram::new(vec![
            buf("in", 16, BufferRole::Input),
            buf("out", 8, BufferRole::Output),
        ]);
        let advice = advise(&p, &Device::a100_epyc(), &PerfConfig::default());
        assert_eq!(advice.ranked.len(), TransferMode::ALL.len());
        for pair in advice.ranked.windows(2) {
            assert!(pair[0].total() <= pair[1].total());
        }
        assert_eq!(advice.best().mode, advice.ranked[0].mode);
    }

    #[test]
    fn pinned_budget_lint_fires() {
        let p = TestProgram::new(vec![
            buf("in", 64, BufferRole::Input),
            buf("out", 8, BufferRole::Output),
        ]);
        let config = PerfConfig {
            pinned_budget: 1,
            lint_ratio: 1.0,
        };
        let advice = advise(&p, &Device::a100_epyc(), &config);
        assert!(!advice.budget.within_budget);
        let codes: Vec<_> = advice.report.diagnostics.iter().map(|d| d.code()).collect();
        assert!(
            codes.contains(&"SAN-P004"),
            "expected SAN-P004 in {codes:?}"
        );
    }

    #[test]
    fn no_lints_on_top_ranked_mode() {
        // Whatever fires, it must never target the advisor's own pick.
        let mut p = TestProgram::new(vec![
            buf("in", 64, BufferRole::Input),
            buf("out", 32, BufferRole::Output),
        ]);
        p.kernels[0].regularity = Regularity::Irregular;
        let advice = advise(&p, &Device::a100_epyc(), &PerfConfig::default());
        let best = advice.best().mode.name();
        for d in &advice.report.diagnostics {
            assert!(
                !d.message.contains(&format!("`{best}`")),
                "lint targets the best mode: {}",
                d.message
            );
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let p = TestProgram::new(vec![
            buf("in", 4, BufferRole::Input),
            buf("out", 4, BufferRole::Output),
        ]);
        let advice = advise(&p, &Device::a100_epyc(), &PerfConfig::default());
        let json = advice.to_json();
        for key in [
            "\"workload\"",
            "\"device\"",
            "\"best\"",
            "\"ranked\"",
            "\"overlap\"",
            "\"dataflow\"",
            "\"budget\"",
            "\"report\"",
            "\"hidable_fraction\"",
            "\"touch_density\"",
            "\"within_budget\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json, advice.to_json(), "non-deterministic JSON");
    }
}
