//! Static analysis for hetsim's three description layers — a
//! `compute-sanitizer` analogue that verifies specs *before* simulation.
//!
//! The simulator's results are only as trustworthy as the descriptions
//! feeding it: a [`StreamSchedule`](hetsim_runtime::stream::StreamSchedule)
//! whose chunks overlap across streams without serialization, a
//! `page_touches` sequence that indexes a `Scratch` buffer or walks past a
//! buffer's chunk count, an `Output` buffer no kernel ever writes. The
//! runtime compensates for most of these silently (wrapping indices,
//! dropping touches, no-op waits), which is exactly how mis-specified
//! benchmarks corrupt measurements without failing. This crate inspects
//! the descriptions statically — no simulation — and reports every such
//! spot as a [`Diagnostic`] behind a stable lint code.
//!
//! Three entry points, one per layer:
//!
//! - [`check_program`] — buffer-role, touch-sequence, and
//!   mode-compatibility lints over any
//!   [`GpuProgram`](hetsim_runtime::program::GpuProgram) (`SAN-B*`,
//!   `SAN-T*`, `SAN-M*`).
//! - [`check_schedule`] — the racecheck/synccheck analogue over a
//!   [`StreamSchedule`](hetsim_runtime::stream::StreamSchedule)'s
//!   happens-before relation (`SAN-S001`–`S003`).
//! - [`check_outcome`] — trace-level checks over an evaluated
//!   [`ScheduleOutcome`](hetsim_runtime::stream::ScheduleOutcome)
//!   (`SAN-S004`).
//!
//! Beyond correctness, [`advise`] runs the static *performance* advisor:
//! it predicts each transfer mode's cost from workload structure alone,
//! ranks all five modes, and emits the advisory `SAN-P*` lint family
//! (see [`perf`]). The CLI exposes it as `hetsim advise`.
//!
//! Reports render as rustc-style text ([`Report::to_text`]) or JSON
//! ([`Report::to_json`]), and [`Report::is_clean`] implements the
//! `--deny warnings` policy. The CLI exposes all of this as
//! `hetsim check [--all | <workload>] [--deny warnings] [--format json]`.
//!
//! # Example
//!
//! ```
//! use hetsim_runtime::stream::{BufferAccess, Engine, StreamId, StreamSchedule};
//! use hetsim_engine::time::Nanos;
//!
//! let mut s = StreamSchedule::new();
//! s.push_access(StreamId(0), Engine::CopyH2D, Nanos::from_micros(10), "h2d",
//!               BufferAccess::writes("data", 0..4));
//! s.push_access(StreamId(1), Engine::Compute, Nanos::from_micros(10), "kernel",
//!               BufferAccess::writes("data", 2..6));
//! let report = hetsim_sanitizer::check_schedule("demo", &s);
//! assert_eq!(report.diagnostics[0].code(), "SAN-S001");
//!
//! // An event edge serializes the pair; the schedule comes back clean.
//! let mut s = StreamSchedule::new();
//! s.push_access(StreamId(0), Engine::CopyH2D, Nanos::from_micros(10), "h2d",
//!               BufferAccess::writes("data", 0..4));
//! let ev = s.record_event(StreamId(0));
//! s.wait_event(StreamId(1), ev);
//! s.push_access(StreamId(1), Engine::Compute, Nanos::from_micros(10), "kernel",
//!               BufferAccess::writes("data", 2..6));
//! assert!(hetsim_sanitizer::check_schedule("demo", &s).is_clean(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod perf;
pub mod program;
pub mod stream;

pub use diag::{Diagnostic, Lint, Report, Severity, Span};
pub use perf::{
    advise, BudgetCheck, DataflowAnalysis, ModeAdvice, ModePrediction, OverlapAnalysis, PerfConfig,
};
pub use program::check_program;
pub use stream::{check_outcome, check_schedule};

/// Knobs for [`check_program`].
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Chunk (page-group) size in bytes used to derive each buffer's chunk
    /// count for the out-of-bounds lint. Defaults to the A100 UVM chunk
    /// size the runtime migrates at.
    pub chunk_size: u64,
    /// Cap on touch-sequence rounds inspected per kernel, mirroring the
    /// runtime's own bound on sequenced rounds.
    pub max_rounds: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            chunk_size: hetsim_uvm::page::CHUNK_SIZE,
            max_rounds: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_gpu::kernel::{KernelModel, KernelStyle, LaunchConfig, TileOps};
    use hetsim_mem::addr::MemAccess;
    use hetsim_runtime::program::{BufferRole, BufferSpec, GpuProgram, PageTouch};
    use hetsim_uvm::prefetch::Regularity;

    /// Minimal kernel for synthetic programs.
    struct TestKernel {
        name: &'static str,
        style: KernelStyle,
        stores: bool,
        invocations: u64,
    }

    impl Default for TestKernel {
        fn default() -> Self {
            TestKernel {
                name: "k",
                style: KernelStyle::Direct,
                stores: true,
                invocations: 1,
            }
        }
    }

    impl KernelModel for TestKernel {
        fn name(&self) -> &str {
            self.name
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig::new(64, 128, 0)
        }
        fn tiles_per_block(&self) -> u64 {
            1
        }
        fn stream_accesses(&self, _block: u64, _tile: u64, out: &mut Vec<MemAccess>) {
            out.push(MemAccess::global_load(0));
        }
        fn local_accesses(&self, _block: u64, _tile: u64, out: &mut Vec<MemAccess>) {
            if self.stores {
                out.push(MemAccess::global_store(1 << 30));
            }
        }
        fn tile_ops(&self) -> TileOps {
            TileOps::new(16.0, 16.0, 4.0)
        }
        fn regularity(&self) -> Regularity {
            Regularity::Regular
        }
        fn standard_style(&self) -> KernelStyle {
            self.style
        }
        fn invocations(&self) -> u64 {
            self.invocations
        }
    }

    /// Synthetic program with scriptable buffers and touch sequences.
    struct TestProgram {
        buffers: Vec<BufferSpec>,
        kernels: Vec<TestKernel>,
        touches: Option<Vec<PageTouch>>,
        conflict: f64,
    }

    impl TestProgram {
        fn new(buffers: Vec<BufferSpec>) -> Self {
            TestProgram {
                buffers,
                kernels: vec![TestKernel::default()],
                touches: None,
                conflict: 1.0,
            }
        }
    }

    impl GpuProgram for TestProgram {
        fn name(&self) -> &str {
            "test"
        }
        fn buffers(&self) -> Vec<BufferSpec> {
            self.buffers.clone()
        }
        fn kernels(&self) -> Vec<&dyn KernelModel> {
            self.kernels.iter().map(|k| k as &dyn KernelModel).collect()
        }
        fn prefetch_conflict(&self) -> f64 {
            self.conflict
        }
        fn page_touches(
            &self,
            _kernel: usize,
            invocation: u64,
            _chunk_size: u64,
        ) -> Option<Vec<PageTouch>> {
            match (&self.touches, invocation) {
                (Some(t), 0) => Some(t.clone()),
                _ => None,
            }
        }
    }

    fn buf(name: &str, chunks: u64, role: BufferRole) -> BufferSpec {
        BufferSpec::new(name, chunks * hetsim_uvm::page::CHUNK_SIZE, role)
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        let mut c: Vec<&'static str> = r.diagnostics.iter().map(|d| d.code()).collect();
        c.sort_unstable();
        c
    }

    #[test]
    fn clean_program_is_clean() {
        let mut p = TestProgram::new(vec![
            buf("in", 4, BufferRole::Input),
            buf("out", 4, BufferRole::Output),
        ]);
        p.touches = Some(vec![
            PageTouch {
                buffer: 0,
                chunk: 0,
                write: false,
            },
            PageTouch {
                buffer: 1,
                chunk: 3,
                write: true,
            },
        ]);
        let r = check_program(&p, &CheckConfig::default());
        assert!(r.is_clean(true), "{}", r.to_text());
    }

    #[test]
    fn duplicate_names_and_zero_size() {
        // Bypass BufferSpec::new validation by mutating the field.
        let mut z = buf("a", 1, BufferRole::Input);
        z.bytes = 0;
        let p = TestProgram::new(vec![z, buf("a", 1, BufferRole::Output)]);
        let r = check_program(&p, &CheckConfig::default());
        assert_eq!(codes(&r), vec!["SAN-B001", "SAN-B002"]);
    }

    #[test]
    fn oversized_buffer_flagged() {
        let mut b = buf("huge", 1, BufferRole::Input);
        b.bytes = BufferSpec::MAX_BYTES + 1;
        let p = TestProgram::new(vec![b]);
        let r = check_program(&p, &CheckConfig::default());
        assert_eq!(codes(&r), vec!["SAN-B001"]);
    }

    #[test]
    fn output_without_stores() {
        let mut p = TestProgram::new(vec![buf("out", 1, BufferRole::Output)]);
        p.kernels[0].stores = false;
        let r = check_program(&p, &CheckConfig::default());
        assert_eq!(codes(&r), vec!["SAN-B003"]);
    }

    #[test]
    fn touch_lints_fire() {
        let mut p = TestProgram::new(vec![
            buf("in", 4, BufferRole::Input),
            buf("out", 4, BufferRole::Output),
            buf("tmp", 4, BufferRole::Scratch),
        ]);
        p.touches = Some(vec![
            // In-bounds read of the input, so it's covered.
            PageTouch {
                buffer: 0,
                chunk: 0,
                write: false,
            },
            // SAN-T004: writes the Input buffer.
            PageTouch {
                buffer: 0,
                chunk: 1,
                write: true,
            },
            // SAN-T002: chunk 9 past 4-chunk output (plus covers the write).
            PageTouch {
                buffer: 1,
                chunk: 9,
                write: true,
            },
            // SAN-T003: touches Scratch.
            PageTouch {
                buffer: 2,
                chunk: 0,
                write: false,
            },
            // SAN-T001: buffer index past the list.
            PageTouch {
                buffer: 7,
                chunk: 0,
                write: false,
            },
        ]);
        let r = check_program(&p, &CheckConfig::default());
        assert_eq!(
            codes(&r),
            vec!["SAN-T001", "SAN-T002", "SAN-T003", "SAN-T004"]
        );
        assert_eq!(r.errors(), 1, "only the buffer-index lint is an error");
    }

    #[test]
    fn coverage_lints_fire_when_fully_sequenced() {
        let mut p = TestProgram::new(vec![
            buf("in", 4, BufferRole::Input),
            buf("out", 4, BufferRole::InOut),
        ]);
        // Sequence reads the output's first chunk but never writes it, and
        // never touches the input at all.
        p.touches = Some(vec![PageTouch {
            buffer: 1,
            chunk: 0,
            write: false,
        }]);
        let r = check_program(&p, &CheckConfig::default());
        assert_eq!(codes(&r), vec!["SAN-T005", "SAN-T006"]);
    }

    #[test]
    fn no_coverage_lints_without_model() {
        // No touch model: the runtime uses the blanket fallback, which
        // migrates and dirties everything. Nothing to report.
        let p = TestProgram::new(vec![
            buf("in", 4, BufferRole::Input),
            buf("out", 4, BufferRole::Output),
        ]);
        assert!(check_program(&p, &CheckConfig::default()).is_clean(true));
    }

    #[test]
    fn empty_sequences_flagged() {
        let mut p = TestProgram::new(vec![buf("in", 4, BufferRole::Input)]);
        p.touches = Some(vec![]);
        let r = check_program(&p, &CheckConfig::default());
        assert!(codes(&r).contains(&"SAN-T007"), "{}", r.to_text());
    }

    #[test]
    fn mode_lints_fire() {
        let mut p = TestProgram::new(vec![buf("in", 1, BufferRole::Input)]);
        p.kernels[0].style = KernelStyle::StagedAsync;
        p.conflict = 0.5;
        let r = check_program(&p, &CheckConfig::default());
        assert_eq!(codes(&r), vec!["SAN-M001", "SAN-M002"]);

        let mut two = TestProgram::new(vec![buf("in", 1, BufferRole::Input)]);
        two.kernels.push(TestKernel::default());
        two.conflict = 0.5;
        assert!(
            check_program(&two, &CheckConfig::default()).is_clean(true),
            "conflict with a sibling kernel is the nw pattern, not a lint"
        );
    }

    #[test]
    fn all_scratch_flagged() {
        let p = TestProgram::new(vec![
            buf("a", 1, BufferRole::Scratch),
            buf("b", 1, BufferRole::Scratch),
        ]);
        let r = check_program(&p, &CheckConfig::default());
        assert!(codes(&r).contains(&"SAN-M003"));
    }
}
