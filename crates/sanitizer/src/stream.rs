//! Stream-hazard analysis: a racecheck/synccheck analogue for
//! [`StreamSchedule`] descriptions, derived purely from the schedule — no
//! simulation.
//!
//! The analyzer builds the happens-before relation the runtime guarantees:
//! in-stream FIFO order, per-engine issue-order serialization, and
//! record→wait event edges. Any two operations whose
//! [`BufferAccess`](hetsim_runtime::stream::BufferAccess) annotations
//! conflict (same buffer, overlapping chunk ranges, at least one write)
//! and that the transitive closure leaves unordered are flagged: their
//! relative timing is an accident of the current durations, so the
//! schedule's outcome is order-dependent.

use crate::diag::{Diagnostic, Lint, Report, Span};
use hetsim_runtime::stream::{ScheduleItem, ScheduleOutcome, StreamSchedule};

/// A set of item indices, packed as 64-bit words.
#[derive(Clone)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet(vec![0; n.div_ceil(64)])
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
    fn union(&mut self, other: &BitSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
}

/// Statically analyzes `schedule` for cross-stream hazards and event
/// misuse, reporting findings under workload/schedule name `name`.
///
/// Only operations annotated via
/// [`push_access`](StreamSchedule::push_access) participate in hazard
/// detection; un-annotated operations still contribute their ordering
/// edges (stream, engine, events). A clean report therefore means: no two
/// annotated operations with conflicting accesses can reorder, whatever
/// the operation durations turn out to be.
pub fn check_schedule(name: &str, schedule: &StreamSchedule) -> Report {
    let mut report = Report::new();
    let items = schedule.items();
    let n = items.len();

    // Happens-before edges, all pointing forward in issue order.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    {
        use std::collections::HashMap;
        let mut last_on_stream: HashMap<u32, usize> = HashMap::new();
        let mut last_on_engine: HashMap<&str, usize> = HashMap::new();
        let mut recorded_at: HashMap<u32, usize> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            match item {
                ScheduleItem::Op { stream, engine, .. } => {
                    if let Some(&p) = last_on_stream.get(&stream.0) {
                        edges[p].push(i);
                    }
                    last_on_stream.insert(stream.0, i);
                    if let Some(&p) = last_on_engine.get(engine.name()) {
                        edges[p].push(i);
                    }
                    last_on_engine.insert(engine.name(), i);
                }
                ScheduleItem::RecordEvent { stream, event } => {
                    if let Some(&p) = last_on_stream.get(&stream.0) {
                        edges[p].push(i);
                    }
                    last_on_stream.insert(stream.0, i);
                    recorded_at.entry(event.0).or_insert(i);
                }
                ScheduleItem::WaitEvent { stream, event } => {
                    if let Some(&p) = last_on_stream.get(&stream.0) {
                        edges[p].push(i);
                    }
                    last_on_stream.insert(stream.0, i);
                    match recorded_at.get(&event.0) {
                        Some(&r) if r < i => edges[r].push(i),
                        _ => report.push(Diagnostic::new(
                            Lint::WaitUnrecordedEvent,
                            name,
                            Span::Item { index: i },
                            format!(
                                "stream {} waits on event {} that is not recorded earlier \
                                 in issue order; the wait is a silent no-op",
                                stream.0, event.0
                            ),
                            "record the event on the producing stream before issuing the \
                             wait",
                        )),
                    }
                }
            }
        }
    }

    // Strict-semantics progress check (SAN-S005): mirror
    // `StreamSchedule::try_run`'s readiness rules as a duration-free
    // boolean fixed point. A wait binds to its event's first recording
    // site anywhere in issue order; if no execution order lets every item
    // run, the waits that can never fire form a deadlock cycle under
    // strict semantics.
    {
        use std::collections::HashMap;
        let mut recorded_at: HashMap<u32, usize> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            if let ScheduleItem::RecordEvent { event, .. } = item {
                recorded_at.entry(event.0).or_insert(i);
            }
        }
        let mut prev_stream: Vec<Option<usize>> = vec![None; n];
        let mut prev_engine: Vec<Option<usize>> = vec![None; n];
        {
            let mut last_s: HashMap<u32, usize> = HashMap::new();
            let mut last_e: HashMap<&str, usize> = HashMap::new();
            for (i, item) in items.iter().enumerate() {
                let s = match item {
                    ScheduleItem::Op { stream, .. }
                    | ScheduleItem::RecordEvent { stream, .. }
                    | ScheduleItem::WaitEvent { stream, .. } => stream.0,
                };
                prev_stream[i] = last_s.insert(s, i);
                if let ScheduleItem::Op { engine, .. } = item {
                    prev_engine[i] = last_e.insert(engine.name(), i);
                }
            }
        }
        let mut done = vec![false; n];
        let mut remaining = n;
        loop {
            let mut progressed = false;
            for i in 0..n {
                if done[i] || prev_stream[i].is_some_and(|p| !done[p]) {
                    continue;
                }
                let ready = match &items[i] {
                    ScheduleItem::Op { .. } => prev_engine[i].is_none_or(|p| done[p]),
                    ScheduleItem::RecordEvent { .. } => true,
                    ScheduleItem::WaitEvent { event, .. } => {
                        recorded_at.get(&event.0).is_some_and(|&r| done[r])
                    }
                };
                if ready {
                    done[i] = true;
                    remaining -= 1;
                    progressed = true;
                }
            }
            if remaining == 0 || !progressed {
                break;
            }
        }
        if remaining > 0 {
            for (i, item) in items.iter().enumerate() {
                // Stream heads only: the first stuck item of each stream.
                if done[i] || prev_stream[i].is_some_and(|p| !done[p]) {
                    continue;
                }
                let ScheduleItem::WaitEvent { stream, event } = item else {
                    continue;
                };
                // A wait on an event recorded nowhere is SAN-S003's
                // finding; the cycle lint covers events that *are*
                // recorded but whose recording can never execute.
                if !recorded_at.contains_key(&event.0) {
                    continue;
                }
                report.push(Diagnostic::new(
                    Lint::EventWaitCycle,
                    name,
                    Span::Item { index: i },
                    format!(
                        "stream {}'s wait on event {} can never fire under strict \
                         semantics: its recording point depends, through a cycle of \
                         waits, on this wait completing — StreamSchedule::try_run \
                         deadlocks here",
                        stream.0, event.0
                    ),
                    "reorder the schedule so every record can execute before the \
                     waits that depend on it, or drop one edge of the cycle",
                ));
            }
        }
    }

    // Transitive closure. Edges only point forward, so a reverse sweep
    // finishes in one pass: reach[i] = U_{i->j} ({j} U reach[j]).
    let mut reach: Vec<BitSet> = vec![BitSet::new(n); n];
    for i in (0..n).rev() {
        // Split off reach[i] to satisfy the borrow checker while unioning
        // successor sets.
        let mut mine = std::mem::replace(&mut reach[i], BitSet::new(0));
        for &j in &edges[i] {
            mine.set(j);
            mine.union(&reach[j]);
        }
        reach[i] = mine;
    }

    // Issue-order op ordinals (the indices ScheduleOutcome::ops uses).
    let op_ordinal: Vec<usize> = {
        let mut ord = vec![0usize; n];
        let mut next = 0;
        for (i, item) in items.iter().enumerate() {
            ord[i] = next;
            if matches!(item, ScheduleItem::Op { .. }) {
                next += 1;
            }
        }
        ord
    };

    for i in 0..n {
        let ScheduleItem::Op {
            stream: si,
            engine: ei,
            label: li,
            access: Some(ai),
            ..
        } = &items[i]
        else {
            continue;
        };
        for j in (i + 1)..n {
            let ScheduleItem::Op {
                stream: sj,
                engine: ej,
                label: lj,
                access: Some(aj),
                ..
            } = &items[j]
            else {
                continue;
            };
            if !ai.conflicts_with(aj) || reach[i].get(j) {
                continue;
            }
            let (lint, verb) = if ai.write && aj.write {
                (Lint::WriteWriteHazard, "both write")
            } else {
                (Lint::ReadWriteHazard, "read and write")
            };
            report.push(Diagnostic::new(
                lint,
                name,
                Span::OpPair {
                    first: op_ordinal[i],
                    second: op_ordinal[j],
                },
                format!(
                    "`{li}` (stream {}, {ei}) and `{lj}` (stream {}, {ej}) {verb} buffer \
                     `{}` chunks {}..{} and {}..{} with no ordering between them",
                    si.0,
                    sj.0,
                    ai.buffer,
                    ai.chunks.start,
                    ai.chunks.end,
                    aj.chunks.start,
                    aj.chunks.end
                ),
                "serialize the pair with record_event/wait_event, issue both on one \
                 stream or engine, or make the chunk ranges disjoint",
            ));
        }
    }

    report
}

/// Checks an evaluated [`ScheduleOutcome`] for trace-level problems:
/// stream spans on tracks no engine recognizes (which
/// [`ScheduleOutcome::ops`] silently drops).
pub fn check_outcome(name: &str, outcome: &ScheduleOutcome) -> Report {
    let mut report = Report::new();
    for track in outcome.unknown_tracks() {
        report.push(Diagnostic::new(
            Lint::UnknownEngineTrack,
            name,
            Span::Track {
                name: track.clone(),
            },
            format!(
                "track `{track}` carries stream-category spans but names no engine; \
                 ScheduleOutcome::ops drops them silently"
            ),
            "record stream spans on the h2d/d2h/compute tracks (Engine::name), or \
             extend Engine for the new resource",
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_engine::time::Nanos;
    use hetsim_runtime::stream::{BufferAccess, Engine, EventId, StreamId};

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code()).collect()
    }

    #[test]
    fn unordered_cross_stream_writes_are_flagged() {
        let mut s = StreamSchedule::new();
        s.push_access(
            StreamId(0),
            Engine::CopyH2D,
            us(10),
            "h2d",
            BufferAccess::writes("data", 0..4),
        );
        s.push_access(
            StreamId(1),
            Engine::Compute,
            us(10),
            "kernel",
            BufferAccess::writes("data", 2..6),
        );
        let r = check_schedule("adv", &s);
        assert_eq!(codes(&r), vec!["SAN-S001"]);
        assert!(r.diagnostics[0].message.contains("`h2d`"), "{r:?}");
    }

    #[test]
    fn read_write_overlap_is_flagged() {
        let mut s = StreamSchedule::new();
        s.push_access(
            StreamId(0),
            Engine::Compute,
            us(10),
            "kernel",
            BufferAccess::writes("out", 0..8),
        );
        s.push_access(
            StreamId(1),
            Engine::CopyD2H,
            us(10),
            "d2h",
            BufferAccess::reads("out", 0..8),
        );
        assert_eq!(codes(&check_schedule("adv", &s)), vec!["SAN-S002"]);
    }

    #[test]
    fn event_edge_serializes_the_pair() {
        let mut s = StreamSchedule::new();
        s.push_access(
            StreamId(0),
            Engine::CopyH2D,
            us(10),
            "h2d",
            BufferAccess::writes("data", 0..4),
        );
        let ev = s.record_event(StreamId(0));
        s.wait_event(StreamId(1), ev);
        s.push_access(
            StreamId(1),
            Engine::Compute,
            us(10),
            "kernel",
            BufferAccess::writes("data", 0..4),
        );
        assert!(check_schedule("ok", &s).diagnostics.is_empty());
    }

    #[test]
    fn same_stream_and_same_engine_are_ordered() {
        let mut s = StreamSchedule::new();
        // Same stream.
        s.push_access(
            StreamId(0),
            Engine::CopyH2D,
            us(1),
            "a",
            BufferAccess::writes("b0", 0..1),
        );
        s.push_access(
            StreamId(0),
            Engine::Compute,
            us(1),
            "b",
            BufferAccess::writes("b0", 0..1),
        );
        // Same engine, different streams.
        s.push_access(
            StreamId(1),
            Engine::CopyH2D,
            us(1),
            "c",
            BufferAccess::writes("b1", 0..1),
        );
        s.push_access(
            StreamId(2),
            Engine::CopyH2D,
            us(1),
            "d",
            BufferAccess::writes("b1", 0..1),
        );
        assert!(check_schedule("ok", &s).diagnostics.is_empty());
    }

    #[test]
    fn ordering_is_transitive_through_chains() {
        let mut s = StreamSchedule::new();
        s.push_access(
            StreamId(0),
            Engine::CopyH2D,
            us(1),
            "a",
            BufferAccess::writes("data", 0..1),
        );
        // a -> b (stream 0), b -> c (compute engine), so a -> c.
        s.push(StreamId(0), Engine::Compute, us(1), "b");
        s.push_access(
            StreamId(1),
            Engine::Compute,
            us(1),
            "c",
            BufferAccess::writes("data", 0..1),
        );
        assert!(check_schedule("ok", &s).diagnostics.is_empty());
    }

    #[test]
    fn disjoint_ranges_and_buffers_are_clean() {
        let mut s = StreamSchedule::new();
        s.push_access(
            StreamId(0),
            Engine::CopyH2D,
            us(1),
            "a",
            BufferAccess::writes("data", 0..4),
        );
        s.push_access(
            StreamId(1),
            Engine::Compute,
            us(1),
            "b",
            BufferAccess::writes("data", 4..8),
        );
        s.push_access(
            StreamId(2),
            Engine::CopyD2H,
            us(1),
            "c",
            BufferAccess::writes("other", 0..4),
        );
        assert!(check_schedule("ok", &s).diagnostics.is_empty());
    }

    #[test]
    fn wait_on_unrecorded_event_is_reported() {
        let mut s = StreamSchedule::new();
        s.wait_event(StreamId(0), EventId(7));
        let r = check_schedule("adv", &s);
        assert_eq!(codes(&r), vec!["SAN-S003"]);
        assert_eq!(r.diagnostics[0].span, Span::Item { index: 0 });
    }

    #[test]
    fn wait_before_its_record_gets_no_edge() {
        let mut s = StreamSchedule::new();
        s.push_access(
            StreamId(0),
            Engine::Compute,
            us(1),
            "w0",
            BufferAccess::writes("data", 0..1),
        );
        // The wait precedes the record in issue order: runtime no-op.
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(1),
            event: EventId(0),
        });
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        s.push_access(
            StreamId(1),
            Engine::CopyH2D,
            us(1),
            "w1",
            BufferAccess::writes("data", 0..1),
        );
        let r = check_schedule("adv", &s);
        let mut c = codes(&r);
        c.sort_unstable();
        assert_eq!(c, vec!["SAN-S001", "SAN-S003"]);
    }

    #[test]
    fn two_stream_event_cycle_is_flagged() {
        // s0 waits on e1 before recording e0; s1 waits on e0 before
        // recording e1: classic strict-semantics deadlock.
        let mut s = StreamSchedule::new();
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(0),
            event: EventId(1),
        });
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(1),
            event: EventId(0),
        });
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(1),
            event: EventId(1),
        });
        let r = check_schedule("adv", &s);
        let s005: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code() == "SAN-S005")
            .collect();
        assert_eq!(s005.len(), 2, "{r:?}");
        assert_eq!(s005[0].span, Span::Item { index: 0 });
        assert_eq!(s005[1].span, Span::Item { index: 2 });
        // The runtime watchdog agrees with the static verdict.
        assert!(s.try_run().is_err());
    }

    #[test]
    fn three_stream_event_cycle_is_flagged() {
        let mut s = StreamSchedule::new();
        for i in 0..3u32 {
            s.push_item(ScheduleItem::WaitEvent {
                stream: StreamId(i),
                event: EventId((i + 1) % 3),
            });
            s.push_item(ScheduleItem::RecordEvent {
                stream: StreamId(i),
                event: EventId(i),
            });
        }
        let r = check_schedule("adv", &s);
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.code() == "SAN-S005")
                .count(),
            3,
            "{r:?}"
        );
        assert!(s.try_run().is_err());
    }

    #[test]
    fn self_wait_is_flagged_as_cycle() {
        let mut s = StreamSchedule::new();
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        let r = check_schedule("adv", &s);
        assert!(codes(&r).contains(&"SAN-S005"), "{r:?}");
        assert!(s.try_run().is_err());
    }

    #[test]
    fn never_recorded_wait_stays_s003_not_s005() {
        let mut s = StreamSchedule::new();
        s.wait_event(StreamId(0), EventId(9));
        let r = check_schedule("adv", &s);
        assert_eq!(codes(&r), vec!["SAN-S003"]);
    }

    #[test]
    fn resolvable_out_of_order_wait_is_not_a_cycle() {
        // Wait precedes the record in issue order but on another stream:
        // strict execution resolves it, so only SAN-S003 (the legacy
        // no-op warning) fires, not SAN-S005.
        let mut s = StreamSchedule::new();
        s.push_item(ScheduleItem::WaitEvent {
            stream: StreamId(1),
            event: EventId(0),
        });
        s.push(StreamId(0), Engine::Compute, us(1), "k");
        s.push_item(ScheduleItem::RecordEvent {
            stream: StreamId(0),
            event: EventId(0),
        });
        let r = check_schedule("adv", &s);
        assert_eq!(codes(&r), vec!["SAN-S003"]);
        assert!(s.try_run().is_ok());
    }

    #[test]
    fn chunked_pipeline_is_clean() {
        let s = StreamSchedule::chunked_pipeline(8, 3, us(10), us(10), us(10));
        assert!(check_schedule("pipeline", &s).diagnostics.is_empty());
        assert!(check_outcome("pipeline", &s.run()).diagnostics.is_empty());
    }
}
