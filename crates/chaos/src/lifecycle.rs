//! Device-lifecycle fault model for a serving fleet.
//!
//! [`FaultPlan`](crate::FaultPlan) injects faults *inside* one run; this
//! module models what goes wrong *around* runs at fleet scale: a device
//! degrades (thermal throttle, shrinking HBM carveout, a flaky peer
//! link), then fails hard and is quarantined for repair, drains its
//! backlog on return, and serves a cooldown before it counts as healthy
//! again. The serving layer replays this per-device state machine
//!
//! ```text
//! Healthy -> Degraded -> Quarantined -> Draining -> Recovered -> Healthy
//! ```
//!
//! from a seed-deterministic [`HealthTimeline`], so a fleet run under a
//! [`FleetFaultPlan`] is a pure function of `(plan, devices, horizon)` —
//! byte-identical at any worker-thread count.
//!
//! **Monotonicity by thinning.** Episodes are drawn by generating
//! candidate failure times at the intensity-1 rate (exponential gaps,
//! mean [`FleetFaultPlan::mtbf`]) and accepting each candidate with
//! probability `intensity`, with the accept draw taken *after* the gap
//! draw from the same stream. Candidate times are therefore identical
//! across intensities, and the accepted set at a lower intensity is a
//! subset of the accepted set at a higher one — total downtime (and so
//! fleet goodput loss) is monotone in `intensity` for a fixed seed, the
//! property the availability sweep pins.

use crate::error::SimError;
use hetsim_engine::rng::SimRng;
use hetsim_engine::time::Nanos;

/// One device's position in the lifecycle state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Serving normally.
    Healthy,
    /// Serving, but throttled: slower kernels, a shrunken HBM carveout,
    /// and degraded peer links. The lead-in to a hard failure.
    Degraded,
    /// Hard down for repair: admits nothing, running work is preempted.
    Quarantined,
    /// Back up but draining its backlog: finishes running work, admits
    /// no new requests.
    Draining,
    /// Serving clean again, but still inside the post-repair cooldown
    /// (policies may treat it as a last-resort placement).
    Recovered,
}

impl HealthState {
    /// The state's lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Draining => "draining",
            HealthState::Recovered => "recovered",
        }
    }

    /// Whether a device in this state admits new work.
    pub fn accepts_work(self) -> bool {
        !matches!(self, HealthState::Quarantined | HealthState::Draining)
    }
}

/// A seed-deterministic description of device-lifecycle chaos: how often
/// devices fail, how long each phase of an episode lasts, and how hard a
/// degraded device is throttled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFaultPlan {
    /// Base seed; combined with the device index per stream.
    pub seed: u64,
    /// Fraction of intensity-1 candidate failures that are accepted, in
    /// `[0, 1]`. `0.0` produces an empty timeline (no chaos at all).
    pub intensity: f64,
    /// Mean time between candidate failures per device at intensity 1.
    pub mtbf: Nanos,
    /// How long a device serves degraded before failing hard.
    pub degrade_lead: Nanos,
    /// How long a quarantined device stays hard-down for repair.
    pub repair: Nanos,
    /// How long a repaired device drains before admitting work.
    pub drain: Nanos,
    /// How long a device reports `Recovered` before `Healthy` again.
    pub cooldown: Nanos,
    /// GPU-stage service-time multiplier while `Degraded` (>= 1).
    pub service_penalty: f64,
    /// Peer-link transfer-time multiplier into or out of a `Degraded`
    /// device (>= 1).
    pub link_degrade: f64,
    /// Fraction of HBM capacity still usable while `Degraded`, in
    /// `(0, 1]` (the carveout-shrink model).
    pub carveout_shrink: f64,
}

impl FleetFaultPlan {
    /// No lifecycle chaos at all: an empty timeline for any horizon.
    pub fn off(seed: u64) -> Self {
        Self::at_intensity(seed, 0.0)
    }

    /// The default episode shape at the given acceptance `intensity`:
    /// 60 ms mean time between candidate failures, 8 ms degraded
    /// lead-in, 20 ms repair, 4 ms drain, 8 ms cooldown, with a 1.5x
    /// degraded service penalty, 2x degraded peer links, and a 25% HBM
    /// carveout shrink.
    pub fn at_intensity(seed: u64, intensity: f64) -> Self {
        Self {
            seed,
            intensity,
            mtbf: Nanos::from_millis(60),
            degrade_lead: Nanos::from_millis(8),
            repair: Nanos::from_millis(20),
            drain: Nanos::from_millis(4),
            cooldown: Nanos::from_millis(8),
            service_penalty: 1.5,
            link_degrade: 2.0,
            carveout_shrink: 0.75,
        }
    }

    /// Whether this plan can produce any episode at all.
    pub fn is_active(&self) -> bool {
        self.intensity > 0.0
    }

    /// Rejects impossible plans up front, before any simulation.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |msg: String| Err(SimError::InvalidPlan(msg));
        if !self.intensity.is_finite() || !(0.0..=1.0).contains(&self.intensity) {
            return bad(format!(
                "lifecycle intensity {} is outside [0, 1]",
                self.intensity
            ));
        }
        if self.is_active() && self.mtbf.is_zero() {
            return bad("active lifecycle plan has a zero mtbf".into());
        }
        let cycle = self.degrade_lead + self.repair + self.drain + self.cooldown;
        if self.is_active() && cycle.is_zero() {
            return bad("active lifecycle plan has zero-length episodes".into());
        }
        if !self.service_penalty.is_finite() || self.service_penalty < 1.0 {
            return bad(format!(
                "degraded service penalty {} must be >= 1",
                self.service_penalty
            ));
        }
        if !self.link_degrade.is_finite() || self.link_degrade < 1.0 {
            return bad(format!(
                "degraded link factor {} must be >= 1",
                self.link_degrade
            ));
        }
        if !self.carveout_shrink.is_finite()
            || self.carveout_shrink <= 0.0
            || self.carveout_shrink > 1.0
        {
            return bad(format!(
                "carveout shrink {} is outside (0, 1]",
                self.carveout_shrink
            ));
        }
        Ok(())
    }
}

/// A lifecycle transition, for the fleet trace's `fleet` track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecyclePhase {
    /// Entered `Degraded` (the failure's lead-in).
    Fail,
    /// Entered `Quarantined` (hard down).
    Quarantine,
    /// Entered `Draining` (up, not admitting).
    Drain,
    /// Entered `Recovered` (serving clean, cooling down).
    Recover,
    /// Returned to `Healthy`.
    Restore,
}

impl LifecyclePhase {
    /// The transition's lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            LifecyclePhase::Fail => "fail",
            LifecyclePhase::Quarantine => "quarantine",
            LifecyclePhase::Drain => "drain",
            LifecyclePhase::Recover => "recover",
            LifecyclePhase::Restore => "restore",
        }
    }
}

/// One lifecycle transition on one device, in sim time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// When the transition happens.
    pub at: Nanos,
    /// Which device.
    pub device: usize,
    /// Which transition.
    pub phase: LifecyclePhase,
}

/// One accepted failure episode's phase boundaries.
#[derive(Debug, Clone, Copy)]
struct Episode {
    degraded: Nanos,
    quarantined: Nanos,
    draining: Nanos,
    recovered: Nanos,
    healthy: Nanos,
}

impl Episode {
    fn starting_at(t: Nanos, plan: &FleetFaultPlan) -> Self {
        let quarantined = t + plan.degrade_lead;
        let draining = quarantined + plan.repair;
        let recovered = draining + plan.drain;
        Self {
            degraded: t,
            quarantined,
            draining,
            recovered,
            healthy: recovered + plan.cooldown,
        }
    }

    fn state_at(&self, at: Nanos) -> Option<HealthState> {
        if at < self.degraded || at >= self.healthy {
            return None;
        }
        Some(if at < self.quarantined {
            HealthState::Degraded
        } else if at < self.draining {
            HealthState::Quarantined
        } else if at < self.recovered {
            HealthState::Draining
        } else {
            HealthState::Recovered
        })
    }
}

/// The materialized health history of every device over one serve run:
/// a pure function of `(plan, devices, horizon)`.
#[derive(Debug, Clone)]
pub struct HealthTimeline {
    plan: FleetFaultPlan,
    episodes: Vec<Vec<Episode>>,
}

impl HealthTimeline {
    /// Generates the per-device episode lists. Episodes whose candidate
    /// failure time lands before `horizon` are kept in full (their later
    /// phases may extend past it); overlapping accepted episodes are
    /// serialized back to back, so downtime is the union.
    pub fn generate(plan: &FleetFaultPlan, devices: usize, horizon: Nanos) -> Self {
        let mut episodes = Vec::with_capacity(devices);
        for device in 0..devices {
            let mut rng =
                SimRng::seed_from_parts(&["chaos.lifecycle", &device.to_string()], plan.seed);
            let mut list: Vec<Episode> = Vec::new();
            if plan.is_active() {
                let mut t = Nanos::ZERO;
                loop {
                    // Candidate gap first, accept draw second: candidate
                    // times are identical across intensities, so lower
                    // intensities accept strict subsets (thinning).
                    let u = rng.next_f64().max(1e-12);
                    let gap = plan.mtbf.scale(-u.ln()).max(Nanos::from_nanos(1));
                    t += gap;
                    let accepted = rng.next_f64() < plan.intensity;
                    if t >= horizon {
                        break;
                    }
                    if accepted {
                        let start = match list.last() {
                            Some(prev) if prev.healthy > t => prev.healthy,
                            _ => t,
                        };
                        list.push(Episode::starting_at(start, plan));
                    }
                }
            }
            episodes.push(list);
        }
        Self {
            plan: *plan,
            episodes,
        }
    }

    /// The plan this timeline was generated from.
    pub fn plan(&self) -> &FleetFaultPlan {
        &self.plan
    }

    /// True when no device has any episode (e.g. intensity 0).
    pub fn is_empty(&self) -> bool {
        self.episodes.iter().all(Vec::is_empty)
    }

    /// The device's health state at `at`.
    pub fn state(&self, device: usize, at: Nanos) -> HealthState {
        self.episodes[device]
            .iter()
            .find_map(|e| e.state_at(at))
            .unwrap_or(HealthState::Healthy)
    }

    /// Whether the device admits new work at `at`.
    pub fn accepts(&self, device: usize, at: Nanos) -> bool {
        self.state(device, at).accepts_work()
    }

    /// GPU-stage service-time multiplier at `at` (1.0 unless degraded).
    pub fn service_penalty(&self, device: usize, at: Nanos) -> f64 {
        if self.state(device, at) == HealthState::Degraded {
            self.plan.service_penalty
        } else {
            1.0
        }
    }

    /// Peer-link transfer-time multiplier for a transfer touching
    /// `device` at `at` (1.0 unless degraded).
    pub fn link_factor(&self, device: usize, at: Nanos) -> f64 {
        if self.state(device, at) == HealthState::Degraded {
            self.plan.link_degrade
        } else {
            1.0
        }
    }

    /// Fraction of the device's HBM capacity usable at `at` (1.0 unless
    /// degraded, when the carveout shrinks).
    pub fn capacity_factor(&self, device: usize, at: Nanos) -> f64 {
        if self.state(device, at) == HealthState::Degraded {
            self.plan.carveout_shrink
        } else {
            1.0
        }
    }

    /// The earliest hard-down (quarantine) start at or after `at` on
    /// `device`, if any — the preemption horizon for work scheduled now.
    pub fn next_quarantine_start(&self, device: usize, at: Nanos) -> Option<Nanos> {
        self.episodes[device]
            .iter()
            .map(|e| e.quarantined)
            .find(|&q| q >= at)
    }

    /// Total time the device is hard-down or draining (not admitting),
    /// clipped to `[0, horizon)`.
    pub fn downtime(&self, device: usize, horizon: Nanos) -> Nanos {
        let mut total = Nanos::ZERO;
        for e in &self.episodes[device] {
            let start = e.quarantined.min(horizon);
            let end = e.recovered.min(horizon);
            total += end.saturating_sub(start);
        }
        total
    }

    /// Every lifecycle transition across the fleet, sorted by
    /// `(time, device)` with each episode's phases in machine order —
    /// the fixed emission order for the fleet trace.
    pub fn events(&self) -> Vec<LifecycleEvent> {
        let mut out = Vec::new();
        for (device, list) in self.episodes.iter().enumerate() {
            for e in list {
                out.push(LifecycleEvent {
                    at: e.degraded,
                    device,
                    phase: LifecyclePhase::Fail,
                });
                out.push(LifecycleEvent {
                    at: e.quarantined,
                    device,
                    phase: LifecyclePhase::Quarantine,
                });
                out.push(LifecycleEvent {
                    at: e.draining,
                    device,
                    phase: LifecyclePhase::Drain,
                });
                out.push(LifecycleEvent {
                    at: e.recovered,
                    device,
                    phase: LifecyclePhase::Recover,
                });
                out.push(LifecycleEvent {
                    at: e.healthy,
                    device,
                    phase: LifecyclePhase::Restore,
                });
            }
        }
        out.sort_by_key(|ev| (ev.at, ev.device));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> Nanos {
        Nanos::from_millis(400)
    }

    #[test]
    fn zero_intensity_is_an_empty_timeline() {
        let plan = FleetFaultPlan::off(7);
        let tl = HealthTimeline::generate(&plan, 4, horizon());
        assert!(tl.is_empty());
        assert!(tl.events().is_empty());
        for d in 0..4 {
            assert_eq!(tl.state(d, Nanos::from_millis(10)), HealthState::Healthy);
            assert!(tl.accepts(d, Nanos::from_millis(10)));
            assert_eq!(tl.downtime(d, horizon()), Nanos::ZERO);
        }
    }

    #[test]
    fn timelines_are_seed_deterministic() {
        let plan = FleetFaultPlan::at_intensity(11, 0.7);
        let a = HealthTimeline::generate(&plan, 3, horizon());
        let b = HealthTimeline::generate(&plan, 3, horizon());
        assert_eq!(a.events(), b.events());
        let other = HealthTimeline::generate(&FleetFaultPlan::at_intensity(12, 0.7), 3, horizon());
        assert_ne!(a.events(), other.events(), "seeds must matter");
    }

    #[test]
    fn episode_walks_the_state_machine_in_order() {
        let plan = FleetFaultPlan::at_intensity(5, 1.0);
        let tl = HealthTimeline::generate(&plan, 1, horizon());
        let events = tl.events();
        assert!(!events.is_empty(), "intensity 1 must produce episodes");
        let first = events[0];
        assert_eq!(first.phase, LifecyclePhase::Fail);
        let t0 = first.at;
        assert_eq!(tl.state(0, t0), HealthState::Degraded);
        assert_eq!(
            tl.state(0, t0 + plan.degrade_lead),
            HealthState::Quarantined
        );
        assert!(!tl.accepts(0, t0 + plan.degrade_lead));
        let drained = t0 + plan.degrade_lead + plan.repair;
        assert_eq!(tl.state(0, drained), HealthState::Draining);
        assert!(!tl.accepts(0, drained));
        let recovered = drained + plan.drain;
        assert_eq!(tl.state(0, recovered), HealthState::Recovered);
        assert!(tl.accepts(0, recovered));
        assert_eq!(tl.state(0, recovered + plan.cooldown), HealthState::Healthy);
        // Degraded-phase throttles apply only while degraded.
        assert_eq!(tl.service_penalty(0, t0), plan.service_penalty);
        assert_eq!(tl.link_factor(0, t0), plan.link_degrade);
        assert_eq!(tl.capacity_factor(0, t0), plan.carveout_shrink);
        assert_eq!(tl.service_penalty(0, recovered), 1.0);
    }

    #[test]
    fn downtime_is_monotone_in_intensity() {
        for seed in [1, 9, 23, 77] {
            let mut prev = Nanos::ZERO;
            for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let plan = FleetFaultPlan::at_intensity(seed, intensity);
                let tl = HealthTimeline::generate(&plan, 2, horizon());
                let down = tl.downtime(0, horizon()) + tl.downtime(1, horizon());
                assert!(
                    down >= prev,
                    "downtime shrank at seed {seed} intensity {intensity}"
                );
                prev = down;
            }
        }
    }

    #[test]
    fn next_quarantine_start_sees_the_coming_outage() {
        let plan = FleetFaultPlan::at_intensity(3, 1.0);
        let tl = HealthTimeline::generate(&plan, 1, horizon());
        let first_fail = tl.events()[0].at;
        let q = tl
            .next_quarantine_start(0, Nanos::ZERO)
            .expect("an episode exists");
        assert_eq!(q, first_fail + plan.degrade_lead);
        assert!(tl
            .next_quarantine_start(0, q + Nanos::from_nanos(1))
            .is_none_or(|n| n > q));
    }

    #[test]
    fn impossible_plans_are_rejected() {
        let mut plan = FleetFaultPlan::at_intensity(1, 1.5);
        assert!(plan.validate().is_err(), "intensity > 1 must be rejected");
        plan.intensity = 0.5;
        plan.mtbf = Nanos::ZERO;
        assert!(plan.validate().is_err(), "zero mtbf must be rejected");
        plan.mtbf = Nanos::from_millis(1);
        plan.service_penalty = 0.5;
        assert!(plan.validate().is_err(), "penalty < 1 must be rejected");
        plan.service_penalty = 1.5;
        plan.carveout_shrink = 0.0;
        assert!(plan.validate().is_err(), "zero carveout must be rejected");
        plan.carveout_shrink = 0.75;
        assert!(plan.validate().is_ok());
        assert!(FleetFaultPlan::off(4).validate().is_ok());
    }
}
