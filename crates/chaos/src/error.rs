//! The typed, panic-free failure surface of the simulator.

use hetsim_engine::time::Nanos;
use std::fmt;

/// Everything that can go wrong in a fallible simulation run.
///
/// Recovery exhausts a bounded budget, a plan is impossible up front, a
/// program is malformed, or the stream watchdog detects that the schedule
/// can never make progress. Every variant renders a one-paragraph
/// diagnostic via [`fmt::Display`]; the CLI prints it and exits nonzero
/// instead of unwinding with a backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A schedule's event waits form a cycle (or wait on an event that is
    /// never recorded), so no execution order can make progress.
    Deadlock {
        /// The schedule or workload name.
        schedule: String,
        /// One human-readable line per blocked stream.
        blocked: Vec<String>,
    },
    /// The schedule completed but its makespan exceeds the watchdog
    /// deadline — the sim-time analogue of a hung stream.
    Timeout {
        /// The schedule or workload name.
        schedule: String,
        /// The schedule's actual makespan.
        makespan: Nanos,
        /// The deadline it blew through.
        deadline: Nanos,
    },
    /// A transfer kept failing past the retry budget.
    RetryExhausted {
        /// Which transfer (e.g. `memcpy_h2d(in)`).
        site: String,
        /// Attempts made, including the first.
        attempts: u32,
    },
    /// A kernel kept corrupting past the replay budget.
    ReplayExhausted {
        /// The kernel name.
        kernel: String,
        /// Replays attempted.
        replays: u32,
    },
    /// Host pinned allocation failed and the policy forbids falling back
    /// to pageable staging.
    PinnedAllocFailed {
        /// Which allocation (e.g. `staging`).
        site: String,
    },
    /// The program description is malformed (e.g. no kernels).
    InvalidProgram(String),
    /// The fault plan is impossible under the given recovery policy and
    /// was rejected before any simulation ran.
    InvalidPlan(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { schedule, blocked } => {
                write!(f, "deadlock in `{schedule}`: no stream can make progress")?;
                for b in blocked {
                    write!(f, "\n  - {b}")?;
                }
                Ok(())
            }
            SimError::Timeout {
                schedule,
                makespan,
                deadline,
            } => write!(
                f,
                "timeout in `{schedule}`: makespan {makespan} exceeds deadline {deadline}"
            ),
            SimError::RetryExhausted { site, attempts } => write!(
                f,
                "transfer `{site}` failed {attempts} times, exhausting the retry budget"
            ),
            SimError::ReplayExhausted { kernel, replays } => write!(
                f,
                "kernel `{kernel}` corrupted through {replays} replays, exhausting the \
                 replay budget"
            ),
            SimError::PinnedAllocFailed { site } => write!(
                f,
                "pinned host allocation `{site}` failed and pageable fallback is disabled"
            ),
            SimError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
            SimError::InvalidPlan(msg) => write!(f, "invalid fault plan: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_details() {
        let e = SimError::Deadlock {
            schedule: "pipe".into(),
            blocked: vec!["stream 0 waits on event 1".into()],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock in `pipe`"), "{s}");
        assert!(s.contains("stream 0 waits on event 1"), "{s}");

        let t = SimError::Timeout {
            schedule: "pipe".into(),
            makespan: Nanos::from_micros(90),
            deadline: Nanos::from_micros(50),
        }
        .to_string();
        assert!(t.contains("timeout"), "{t}");

        let r = SimError::RetryExhausted {
            site: "h2d(in)".into(),
            attempts: 5,
        }
        .to_string();
        assert!(r.contains("h2d(in)") && r.contains('5'), "{r}");
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::InvalidPlan("x".into()));
        assert!(e.to_string().contains("invalid fault plan"));
    }
}
