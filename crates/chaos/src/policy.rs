//! Recovery policies: what the runtime does when a fault fires.

use hetsim_engine::time::Nanos;

/// Bounded-recovery knobs, mirroring what production driver stacks do:
/// retry with exponential backoff, replay corrupted kernels, fall back
/// from pinned to pageable staging, and degrade the transfer mode under
/// sustained UVM thrashing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Maximum retries per transfer after the initial attempt. `0` means
    /// a single failure is fatal ([`validate`](crate::FaultPlan::validate)
    /// rejects plans that could hit it).
    pub max_retries: u32,
    /// Backoff before retry `k` (0-based) is `backoff_base << k`.
    pub backoff_base: Nanos,
    /// Maximum kernel replays per kernel launch.
    pub max_replays: u32,
    /// Fixed cost per replay on top of re-running the kernel (fault
    /// containment, context scrub).
    pub replay_overhead: Nanos,
    /// Whether a failed pinned host allocation falls back to pageable
    /// staging (charging the fallback allocation) instead of erroring.
    pub pinned_fallback: bool,
    /// Whether sustained thrashing degrades the transfer mode down the
    /// `uvm_prefetch_async` → `uvm_prefetch` → `uvm` → `standard` ladder.
    pub degrade_modes: bool,
    /// Injected refaults per footprint chunk above which an attempt is
    /// abandoned and the mode degraded.
    pub thrash_threshold: f64,
}

impl RecoveryPolicy {
    /// The backoff charged before retry `attempt` (0-based): exponential
    /// doubling from [`backoff_base`](RecoveryPolicy::backoff_base), with
    /// the shift clamped so large budgets cannot overflow.
    pub fn backoff(&self, attempt: u32) -> Nanos {
        self.backoff_base * (1u64 << attempt.min(16))
    }

    /// A policy that never recovers anything: zero budgets, no fallback,
    /// no degradation. Useful to assert that typed errors surface.
    pub fn brittle() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            backoff_base: Nanos::ZERO,
            max_replays: 0,
            replay_overhead: Nanos::ZERO,
            pinned_fallback: false,
            degrade_modes: false,
            thrash_threshold: f64::INFINITY,
        }
    }
}

impl Default for RecoveryPolicy {
    /// Production-shaped defaults: 4 retries from a 2 µs backoff, 3
    /// replays at 5 µs overhead, pageable fallback on, degradation on at
    /// half a refault per chunk.
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 4,
            backoff_base: Nanos::from_micros(2),
            max_replays: 3,
            replay_overhead: Nanos::from_micros(5),
            pinned_fallback: true,
            degrade_modes: true,
            thrash_threshold: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates_the_shift() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff(0), Nanos::from_micros(2));
        assert_eq!(p.backoff(1), Nanos::from_micros(4));
        assert_eq!(p.backoff(3), Nanos::from_micros(16));
        // Past the clamp the backoff stops growing instead of overflowing.
        assert_eq!(p.backoff(16), p.backoff(40));
    }

    #[test]
    fn brittle_never_recovers() {
        let p = RecoveryPolicy::brittle();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.max_replays, 0);
        assert!(!p.pinned_fallback);
        assert!(!p.degrade_modes);
    }
}
