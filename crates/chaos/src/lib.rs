#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Deterministic fault injection and recovery for the hetsim stack.
//!
//! The paper's central caveat is that UVM's value is conditional: under
//! oversubscription and fault storms the managed modes fall off a cliff,
//! and real driver stacks respond by retrying, throttling, evicting, and
//! falling back rather than crashing (PAPER.md §V; Chien et al. 2019 study
//! exactly these fallback paths in CUDA UM). This crate supplies the
//! machinery to reproduce that behavior in simulation:
//!
//! * [`FaultPlan`] — a seed-deterministic description of *what goes wrong*:
//!   transient DMA transfer failures, ECC-style kernel corruption that
//!   forces a replay, host pinned-allocation failure, and synthetic UVM
//!   fault-storm pressure. Seeded through [`hetsim_engine::rng::SimRng`],
//!   never wall-clock, so the same plan reproduces the same faults on any
//!   machine at any thread count.
//! * [`RecoveryPolicy`] — *what the runtime does about it*: bounded retry
//!   with exponential backoff, bounded kernel replay, pinned→pageable
//!   fallback, and `uvm_prefetch`→`uvm`→`standard` mode degradation under
//!   sustained thrashing.
//! * [`SimError`] — the typed, panic-free failure surface: exhausted
//!   budgets, impossible plans, and the stream watchdog's
//!   [`Deadlock`](SimError::Deadlock)/[`Timeout`](SimError::Timeout).
//! * [`FleetFaultPlan`] / [`HealthTimeline`] — the fleet-scale
//!   counterpart: a seeded device-lifecycle model (degrade → quarantine →
//!   drain → recover) whose per-device health state machine the serving
//!   layer replays for its availability sweeps.
//! * [`ChaosCtx`] — the per-run injection context the runtime threads
//!   through its pipeline, which both decides faults (one serial
//!   [`SimRng`](hetsim_engine::rng::SimRng) stream per run) and books every
//!   recovery cost into a [`ChaosReport`].
//!
//! The crate's core invariant is **separability**: every injected cost is
//! a pure additive overhead, recorded per report component. Subtracting
//! [`ChaosReport::overhead`] from a recovered run's components reproduces
//! the fault-free base run of the (possibly degraded) mode exactly — the
//! property `tests/chaos_props.rs` pins across the whole workload
//! registry.

pub mod ctx;
pub mod error;
pub mod lifecycle;
pub mod plan;
pub mod policy;

pub use ctx::{ChaosCtx, ChaosOverhead, ChaosReport, FaultKind};
pub use error::SimError;
pub use lifecycle::{FleetFaultPlan, HealthState, HealthTimeline, LifecycleEvent, LifecyclePhase};
pub use plan::FaultPlan;
pub use policy::RecoveryPolicy;
