//! The fault plan: a seed-deterministic description of what goes wrong.

use crate::error::SimError;
use crate::policy::RecoveryPolicy;

/// What faults to inject, at what rates, from what seed.
///
/// Rates are per-site probabilities in `[0, 1)`; `storm_pressure` is the
/// expected injected refault count per footprint chunk (dimensionless,
/// usually in `[0, 1]`). All randomness derives from `seed` through
/// [`SimRng`](hetsim_engine::rng::SimRng) — a plan never consults the
/// clock, so the same `(plan, workload, mode)` triple injects the same
/// faults everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Root seed for every injection decision.
    pub seed: u64,
    /// Probability that any one DMA transfer attempt fails transiently.
    pub transfer_fault_rate: f64,
    /// Probability that any one kernel execution is corrupted (ECC-style)
    /// and must replay.
    pub kernel_corruption_rate: f64,
    /// Probability that the run's pinned host staging allocation fails.
    pub pinned_fail_rate: f64,
    /// Expected injected UVM refaults per footprint chunk (thrashing
    /// pressure); only bites in managed modes.
    pub storm_pressure: f64,
}

impl FaultPlan {
    /// The inert plan: nothing ever fails. [`FaultPlan::is_active`] is
    /// false and a run under it is bit-identical to a chaos-free run.
    pub fn off() -> Self {
        FaultPlan {
            seed: 0,
            transfer_fault_rate: 0.0,
            kernel_corruption_rate: 0.0,
            pinned_fail_rate: 0.0,
            storm_pressure: 0.0,
        }
    }

    /// Mild background faulting: occasional transfer retries and rare
    /// kernel replays, no thrashing pressure.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            seed,
            transfer_fault_rate: 0.05,
            kernel_corruption_rate: 0.02,
            pinned_fail_rate: 0.05,
            storm_pressure: 0.1,
        }
    }

    /// Heavy faulting across the whole taxonomy.
    pub fn heavy(seed: u64) -> Self {
        FaultPlan {
            seed,
            transfer_fault_rate: 0.25,
            kernel_corruption_rate: 0.10,
            pinned_fail_rate: 0.25,
            storm_pressure: 0.4,
        }
    }

    /// A UVM fault storm: little transient failure, sustained thrashing
    /// pressure past the default degradation threshold.
    pub fn storm(seed: u64) -> Self {
        FaultPlan {
            seed,
            transfer_fault_rate: 0.02,
            kernel_corruption_rate: 0.0,
            pinned_fail_rate: 0.0,
            storm_pressure: 0.9,
        }
    }

    /// The degradation-sweep axis: one scalar intensity `x` in `[0, 1)`
    /// scaled across the whole taxonomy. `x = 0` is [`FaultPlan::off`];
    /// as `x` grows, transfers retry more, kernels replay more, and storm
    /// pressure eventually crosses the policy's thrash threshold.
    pub fn at_intensity(seed: u64, x: f64) -> Self {
        FaultPlan {
            seed,
            transfer_fault_rate: 0.3 * x,
            kernel_corruption_rate: 0.1 * x,
            pinned_fail_rate: 0.2 * x,
            storm_pressure: x,
        }
    }

    /// Whether any fault can ever fire under this plan.
    pub fn is_active(&self) -> bool {
        self.transfer_fault_rate > 0.0
            || self.kernel_corruption_rate > 0.0
            || self.pinned_fail_rate > 0.0
            || self.storm_pressure > 0.0
    }

    /// Rejects impossible plans before any simulation runs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPlan`] when a rate is out of range or
    /// non-finite, or when a nonzero fault rate meets a zero recovery
    /// budget (a required transfer that can fail but may never retry can
    /// only ever error — the sweep would burn compute producing nothing
    /// but `RetryExhausted`).
    pub fn validate(&self, policy: &RecoveryPolicy) -> Result<(), SimError> {
        let prob = |name: &str, v: f64| -> Result<(), SimError> {
            if !v.is_finite() || !(0.0..1.0).contains(&v) {
                return Err(SimError::InvalidPlan(format!(
                    "{name} must be a probability in [0, 1), got {v}"
                )));
            }
            Ok(())
        };
        prob("transfer_fault_rate", self.transfer_fault_rate)?;
        prob("kernel_corruption_rate", self.kernel_corruption_rate)?;
        prob("pinned_fail_rate", self.pinned_fail_rate)?;
        if !self.storm_pressure.is_finite() || self.storm_pressure < 0.0 {
            return Err(SimError::InvalidPlan(format!(
                "storm_pressure must be finite and non-negative, got {}",
                self.storm_pressure
            )));
        }
        if self.transfer_fault_rate > 0.0 && policy.max_retries == 0 {
            return Err(SimError::InvalidPlan(format!(
                "transfer_fault_rate {} with a retry budget of 0: a failed required \
                 transfer could never recover",
                self.transfer_fault_rate
            )));
        }
        if self.kernel_corruption_rate > 0.0 && policy.max_replays == 0 {
            return Err(SimError::InvalidPlan(format!(
                "kernel_corruption_rate {} with a replay budget of 0: a corrupted \
                 kernel could never recover",
                self.kernel_corruption_rate
            )));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inactive_and_valid() {
        let p = FaultPlan::off();
        assert!(!p.is_active());
        assert!(p.validate(&RecoveryPolicy::default()).is_ok());
        // Even with a zero-budget policy: nothing can fail.
        let strict = RecoveryPolicy {
            max_retries: 0,
            max_replays: 0,
            ..RecoveryPolicy::default()
        };
        assert!(p.validate(&strict).is_ok());
    }

    #[test]
    fn presets_are_active_and_valid() {
        let pol = RecoveryPolicy::default();
        for p in [
            FaultPlan::light(1),
            FaultPlan::heavy(2),
            FaultPlan::storm(3),
            FaultPlan::at_intensity(4, 0.5),
        ] {
            assert!(p.is_active());
            assert!(p.validate(&pol).is_ok(), "{p:?}");
        }
        assert!(!FaultPlan::at_intensity(0, 0.0).is_active());
    }

    #[test]
    fn zero_retry_budget_with_nonzero_rate_is_rejected() {
        let plan = FaultPlan::light(7);
        let pol = RecoveryPolicy {
            max_retries: 0,
            ..RecoveryPolicy::default()
        };
        let err = plan.validate(&pol).unwrap_err();
        assert!(matches!(err, SimError::InvalidPlan(_)));
        assert!(err.to_string().contains("retry budget of 0"), "{err}");

        let pol = RecoveryPolicy {
            max_replays: 0,
            ..RecoveryPolicy::default()
        };
        assert!(plan.validate(&pol).is_err());
    }

    #[test]
    fn out_of_range_rates_are_rejected() {
        let pol = RecoveryPolicy::default();
        for bad in [1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            let p = FaultPlan {
                transfer_fault_rate: bad,
                ..FaultPlan::off()
            };
            assert!(p.validate(&pol).is_err(), "rate {bad} accepted");
        }
        let p = FaultPlan {
            storm_pressure: -1.0,
            ..FaultPlan::off()
        };
        assert!(p.validate(&pol).is_err());
    }
}
