//! The per-run injection context and its bookkeeping report.

use crate::error::SimError;
use crate::plan::FaultPlan;
use crate::policy::RecoveryPolicy;
use hetsim_engine::rng::SimRng;
use hetsim_engine::time::Nanos;
use hetsim_trace::Category;

/// The four injected fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A DMA transfer attempt failed transiently.
    TransferFault,
    /// A kernel execution was corrupted and must replay.
    KernelCorruption,
    /// The host pinned staging allocation failed.
    PinnedAllocFail,
    /// A synthetic UVM refault injected as thrashing pressure.
    StormRefault,
}

impl FaultKind {
    /// All kinds, in taxonomy order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::TransferFault,
        FaultKind::KernelCorruption,
        FaultKind::PinnedAllocFail,
        FaultKind::StormRefault,
    ];

    /// Stable lowercase name used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransferFault => "transfer_fault",
            FaultKind::KernelCorruption => "kernel_corruption",
            FaultKind::PinnedAllocFail => "pinned_alloc_fail",
            FaultKind::StormRefault => "storm_refault",
        }
    }
}

/// Recovery overhead, bucketed by the report component it was charged to.
///
/// This is the subtrahend of the separability invariant: a recovered run's
/// component minus its bucket equals the fault-free component exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosOverhead {
    /// Extra allocation time (pinned→pageable fallback).
    pub alloc: Nanos,
    /// Extra transfer time (failed attempts, backoff, storm migration).
    pub memcpy: Nanos,
    /// Extra kernel time (replays, storm fault stall).
    pub kernel: Nanos,
    /// Extra system time (abandoned degradation attempts).
    pub system: Nanos,
}

impl ChaosOverhead {
    /// Sum of all buckets.
    pub fn total(&self) -> Nanos {
        self.alloc + self.memcpy + self.kernel + self.system
    }
}

/// Everything chaos did to one (possibly multi-attempt) run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosReport {
    /// The plan seed the run was injected from.
    pub seed: u64,
    /// Injected transient transfer failures.
    pub transfer_faults: u64,
    /// Injected kernel corruptions.
    pub corruptions: u64,
    /// Injected pinned-allocation failures.
    pub pinned_failures: u64,
    /// Injected synthetic storm refaults.
    pub storm_refaults: u64,
    /// Transfer retries performed (equals `transfer_faults` on recovery).
    pub retries: u64,
    /// Kernel replays performed.
    pub replays: u64,
    /// Total backoff wait charged across retries.
    pub backoff: Nanos,
    /// Recovery cost per report component.
    pub overhead: ChaosOverhead,
    /// Degradations taken, as `(from, to)` names — mode ladder steps and
    /// the pinned→pageable fallback.
    pub degradations: Vec<(String, String)>,
    /// Mode attempts made (1 = no degradation).
    pub attempts: u32,
}

impl ChaosReport {
    /// An empty report for `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosReport {
            seed,
            ..ChaosReport::default()
        }
    }

    /// Total injected faults across the taxonomy.
    pub fn injected(&self) -> u64 {
        self.transfer_faults + self.corruptions + self.pinned_failures + self.storm_refaults
    }

    /// Folds another attempt's bookkeeping into this cumulative report.
    pub fn absorb(&mut self, other: ChaosReport) {
        self.transfer_faults += other.transfer_faults;
        self.corruptions += other.corruptions;
        self.pinned_failures += other.pinned_failures;
        self.storm_refaults += other.storm_refaults;
        self.retries += other.retries;
        self.replays += other.replays;
        self.backoff += other.backoff;
        self.overhead.alloc += other.overhead.alloc;
        self.overhead.memcpy += other.overhead.memcpy;
        self.overhead.kernel += other.overhead.kernel;
        self.overhead.system += other.overhead.system;
        self.degradations.extend(other.degradations);
        self.attempts += other.attempts;
    }
}

/// The injection context one run attempt threads through the runtime.
///
/// Decisions come from a single serial [`SimRng`] seeded from the plan
/// seed and the run's scope (workload and mode names), so a run's fault
/// sequence is a pure function of `(plan, workload, mode)` — independent
/// of thread count, machine, and wall-clock. Costs are *computed by the
/// runtime* (it owns the device model) and *booked here*; every injected
/// fault also drops an instant on the `chaos` trace track when a session
/// is active.
#[derive(Debug, Clone)]
pub struct ChaosCtx {
    plan: FaultPlan,
    policy: RecoveryPolicy,
    rng: SimRng,
    report: ChaosReport,
}

impl ChaosCtx {
    /// A context for one run attempt. `scope` disambiguates the rng
    /// stream (typically `[workload, mode]`).
    pub fn new(plan: &FaultPlan, policy: &RecoveryPolicy, scope: &[&str]) -> Self {
        let mut parts: Vec<&str> = vec!["hetsim.chaos"];
        parts.extend_from_slice(scope);
        ChaosCtx {
            plan: *plan,
            policy: *policy,
            rng: SimRng::seed_from_parts(&parts, plan.seed),
            report: ChaosReport {
                seed: plan.seed,
                attempts: 1,
                ..ChaosReport::default()
            },
        }
    }

    /// The inert context: injects nothing, books nothing, never errs.
    /// A pipeline run with it is bit-identical to a chaos-free run.
    pub fn inert() -> Self {
        ChaosCtx::new(&FaultPlan::off(), &RecoveryPolicy::default(), &[])
    }

    /// Whether this context can inject anything at all.
    pub fn active(&self) -> bool {
        self.plan.is_active()
    }

    /// The policy in force.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// The bookkeeping so far (this attempt only).
    pub fn report(&self) -> &ChaosReport {
        &self.report
    }

    /// Consumes the context, yielding this attempt's report.
    pub fn finish(self) -> ChaosReport {
        self.report
    }

    /// Rolls transient failure for one transfer that costs `cost` per
    /// attempt, returning the *extra* time to charge to the memcpy
    /// component: each failed attempt burns the full transfer plus an
    /// exponential backoff.
    ///
    /// # Errors
    ///
    /// [`SimError::RetryExhausted`] when failures exceed the retry budget.
    pub fn transfer(&mut self, site: &str, cost: Nanos) -> Result<Nanos, SimError> {
        if self.plan.transfer_fault_rate <= 0.0 {
            return Ok(Nanos::ZERO);
        }
        let mut extra = Nanos::ZERO;
        let mut attempt: u32 = 0;
        while self.rng.chance(self.plan.transfer_fault_rate) {
            self.report.transfer_faults += 1;
            self.emit_instant(FaultKind::TransferFault, site);
            if attempt >= self.policy.max_retries {
                return Err(SimError::RetryExhausted {
                    site: site.to_string(),
                    attempts: attempt + 1,
                });
            }
            let backoff = self.policy.backoff(attempt);
            extra += cost + backoff;
            self.report.retries += 1;
            self.report.backoff += backoff;
            attempt += 1;
        }
        self.report.overhead.memcpy += extra;
        Ok(extra)
    }

    /// Rolls ECC-style corruption for one kernel launch that costs `cost`,
    /// returning the extra kernel time: each replay re-runs the kernel
    /// plus the policy's fixed replay overhead.
    ///
    /// # Errors
    ///
    /// [`SimError::ReplayExhausted`] when corruption outlasts the replay
    /// budget.
    pub fn kernel(&mut self, name: &str, cost: Nanos) -> Result<Nanos, SimError> {
        if self.plan.kernel_corruption_rate <= 0.0 {
            return Ok(Nanos::ZERO);
        }
        let mut extra = Nanos::ZERO;
        let mut replay: u32 = 0;
        while self.rng.chance(self.plan.kernel_corruption_rate) {
            self.report.corruptions += 1;
            self.emit_instant(FaultKind::KernelCorruption, name);
            if replay >= self.policy.max_replays {
                return Err(SimError::ReplayExhausted {
                    kernel: name.to_string(),
                    replays: replay,
                });
            }
            extra += cost + self.policy.replay_overhead;
            self.report.replays += 1;
            replay += 1;
        }
        self.report.overhead.kernel += extra;
        Ok(extra)
    }

    /// Rolls pinned-allocation failure once; on failure either charges
    /// `fallback_cost` (the pageable staging allocation) to the alloc
    /// component and records the degradation, or errs when the policy
    /// forbids falling back. Returns the extra alloc time.
    ///
    /// # Errors
    ///
    /// [`SimError::PinnedAllocFailed`] when
    /// [`RecoveryPolicy::pinned_fallback`] is off.
    pub fn pinned_alloc(&mut self, site: &str, fallback_cost: Nanos) -> Result<Nanos, SimError> {
        if self.plan.pinned_fail_rate <= 0.0 || !self.rng.chance(self.plan.pinned_fail_rate) {
            return Ok(Nanos::ZERO);
        }
        self.report.pinned_failures += 1;
        self.emit_instant(FaultKind::PinnedAllocFail, site);
        if !self.policy.pinned_fallback {
            return Err(SimError::PinnedAllocFailed {
                site: site.to_string(),
            });
        }
        self.report
            .degradations
            .push(("pinned".to_string(), "pageable".to_string()));
        self.report.overhead.alloc += fallback_cost;
        Ok(fallback_cost)
    }

    /// Decides how many synthetic storm refaults to inject against a
    /// footprint of `chunks` chunks: the expectation is
    /// `chunks * storm_pressure`, with the fractional remainder resolved
    /// by one seeded coin flip.
    pub fn storm_refaults(&mut self, chunks: u64) -> u64 {
        if self.plan.storm_pressure <= 0.0 || chunks == 0 {
            return 0;
        }
        let expected = chunks as f64 * self.plan.storm_pressure;
        let mut n = expected.floor() as u64;
        if self.rng.chance(expected.fract()) {
            n += 1;
        }
        if n > 0 {
            self.report.storm_refaults += n;
            self.emit_instant(FaultKind::StormRefault, "storm");
        }
        n
    }

    /// Books the runtime-computed cost of injected storm refaults: the
    /// exposed fault stall (kernel component) and the refault migration
    /// traffic (memcpy component).
    pub fn record_storm(&mut self, kernel_extra: Nanos, memcpy_extra: Nanos) {
        self.report.overhead.kernel += kernel_extra;
        self.report.overhead.memcpy += memcpy_extra;
    }

    /// This attempt's injected refaults per footprint chunk — the quantity
    /// compared against [`RecoveryPolicy::thrash_threshold`].
    pub fn storm_ratio(&self, footprint_chunks: u64) -> f64 {
        if footprint_chunks == 0 {
            return 0.0;
        }
        self.report.storm_refaults as f64 / footprint_chunks as f64
    }

    /// Records an abandoned attempt: the mode is degraded `from → to` and
    /// the abandoned attempt's `cost` is charged to the system component.
    /// Drops a `degrade(from->to)` marker on the `chaos` track.
    ///
    /// `cost` is the attempt's whole run total, which already contains
    /// every recovery extra booked in this context — so the attempt's
    /// per-component overhead buckets are *folded into* the system charge
    /// rather than kept alongside it. Without that, a degraded run's
    /// cumulative overhead would double-count the abandoned extras and
    /// the separability invariant (report − overhead = fault-free base of
    /// the effective mode) would break.
    pub fn record_abandoned(&mut self, from: &str, to: &str, cost: Nanos) {
        self.report
            .degradations
            .push((from.to_string(), to.to_string()));
        self.report.overhead = ChaosOverhead {
            system: cost,
            ..ChaosOverhead::default()
        };
        if hetsim_trace::session::enabled() {
            let name = format!("degrade({from}->{to})");
            hetsim_trace::session::with(|b| {
                let track = b.track("chaos");
                let at = b.now();
                b.instant_at(track, Category::Chaos, name.clone(), at, None);
            });
        }
    }

    /// Drops a zero-width marker on the `chaos` track of the active trace
    /// session; no-op when tracing is off. Instants never perturb the
    /// per-category span sums the trace layer's additivity contract pins.
    fn emit_instant(&self, kind: FaultKind, site: &str) {
        if !hetsim_trace::session::enabled() {
            return;
        }
        hetsim_trace::session::with(|b| {
            let track = b.track("chaos");
            let at = b.now();
            b.instant_at(
                track,
                Category::Chaos,
                format!("{}({site})", kind.name()),
                at,
                None,
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heavy_ctx(seed: u64) -> ChaosCtx {
        ChaosCtx::new(
            &FaultPlan::heavy(seed),
            &RecoveryPolicy::default(),
            &["w", "m"],
        )
    }

    #[test]
    fn inert_ctx_charges_nothing() {
        let mut c = ChaosCtx::inert();
        assert!(!c.active());
        let us = Nanos::from_micros(10);
        assert_eq!(c.transfer("t", us).unwrap(), Nanos::ZERO);
        assert_eq!(c.kernel("k", us).unwrap(), Nanos::ZERO);
        assert_eq!(c.pinned_alloc("p", us).unwrap(), Nanos::ZERO);
        assert_eq!(c.storm_refaults(1000), 0);
        let r = c.finish();
        assert_eq!(r.injected(), 0);
        assert_eq!(r.overhead.total(), Nanos::ZERO);
    }

    #[test]
    fn same_scope_same_seed_is_deterministic() {
        let run = |seed| {
            let mut c = heavy_ctx(seed);
            let mut extras = Vec::new();
            for i in 0..32 {
                extras.push(c.transfer(&format!("t{i}"), Nanos::from_micros(5)));
                extras.push(c.kernel(&format!("k{i}"), Nanos::from_micros(9)));
            }
            let _ = c.storm_refaults(1000);
            (extras, c.finish())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1, "different seed, different faults");
    }

    #[test]
    fn extras_match_bookkeeping() {
        let mut c = heavy_ctx(11);
        let mut memcpy = Nanos::ZERO;
        let mut kernel = Nanos::ZERO;
        for i in 0..64 {
            if let Ok(e) = c.transfer(&format!("t{i}"), Nanos::from_micros(3)) {
                memcpy += e;
            }
            if let Ok(e) = c.kernel(&format!("k{i}"), Nanos::from_micros(4)) {
                kernel += e;
            }
        }
        assert!(c.report().injected() > 0, "heavy plan injected nothing");
        assert_eq!(c.report().overhead.memcpy, memcpy);
        assert_eq!(c.report().overhead.kernel, kernel);
    }

    #[test]
    fn brittle_policy_errors_on_first_fault() {
        let plan = FaultPlan {
            transfer_fault_rate: 0.999_999,
            ..FaultPlan::off()
        };
        let mut c = ChaosCtx::new(&plan, &RecoveryPolicy::brittle(), &["w"]);
        let err = c.transfer("h2d", Nanos::from_micros(1)).unwrap_err();
        assert!(matches!(err, SimError::RetryExhausted { attempts: 1, .. }));
    }

    #[test]
    fn pinned_failure_respects_fallback_policy() {
        let plan = FaultPlan {
            pinned_fail_rate: 0.999_999,
            ..FaultPlan::off()
        };
        let mut ok = ChaosCtx::new(&plan, &RecoveryPolicy::default(), &["w"]);
        let cost = Nanos::from_micros(12);
        assert_eq!(ok.pinned_alloc("staging", cost).unwrap(), cost);
        assert_eq!(ok.report().pinned_failures, 1);
        assert_eq!(
            ok.report().degradations,
            vec![("pinned".to_string(), "pageable".to_string())]
        );

        let mut brittle = ChaosCtx::new(&plan, &RecoveryPolicy::brittle(), &["w"]);
        assert!(matches!(
            brittle.pinned_alloc("staging", cost),
            Err(SimError::PinnedAllocFailed { .. })
        ));
    }

    #[test]
    fn storm_refaults_track_pressure() {
        let plan = FaultPlan {
            storm_pressure: 0.5,
            ..FaultPlan::off()
        };
        let mut c = ChaosCtx::new(&plan, &RecoveryPolicy::default(), &["w"]);
        let n = c.storm_refaults(10_000);
        assert!((4_000..=6_000).contains(&n), "{n}");
        assert!((c.storm_ratio(10_000) - 0.5).abs() < 0.1);
        c.record_storm(Nanos::from_micros(10), Nanos::from_micros(20));
        assert_eq!(c.report().overhead.kernel, Nanos::from_micros(10));
        assert_eq!(c.report().overhead.memcpy, Nanos::from_micros(20));
    }

    #[test]
    fn absorb_accumulates_attempts() {
        let mut total = ChaosReport::new(3);
        let mut a = heavy_ctx(3);
        let _ = a.transfer("t", Nanos::from_micros(50));
        a.record_abandoned("uvm", "standard", Nanos::from_micros(100));
        let a = a.finish();
        let faults = a.transfer_faults;
        total.absorb(a);
        total.absorb(heavy_ctx(3).finish());
        assert_eq!(total.attempts, 2);
        assert_eq!(total.transfer_faults, faults);
        assert_eq!(total.overhead.system, Nanos::from_micros(100));
        assert_eq!(total.degradations.len(), 1);
    }
}
