//! The suite registry: every Table 2 workload by name, plus the
//! irregular-access extension group.
//!
//! Three registries exist side by side:
//!
//! * [`micro_names`] — the paper's 7 microbenchmarks (Fig 7 order);
//! * [`app_names`] — the paper's 14 applications (Fig 8 order);
//! * [`irregular_names`] — workloads added beyond Table 2 to stress the
//!   UVM fault batcher with genuinely irregular page-touch sequences
//!   (currently [`bfs`](crate::irregular::bfs)).
//!
//! [`by_name`] resolves across all three, and [`IRREGULAR_TRIO`] names the
//! canonical irregular study set (bfs + the two Table 2 workloads that
//! carry temporal touch models, kmeans and pathfinder).

use crate::apps;
use crate::irregular;
use crate::micro;
use crate::size::InputSize;
use crate::spec::Workload;

/// A named workload constructor.
#[derive(Clone, Copy)]
pub struct SuiteEntry {
    /// The paper's workload name.
    pub name: &'static str,
    /// One-line description from Table 2.
    pub description: &'static str,
    /// Constructor.
    pub build: fn(InputSize) -> Workload,
}

impl std::fmt::Debug for SuiteEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuiteEntry")
            .field("name", &self.name)
            .finish()
    }
}

const MICRO: [SuiteEntry; 7] = [
    SuiteEntry {
        name: "vector_seq",
        description: "Vector-to-Constant, sequential access (Svedin et al.)",
        build: micro::vector_seq,
    },
    SuiteEntry {
        name: "vector_rand",
        description: "Vector-to-Constant, random access (Svedin et al.)",
        build: micro::vector_rand,
    },
    SuiteEntry {
        name: "saxpy",
        description: "Vector-to-Vector multiply-add (PolyBench)",
        build: micro::saxpy,
    },
    SuiteEntry {
        name: "gemv",
        description: "general Matrix-to-Vector multiplication (PolyBench)",
        build: micro::gemv,
    },
    SuiteEntry {
        name: "gemm",
        description: "general Matrix-to-Matrix multiplication (PolyBench)",
        build: micro::gemm,
    },
    SuiteEntry {
        name: "2DCONV",
        description: "general 2D convolution (PolyBench)",
        build: micro::conv2d,
    },
    SuiteEntry {
        name: "3DCONV",
        description: "general 3D convolution (PolyBench)",
        build: micro::conv3d,
    },
];

const APPS: [SuiteEntry; 14] = [
    SuiteEntry {
        name: "pathfinder",
        description: "dynamic-programming grid path (Rodinia)",
        build: apps::pathfinder,
    },
    SuiteEntry {
        name: "backprop",
        description: "neural-network training (Rodinia)",
        build: apps::backprop,
    },
    SuiteEntry {
        name: "lud",
        description: "LU decomposition (Rodinia)",
        build: apps::lud,
    },
    SuiteEntry {
        name: "kmeans",
        description: "k-means clustering (Rodinia)",
        build: apps::kmeans,
    },
    SuiteEntry {
        name: "knn",
        description: "k-nearest neighbours (UVMBench)",
        build: apps::knn,
    },
    SuiteEntry {
        name: "srad",
        description: "speckle-reducing anisotropic diffusion (Rodinia)",
        build: apps::srad,
    },
    SuiteEntry {
        name: "lavaMD",
        description: "particle potentials in a 3D space (Rodinia)",
        build: apps::lavamd,
    },
    SuiteEntry {
        name: "resnet50",
        description: "50-layer residual network (darknet)",
        build: apps::resnet50,
    },
    SuiteEntry {
        name: "yolov3-tiny",
        description: "Yolov3-tiny detector (darknet)",
        build: apps::yolov3_tiny,
    },
    SuiteEntry {
        name: "resnet18",
        description: "18-layer residual network (darknet)",
        build: apps::resnet18,
    },
    SuiteEntry {
        name: "yolov3",
        description: "Yolov3 detector (darknet)",
        build: apps::yolov3,
    },
    SuiteEntry {
        name: "bayesian",
        description: "Bayesian network learning (UVMBench)",
        build: apps::bayesian,
    },
    SuiteEntry {
        name: "nw",
        description: "Needleman-Wunsch sequence alignment (Rodinia)",
        build: apps::nw,
    },
    SuiteEntry {
        name: "hotspot",
        description: "processor thermal simulation (Rodinia)",
        build: apps::hotspot,
    },
];

const IRREGULAR: [SuiteEntry; 1] = [SuiteEntry {
    name: "bfs",
    description: "level-synchronous breadth-first search (frontier-driven)",
    build: irregular::bfs,
}];

/// The irregular-access study set: the workloads that drive the UVM fault
/// batcher through temporal touch sequences instead of the address-ordered
/// fallback. bfs is registry-native ([`irregular_names`]); kmeans and
/// pathfinder are Table 2 applications carrying attached touch models.
pub const IRREGULAR_TRIO: [&str; 3] = ["bfs", "kmeans", "pathfinder"];

/// The 7 microbenchmark entries in the paper's figure order.
pub fn micro_names() -> Vec<SuiteEntry> {
    MICRO.to_vec()
}

/// The 14 application entries in the paper's Fig 8 order.
pub fn app_names() -> Vec<SuiteEntry> {
    APPS.to_vec()
}

/// Builds the whole microbenchmark suite at one size.
pub fn micro_suite(size: InputSize) -> Vec<Workload> {
    MICRO.iter().map(|e| (e.build)(size)).collect()
}

/// Builds the whole application suite at one size.
pub fn app_suite(size: InputSize) -> Vec<Workload> {
    APPS.iter().map(|e| (e.build)(size)).collect()
}

/// The irregular-extension entries (workloads beyond the paper's Table 2).
pub fn irregular_names() -> Vec<SuiteEntry> {
    IRREGULAR.to_vec()
}

/// Builds the irregular study trio ([`IRREGULAR_TRIO`]) at one size.
pub fn irregular_suite(size: InputSize) -> Vec<Workload> {
    IRREGULAR_TRIO
        .iter()
        .map(|n| by_name(n, size).expect("trio names resolve"))
        .collect()
}

/// Every registered workload — micro, application, and irregular entries —
/// in registry order. The iteration hook for tools that must sweep the
/// whole suite (the sanitizer's `hetsim check --all`, registry-wide tests).
pub fn all_entries() -> Vec<SuiteEntry> {
    MICRO
        .iter()
        .chain(APPS.iter())
        .chain(IRREGULAR.iter())
        .copied()
        .collect()
}

/// Looks a workload up by name, across the micro, application, and
/// irregular registries.
pub fn by_name(name: &str, size: InputSize) -> Option<Workload> {
    MICRO
        .iter()
        .chain(APPS.iter())
        .chain(IRREGULAR.iter())
        .find(|e| e.name == name)
        .map(|e| (e.build)(size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_runtime::GpuProgram;

    #[test]
    fn suite_counts_match_paper() {
        assert_eq!(micro_names().len(), 7);
        assert_eq!(app_names().len(), 14);
        assert_eq!(micro_suite(InputSize::Tiny).len(), 7);
        assert_eq!(app_suite(InputSize::Tiny).len(), 14);
    }

    #[test]
    fn irregular_trio_resolves_with_touch_models() {
        let trio = irregular_suite(InputSize::Tiny);
        assert_eq!(trio.len(), 3);
        for (w, name) in trio.iter().zip(IRREGULAR_TRIO) {
            assert_eq!(w.name(), name);
            assert!(w.touch_model().is_some(), "{name} must carry a model");
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = micro_names()
            .iter()
            .chain(app_names().iter())
            .chain(irregular_names().iter())
            .map(|e| e.name)
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate workload names");
        for n in names {
            let w = by_name(n, InputSize::Tiny).expect("lookup");
            assert_eq!(w.name(), n);
        }
    }

    #[test]
    fn all_entries_covers_every_registry() {
        let all = all_entries();
        assert_eq!(all.len(), 7 + 14 + 1);
        let names: Vec<&str> = all.iter().map(|e| e.name).collect();
        for probe in ["vector_seq", "kmeans", "bfs"] {
            assert!(names.contains(&probe), "missing {probe}");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nope", InputSize::Tiny).is_none());
    }

    #[test]
    fn constructed_names_match_registry() {
        for e in micro_names()
            .iter()
            .chain(app_names().iter())
            .chain(irregular_names().iter())
        {
            let w = (e.build)(InputSize::Tiny);
            assert_eq!(w.name(), e.name, "constructor name mismatch");
        }
    }
}
