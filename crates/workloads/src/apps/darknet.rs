//! The four darknet networks (Redmon): resnet18, resnet50, yolov3-tiny,
//! yolov3.
//!
//! The paper runs them on ImageNet/COCO inputs; pixel values are
//! irrelevant to transfer-mode behaviour, so each network is modelled as
//! its published layer architecture reduced to *stages*: groups of
//! convolution layers with a common spatial resolution and channel width,
//! each becoming one gemm-like kernel (darknet lowers convolutions to gemm
//! via im2col), plus a memory-bound elementwise tail (shortcuts, upsample,
//! activation copies).
//!
//! The darknet gemm path is the same regular, well-tuned kernel the paper
//! studies in its microbenchmark suite — which is why yolov3 prefers
//! `uvm_prefetch` over `uvm_prefetch_async` (its §4.1.2): the `cp.async`
//! rewrite re-fetches the im2col duplication explicitly and adds control
//! overhead to an already-pipelined gemm.

use super::{elems, tile_bytes};
use crate::size::InputSize;
use crate::spec::{KernelSpec, StreamPattern, Workload, LINE};
use hetsim_gpu::kernel::{KernelStyle, LaunchConfig, TileOps};
use hetsim_runtime::{BufferRole, BufferSpec};
use hetsim_uvm::prefetch::Regularity;

const THREADS: u32 = 256;
const SHARED: u64 = 32 * 1024;
const TILE_LINES: u64 = 128;
const CONV_BLOCKS: u64 = 2048;

/// One resolution stage of a network: `layers` convolutions at a relative
/// arithmetic width.
#[derive(Debug, Clone, Copy)]
struct Stage {
    name: &'static str,
    layers: u64,
    /// Relative compute density of this stage (deep, narrow-resolution
    /// stages multiply more channels per byte streamed).
    width: f64,
}

/// Shape of one modelled network.
struct NetShape {
    name: &'static str,
    stages: &'static [Stage],
    /// Relative weight of memory-bound (shortcut/upsample/activation)
    /// traffic versus conv traffic, in tenths.
    memory_tenths: u64,
    /// Base FP ops per streamed element at width 1.0.
    base_intensity: f64,
}

/// resnet18: conv1 + four residual stages (2 basic blocks each).
const RESNET18_STAGES: [Stage; 5] = [
    Stage {
        name: "conv1",
        layers: 1,
        width: 0.5,
    },
    Stage {
        name: "stage1",
        layers: 4,
        width: 0.75,
    },
    Stage {
        name: "stage2",
        layers: 4,
        width: 1.0,
    },
    Stage {
        name: "stage3",
        layers: 4,
        width: 1.25,
    },
    Stage {
        name: "stage4",
        layers: 5,
        width: 1.5,
    },
];

/// resnet50: conv1 + bottleneck stages of 3/4/6/3 blocks (3 convs each).
const RESNET50_STAGES: [Stage; 5] = [
    Stage {
        name: "conv1",
        layers: 1,
        width: 0.5,
    },
    Stage {
        name: "stage1",
        layers: 9,
        width: 0.75,
    },
    Stage {
        name: "stage2",
        layers: 12,
        width: 1.0,
    },
    Stage {
        name: "stage3",
        layers: 18,
        width: 1.25,
    },
    Stage {
        name: "stage4",
        layers: 10,
        width: 1.5,
    },
];

/// yolov3-tiny: 13 convolutions over a shrinking feature map.
const YOLOV3_TINY_STAGES: [Stage; 3] = [
    Stage {
        name: "backbone",
        layers: 7,
        width: 0.75,
    },
    Stage {
        name: "neck",
        layers: 4,
        width: 1.0,
    },
    Stage {
        name: "heads",
        layers: 2,
        width: 0.75,
    },
];

/// yolov3: the 53-layer darknet-53 backbone plus the 22-conv detection
/// neck/heads.
const YOLOV3_STAGES: [Stage; 4] = [
    Stage {
        name: "backbone_hi",
        layers: 15,
        width: 0.75,
    },
    Stage {
        name: "backbone_mid",
        layers: 20,
        width: 1.0,
    },
    Stage {
        name: "backbone_lo",
        layers: 18,
        width: 1.25,
    },
    Stage {
        name: "detect",
        layers: 22,
        width: 0.9,
    },
];

fn build(shape: NetShape, size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let weights = total * 2 / 5;
    let activations = total * 2 / 5;
    let workspace = total - weights - activations;
    let total_layers: u64 = shape.stages.iter().map(|s| s.layers).sum();

    // The whole conv trunk streams the im2col'd activations plus weights
    // once per inference pass; each stage takes its layer-count share.
    let (trunk_tiles, lines) = tile_bytes(weights + activations, CONV_BLOCKS, TILE_LINES);
    let e = elems(lines);

    let mut kernels: Vec<KernelSpec> = shape
        .stages
        .iter()
        .map(|stage| {
            let tiles = (trunk_tiles * stage.layers * 4 / total_layers.max(1)).max(1);
            KernelSpec::new(
                format!("{}_{}", shape.name, stage.name),
                LaunchConfig::new(CONV_BLOCKS, THREADS, SHARED),
            )
            .with_tiles(tiles)
            .with_stream(lines, StreamPattern::Sequential)
            // The cp.async rewrite re-fetches the k x k im2col duplication
            // explicitly instead of through the L1.
            .with_staged_halo(lines)
            .with_local_reads(lines, (weights / LINE / 64).max(256), false)
            .with_stores((lines / 2).max(1))
            .with_ops(TileOps::new(
                shape.base_intensity * stage.width * e,
                shape.base_intensity * stage.width * 0.25 * e,
                2.0 * e,
            ))
            .with_regularity(Regularity::Regular)
            .with_standard_style(KernelStyle::Direct)
            .with_invocations(10)
        })
        .collect();

    // Memory-bound tail: shortcuts, upsampling, activation copies.
    let mem_bytes = activations * shape.memory_tenths / 10;
    let (mtiles, mlines) = tile_bytes(mem_bytes.max(1 << 20), CONV_BLOCKS, TILE_LINES);
    let me = elems(mlines);
    kernels.push(
        KernelSpec::new(
            format!("{}_elementwise", shape.name),
            LaunchConfig::new(CONV_BLOCKS, THREADS, SHARED),
        )
        .with_tiles(mtiles)
        .with_stream(mlines, StreamPattern::Sequential)
        .with_stores(mlines)
        .with_ops(TileOps::new(1.0 * me, 1.0 * me, 0.25 * me))
        .with_regularity(Regularity::Regular)
        .with_standard_style(KernelStyle::Direct)
        .with_invocations(2),
    );

    Workload::new(
        shape.name,
        vec![
            BufferSpec::new("weights", weights, BufferRole::Input),
            BufferSpec::new("activations", activations, BufferRole::InOut),
            BufferSpec::new("workspace", workspace, BufferRole::Scratch),
        ],
        kernels,
        1.0,
    )
}

/// `resnet18`: 18-layer residual network.
pub fn resnet18(size: InputSize) -> Workload {
    build(
        NetShape {
            name: "resnet18",
            stages: &RESNET18_STAGES,
            memory_tenths: 4,
            base_intensity: 48.0,
        },
        size,
    )
}

/// `resnet50`: 50-layer residual network.
pub fn resnet50(size: InputSize) -> Workload {
    build(
        NetShape {
            name: "resnet50",
            stages: &RESNET50_STAGES,
            memory_tenths: 5,
            base_intensity: 64.0,
        },
        size,
    )
}

/// `yolov3-tiny`: the 13-conv-layer detection network.
pub fn yolov3_tiny(size: InputSize) -> Workload {
    build(
        NetShape {
            name: "yolov3-tiny",
            stages: &YOLOV3_TINY_STAGES,
            memory_tenths: 5,
            base_intensity: 36.0,
        },
        size,
    )
}

/// `yolov3`: the 75-conv-layer detection network. The paper notes its GPU
/// kernel time is only ~5.8% of overall execution — allocation and data
/// movement dominate.
pub fn yolov3(size: InputSize) -> Workload {
    build(
        NetShape {
            name: "yolov3",
            stages: &YOLOV3_STAGES,
            memory_tenths: 6,
            base_intensity: 44.0,
        },
        size,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_gpu::kernel::KernelModel;
    use hetsim_runtime::GpuProgram;

    #[test]
    fn stage_counts_match_published_depths() {
        let depth = |stages: &[Stage]| stages.iter().map(|s| s.layers).sum::<u64>();
        assert_eq!(depth(&RESNET18_STAGES), 18);
        assert_eq!(depth(&RESNET50_STAGES), 50);
        assert_eq!(depth(&YOLOV3_TINY_STAGES), 13);
        assert_eq!(depth(&YOLOV3_STAGES), 75);
    }

    #[test]
    fn kernels_are_stages_plus_elementwise() {
        assert_eq!(resnet18(InputSize::Super).kernels().len(), 5 + 1);
        assert_eq!(resnet50(InputSize::Super).kernels().len(), 5 + 1);
        assert_eq!(yolov3_tiny(InputSize::Super).kernels().len(), 3 + 1);
        assert_eq!(yolov3(InputSize::Super).kernels().len(), 4 + 1);
    }

    #[test]
    fn scratch_workspace_present() {
        let w = yolov3(InputSize::Super);
        assert!(w
            .buffers()
            .iter()
            .any(|b| matches!(b.role, BufferRole::Scratch)));
    }

    #[test]
    fn networks_are_regular() {
        for w in [resnet18(InputSize::Super), yolov3(InputSize::Super)] {
            for k in w.kernel_specs() {
                assert_eq!(k.regularity(), Regularity::Regular, "{}", k.name());
            }
        }
    }

    #[test]
    fn deeper_stages_carry_more_tiles() {
        let w = resnet50(InputSize::Super);
        let tiles: Vec<u64> = w
            .kernel_specs()
            .iter()
            .map(|k| k.tiles_per_block())
            .collect();
        // stage3 (18 layers) outweighs conv1 (1 layer).
        assert!(tiles[3] > tiles[0]);
    }
}
