//! The 8 Rodinia applications (Che et al.), selected by the paper for
//! representativeness across the Rodinia performance spectrum.
//!
//! Each model encodes the algorithm's structure at the granularity the
//! simulator consumes: buffer split, kernel sequence, access pattern,
//! staging style, and arithmetic intensity. Comments on each constructor
//! note the paper-observed behaviour the model must reproduce.

use super::{elems, tile_bytes};
use crate::irregular::TouchModel;
use crate::size::InputSize;
use crate::spec::{KernelSpec, StreamPattern, Workload, LINE};
use hetsim_gpu::kernel::{KernelStyle, LaunchConfig, TileOps};
use hetsim_runtime::{BufferRole, BufferSpec};
use hetsim_uvm::prefetch::Regularity;

const BLOCKS: u64 = 4096;
const THREADS: u32 = 256;
const SHARED: u64 = 32 * 1024;
const TILE_LINES: u64 = 128;

fn launch(blocks: u64) -> LaunchConfig {
    LaunchConfig::new(blocks, THREADS, SHARED)
}

/// `lavaMD`: particle potentials within 3D boxes — compute-heavy with
/// irregular neighbour-box reads.
pub fn lavamd(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let positions = total * 2 / 5;
    let params = total / 5;
    let forces = total - positions - params;
    let (tiles, lines) = tile_bytes(positions, BLOCKS, TILE_LINES);
    let e = elems(lines);
    let neighbour_window = (params / LINE).max(1);
    let kernel = KernelSpec::new("lavamd_force", launch(BLOCKS))
        .with_tiles(tiles)
        .with_stream(lines, StreamPattern::Sequential)
        // 26 neighbour boxes, visited in data-dependent order.
        .with_local_reads(4 * lines, neighbour_window, true)
        .with_stores(lines)
        .with_ops(TileOps::new(40.0 * e, 10.0 * e, 3.0 * e))
        .with_regularity(Regularity::Irregular)
        .with_standard_style(KernelStyle::Direct)
        .with_invocations(10);
    Workload::new(
        "lavaMD",
        vec![
            BufferSpec::new("positions", positions, BufferRole::Input),
            BufferSpec::new("params", params, BufferRole::Input),
            BufferSpec::new("forces", forces, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
}

/// `nw` (Needleman-Wunsch): two diagonal-sweep kernels over one score
/// matrix. The paper's pathology: prefetching for one kernel displaces the
/// other's data, so *prefetch makes nw slower* regardless of Async Memcpy.
pub fn nw(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let matrix = total * 9 / 10;
    let reference = total - matrix;
    let (tiles, lines) = tile_bytes(matrix / 2, BLOCKS, TILE_LINES);
    let e = elems(lines);
    let make = |name: &str| {
        KernelSpec::new(name, launch(BLOCKS))
            .with_tiles(tiles)
            .with_stream(
                lines,
                StreamPattern::Strided {
                    stride_lines: 64,
                    region_lines: (matrix / LINE).max(1),
                },
            )
            .with_local_reads(lines / 2, (reference / LINE).max(1), false)
            .with_stores(lines)
            .with_ops(TileOps::new(3.0 * e, 4.0 * e, 2.0 * e))
            .with_regularity(Regularity::Strided)
            .with_standard_style(KernelStyle::StagedSync)
            .with_invocations(96)
    };
    Workload::new(
        "nw",
        vec![
            BufferSpec::new("score_matrix", matrix, BufferRole::InOut),
            BufferSpec::new("reference", reference, BufferRole::Input),
        ],
        vec![make("nw_upper_left"), make("nw_lower_right")],
        // Prefetch decisions for one sweep displace the other's data.
        0.55,
    )
}

/// `kmeans`: point-to-centroid assignment plus centroid update — the
/// paper's exemplar of an irregular program where Async Memcpy beats UVM
/// by ~20%.
pub fn kmeans(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let points = total * 17 / 20;
    let assignments = total - points - (64 << 10);
    let centroids = 64u64 << 10;
    let (tiles, lines) = tile_bytes(points, BLOCKS, TILE_LINES);
    let e = elems(lines);
    let centroid_window = (centroids / LINE).max(1);
    let assign = KernelSpec::new("kmeans_assign", launch(BLOCKS))
        .with_tiles(tiles)
        .with_stream(lines, StreamPattern::Sequential)
        // Every point compares against data-dependent centroids.
        .with_local_reads(3 * lines, centroid_window, true)
        .with_stores((lines / 4).max(1))
        .with_ops(TileOps::new(12.0 * e, 6.0 * e, 2.0 * e))
        .with_regularity(Regularity::Irregular)
        .with_standard_style(KernelStyle::StagedSync)
        .with_invocations(20);
    let update = KernelSpec::new("kmeans_update", launch(BLOCKS))
        .with_tiles(tiles)
        .with_stream(lines, StreamPattern::Sequential)
        .with_local_reads(lines, centroid_window, true)
        .with_stores((lines / 8).max(1))
        .with_ops(TileOps::new(4.0 * e, 3.0 * e, 1.0 * e))
        .with_regularity(Regularity::Irregular)
        .with_standard_style(KernelStyle::StagedSync)
        .with_invocations(20);
    Workload::new(
        "kmeans",
        vec![
            BufferSpec::new("points", points, BufferRole::Input),
            BufferSpec::new("centroids", centroids, BufferRole::InOut),
            BufferSpec::new("assignments", assignments, BufferRole::Output),
        ],
        vec![assign, update],
        1.0,
    )
    // Iterative re-touch: every pass streams the full point set in
    // lane-interleaved order (concurrent thread blocks), consulting the
    // small centroid table throughout. Later passes re-touch resident
    // data — fault-free unless eviction thrashed it in between.
    .with_touch_model(TouchModel::Retouch {
        data: 0,
        table: 1,
        out: 2,
        passes: 3,
        lanes: 8,
        burst: 2,
        table_interval: 5,
    })
}

/// `srad`: speckle-reducing anisotropic diffusion — two PDE kernels over
/// an image grid.
pub fn srad(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let image = total / 2;
    let coeffs = total / 4;
    let params = total - image - coeffs;
    let (tiles, lines) = tile_bytes(image, BLOCKS, TILE_LINES);
    let e = elems(lines);
    let row_window = 3 * (size.grid_2d() * 4 / LINE).max(1);
    let make = |name: &str, fp: f64| {
        KernelSpec::new(name, launch(BLOCKS))
            .with_tiles(tiles)
            .with_stream(lines, StreamPattern::Sequential)
            .with_staged_halo(lines)
            .with_local_reads(2 * lines, row_window, false)
            .with_stores(lines)
            .with_ops(TileOps::new(fp * e, 5.0 * e, 1.5 * e))
            .with_regularity(Regularity::Strided)
            .with_standard_style(KernelStyle::Direct)
            .with_invocations(40)
    };
    Workload::new(
        "srad",
        vec![
            BufferSpec::new("image", image, BufferRole::InOut),
            BufferSpec::new("coeffs", coeffs, BufferRole::Output),
            BufferSpec::new("params", params, BufferRole::Input),
        ],
        vec![make("srad_diffusion", 15.0), make("srad_update", 8.0)],
        1.0,
    )
}

/// `backprop`: layered neural-network training — forward pass plus weight
/// update, both staged through shared memory in Rodinia.
pub fn backprop(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let weights = total * 3 / 5;
    let activations = total * 3 / 10;
    let deltas = total - weights - activations;
    let (tiles, lines) = tile_bytes(weights, BLOCKS, TILE_LINES);
    let e = elems(lines);
    let act_window = (activations / LINE / 64).max(1);
    let forward = KernelSpec::new("backprop_forward", launch(BLOCKS))
        .with_tiles(tiles)
        .with_stream(lines, StreamPattern::Sequential)
        .with_local_reads(lines, act_window, false)
        .with_stores((lines / 4).max(1))
        .with_ops(TileOps::new(6.0 * e, 3.0 * e, 1.0 * e))
        .with_regularity(Regularity::Regular)
        .with_standard_style(KernelStyle::StagedSync)
        .with_invocations(6);
    let adjust = KernelSpec::new("backprop_adjust", launch(BLOCKS))
        .with_tiles(tiles)
        .with_stream(lines, StreamPattern::Sequential)
        .with_local_reads(lines / 2, act_window, false)
        .with_stores(lines)
        .with_ops(TileOps::new(4.0 * e, 3.0 * e, 1.0 * e))
        .with_regularity(Regularity::Regular)
        .with_standard_style(KernelStyle::StagedSync)
        .with_invocations(6);
    Workload::new(
        "backprop",
        vec![
            BufferSpec::new("weights", weights, BufferRole::InOut),
            BufferSpec::new("activations", activations, BufferRole::Input),
            BufferSpec::new("deltas", deltas, BufferRole::Output),
        ],
        vec![forward, adjust],
        1.0,
    )
}

/// `pathfinder`: dynamic programming over a 2D grid, row by row, staging
/// each row through shared memory.
pub fn pathfinder(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let grid = total * 9 / 10;
    let result = total - grid;
    let (tiles, lines) = tile_bytes(grid, BLOCKS, TILE_LINES);
    let e = elems(lines);
    let kernel = KernelSpec::new("pathfinder_dp", launch(BLOCKS))
        .with_tiles(tiles)
        .with_stream(lines, StreamPattern::Sequential)
        // The previous DP row stays hot.
        .with_local_reads(lines, TILE_LINES, false)
        .with_stores((lines / 8).max(1))
        .with_ops(TileOps::new(3.0 * e, 4.0 * e, 1.5 * e))
        .with_regularity(Regularity::Regular)
        .with_standard_style(KernelStyle::StagedSync)
        .with_invocations(30);
    Workload::new(
        "pathfinder",
        vec![
            BufferSpec::new("grid", grid, BufferRole::Input),
            BufferSpec::new("result", result, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
    // Banded wavefront: each DP step sweeps one grid band sequentially
    // and re-touches the tail of the previous band (the carried row).
    .with_touch_model(TouchModel::Wavefront {
        grid: 0,
        out: 1,
        rows: 30,
        halo_chunks: 4,
    })
}

/// `hotspot`: iterative thermal stencil over a chip floorplan.
pub fn hotspot(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let temp = total * 9 / 20;
    let power = total * 9 / 20;
    let out = total - temp - power;
    let (tiles, lines) = tile_bytes(temp + power, BLOCKS, TILE_LINES);
    let e = elems(lines);
    let row_window = 3 * (size.grid_2d() * 4 / LINE).max(1);
    let kernel = KernelSpec::new("hotspot_stencil", launch(BLOCKS))
        .with_tiles(tiles)
        .with_stream(lines, StreamPattern::Sequential)
        .with_staged_halo(lines / 2)
        .with_local_reads(2 * lines, row_window, false)
        .with_stores((lines / 2).max(1))
        .with_ops(TileOps::new(10.0 * e, 4.0 * e, 1.5 * e))
        .with_regularity(Regularity::Strided)
        .with_standard_style(KernelStyle::StagedSync)
        .with_invocations(60);
    Workload::new(
        "hotspot",
        vec![
            BufferSpec::new("temperature", temp, BufferRole::InOut),
            BufferSpec::new("power", power, BufferRole::Input),
            BufferSpec::new("output", out, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
}

/// `lud`: LU decomposition — the paper's exemplar of an access pattern the
/// UVM prefetcher cannot predict ("lud follows an irregular data access
/// pattern"), while shared-memory staging slashes its L1 miss rates
/// (its Fig 10).
pub fn lud(size: InputSize) -> Workload {
    let n = size.grid_2d();
    let matrix = n * n * 4;
    let (tiles, lines) = tile_bytes(matrix, BLOCKS, TILE_LINES);
    let e = elems(lines);
    // Panel walks jump across the matrix; the re-reads cover a window far
    // larger than the L1, thrashing it in the direct form.
    let panel_window = (matrix / LINE / 16).max(4096);
    let kernel = KernelSpec::new("lud_combined", launch(BLOCKS))
        .with_tiles(tiles)
        .with_stream(
            lines,
            StreamPattern::Random {
                region_lines: (matrix / LINE).max(1),
            },
        )
        .with_local_reads(3 * lines, panel_window, true)
        .with_stores(lines)
        // In-place panel updates: half the block's stores revisit earlier
        // lines, bounded to fit comfortably in the L1 once streams stop
        // thrashing it.
        .with_store_window((tiles * lines / 2).clamp(lines.max(4), 768))
        .with_ops(TileOps::new(6.0 * e, 4.0 * e, 2.0 * e))
        .with_regularity(Regularity::Random)
        .with_standard_style(KernelStyle::Direct)
        .with_invocations(40);
    Workload::new(
        "lud",
        vec![BufferSpec::new("matrix", matrix, BufferRole::InOut)],
        vec![kernel],
        1.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_runtime::GpuProgram;

    #[test]
    fn lud_footprint_is_one_matrix() {
        let w = lud(InputSize::Super);
        let n = InputSize::Super.grid_2d();
        assert_eq!(w.footprint(), n * n * 4);
    }

    #[test]
    fn kmeans_has_two_kernels() {
        assert_eq!(kmeans(InputSize::Super).kernels().len(), 2);
        assert_eq!(backprop(InputSize::Super).kernels().len(), 2);
        assert_eq!(srad(InputSize::Super).kernels().len(), 2);
    }

    #[test]
    fn buffer_splits_cover_footprint() {
        for w in [
            lavamd(InputSize::Large),
            srad(InputSize::Large),
            backprop(InputSize::Large),
            hotspot(InputSize::Large),
        ] {
            assert_eq!(w.footprint(), InputSize::Large.mem_bytes(), "{}", w.name());
        }
    }

    #[test]
    fn lavamd_is_compute_heavy() {
        use hetsim_gpu::kernel::KernelModel;
        let heavy = lavamd(InputSize::Super);
        let light = pathfinder(InputSize::Super);
        assert!(heavy.kernel_specs()[0].tile_ops().fp > light.kernel_specs()[0].tile_ops().fp);
    }
}
