//! The 14 real-world applications (Table 2, "Apps" group).
//!
//! * [`rodinia`] — the 8 Rodinia benchmarks the paper selects for
//!   representativeness: lavaMD, NW, Kmeans, Srad, Backprop, Pathfinder,
//!   HotSpot, LUD;
//! * [`uvmbench`] — bayesian and KNN from UVMBench;
//! * [`darknet`] — resnet18, resnet50, yolov3-tiny, yolov3 as conv/gemm
//!   layer sequences.
//!
//! Each constructor takes an [`InputSize`](crate::InputSize) and returns a
//! [`Workload`](crate::spec::Workload) whose footprint tracks the Table 3
//! "Mem" row and whose kernels encode the paper-relevant properties:
//! access regularity, arithmetic intensity, staging structure, kernel
//! count, and inter-kernel data sharing.

pub mod darknet;
pub mod rodinia;
pub mod uvmbench;

pub use darknet::{resnet18, resnet50, yolov3, yolov3_tiny};
pub use rodinia::{backprop, hotspot, kmeans, lavamd, lud, nw, pathfinder, srad};
pub use uvmbench::{bayesian, knn};

use crate::spec::LINE;

/// Splits `bytes` of streaming data across `blocks` blocks in tiles of at
/// most `tile_lines` lines; returns `(tiles_per_block, lines_per_tile)`.
pub(crate) fn tile_bytes(bytes: u64, blocks: u64, tile_lines: u64) -> (u64, u64) {
    let total_lines = (bytes / LINE).max(1);
    let lines_per_block = total_lines.div_ceil(blocks).max(1);
    let tiles = lines_per_block.div_ceil(tile_lines).max(1);
    (tiles, lines_per_block.div_ceil(tiles))
}

/// Elements of `f32` per line count.
pub(crate) fn elems(lines: u64) -> f64 {
    (lines * LINE / 4) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::InputSize;
    use crate::spec::Workload;
    use hetsim_runtime::GpuProgram;

    fn all_apps(size: InputSize) -> Vec<Workload> {
        vec![
            lavamd(size),
            nw(size),
            kmeans(size),
            srad(size),
            backprop(size),
            pathfinder(size),
            hotspot(size),
            lud(size),
            bayesian(size),
            knn(size),
            resnet18(size),
            resnet50(size),
            yolov3_tiny(size),
            yolov3(size),
        ]
    }

    #[test]
    fn fourteen_apps_constructible() {
        let apps = all_apps(InputSize::Super);
        assert_eq!(apps.len(), 14);
        for w in &apps {
            assert!(!w.kernels().is_empty(), "{}", w.name());
            assert!(w.footprint() > 0, "{}", w.name());
        }
    }

    #[test]
    fn footprints_near_table3_target() {
        for size in [InputSize::Large, InputSize::Super] {
            let target = size.mem_bytes() as f64;
            for w in all_apps(size) {
                let fp = w.footprint() as f64;
                assert!(
                    (0.4..=4.1).contains(&(fp / target)),
                    "{} at {size}: footprint {fp} vs target {target}",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn nw_declares_prefetch_conflict() {
        let w = nw(InputSize::Super);
        assert!(w.prefetch_conflict() < 1.0, "nw's two kernels share data");
        assert_eq!(w.kernels().len(), 2);
        // Everyone else is conflict-free.
        for other in all_apps(InputSize::Super) {
            if other.name() != "nw" {
                assert_eq!(other.prefetch_conflict(), 1.0, "{}", other.name());
            }
        }
    }

    #[test]
    fn irregular_apps_classified() {
        use hetsim_gpu::kernel::KernelModel;
        use hetsim_uvm::prefetch::Regularity;
        assert_eq!(
            lud(InputSize::Super).kernel_specs()[0].regularity(),
            Regularity::Random
        );
        assert_eq!(
            kmeans(InputSize::Super).kernel_specs()[0].regularity(),
            Regularity::Irregular
        );
        assert_eq!(
            yolov3(InputSize::Super).kernel_specs()[0].regularity(),
            Regularity::Regular
        );
    }

    #[test]
    fn tiling_helper_invariants() {
        let (tiles, lines) = tile_bytes(512 << 20, 4096, 128);
        assert!(tiles >= 1 && lines >= 1);
        // Conservation within rounding: tiles*lines covers the per-block share.
        let per_block = (512u64 << 20) / 128 / 4096;
        assert!(tiles * lines >= per_block);
        assert!(tiles * lines <= per_block + tiles + 128);
    }

    #[test]
    fn deeper_nets_have_more_work() {
        use hetsim_gpu::kernel::KernelModel;
        let work = |w: &crate::spec::Workload| -> f64 {
            w.kernel_specs()
                .iter()
                .map(|k| k.tiles_per_block() as f64 * k.tile_ops().fp * k.invocations() as f64)
                .sum()
        };
        let r18 = work(&resnet18(InputSize::Super));
        let r50 = work(&resnet50(InputSize::Super));
        assert!(r50 > r18, "resnet50 {r50} flops !> resnet18 {r18}");
    }
}
