//! The two UVMBench applications the paper keeps (the rest overlap with
//! PolyBench and Rodinia): `bayesian` and `KNN`. The paper implemented
//! their Async Memcpy versions; here both come from the same kernel-spec
//! engine, so every mode is available.

use super::{elems, tile_bytes};
use crate::size::InputSize;
use crate::spec::{KernelSpec, StreamPattern, Workload, LINE};
use hetsim_gpu::kernel::{KernelStyle, LaunchConfig, TileOps};
use hetsim_runtime::{BufferRole, BufferSpec};
use hetsim_uvm::prefetch::Regularity;

const BLOCKS: u64 = 4096;
const THREADS: u32 = 256;
const SHARED: u64 = 32 * 1024;
const TILE_LINES: u64 = 128;

/// `bayesian` (BN): Bayesian network structure learning — graph-structured,
/// data-dependent reads.
pub fn bayesian(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let graph = total * 7 / 10;
    let scores = total - graph;
    let (tiles, lines) = tile_bytes(graph, BLOCKS, TILE_LINES);
    let e = elems(lines);
    let kernel = KernelSpec::new("bayesian_score", LaunchConfig::new(BLOCKS, THREADS, SHARED))
        .with_tiles(tiles)
        .with_stream(
            lines,
            StreamPattern::Random {
                region_lines: (graph / LINE).max(1),
            },
        )
        .with_local_reads(2 * lines, (graph / LINE / 8).max(1024), true)
        .with_stores((lines / 4).max(1))
        .with_ops(TileOps::new(8.0 * e, 6.0 * e, 2.5 * e))
        .with_regularity(Regularity::Random)
        .with_standard_style(KernelStyle::Direct)
        .with_invocations(12);
    Workload::new(
        "bayesian",
        vec![
            BufferSpec::new("graph", graph, BufferRole::Input),
            BufferSpec::new("scores", scores, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
}

/// `knn`: k-nearest neighbours — a dense distance sweep over the point set
/// with a data-dependent candidate heap.
pub fn knn(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let points = total * 17 / 20;
    let results = total - points;
    let (tiles, lines) = tile_bytes(points, BLOCKS, TILE_LINES);
    let e = elems(lines);
    let kernel = KernelSpec::new("knn_distance", LaunchConfig::new(BLOCKS, THREADS, SHARED))
        .with_tiles(tiles)
        .with_stream(lines, StreamPattern::Sequential)
        // The query point and candidate heap stay hot; heap updates are
        // data dependent.
        .with_local_reads(lines, 64, true)
        .with_stores((lines / 8).max(1))
        .with_ops(TileOps::new(6.0 * e, 4.0 * e, 2.0 * e))
        .with_regularity(Regularity::Irregular)
        .with_standard_style(KernelStyle::StagedSync)
        .with_invocations(8);
    Workload::new(
        "knn",
        vec![
            BufferSpec::new("points", points, BufferRole::Input),
            BufferSpec::new("results", results, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_runtime::GpuProgram;

    #[test]
    fn footprints_match_target() {
        for size in [InputSize::Large, InputSize::Super] {
            assert_eq!(bayesian(size).footprint(), size.mem_bytes());
            assert_eq!(knn(size).footprint(), size.mem_bytes());
        }
    }

    #[test]
    fn bayesian_is_random_access() {
        use hetsim_gpu::kernel::KernelModel;
        let w = bayesian(InputSize::Super);
        assert_eq!(w.kernel_specs()[0].regularity(), Regularity::Random);
    }

    #[test]
    fn knn_streams_sequentially_but_is_irregular() {
        use hetsim_gpu::kernel::KernelModel;
        let w = knn(InputSize::Super);
        assert_eq!(w.kernel_specs()[0].regularity(), Regularity::Irregular);
        assert_eq!(
            w.kernel_specs()[0].standard_style(),
            KernelStyle::StagedSync
        );
    }
}
