//! The paper's Table 3 input-size presets.
//!
//! | | Tiny | Small | Medium | Large | Super | Mega |
//! |---|---|---|---|---|---|---|
//! | Mem | 1MB | 8MB | 64MB | 512MB | 4GB | 32GB |
//! | 1D | 256K | 2M | 16M | 128M | 1G | 8G |
//! | 2D | 512² | 1K² | 4K² | 8K² | 32K² | 64K² |
//! | 3D | 64³ | 128³ | 256³ | 512³ | 1K³ | 2K³ |
//!
//! The paper's stability study (its Figs 4–6) selects **Large** and
//! **Super** for the main experiments; Mega footprints approach a single
//! host-DRAM chip's capacity and become noisy.

use std::fmt;

/// One of the six input-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InputSize {
    /// 1 MB memory footprint.
    Tiny,
    /// 8 MB.
    Small,
    /// 64 MB.
    Medium,
    /// 512 MB — one of the two sizes the main experiments use.
    Large,
    /// 4 GB — the other main experiment size.
    Super,
    /// 32 GB — unstable per the paper's Fig 6.
    Mega,
}

impl InputSize {
    /// All sizes, smallest first.
    pub const ALL: [InputSize; 6] = [
        InputSize::Tiny,
        InputSize::Small,
        InputSize::Medium,
        InputSize::Large,
        InputSize::Super,
        InputSize::Mega,
    ];

    /// The paper's figure label.
    pub fn name(self) -> &'static str {
        match self {
            InputSize::Tiny => "tiny",
            InputSize::Small => "small",
            InputSize::Medium => "medium",
            InputSize::Large => "large",
            InputSize::Super => "super",
            InputSize::Mega => "mega",
        }
    }

    /// Target memory footprint, bytes (Table 3 "Mem" row).
    pub fn mem_bytes(self) -> u64 {
        match self {
            InputSize::Tiny => 1 << 20,
            InputSize::Small => 8 << 20,
            InputSize::Medium => 64 << 20,
            InputSize::Large => 512 << 20,
            InputSize::Super => 4 << 30,
            InputSize::Mega => 32 << 30,
        }
    }

    /// Reference 1D element count (Table 3 "1D Grid" row).
    pub fn grid_1d(self) -> u64 {
        match self {
            InputSize::Tiny => 256 << 10,
            InputSize::Small => 2 << 20,
            InputSize::Medium => 16 << 20,
            InputSize::Large => 128 << 20,
            InputSize::Super => 1 << 30,
            InputSize::Mega => 8u64 << 30,
        }
    }

    /// Reference 2D side length (Table 3 "2D Grid" row).
    pub fn grid_2d(self) -> u64 {
        match self {
            InputSize::Tiny => 512,
            InputSize::Small => 1 << 10,
            InputSize::Medium => 4 << 10,
            InputSize::Large => 8 << 10,
            InputSize::Super => 32 << 10,
            InputSize::Mega => 64 << 10,
        }
    }

    /// Reference 3D side length (Table 3 "3D Grid" row).
    pub fn grid_3d(self) -> u64 {
        match self {
            InputSize::Tiny => 64,
            InputSize::Small => 128,
            InputSize::Medium => 256,
            InputSize::Large => 512,
            InputSize::Super => 1 << 10,
            InputSize::Mega => 2 << 10,
        }
    }

    /// The two sizes the paper's main experiments run at.
    pub fn main_experiment_sizes() -> [InputSize; 2] {
        [InputSize::Large, InputSize::Super]
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_mem_row() {
        let mems: Vec<u64> = InputSize::ALL.iter().map(|s| s.mem_bytes()).collect();
        assert_eq!(
            mems,
            vec![1 << 20, 8 << 20, 64 << 20, 512 << 20, 4 << 30, 32u64 << 30]
        );
    }

    #[test]
    fn table3_1d_row() {
        assert_eq!(InputSize::Tiny.grid_1d(), 262_144);
        assert_eq!(InputSize::Large.grid_1d(), 134_217_728);
        assert_eq!(InputSize::Mega.grid_1d(), 8_589_934_592);
    }

    #[test]
    fn table3_2d_row() {
        assert_eq!(InputSize::Tiny.grid_2d(), 512);
        assert_eq!(InputSize::Large.grid_2d(), 8_192);
        assert_eq!(InputSize::Mega.grid_2d(), 65_536);
    }

    #[test]
    fn table3_3d_row() {
        assert_eq!(InputSize::Tiny.grid_3d(), 64);
        assert_eq!(InputSize::Super.grid_3d(), 1_024);
    }

    #[test]
    fn one_float_vector_matches_mem_row_at_tiny() {
        // Table 3's note: with float32 and e.g. 2 vectors the per-vector
        // size is 128K at Tiny; a single 256K-float vector is exactly 1 MB.
        assert_eq!(InputSize::Tiny.grid_1d() * 4, InputSize::Tiny.mem_bytes());
    }

    #[test]
    fn sizes_are_ordered() {
        for pair in InputSize::ALL.windows(2) {
            assert!(pair[0].mem_bytes() < pair[1].mem_bytes());
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn main_sizes_are_large_and_super() {
        assert_eq!(
            InputSize::main_experiment_sizes(),
            [InputSize::Large, InputSize::Super]
        );
    }
}
