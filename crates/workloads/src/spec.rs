//! The generic kernel-spec engine every workload is built from.
//!
//! A [`KernelSpec`] is a parameterized tile program: per tile it emits a
//! streaming input slice (sequential, strided, or random), a set of
//! re-referenced "local" reads against a shared table (whose window size
//! controls how well the L1 captures the reuse), and output stores, plus an
//! arithmetic budget. The per-workload constructors in [`crate::micro`] and
//! [`crate::apps`] derive these parameters from the actual algorithm
//! structure; the engine turns them into deterministic line-granular
//! address streams for the cache and UVM simulations.

use crate::irregular::TouchModel;
use hetsim_gpu::kernel::{KernelModel, KernelStyle, LaunchConfig, TileOps};
use hetsim_mem::addr::MemAccess;
use hetsim_runtime::{BufferSpec, GpuProgram, PageTouch};
use hetsim_uvm::prefetch::Regularity;

/// Cache-line size the address generators emit at.
pub const LINE: u64 = 128;

/// Base of the streaming-input address region.
const INPUT_BASE: u64 = 1 << 40;
/// Base of the output address region.
const OUTPUT_BASE: u64 = 1 << 41;
/// Base of the shared-table (re-referenced data) region.
const TABLE_BASE: u64 = 1 << 42;

/// How a kernel's streaming input walks memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPattern {
    /// Dense sequential lines (vector_seq, saxpy, gemm panels).
    Sequential,
    /// Fixed-stride walk over a region (stencil rows, matrix columns).
    Strided {
        /// Stride between consecutive transactions, in lines.
        stride_lines: u64,
        /// Size of the region the walk wraps within, in lines.
        region_lines: u64,
    },
    /// Hash-random lines within a region (vector_rand, lud panels).
    Random {
        /// Size of the region addresses are drawn from, in lines.
        region_lines: u64,
    },
}

/// Deterministic 64-bit mixing of three coordinates (block, tile, index).
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(c.wrapping_mul(0x1656_67B1_9E37_79F9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A parameterized tile-program kernel.
///
/// Build one with [`KernelSpec::new`] and the `with_*` methods:
///
/// ```
/// use hetsim_workloads::spec::{KernelSpec, StreamPattern};
/// use hetsim_gpu::kernel::{LaunchConfig, TileOps, KernelStyle};
/// use hetsim_uvm::prefetch::Regularity;
///
/// let k = KernelSpec::new("demo", LaunchConfig::new(1024, 256, 32 * 1024))
///     .with_tiles(16)
///     .with_stream(64, StreamPattern::Sequential)
///     .with_stores(64)
///     .with_ops(TileOps::new(4096.0, 2048.0, 512.0))
///     .with_regularity(Regularity::Regular)
///     .with_standard_style(KernelStyle::StagedSync);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    name: String,
    launch: LaunchConfig,
    tiles_per_block: u64,
    stream_lines_per_tile: u64,
    stream_pattern: StreamPattern,
    staged_halo_lines: u64,
    local_reads_per_tile: u64,
    local_window_lines: u64,
    local_random: bool,
    store_lines_per_tile: u64,
    store_window_lines: Option<u64>,
    ops: TileOps,
    regularity: Regularity,
    standard_style: KernelStyle,
    invocations: u64,
}

impl KernelSpec {
    /// Creates a kernel with no memory traffic and no arithmetic; fill it
    /// in with the `with_*` methods.
    pub fn new<S: Into<String>>(name: S, launch: LaunchConfig) -> Self {
        KernelSpec {
            name: name.into(),
            launch,
            tiles_per_block: 1,
            stream_lines_per_tile: 0,
            stream_pattern: StreamPattern::Sequential,
            staged_halo_lines: 0,
            local_reads_per_tile: 0,
            local_window_lines: 1,
            local_random: false,
            store_lines_per_tile: 0,
            store_window_lines: None,
            ops: TileOps::default(),
            regularity: Regularity::Regular,
            standard_style: KernelStyle::Direct,
            invocations: 1,
        }
    }

    /// Sets tiles per block.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero.
    pub fn with_tiles(mut self, tiles: u64) -> Self {
        assert!(tiles > 0, "kernel needs at least one tile");
        self.tiles_per_block = tiles;
        self
    }

    /// Sets the streaming input: `lines` transactions per tile walking
    /// `pattern`.
    pub fn with_stream(mut self, lines: u64, pattern: StreamPattern) -> Self {
        self.stream_lines_per_tile = lines;
        self.stream_pattern = pattern;
        self
    }

    /// Extra halo lines fetched per tile when the kernel is forced into a
    /// staged form (stencils overlap their tiles).
    pub fn with_staged_halo(mut self, lines: u64) -> Self {
        self.staged_halo_lines = lines;
        self
    }

    /// Re-referenced reads per tile against a shared table of
    /// `window_lines` lines; `random` picks hash-random table entries
    /// (irregular reuse) instead of a rotating walk.
    pub fn with_local_reads(mut self, reads: u64, window_lines: u64, random: bool) -> Self {
        assert!(window_lines > 0, "reuse window must be non-empty");
        self.local_reads_per_tile = reads;
        self.local_window_lines = window_lines;
        self.local_random = random;
        self
    }

    /// Output stores per tile (sequential).
    pub fn with_stores(mut self, lines: u64) -> Self {
        self.store_lines_per_tile = lines;
        self
    }

    /// Makes stores revisit a rotating window of `window_lines` per block
    /// instead of streaming fresh lines — in-place update patterns (lud
    /// panels) whose store locality the L1 can capture once streaming
    /// loads stop thrashing it.
    ///
    /// # Panics
    ///
    /// Panics if `window_lines` is zero.
    pub fn with_store_window(mut self, window_lines: u64) -> Self {
        assert!(window_lines > 0, "store window must be non-empty");
        self.store_window_lines = Some(window_lines);
        self
    }

    /// Sets how many times the application launches this kernel.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_invocations(mut self, n: u64) -> Self {
        assert!(n > 0, "kernel must launch at least once");
        self.invocations = n;
        self
    }

    /// Arithmetic budget per tile.
    pub fn with_ops(mut self, ops: TileOps) -> Self {
        self.ops = ops;
        self
    }

    /// Access regularity classification (drives UVM prefetch coverage).
    pub fn with_regularity(mut self, r: Regularity) -> Self {
        self.regularity = r;
        self
    }

    /// The hand-written standard version's style.
    pub fn with_standard_style(mut self, s: KernelStyle) -> Self {
        self.standard_style = s;
        self
    }

    /// Streaming bytes this kernel touches per block.
    pub fn stream_bytes_per_block(&self) -> u64 {
        self.tiles_per_block * self.stream_lines_per_tile * LINE
    }

    fn stream_addr(&self, block: u64, tile: u64, i: u64) -> u64 {
        let flat = (block * self.tiles_per_block + tile) * self.stream_lines_per_tile + i;
        let line_no = match self.stream_pattern {
            StreamPattern::Sequential => flat,
            StreamPattern::Strided {
                stride_lines,
                region_lines,
            } => (flat * stride_lines) % region_lines.max(1),
            StreamPattern::Random { region_lines } => hash3(block, tile, i) % region_lines.max(1),
        };
        INPUT_BASE + line_no * LINE
    }
}

impl KernelModel for KernelSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn launch(&self) -> LaunchConfig {
        self.launch
    }

    fn tiles_per_block(&self) -> u64 {
        self.tiles_per_block
    }

    fn stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        for i in 0..self.stream_lines_per_tile {
            out.push(MemAccess::global_load(self.stream_addr(block, tile, i)));
        }
    }

    fn staged_stream_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        self.stream_accesses(block, tile, out);
        // Halo overfetch: neighbouring lines re-fetched by this tile.
        for i in 0..self.staged_halo_lines {
            out.push(MemAccess::global_load(
                self.stream_addr(block, tile, i % self.stream_lines_per_tile.max(1)) + LINE,
            ));
        }
    }

    fn local_accesses(&self, block: u64, tile: u64, out: &mut Vec<MemAccess>) {
        for i in 0..self.local_reads_per_tile {
            let idx = if self.local_random {
                hash3(block ^ 0xA5A5, tile, i) % self.local_window_lines
            } else {
                (tile * self.local_reads_per_tile + i) % self.local_window_lines
            };
            out.push(MemAccess::global_load(TABLE_BASE + idx * LINE));
        }
        let out_flat = (block * self.tiles_per_block + tile) * self.store_lines_per_tile;
        for i in 0..self.store_lines_per_tile {
            let line_no = match self.store_window_lines {
                // In-place updates revisit a per-block window.
                Some(w) => block * w + (out_flat + i) % w,
                None => out_flat + i,
            };
            out.push(MemAccess::global_store(OUTPUT_BASE + line_no * LINE));
        }
    }

    fn tile_ops(&self) -> TileOps {
        self.ops
    }

    fn regularity(&self) -> Regularity {
        self.regularity
    }

    fn standard_style(&self) -> KernelStyle {
        self.standard_style
    }

    fn invocations(&self) -> u64 {
        self.invocations
    }
}

/// A complete workload: buffers + kernel sequence, with a name.
///
/// This is the concrete [`GpuProgram`] type all 21 benchmark constructors
/// return.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    buffers: Vec<BufferSpec>,
    kernels: Vec<KernelSpec>,
    prefetch_conflict: f64,
    touch_model: Option<TouchModel>,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty or `prefetch_conflict` is outside
    /// `[0, 1]`.
    pub fn new<S: Into<String>>(
        name: S,
        buffers: Vec<BufferSpec>,
        kernels: Vec<KernelSpec>,
        prefetch_conflict: f64,
    ) -> Self {
        assert!(!kernels.is_empty(), "workload needs at least one kernel");
        assert!(
            (0.0..=1.0).contains(&prefetch_conflict),
            "prefetch conflict out of [0,1]"
        );
        Workload {
            name: name.into(),
            buffers,
            kernels,
            prefetch_conflict,
            touch_model: None,
        }
    }

    /// Attaches a temporal page-touch model ([`TouchModel`]): the workload
    /// then drives the UVM fault batcher through an explicit, ordered
    /// chunk-touch sequence instead of the address-ordered range fallback.
    /// Irregular-access workloads (bfs, kmeans, pathfinder) use this to
    /// produce the under-filled fault batches and re-touch thrashing the
    /// paper attributes to them.
    pub fn with_touch_model(mut self, model: TouchModel) -> Self {
        self.touch_model = Some(model);
        self
    }

    /// The attached temporal touch model, if any.
    pub fn touch_model(&self) -> Option<&TouchModel> {
        self.touch_model.as_ref()
    }

    /// The kernel specs (for inspection/tests).
    pub fn kernel_specs(&self) -> &[KernelSpec] {
        &self.kernels
    }

    /// Rebuilds every kernel through `f` — variant constructors use this
    /// to adjust one dial (arithmetic intensity, invocation count) without
    /// duplicating the base model.
    pub fn map_kernels(&mut self, f: impl Fn(&KernelSpec) -> KernelSpec) {
        self.kernels = self.kernels.iter().map(f).collect();
    }
}

impl GpuProgram for Workload {
    fn name(&self) -> &str {
        &self.name
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        self.buffers.clone()
    }

    fn kernels(&self) -> Vec<&dyn KernelModel> {
        self.kernels.iter().map(|k| k as &dyn KernelModel).collect()
    }

    fn prefetch_conflict(&self) -> f64 {
        self.prefetch_conflict
    }

    fn page_touches(
        &self,
        kernel: usize,
        invocation: u64,
        chunk_size: u64,
    ) -> Option<Vec<PageTouch>> {
        self.touch_model.as_ref()?.touches(
            &self.name,
            kernel,
            invocation,
            chunk_size,
            &self.buffers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_runtime::BufferRole;

    fn launch() -> LaunchConfig {
        LaunchConfig::new(64, 256, 32 * 1024)
    }

    #[test]
    fn sequential_stream_is_dense_and_disjoint_across_blocks() {
        let k = KernelSpec::new("k", launch())
            .with_tiles(2)
            .with_stream(4, StreamPattern::Sequential);
        let mut b0 = Vec::new();
        let mut b1 = Vec::new();
        k.stream_accesses(0, 0, &mut b0);
        k.stream_accesses(1, 0, &mut b1);
        assert_eq!(b0.len(), 4);
        // Dense lines within a tile.
        assert_eq!(b0[1].addr.as_u64() - b0[0].addr.as_u64(), LINE);
        // Blocks read disjoint slices.
        let max0 = b0.iter().map(|a| a.addr.as_u64()).max().unwrap();
        let min1 = b1.iter().map(|a| a.addr.as_u64()).min().unwrap();
        assert!(min1 > max0);
    }

    #[test]
    fn random_stream_stays_in_region() {
        let region = 1000;
        let k = KernelSpec::new("k", launch()).with_stream(
            64,
            StreamPattern::Random {
                region_lines: region,
            },
        );
        let mut out = Vec::new();
        k.stream_accesses(7, 0, &mut out);
        for a in &out {
            let line = (a.addr.as_u64() - INPUT_BASE) / LINE;
            assert!(line < region);
        }
    }

    #[test]
    fn strided_stream_wraps_region() {
        let k = KernelSpec::new("k", launch()).with_stream(
            8,
            StreamPattern::Strided {
                stride_lines: 64,
                region_lines: 256,
            },
        );
        let mut out = Vec::new();
        k.stream_accesses(0, 0, &mut out);
        let lines: Vec<u64> = out
            .iter()
            .map(|a| (a.addr.as_u64() - INPUT_BASE) / LINE)
            .collect();
        assert_eq!(lines[0], 0);
        assert_eq!(lines[1], 64);
        assert!(lines.iter().all(|&l| l < 256));
    }

    #[test]
    fn staged_halo_adds_lines() {
        let k = KernelSpec::new("k", launch())
            .with_stream(16, StreamPattern::Sequential)
            .with_staged_halo(4);
        let mut plain = Vec::new();
        let mut staged = Vec::new();
        k.stream_accesses(0, 0, &mut plain);
        k.staged_stream_accesses(0, 0, &mut staged);
        assert_eq!(staged.len(), plain.len() + 4);
    }

    #[test]
    fn local_reads_respect_window() {
        let k = KernelSpec::new("k", launch())
            .with_local_reads(32, 8, true)
            .with_stores(0);
        let mut out = Vec::new();
        k.local_accesses(3, 1, &mut out);
        assert_eq!(out.len(), 32);
        for a in &out {
            let line = (a.addr.as_u64() - TABLE_BASE) / LINE;
            assert!(line < 8);
        }
    }

    #[test]
    fn stores_are_sequential_per_tile() {
        let k = KernelSpec::new("k", launch()).with_tiles(4).with_stores(8);
        let mut out = Vec::new();
        k.local_accesses(0, 1, &mut out);
        let first = out[0].addr.as_u64();
        assert_eq!(first, OUTPUT_BASE + 8 * LINE);
        assert!(out.iter().all(|a| !a.kind.is_load()));
    }

    #[test]
    fn accesses_are_deterministic() {
        let k = KernelSpec::new("k", launch())
            .with_stream(32, StreamPattern::Random { region_lines: 512 })
            .with_local_reads(16, 64, true)
            .with_stores(8);
        let mut a = Vec::new();
        let mut b = Vec::new();
        k.stream_accesses(5, 2, &mut a);
        k.stream_accesses(5, 2, &mut b);
        assert_eq!(a, b);
        a.clear();
        b.clear();
        k.local_accesses(5, 2, &mut a);
        k.local_accesses(5, 2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_bytes_accounting() {
        let k = KernelSpec::new("k", launch())
            .with_tiles(10)
            .with_stream(64, StreamPattern::Sequential);
        assert_eq!(k.stream_bytes_per_block(), 10 * 64 * 128);
    }

    #[test]
    fn workload_exposes_program_interface() {
        let w = Workload::new(
            "test",
            vec![BufferSpec::new("in", 1024, BufferRole::Input)],
            vec![KernelSpec::new("k", launch())],
            0.8,
        );
        assert_eq!(w.name(), "test");
        assert_eq!(w.footprint(), 1024);
        assert_eq!(w.kernels().len(), 1);
        assert_eq!(w.prefetch_conflict(), 0.8);
        assert_eq!(w.kernel_specs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_workload_rejected() {
        let _ = Workload::new("bad", vec![], vec![], 1.0);
    }
}
