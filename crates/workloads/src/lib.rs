//! # hetsim-workloads
//!
//! The paper's benchmark suite (its Table 2) re-expressed as hetsim kernel
//! models: 7 microbenchmarks and 14 real-world applications spanning linear
//! algebra, physics simulation, data mining, image processing, and machine
//! learning — plus the [`irregular`] extension group (bfs, and the
//! temporal touch models attached to kmeans and pathfinder) that stresses
//! the UVM fault batcher with genuinely irregular page-touch *sequences*
//! rather than address-ordered ranges.
//!
//! Every workload implements [`hetsim_runtime::GpuProgram`]: it declares
//! its buffers (footprint per the Table 3 input-size presets) and its
//! kernels as tile programs over the generic [`spec::KernelSpec`] engine.
//! The per-workload constructors encode the *algorithmic* shape — grid
//! geometry, arithmetic intensity, access regularity, tiling structure,
//! kernel count — and the shared spec machinery turns that into
//! deterministic address streams for the cache/UVM simulation.
//!
//! # Example
//!
//! ```
//! use hetsim_workloads::{micro, InputSize};
//! use hetsim_runtime::GpuProgram;
//!
//! let vs = micro::vector_seq(InputSize::Large);
//! assert_eq!(vs.name(), "vector_seq");
//! // Large inputs have a 512 MB-class footprint (Table 3).
//! assert!(vs.footprint() >= 256 << 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod irregular;
pub mod micro;
pub mod size;
pub mod spec;
pub mod suite;

pub use irregular::TouchModel;
pub use size::InputSize;
pub use spec::{KernelSpec, StreamPattern, Workload};
pub use suite::{
    app_names, app_suite, by_name, irregular_names, irregular_suite, micro_names, micro_suite,
    SuiteEntry, IRREGULAR_TRIO,
};
