//! Irregular-access workloads and the temporal page-touch models that
//! drive them.
//!
//! The paper's central UVM finding (§4.1.1) is that demand migration costs
//! are dominated by *how* a kernel touches pages, not just how many: the
//! driver services far faults in 256-entry batches, and a batch is also
//! retired when the fault stream goes quiet, so scattered access patterns
//! pay the full ~38 µs batch latency for a handful of faults while
//! streaming patterns amortize it over a full buffer. The address-ordered
//! range walk the runtime uses by default cannot express that difference —
//! it touches every chunk of every buffer in address order, which always
//! produces maximally dense fault streams.
//!
//! A [`TouchModel`] closes the gap: it generates the chunk-granular touch
//! sequence of one kernel invocation *in temporal order*, which the runtime
//! replays through the UVM fault batcher
//! ([`demand_touch_sequence`](hetsim_uvm::UvmSpace::demand_touch_sequence)).
//! Three archetypes cover the paper's irregular behaviours:
//!
//! * [`TouchModel::Frontier`] — data-dependent graph expansion ([`bfs`]):
//!   each level touches a scattered, RNG-drawn set of adjacency-list
//!   chunks with short (1–3 chunk) runs. Fault batches stay under-filled,
//!   the region-growing speculation never gets traction, and explicit
//!   prefetch covers almost nothing.
//! * [`TouchModel::Retouch`] — iterative full-dataset passes
//!   (`kmeans`): every pass re-touches the whole point set in a
//!   lane-interleaved order that models concurrent thread blocks streaming
//!   disjoint slices. The first pass faults densely; later passes are
//!   fault-free re-touches *unless* memory pressure evicted chunks in
//!   between, which shows up as refaults (thrashing).
//! * [`TouchModel::Wavefront`] — banded sweeps with halo reuse
//!   (`pathfinder`): each invocation walks one contiguous band plus the
//!   tail of the previous band. Sequential within the band, so speculation
//!   covers most of it — the control case showing the batcher at its best.
//!
//! All randomness is drawn from [`SimRng`] seeded by
//! `(workload, model, kernel, invocation)`, so touch sequences are
//! bit-for-bit reproducible and invariant under tracing.

use crate::size::InputSize;
use crate::spec::{KernelSpec, StreamPattern, Workload, LINE};
use hetsim_engine::rng::SimRng;
use hetsim_gpu::kernel::{KernelStyle, LaunchConfig, TileOps};
use hetsim_runtime::{BufferRole, BufferSpec, PageTouch};
use hetsim_uvm::prefetch::Regularity;

const BLOCKS: u64 = 4096;
const THREADS: u32 = 256;
const SHARED: u64 = 32 * 1024;
const TILE_LINES: u64 = 128;

/// Number of frontier-expansion levels the [`bfs`] model runs.
pub const BFS_LEVELS: u64 = 12;

/// A temporal page-touch model: generates the ordered chunk-touch sequence
/// of one kernel invocation.
///
/// Attached to a [`Workload`] via
/// [`with_touch_model`](Workload::with_touch_model); the runtime replays
/// the sequence through the UVM fault batcher, so touch *order* — bursts,
/// gaps, revisits — decides batching, speculation, and thrashing, exactly
/// the degrees of freedom the paper's irregular workloads exercise.
///
/// Buffer fields are indices into the workload's buffer list; chunk
/// indices the model emits are buffer-relative (the runtime clamps and
/// rebases them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TouchModel {
    /// Frontier-driven graph expansion (bfs): per level, a scattered set
    /// of adjacency chunks in short runs, plus visited-bitmap writes.
    Frontier {
        /// Adjacency-list buffer (the big, scattered one).
        graph: usize,
        /// Row-offset buffer (small, consulted per frontier vertex).
        offsets: usize,
        /// Visited-bitmap buffer (written per visited vertex).
        visited: usize,
        /// Per-vertex level output buffer.
        out: usize,
        /// Number of expansion levels (= modelled kernel invocations).
        levels: u64,
    },
    /// Iterative full-dataset re-touch (kmeans): each pass streams the
    /// whole dataset in lane-interleaved bursts with periodic small-table
    /// reads, then writes the updated table back (the centroid update).
    Retouch {
        /// The dataset streamed every pass.
        data: usize,
        /// The small shared table (centroids) consulted throughout.
        table: usize,
        /// Per-element output buffer.
        out: usize,
        /// Number of full passes before the model reports convergence.
        passes: u64,
        /// Concurrent lanes the dataset is interleaved across (models
        /// thread blocks streaming disjoint slices simultaneously).
        lanes: u64,
        /// Consecutive chunks each lane advances per turn.
        burst: u64,
        /// One table read is interleaved per this many data touches.
        table_interval: u64,
    },
    /// Banded wavefront sweep with halo reuse (pathfinder): invocation
    /// `i` walks band `i` sequentially plus the tail of band `i - 1`.
    Wavefront {
        /// The grid swept band by band.
        grid: usize,
        /// The result buffer (one write per band).
        out: usize,
        /// Number of bands (= modelled kernel invocations).
        rows: u64,
        /// Chunks of the previous band re-touched as halo.
        halo_chunks: u64,
    },
}

/// Chunk count of a buffer at a chunk size.
fn chunks_of(b: &BufferSpec, chunk_size: u64) -> u64 {
    b.bytes.div_ceil(chunk_size).max(1)
}

impl TouchModel {
    /// The touch sequence of `kernel`'s `invocation`-th launch, or `None`
    /// when the model has converged (no further rounds add anything).
    ///
    /// Deterministic in `(workload, kernel, invocation, chunk_size)`.
    pub fn touches(
        &self,
        workload: &str,
        kernel: usize,
        invocation: u64,
        chunk_size: u64,
        buffers: &[BufferSpec],
    ) -> Option<Vec<PageTouch>> {
        match *self {
            TouchModel::Frontier {
                graph,
                offsets,
                visited,
                out,
                levels,
            } => {
                if invocation >= levels {
                    return None;
                }
                let mut rng = SimRng::seed_from_parts(
                    &["hetsim.touch", workload, "frontier"],
                    kernel as u64 * 97 + invocation,
                );
                let n_graph = chunks_of(&buffers[graph], chunk_size);
                let n_off = chunks_of(&buffers[offsets], chunk_size);
                let n_vis = chunks_of(&buffers[visited], chunk_size);
                let n_out = chunks_of(&buffers[out], chunk_size);
                let frontier = frontier_size(invocation, n_graph);
                let mut seq = Vec::new();
                for e in 0..frontier {
                    // Consult the row offsets for this vertex.
                    seq.push(PageTouch {
                        buffer: offsets,
                        chunk: rng.below(n_off),
                        write: false,
                    });
                    // Walk a short, data-dependent run of adjacency chunks.
                    let run = 1 + rng.below(3);
                    let start = rng.below(n_graph);
                    for r in 0..run {
                        seq.push(PageTouch {
                            buffer: graph,
                            chunk: (start + r) % n_graph,
                            write: false,
                        });
                    }
                    // Mark the vertex visited.
                    seq.push(PageTouch {
                        buffer: visited,
                        chunk: rng.below(n_vis),
                        write: true,
                    });
                    if e % 4 == 0 {
                        seq.push(PageTouch {
                            buffer: out,
                            chunk: rng.below(n_out),
                            write: true,
                        });
                    }
                }
                Some(seq)
            }
            TouchModel::Retouch {
                data,
                table,
                out,
                passes,
                lanes,
                burst,
                table_interval,
            } => {
                if invocation >= passes {
                    return None;
                }
                let mut rng = SimRng::seed_from_parts(
                    &["hetsim.touch", workload, "retouch"],
                    kernel as u64 * 97 + invocation,
                );
                let n_data = chunks_of(&buffers[data], chunk_size);
                let n_table = chunks_of(&buffers[table], chunk_size);
                let n_out = chunks_of(&buffers[out], chunk_size);
                let lanes = lanes.max(1);
                let burst = burst.max(1);
                let lane_len = n_data.div_ceil(lanes);
                let mut seq = Vec::new();
                let mut emitted = 0u64;
                let mut turn = 0u64;
                loop {
                    let mut any = false;
                    for lane in 0..lanes {
                        let lane_start = lane * lane_len;
                        let lane_end = ((lane + 1) * lane_len).min(n_data);
                        let s = lane_start + turn * burst;
                        if s >= lane_end {
                            continue;
                        }
                        any = true;
                        for c in s..(s + burst).min(lane_end) {
                            seq.push(PageTouch {
                                buffer: data,
                                chunk: c,
                                write: false,
                            });
                            emitted += 1;
                            if emitted.is_multiple_of(table_interval.max(1)) {
                                seq.push(PageTouch {
                                    buffer: table,
                                    chunk: rng.below(n_table),
                                    write: false,
                                });
                            }
                            if c % 8 == 0 {
                                seq.push(PageTouch {
                                    buffer: out,
                                    chunk: c * n_out / n_data,
                                    write: true,
                                });
                            }
                        }
                    }
                    if !any {
                        break;
                    }
                    turn += 1;
                }
                // Centroid update: each pass ends by writing the
                // accumulated means back to the shared table (which is why
                // the table buffer is InOut, not Input).
                for t in 0..n_table {
                    seq.push(PageTouch {
                        buffer: table,
                        chunk: t,
                        write: true,
                    });
                }
                Some(seq)
            }
            TouchModel::Wavefront {
                grid,
                out,
                rows,
                halo_chunks,
            } => {
                if invocation >= rows {
                    return None;
                }
                let n_grid = chunks_of(&buffers[grid], chunk_size);
                let n_out = chunks_of(&buffers[out], chunk_size);
                let band = n_grid.div_ceil(rows).max(1);
                let start = invocation * band;
                if start >= n_grid {
                    return None;
                }
                let end = if invocation == rows - 1 {
                    n_grid
                } else {
                    (start + band).min(n_grid)
                };
                let mut seq = Vec::new();
                // Halo: the tail of the previous band stays live as input
                // to this one.
                for h in start.saturating_sub(halo_chunks)..start {
                    seq.push(PageTouch {
                        buffer: grid,
                        chunk: h,
                        write: false,
                    });
                }
                for c in start..end {
                    seq.push(PageTouch {
                        buffer: grid,
                        chunk: c,
                        write: false,
                    });
                }
                seq.push(PageTouch {
                    buffer: out,
                    chunk: (invocation * n_out / rows).min(n_out - 1),
                    write: true,
                });
                Some(seq)
            }
        }
    }
}

/// Frontier size at `level`: quadruples from a single chunk up to a third
/// of the graph, then decays — the classic level-synchronous BFS ramp for
/// a small-diameter graph.
fn frontier_size(level: u64, n_graph: u64) -> u64 {
    let cap = (n_graph / 3).max(1);
    let mut f = 1u64;
    let mut l = 0;
    while l < level && f < cap {
        f = (f * 4).min(cap);
        l += 1;
    }
    while l < level {
        f = (f / 4).max(1);
        l += 1;
    }
    f
}

/// `bfs`: level-synchronous breadth-first search over a CSR graph — the
/// canonical frontier-driven irregular workload.
///
/// Each level expands a data-dependent frontier: row offsets are
/// consulted, scattered adjacency-list runs are walked, and the visited
/// bitmap is updated. Under UVM this produces exactly the fault stream the
/// paper's batching model punishes — scattered, bursty, with long quiet
/// gaps that retire batches under-filled — and gives explicit prefetch
/// almost nothing predictable to run ahead of.
pub fn bfs(size: InputSize) -> Workload {
    let total = size.mem_bytes();
    let offsets = total / 10;
    let graph = total * 7 / 10;
    let visited = total / 10;
    let levels_buf = total - offsets - graph - visited;
    let (tiles, lines) = crate::apps::tile_bytes(graph, BLOCKS, TILE_LINES);
    let e = crate::apps::elems(lines);
    let kernel = KernelSpec::new("bfs_expand", LaunchConfig::new(BLOCKS, THREADS, SHARED))
        .with_tiles(tiles)
        .with_stream(
            lines,
            StreamPattern::Random {
                region_lines: (graph / LINE).max(1),
            },
        )
        // Visited-bitmap probes: random reuse over a window far larger
        // than the L1.
        .with_local_reads(lines, (visited / LINE).max(1), true)
        .with_stores((lines / 4).max(1))
        .with_ops(TileOps::new(2.0 * e, 4.0 * e, 2.0 * e))
        .with_regularity(Regularity::Random)
        .with_standard_style(KernelStyle::Direct)
        .with_invocations(BFS_LEVELS);
    Workload::new(
        "bfs",
        vec![
            BufferSpec::new("row_offsets", offsets, BufferRole::Input),
            BufferSpec::new("col_indices", graph, BufferRole::Input),
            BufferSpec::new("visited", visited, BufferRole::InOut),
            BufferSpec::new("levels", levels_buf, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
    .with_touch_model(TouchModel::Frontier {
        graph: 1,
        offsets: 0,
        visited: 2,
        out: 3,
        levels: BFS_LEVELS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_runtime::GpuProgram;

    const CHUNK: u64 = 64 << 10;

    #[test]
    fn bfs_buffers_cover_footprint() {
        let w = bfs(InputSize::Large);
        assert_eq!(w.footprint(), InputSize::Large.mem_bytes());
        assert_eq!(w.buffers().len(), 4);
    }

    #[test]
    fn bfs_touches_are_deterministic() {
        let w = bfs(InputSize::Medium);
        for inv in 0..BFS_LEVELS {
            let a = w.page_touches(0, inv, CHUNK).expect("level");
            let b = w.page_touches(0, inv, CHUNK).expect("level");
            assert_eq!(a, b, "level {inv}");
        }
        assert!(w.page_touches(0, BFS_LEVELS, CHUNK).is_none());
    }

    #[test]
    fn bfs_frontier_grows_then_decays() {
        let w = bfs(InputSize::Medium);
        let len = |inv| w.page_touches(0, inv, CHUNK).unwrap().len();
        assert!(len(1) > len(0), "frontier must ramp up");
        assert!(
            len(BFS_LEVELS - 1) < len(4),
            "frontier must decay after its peak"
        );
    }

    #[test]
    fn bfs_touches_are_scattered_not_sequential() {
        let w = bfs(InputSize::Medium);
        let seq = w.page_touches(0, 4, CHUNK).unwrap();
        let graph_chunks: Vec<u64> = seq
            .iter()
            .filter(|t| t.buffer == 1)
            .map(|t| t.chunk)
            .collect();
        let adjacent = graph_chunks.windows(2).filter(|w| w[1] == w[0] + 1).count();
        // Short runs exist (runs of 1-3 chunks average one adjacent pair
        // per two graph touches) but the stream as a whole must jump
        // around rather than stream.
        assert!(
            adjacent * 3 < graph_chunks.len() * 2,
            "stream too sequential"
        );
    }

    #[test]
    fn frontier_schedule_shape() {
        assert_eq!(frontier_size(0, 3000), 1);
        assert_eq!(frontier_size(1, 3000), 4);
        assert_eq!(frontier_size(2, 3000), 16);
        // Caps at a third of the graph.
        assert_eq!(frontier_size(5, 3000), 1000);
        // Decays afterwards.
        assert_eq!(frontier_size(6, 3000), 250);
        assert!(frontier_size(11, 3000) <= 4);
    }

    #[test]
    fn retouch_covers_every_data_chunk_each_pass() {
        let buffers = vec![
            BufferSpec::new("data", 100 * CHUNK, BufferRole::Input),
            BufferSpec::new("table", CHUNK, BufferRole::InOut),
            BufferSpec::new("out", 10 * CHUNK, BufferRole::Output),
        ];
        let m = TouchModel::Retouch {
            data: 0,
            table: 1,
            out: 2,
            passes: 3,
            lanes: 8,
            burst: 2,
            table_interval: 5,
        };
        let seq = m.touches("t", 0, 0, CHUNK, &buffers).unwrap();
        let mut data_chunks: Vec<u64> = seq
            .iter()
            .filter(|t| t.buffer == 0)
            .map(|t| t.chunk)
            .collect();
        data_chunks.sort_unstable();
        data_chunks.dedup();
        assert_eq!(data_chunks.len(), 100, "every data chunk touched");
        assert!(seq.iter().any(|t| t.buffer == 1), "table consulted");
        assert!(m.touches("t", 0, 3, CHUNK, &buffers).is_none());
    }

    #[test]
    fn retouch_interleaves_lanes() {
        let buffers = vec![
            BufferSpec::new("data", 64 * CHUNK, BufferRole::Input),
            BufferSpec::new("table", CHUNK, BufferRole::InOut),
            BufferSpec::new("out", 8 * CHUNK, BufferRole::Output),
        ];
        let m = TouchModel::Retouch {
            data: 0,
            table: 1,
            out: 2,
            passes: 1,
            lanes: 8,
            burst: 2,
            table_interval: 1000,
        };
        let seq = m.touches("t", 0, 0, CHUNK, &buffers).unwrap();
        let data: Vec<u64> = seq
            .iter()
            .filter(|t| t.buffer == 0)
            .map(|t| t.chunk)
            .collect();
        // First round visits the head of each lane: 0,1, 8,9, 16,17, ...
        assert_eq!(&data[..6], &[0, 1, 8, 9, 16, 17]);
    }

    #[test]
    fn wavefront_bands_tile_the_grid_with_halo() {
        let buffers = vec![
            BufferSpec::new("grid", 90 * CHUNK, BufferRole::Input),
            BufferSpec::new("out", 10 * CHUNK, BufferRole::Output),
        ];
        let m = TouchModel::Wavefront {
            grid: 0,
            out: 1,
            rows: 30,
            halo_chunks: 2,
        };
        let first = m.touches("t", 0, 0, CHUNK, &buffers).unwrap();
        // Band 0 has no previous band, so no halo.
        assert_eq!(first.iter().filter(|t| t.buffer == 0).count(), 3);
        let second = m.touches("t", 0, 1, CHUNK, &buffers).unwrap();
        let grid: Vec<u64> = second
            .iter()
            .filter(|t| t.buffer == 0)
            .map(|t| t.chunk)
            .collect();
        // Halo re-touches the tail of band 0, then walks band 1.
        assert_eq!(grid, vec![1, 2, 3, 4, 5]);
        // All 30 bands together cover the grid exactly once (plus halo).
        let mut all: Vec<u64> = (0..30)
            .flat_map(|i| m.touches("t", 0, i, CHUNK, &buffers).unwrap())
            .filter(|t| t.buffer == 0)
            .map(|t| t.chunk)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 90);
        assert!(m.touches("t", 0, 30, CHUNK, &buffers).is_none());
    }
}
