//! The 7 microbenchmarks (Table 2, "Micro" group).
//!
//! * `vector_seq`, `vector_rand` — Vector-to-Constant kernels after Svedin
//!   et al., written in the staged shared-memory form of the paper's
//!   Figure 3 (synchronous `memcpy` to shared per tile in the standard
//!   version);
//! * `saxpy`, `gemv`, `gemm`, `2DCONV`, `3DCONV` — PolyBench kernels,
//!   direct-indexing in their standard form (the paper adjusted PolyBench
//!   for large inputs and verified gemm efficacy against cutlass — we model
//!   that as a well-pipelined kernel that keeps the SM busy rather than a
//!   naive barrier-staged loop).

use crate::size::InputSize;
use crate::spec::{KernelSpec, StreamPattern, Workload, LINE};
use hetsim_gpu::kernel::{KernelStyle, LaunchConfig, TileOps};
use hetsim_runtime::{BufferRole, BufferSpec};
use hetsim_uvm::prefetch::Regularity;

/// Default grid for the 1D microbenchmarks (the paper's block-count
/// sensitivity baseline).
pub const DEFAULT_BLOCKS: u64 = 4096;
/// Default threads per block.
pub const DEFAULT_THREADS: u32 = 256;
/// Static shared memory per block (the paper's footnote 4: 32 KB).
pub const DEFAULT_SHARED: u64 = 32 * 1024;
/// Tile granularity: a 16 KB half of the double buffer.
const TILE_LINES: u64 = 128;

/// Splits `total_lines` of streaming data across `blocks` blocks in
/// `TILE_LINES`-line tiles; returns `(tiles_per_block, lines_per_tile)`.
fn tile_1d(total_lines: u64, blocks: u64) -> (u64, u64) {
    let lines_per_block = total_lines.div_ceil(blocks).max(1);
    let tiles = lines_per_block.div_ceil(TILE_LINES).max(1);
    (tiles, lines_per_block.div_ceil(tiles))
}

/// Elements of `f32` per line.
fn elems(lines: u64) -> f64 {
    (lines * LINE / 4) as f64
}

/// `vector_seq`: element-wise arithmetic over one vector, sequential
/// access (Svedin et al.).
pub fn vector_seq(size: InputSize) -> Workload {
    vector_seq_custom(size, DEFAULT_BLOCKS, DEFAULT_THREADS)
}

/// `vector_seq` with an explicit launch geometry — the knob the paper's
/// Fig 11 (block count) and Fig 12 (threads per block) sensitivity studies
/// turn.
pub fn vector_seq_custom(size: InputSize, blocks: u64, threads: u32) -> Workload {
    vector_kernel_full("vector_seq", size, blocks, threads, None, DEFAULT_SHARED)
}

/// `vector_seq` with an explicit per-block shared-memory buffer — the knob
/// the paper's Fig 13 (L1-cache/shared-memory carveout) study turns. The
/// double buffer splits `shared_bytes` in two, so tile depth scales with
/// the allocation.
pub fn vector_seq_shared(size: InputSize, shared_bytes: u64) -> Workload {
    vector_kernel_full(
        "vector_seq",
        size,
        DEFAULT_BLOCKS,
        DEFAULT_THREADS,
        None,
        shared_bytes,
    )
}

/// `vector_seq` with a chosen arithmetic intensity (floating-point
/// operations per element) — the knob Svedin et al.'s benchmark exposes.
/// The paper's guidance turns on exactly this axis: memory-bound vectors
/// gain from Async Memcpy, compute-bound kernels only pay its control
/// overhead.
pub fn vector_seq_intensity(size: InputSize, fp_per_elem: f64) -> Workload {
    assert!(fp_per_elem >= 0.0, "intensity must be non-negative");
    let mut w = vector_kernel_full(
        "vector_seq",
        size,
        DEFAULT_BLOCKS,
        DEFAULT_THREADS,
        None,
        DEFAULT_SHARED,
    );
    w.map_kernels(|k| {
        use hetsim_gpu::kernel::KernelModel;
        let lines = k.stream_bytes_per_block() / k.tiles_per_block() / LINE;
        let e = elems(lines);
        k.clone()
            .with_ops(TileOps::new(fp_per_elem * e, 2.0 * e, 0.5 * e))
    });
    w
}

/// `vector_rand`: the same arithmetic with hash-random element access.
pub fn vector_rand(size: InputSize) -> Workload {
    let total_lines = size.grid_1d() * 4 / LINE;
    vector_kernel(
        "vector_rand",
        size,
        DEFAULT_BLOCKS,
        DEFAULT_THREADS,
        Some(StreamPattern::Random {
            region_lines: total_lines,
        }),
    )
}

fn vector_kernel(
    name: &str,
    size: InputSize,
    blocks: u64,
    threads: u32,
    pattern: Option<StreamPattern>,
) -> Workload {
    vector_kernel_full(name, size, blocks, threads, pattern, DEFAULT_SHARED)
}

fn vector_kernel_full(
    name: &str,
    size: InputSize,
    blocks: u64,
    threads: u32,
    pattern: Option<StreamPattern>,
    shared_bytes: u64,
) -> Workload {
    let n = size.grid_1d();
    let bytes = n * 4;
    let total_lines = bytes / LINE;
    // One tile fills half of the double buffer.
    let tile_lines = (shared_bytes / 2 / LINE).max(1);
    let lines_per_block = total_lines.div_ceil(blocks).max(1);
    let tiles = lines_per_block.div_ceil(tile_lines).max(1);
    let lines = lines_per_block.div_ceil(tiles);
    let e = elems(lines);
    let (pattern, regularity) = match pattern {
        Some(p) => (p, Regularity::Random),
        None => (StreamPattern::Sequential, Regularity::Regular),
    };
    let kernel = KernelSpec::new(name, LaunchConfig::new(blocks, threads, shared_bytes))
        .with_tiles(tiles)
        .with_stream(lines, pattern)
        .with_stores(lines)
        .with_ops(TileOps::new(2.0 * e, 2.0 * e, 0.5 * e))
        .with_regularity(regularity)
        .with_standard_style(KernelStyle::StagedSync);
    Workload::new(
        name,
        vec![BufferSpec::new("vector", bytes, BufferRole::InOut)],
        vec![kernel],
        1.0,
    )
}

/// `saxpy`: `y = a*x + y` over two vectors (PolyBench).
pub fn saxpy(size: InputSize) -> Workload {
    let n = size.grid_1d() / 2; // two vectors share the footprint
    let bytes_each = n * 4;
    let total_lines = 2 * bytes_each / LINE; // streams x and y
    let (tiles, lines) = tile_1d(total_lines, DEFAULT_BLOCKS);
    let e = elems(lines) / 2.0; // output elements per tile
    let kernel = KernelSpec::new(
        "saxpy",
        LaunchConfig::new(DEFAULT_BLOCKS, DEFAULT_THREADS, DEFAULT_SHARED),
    )
    .with_tiles(tiles)
    .with_stream(lines, StreamPattern::Sequential)
    .with_stores((lines / 2).max(1))
    .with_ops(TileOps::new(2.0 * e, 2.0 * e, 0.5 * e))
    .with_regularity(Regularity::Regular)
    .with_standard_style(KernelStyle::Direct);
    Workload::new(
        "saxpy",
        vec![
            BufferSpec::new("x", bytes_each, BufferRole::Input),
            BufferSpec::new("y", bytes_each, BufferRole::InOut),
        ],
        vec![kernel],
        1.0,
    )
}

/// `gemv`: dense matrix-vector product (PolyBench).
pub fn gemv(size: InputSize) -> Workload {
    let n = size.grid_2d();
    let matrix_bytes = n * n * 4;
    let vec_bytes = n * 4;
    let total_lines = matrix_bytes / LINE;
    let (tiles, lines) = tile_1d(total_lines, DEFAULT_BLOCKS);
    let e = elems(lines);
    let x_window = (vec_bytes / LINE).max(1);
    let kernel = KernelSpec::new(
        "gemv",
        LaunchConfig::new(DEFAULT_BLOCKS, DEFAULT_THREADS, DEFAULT_SHARED),
    )
    .with_tiles(tiles)
    .with_stream(lines, StreamPattern::Sequential)
    // The x vector is re-read for every matrix row: a rotating walk over
    // its lines, which the L1 captures for small x.
    .with_local_reads(lines, x_window, false)
    .with_stores((lines / n.max(1)).max(1))
    .with_ops(TileOps::new(2.0 * e, 1.5 * e, 0.25 * e))
    .with_regularity(Regularity::Strided)
    .with_standard_style(KernelStyle::Direct);
    Workload::new(
        "gemv",
        vec![
            BufferSpec::new("A", matrix_bytes, BufferRole::Input),
            BufferSpec::new("x", vec_bytes, BufferRole::Input),
            BufferSpec::new("y", vec_bytes, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
}

/// `gemm`: dense matrix-matrix product in 32×32 tiles (PolyBench,
/// cutlass-verified).
pub fn gemm(size: InputSize) -> Workload {
    let n = size.grid_2d();
    let matrix_bytes = n * n * 4;
    let tile_dim = 32u64;
    let grid = (n / tile_dim) * (n / tile_dim);
    // K-loop: one A tile + one B tile per step, 32x32 f32 = 32 lines each.
    let tiles = (n / tile_dim).max(1);
    // The A tile streams; the B panel is shared across the block column
    // and its reuse is caught by the L2 (the paper verified its gemm
    // against cutlass, so we model a well-pipelined kernel).
    let stream_lines = tile_dim * tile_dim * 4 / LINE;
    let b_panel_lines = (n * tile_dim * 4 / LINE).max(1);
    let kernel = KernelSpec::new(
        "gemm",
        LaunchConfig::new(grid.max(1), DEFAULT_THREADS, DEFAULT_SHARED),
    )
    .with_tiles(tiles)
    .with_stream(stream_lines, StreamPattern::Sequential)
    .with_local_reads(stream_lines, b_panel_lines, false)
    .with_stores(1)
    .with_ops(TileOps::new(
        2.0 * (tile_dim * tile_dim * tile_dim) as f64,
        0.5 * (tile_dim * tile_dim * tile_dim) as f64,
        2048.0,
    ))
    .with_regularity(Regularity::Regular)
    .with_standard_style(KernelStyle::Direct);
    Workload::new(
        "gemm",
        vec![
            BufferSpec::new("A", matrix_bytes, BufferRole::Input),
            BufferSpec::new("B", matrix_bytes, BufferRole::Input),
            BufferSpec::new("C", matrix_bytes, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
}

/// `2DCONV`: 3×3 convolution over a 2D grid (PolyBench).
pub fn conv2d(size: InputSize) -> Workload {
    let n = size.grid_2d();
    let grid_bytes = n * n * 4;
    let total_lines = grid_bytes / LINE;
    let (tiles, lines) = tile_1d(total_lines, DEFAULT_BLOCKS);
    let e = elems(lines);
    // Stencil reuse: each output line re-reads its neighbour rows, which
    // sit in a window of three rows and hit the L1 in the direct form.
    let row_lines = (n * 4 / LINE).max(1);
    let kernel = KernelSpec::new(
        "2DCONV",
        LaunchConfig::new(DEFAULT_BLOCKS, DEFAULT_THREADS, DEFAULT_SHARED),
    )
    .with_tiles(tiles)
    .with_stream(lines, StreamPattern::Sequential)
    // Forced tiling re-fetches each input row for the output rows above
    // and below it: the staged forms stream ~3x the data.
    .with_staged_halo(2 * lines)
    .with_local_reads(2 * lines, 3 * row_lines, false)
    .with_stores(lines)
    .with_ops(TileOps::new(18.0 * e, 6.0 * e, 2.0 * e))
    .with_regularity(Regularity::Regular)
    .with_standard_style(KernelStyle::Direct);
    Workload::new(
        "2DCONV",
        vec![
            BufferSpec::new("in", grid_bytes, BufferRole::Input),
            BufferSpec::new("out", grid_bytes, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
}

/// `3DCONV`: 3×3×3 convolution over a 3D grid (PolyBench).
pub fn conv3d(size: InputSize) -> Workload {
    let n = size.grid_3d();
    let grid_bytes = n * n * n * 4;
    let total_lines = grid_bytes / LINE;
    let (tiles, lines) = tile_1d(total_lines, DEFAULT_BLOCKS);
    let e = elems(lines);
    let plane_lines = (n * n * 4 / LINE).max(1);
    let kernel = KernelSpec::new(
        "3DCONV",
        LaunchConfig::new(DEFAULT_BLOCKS, DEFAULT_THREADS, DEFAULT_SHARED),
    )
    .with_tiles(tiles)
    .with_stream(lines, StreamPattern::Sequential)
    // A 3D tile drags in halo planes: ~4x overfetch when staged.
    .with_staged_halo(3 * lines)
    .with_local_reads(2 * lines, 3 * plane_lines, false)
    .with_stores(lines)
    .with_ops(TileOps::new(54.0 * e, 12.0 * e, 3.0 * e))
    .with_regularity(Regularity::Regular)
    .with_standard_style(KernelStyle::Direct);
    Workload::new(
        "3DCONV",
        vec![
            BufferSpec::new("in", grid_bytes, BufferRole::Input),
            BufferSpec::new("out", grid_bytes, BufferRole::Output),
        ],
        vec![kernel],
        1.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_runtime::GpuProgram;

    #[test]
    fn footprints_track_table3() {
        for size in InputSize::ALL {
            let target = size.mem_bytes() as f64;
            for w in [vector_seq(size), vector_rand(size), saxpy(size)] {
                let fp = w.footprint() as f64;
                assert!(
                    (0.5..=2.0).contains(&(fp / target)),
                    "{} at {size}: footprint {fp} vs target {target}",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn two_d_footprints_are_matrix_sized() {
        let g = gemm(InputSize::Large);
        assert_eq!(g.footprint(), 3 * 8192 * 8192 * 4);
        let c = conv2d(InputSize::Large);
        assert_eq!(c.footprint(), 2 * 8192 * 8192 * 4);
    }

    #[test]
    fn vector_kernels_are_staged_sync() {
        use hetsim_gpu::kernel::{KernelModel, KernelStyle};
        let w = vector_seq(InputSize::Large);
        assert_eq!(
            w.kernel_specs()[0].standard_style(),
            KernelStyle::StagedSync
        );
        let p = conv2d(InputSize::Large);
        assert_eq!(p.kernel_specs()[0].standard_style(), KernelStyle::Direct);
    }

    #[test]
    fn vector_rand_is_random_regularity() {
        use hetsim_gpu::kernel::KernelModel;
        use hetsim_uvm::prefetch::Regularity;
        assert_eq!(
            vector_rand(InputSize::Large).kernel_specs()[0].regularity(),
            Regularity::Random
        );
        assert_eq!(
            vector_seq(InputSize::Large).kernel_specs()[0].regularity(),
            Regularity::Regular
        );
    }

    #[test]
    fn custom_launch_respected() {
        use hetsim_gpu::kernel::KernelModel;
        let w = vector_seq_custom(InputSize::Large, 64, 32);
        let l = w.kernel_specs()[0].launch();
        assert_eq!(l.grid_blocks, 64);
        assert_eq!(l.threads_per_block, 32);
    }

    #[test]
    fn per_block_work_conserved_across_block_counts() {
        use hetsim_gpu::kernel::KernelModel;
        // Total streamed lines should stay ~constant when the grid shrinks.
        let w4096 = vector_seq_custom(InputSize::Large, 4096, 256);
        let w16 = vector_seq_custom(InputSize::Large, 16, 256);
        let lines = |w: &Workload| {
            let k = &w.kernel_specs()[0];
            k.launch().grid_blocks * k.stream_bytes_per_block() / LINE
        };
        let l4096 = lines(&w4096) as f64;
        let l16 = lines(&w16) as f64;
        assert!(
            (l16 / l4096 - 1.0).abs() < 0.05,
            "streamed lines {l4096} vs {l16}"
        );
    }

    #[test]
    fn conv_kernels_declare_halo() {
        let k2 = conv2d(InputSize::Large);
        let k3 = conv3d(InputSize::Large);
        use hetsim_gpu::kernel::KernelModel;
        let count = |k: &KernelSpec, staged: bool| {
            let mut v = Vec::new();
            if staged {
                k.staged_stream_accesses(0, 0, &mut v);
            } else {
                k.stream_accesses(0, 0, &mut v);
            }
            v.len()
        };
        let k2k = &k2.kernel_specs()[0];
        assert_eq!(count(k2k, true), 3 * count(k2k, false));
        let k3k = &k3.kernel_specs()[0];
        assert_eq!(count(k3k, true), 4 * count(k3k, false));
    }

    #[test]
    fn gemm_grid_matches_tiling() {
        use hetsim_gpu::kernel::KernelModel;
        let g = gemm(InputSize::Large);
        let k = &g.kernel_specs()[0];
        assert_eq!(k.launch().grid_blocks, (8192 / 32) * (8192 / 32));
        assert_eq!(k.tiles_per_block(), 8192 / 32);
    }

    #[test]
    fn all_micro_constructible_at_all_sizes() {
        for size in InputSize::ALL {
            for w in [
                vector_seq(size),
                vector_rand(size),
                saxpy(size),
                gemv(size),
                gemm(size),
                conv2d(size),
                conv3d(size),
            ] {
                assert!(!w.kernels().is_empty());
                assert!(w.footprint() > 0);
            }
        }
    }
}
