//! Ablation: arithmetic intensity vs the async/standard verdict. The
//! paper's conclusion advises cp.async + prefetch for "GB-level
//! memory-bounded applications"; this sweep locates the crossover where
//! the advice flips.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim_bench::quick_criterion;
use hetsim_runtime::report::Component;
use hetsim_runtime::{Device, Runner, TransferMode};
use hetsim_workloads::{micro, InputSize};

fn bench(c: &mut Criterion) {
    println!("\n==== Ablation: arithmetic intensity (fp/elem) vs async kernel benefit ====");
    let runner = Runner::new(Device::a100_epyc());
    for fp in [0.5, 2.0, 8.0, 32.0, 128.0, 512.0] {
        let w = micro::vector_seq_intensity(InputSize::Large, fp);
        let std = runner.run_base(&w, TransferMode::Standard);
        let asy = runner.run_base(&w, TransferMode::Async);
        let k_ratio =
            asy.kernel.as_nanos() as f64 / std.kernel.as_nanos().max(1) as f64;
        println!(
            "fp/elem {fp:>6}: async/standard kernel = {k_ratio:.3} (std kernel {})",
            std.kernel
        );
        let _ = Component::Kernel;
    }

    let w = micro::vector_seq_intensity(InputSize::Large, 8.0);
    c.bench_function("ablation/intensity_point", |b| {
        b.iter(|| Runner::new(Device::a100_epyc()).run_base(&w, TransferMode::Async))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
