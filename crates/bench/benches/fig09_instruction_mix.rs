//! Regenerates the paper's Fig 9: control and integer instruction counts
//! for gemm, lud, and yolov3 across the five modes — Async Memcpy's
//! control-instruction inflation is the cost side of its pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim_bench::{paper_experiment, quick_criterion};
use hetsim_runtime::TransferMode;
use hetsim_workloads::InputSize;

fn bench(c: &mut Criterion) {
    let exp = paper_experiment();
    let counters = figures::fig9_fig10(&exp, InputSize::Large);
    println!("\n==== Figure 9: instruction mix (control / integer) ====");
    for r in counters.rows() {
        println!(
            "{:<8} {:<20} control {:>14}  integer {:>14}",
            r.workload,
            r.mode.name(),
            r.control,
            r.integer
        );
    }
    for w in figures::DEEP_DIVE_WORKLOADS {
        let std = counters.row(w, TransferMode::Standard).expect("row");
        let asy = counters.row(w, TransferMode::Async).expect("row");
        println!(
            "{w}: async control inflation {:+.2}%",
            (asy.control as f64 / std.control as f64 - 1.0) * 100.0
        );
    }

    c.bench_function("fig09/counter_collection", |b| {
        b.iter(|| figures::fig9_fig10(&exp, InputSize::Tiny))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
