//! Ablation: prefetch coverage vs access regularity. Sweeps the coverage
//! handed to the UVM space directly and reports memcpy/kernel for the
//! prefetch mode — the mechanism behind the lud/nw findings.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim_bench::quick_criterion;
use hetsim_engine::time::Nanos;
use hetsim_mem::addr::Addr;
use hetsim_mem::link::CpuGpuLink;
use hetsim_uvm::space::{UvmConfig, UvmSpace};

fn bench(c: &mut Criterion) {
    println!("\n==== Ablation: prefetch coverage vs residual fault cost ====");
    let link = CpuGpuLink::pcie4_a100();
    let bytes = 512u64 << 20;
    for coverage in [0.0, 0.25, 0.45, 0.72, 0.93, 1.0] {
        let mut space = UvmSpace::new(UvmConfig::a100());
        space.managed_alloc(Addr::new(0), bytes);
        let prefetch: Nanos = space.prefetch_range(Addr::new(0), bytes, coverage, &link);
        let fr = space.demand_touch_range(Addr::new(0), bytes, false, true, &link);
        println!(
            "coverage {coverage:.2}: prefetch {} + demand {} (stall {})",
            prefetch, fr.transfer, fr.stall
        );
    }

    c.bench_function("ablation/prefetch_512mb", |b| {
        b.iter(|| {
            let mut space = UvmSpace::new(UvmConfig::a100());
            space.managed_alloc(Addr::new(0), bytes);
            space.prefetch_range(Addr::new(0), bytes, 0.93, &link)
        })
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
