//! Regenerates the paper's Fig 7: side-by-side comparison of the five
//! transfer modes on the 7 microbenchmarks at Large and Super inputs,
//! normalized to `standard`.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim::headline::Headline;
use hetsim_bench::{paper_experiment, quick_criterion};
use hetsim_workloads::InputSize;

fn bench(c: &mut Criterion) {
    let exp = paper_experiment();
    for size in InputSize::main_experiment_sizes() {
        let s = figures::fig7(&exp, size);
        println!("\n==== Figure 7: micro comparison @ {size} ====");
        println!("{}", s.to_table());
        println!("{}", Headline::from_suite(&s).to_table());
    }

    let large = figures::fig7(&exp, InputSize::Large);
    c.bench_function("fig07/headline_aggregation", |b| {
        b.iter(|| Headline::from_suite(&large))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
