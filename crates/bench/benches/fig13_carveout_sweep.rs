//! Regenerates the paper's Fig 13: sensitivity of vector_seq to the
//! L1-cache/shared-memory partition (2 KB -> 128 KB shared). Takeaway 5:
//! too little shared memory hurts Async Memcpy, too little L1 hurts UVM.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim_bench::{quick_criterion, quick_experiment};
use hetsim_workloads::InputSize;

fn bench(c: &mut Criterion) {
    let exp = quick_experiment();
    let sweep = figures::fig13(&exp, InputSize::Large);
    println!("\n==== Figure 13: shared-memory carveout sweep (normalized totals) ====");
    println!("{}", sweep.to_table());
    println!("-- kernel-time series (where the sensitivity lives) --");
    println!("{}", sweep.kernel_table());

    c.bench_function("fig13/one_sweep_point", |b| {
        let w = hetsim_workloads::micro::vector_seq_shared(InputSize::Large, 32 * 1024);
        b.iter(|| exp.compare_modes(&w))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
