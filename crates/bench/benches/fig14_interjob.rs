//! Regenerates the paper's Fig 14 / §6.2: the proposed inter-job data
//! transfer model. Overlapping job i+1's allocation with job i's GPU work
//! recovers the >30% the paper estimates, measured here on simulated
//! uvm_prefetch_async runs.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::batch::{InterJobPipeline, JobStages};
use hetsim_bench::{quick_criterion, quick_experiment};
use hetsim_runtime::TransferMode;
use hetsim_workloads::{suite, InputSize};

fn bench(c: &mut Criterion) {
    let exp = quick_experiment();
    println!("\n==== Figure 14: inter-job pipeline (64-job batches, super inputs) ====");
    for name in ["vector_seq", "kmeans", "yolov3"] {
        let w = suite::by_name(name, InputSize::Super).expect("workload");
        let report = exp.runner().run_base(&w, TransferMode::UvmPrefetchAsync);
        let stages = JobStages::from_report(&report);
        let est = InterJobPipeline::homogeneous(stages, 64).estimate();
        println!(
            "{name:<12} sequential {} -> pipelined {}  improvement {:.2}%",
            est.sequential,
            est.pipelined,
            est.improvement() * 100.0
        );
    }

    let w = suite::by_name("kmeans", InputSize::Super).expect("kmeans");
    let report = exp.runner().run_base(&w, TransferMode::UvmPrefetchAsync);
    let stages = JobStages::from_report(&report);
    c.bench_function("fig14/64_job_schedule", |b| {
        b.iter(|| InterJobPipeline::homogeneous(stages, 64).estimate())
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
