//! Extension: UVM oversubscription (the Shao et al. regime the paper
//! cites): footprints beyond device memory thrash the eviction path.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::extensions::{oversubscription_sweep, oversubscription_table};
use hetsim_bench::quick_criterion;
use hetsim_workloads::{micro, InputSize};

fn bench(c: &mut Criterion) {
    println!("\n==== Extension: UVM oversubscription sweep (vector_seq @ medium) ====");
    let points = oversubscription_sweep(
        || micro::vector_seq(InputSize::Medium),
        &[0.5, 1.0, 1.25, 1.5, 2.0, 4.0],
    );
    println!("{}", oversubscription_table(&points));

    c.bench_function("ext/oversubscription_point", |b| {
        b.iter(|| oversubscription_sweep(|| micro::vector_seq(InputSize::Small), &[2.0]))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
