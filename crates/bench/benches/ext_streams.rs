//! Extension: the classic multi-stream copy/compute overlap (the prior
//! art of the paper's §2.2) evaluated against the same workloads, for
//! comparison with UVM prefetch and cp.async.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::extensions::{overlap_table, overlapped_standard};
use hetsim_bench::quick_criterion;
use hetsim_runtime::{Device, Runner};
use hetsim_workloads::{suite, InputSize};

fn bench(c: &mut Criterion) {
    let runner = Runner::new(Device::a100_epyc());
    println!("\n==== Extension: multi-stream overlap of explicit copies ====");
    for name in ["vector_seq", "kmeans", "gemm"] {
        let w = suite::by_name(name, InputSize::Large).expect("workload");
        println!("-- {name} @ large, 8 chunks --");
        println!("{}", overlap_table(&runner, &w, 8));
    }

    let w = suite::by_name("vector_seq", InputSize::Large).expect("workload");
    c.bench_function("ext/overlap_schedule", |b| {
        b.iter(|| overlapped_standard(&runner, &w, 8, 4))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
