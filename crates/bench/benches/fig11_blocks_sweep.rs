//! Regenerates the paper's Fig 11: sensitivity of vector_seq to the number
//! of CUDA blocks (4096 -> 16, 256 threads per block). Takeaway 4's first
//! half: performance is *not* sensitive to block count.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim_bench::{quick_criterion, quick_experiment};
use hetsim_workloads::InputSize;

fn bench(c: &mut Criterion) {
    let exp = quick_experiment();
    let sweep = figures::fig11(&exp, InputSize::Large);
    println!("\n==== Figure 11: block-count sweep (normalized totals) ====");
    println!("{}", sweep.to_table());
    println!("-- kernel-time series (where the sensitivity lives) --");
    println!("{}", sweep.kernel_table());

    c.bench_function("fig11/one_sweep_point", |b| {
        let w = hetsim_workloads::micro::vector_seq_custom(InputSize::Large, 256, 256);
        b.iter(|| exp.compare_modes(&w))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
