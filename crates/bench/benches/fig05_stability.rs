//! Regenerates the paper's Fig 5: standard deviation over mean of 30 runs
//! per input size, with the geo-mean row showing Large and Super are the
//! most stable sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim_bench::{paper_experiment, quick_criterion};
use hetsim_workloads::InputSize;

fn bench(c: &mut Criterion) {
    let exp = paper_experiment();
    let grid = figures::fig4(&exp, &InputSize::ALL);
    println!("\n==== Figure 5: std/mean stability per size ====");
    println!("{}", figures::fig5(&grid, &InputSize::ALL));

    c.bench_function("fig05/stability_from_grid", |b| {
        b.iter(|| figures::fig5(&grid, &InputSize::ALL))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
