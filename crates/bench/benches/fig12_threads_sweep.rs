//! Regenerates the paper's Fig 12: sensitivity of vector_seq to threads
//! per block (1024 -> 32, 64 blocks). Takeaway 4's second half: fewer
//! threads expose latency, and the async pipeline tolerates it better.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim_bench::{quick_criterion, quick_experiment};
use hetsim_runtime::report::Component;
use hetsim_runtime::TransferMode;
use hetsim_workloads::InputSize;

fn bench(c: &mut Criterion) {
    let exp = quick_experiment();
    let sweep = figures::fig12(&exp, InputSize::Large);
    println!("\n==== Figure 12: threads-per-block sweep (normalized totals) ====");
    println!("{}", sweep.to_table());
    println!("-- kernel-time series (where the sensitivity lives) --");
    println!("{}", sweep.kernel_table());
    println!("-- kernel-time ratios vs 128 threads (the paper's 3.95x) --");
    let k = |threads: u64, mode: TransferMode| {
        let p = sweep
            .points()
            .iter()
            .find(|(t, _)| *t == threads)
            .expect("point");
        p.1.mean(mode).component(Component::Kernel).as_nanos() as f64
    };
    for mode in [TransferMode::Standard, TransferMode::Async] {
        println!(
            "{:<10} kernel(32)/kernel(128) = {:.2}",
            mode.name(),
            k(32, mode) / k(128, mode)
        );
    }

    c.bench_function("fig12/one_sweep_point", |b| {
        let w = hetsim_workloads::micro::vector_seq_custom(InputSize::Large, 64, 128);
        b.iter(|| exp.compare_modes(&w))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
