//! Regenerates the paper's Fig 6: the per-run breakdown of vector_seq at
//! Mega (32 GB) inputs, where the memcpy component is unstable because the
//! footprint approaches a single host-DRAM chip's capacity.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim_bench::{paper_experiment, quick_criterion};

fn bench(c: &mut Criterion) {
    let exp = paper_experiment();
    let mb = figures::fig6(&exp);
    println!("\n==== Figure 6: Mega vector_seq 30-run breakdown ====");
    println!("{}", mb.to_table());
    println!(
        "component CV: memcpy {:.3}  allocation {:.3}  gpu_kernel {:.3}",
        mb.component_cv(|r| r.memcpy),
        mb.component_cv(|r| r.alloc),
        mb.component_cv(|r| r.kernel)
    );

    c.bench_function("fig06/mega_breakdown", |b| b.iter(|| figures::fig6(&exp)));
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
