//! Regenerates the paper's Fig 4: overall-execution-time distributions of
//! the 7 microbenchmarks over 30 runs at all six input sizes and all five
//! transfer modes.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim_bench::{paper_experiment, quick_criterion};
use hetsim_runtime::TransferMode;
use hetsim_workloads::{micro, InputSize};

fn bench(c: &mut Criterion) {
    let exp = paper_experiment();
    let grid = figures::fig4(&exp, &InputSize::ALL);
    println!("\n==== Figure 4: micro distributions (mean/std/cv per cell) ====");
    println!("{}", grid.to_table());

    // Time one representative cell: a 30-run distribution of vector_seq.
    let w = micro::vector_seq(InputSize::Large);
    c.bench_function("fig04/vector_seq_large_distribution", |b| {
        b.iter(|| exp.distribution(&w, TransferMode::Standard))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
