//! Ablation: how the UVM fault-batch capacity (the Kim et al. batching
//! optimization, §2.1) shapes the plain-uvm kernel inflation. Smaller
//! batches mean more driver round trips per faulting kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim_bench::quick_criterion;
use hetsim_runtime::{Device, Runner, TransferMode};
use hetsim_workloads::{micro, InputSize};

fn bench(c: &mut Criterion) {
    println!("\n==== Ablation: fault batch capacity vs uvm kernel time ====");
    let w = micro::vector_seq(InputSize::Large);
    for capacity in [1u32, 16, 64, 256, 512] {
        let mut device = Device::a100_epyc();
        device.uvm.fault.batch_capacity = capacity;
        let runner = Runner::new(device);
        let r = runner.run_base(&w, TransferMode::Uvm);
        println!(
            "batch_capacity {capacity:>4}: kernel {} (faults {})",
            r.kernel,
            r.counters.uvm.page_faults()
        );
    }

    let runner = Runner::new(Device::a100_epyc());
    c.bench_function("ablation/fault_batch_run", |b| {
        b.iter(|| runner.run_base(&w, TransferMode::Uvm))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
