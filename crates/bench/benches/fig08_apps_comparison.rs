//! Regenerates the paper's Fig 8: the 14 real-world applications compared
//! across the five transfer modes at Super inputs, plus the §4.1.2 and §6
//! aggregates.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim::headline::{Headline, Section6};
use hetsim_bench::{paper_experiment, quick_criterion};
use hetsim_runtime::TransferMode;
use hetsim_workloads::{suite, InputSize};

fn bench(c: &mut Criterion) {
    let exp = paper_experiment();
    let s = figures::fig8(&exp);
    println!("\n==== Figure 8: application comparison @ super ====");
    println!("{}", s.to_table());
    println!("{}", Headline::from_suite(&s).to_table());
    println!("{}", Section6::from_suite(&s).to_table());

    let w = suite::by_name("kmeans", InputSize::Medium).expect("kmeans");
    c.bench_function("fig08/kmeans_medium_all_modes", |b| {
        b.iter(|| {
            TransferMode::ALL
                .map(|m| exp.runner().run_base(&w, m).total())
        })
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
