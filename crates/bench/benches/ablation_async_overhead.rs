//! Ablation: the per-tile control-instruction overhead of the cp.async
//! pipeline. The paper's Fig 9 traces async's cost to a 30-40% control
//! inflation; this sweep shows how the modelled overhead moves the
//! async-vs-standard verdict for a compute-bound kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim_bench::quick_criterion;
use hetsim_gpu::exec::{ExecEnv, KernelExecutor};
use hetsim_gpu::kernel::KernelStyle;
use hetsim_gpu::GpuConfig;
use hetsim_workloads::{micro, InputSize};
use hetsim_runtime::GpuProgram;

fn bench(c: &mut Criterion) {
    println!("\n==== Ablation: async control overhead vs gemm kernel time ====");
    let w = micro::gemm(InputSize::Large);
    let kernels = w.kernels();
    let k = kernels[0];
    for ctrl in [0.0, 2.0, 4.0, 8.0, 16.0] {
        let mut cfg = GpuConfig::a100();
        cfg.async_ctrl_per_thread_tile = ctrl;
        let exec = KernelExecutor::new(cfg);
        let std = exec.execute(k, KernelStyle::Direct, &ExecEnv::standard());
        let asy = exec.execute(k, KernelStyle::StagedAsync, &ExecEnv::standard());
        println!(
            "ctrl/thread/tile {ctrl:>4}: async/standard kernel = {:.3}",
            asy.cycles / std.cycles
        );
    }

    let exec = KernelExecutor::new(GpuConfig::a100());
    c.bench_function("ablation/gemm_async_exec", |b| {
        b.iter(|| exec.execute(k, KernelStyle::StagedAsync, &ExecEnv::standard()))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
