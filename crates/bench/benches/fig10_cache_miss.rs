//! Regenerates the paper's Fig 10: unified L1/texture cache global load
//! and store miss rates for gemm, lud, and yolov3 — staging through shared
//! memory slashes lud's miss rates, the root cause of its Async Memcpy
//! speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsim::figures;
use hetsim_bench::{paper_experiment, quick_criterion};
use hetsim_workloads::InputSize;

fn bench(c: &mut Criterion) {
    let exp = paper_experiment();
    let counters = figures::fig9_fig10(&exp, InputSize::Large);
    println!("\n==== Figure 10: L1 global load/store miss rates ====");
    for r in counters.rows() {
        println!(
            "{:<8} {:<20} load {:.4}  store {:.4}",
            r.workload,
            r.mode.name(),
            r.load_miss_rate,
            r.store_miss_rate
        );
    }

    c.bench_function("fig10/counter_collection", |b| {
        b.iter(|| figures::fig9_fig10(&exp, InputSize::Tiny))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench
}
criterion_main!(benches);
