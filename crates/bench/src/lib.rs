//! # hetsim-bench
//!
//! Zero-dependency wall-clock benchmarks for the hetsim reproduction.
//! Each binary regenerates one of the paper's tables or figures — it
//! *prints the data series the paper plots* — and then times a
//! representative slice of the simulation with `std::time::Instant`,
//! reporting a `bench:` summary line that `scripts/bench.sh` records in
//! `BENCH_sweep.json`.
//!
//! The harness used to be a criterion bench suite; criterion needs
//! registry access, which the offline tier-1 build cannot assume, so the
//! targets that earn their keep live on as plain binaries
//! (`bench_fig07_micro_comparison`, `bench_ablation_sampling`) and the
//! rest were retired — the figure data they printed is available from
//! `hetsim-cli figures`, and their wall-clock behaviour is covered by the
//! staged sweeps in `scripts/bench.sh`.
//!
//! Build with the workspace (`cargo build --release`) and run the
//! binaries from `target/release/`; each accepts `--size S`, `--runs N`,
//! and `--iters N` so CI smoke runs can shrink the work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hetsim::experiment::Experiment;
use std::time::Instant;

/// The experiment configuration used when regenerating figure data inside
/// a bench: full 30-run methodology.
pub fn paper_experiment() -> Experiment {
    Experiment::new().with_runs(30)
}

/// A faster experiment for the expensive sweeps.
pub fn quick_experiment() -> Experiment {
    Experiment::new().with_runs(10)
}

/// Times `iters` calls of `f` and prints the uniform summary line
/// `bench: <name> <iters> iters, <total_ms> ms total, <ns> ns/iter`
/// that `scripts/bench.sh` scrapes. Returns the mean ns/iter.
pub fn time_stage<T>(name: &str, iters: u64, mut f: impl FnMut() -> T) -> u64 {
    assert!(iters > 0, "time_stage needs at least one iteration");
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = t0.elapsed();
    let per_iter = (elapsed.as_nanos() / u128::from(iters)) as u64;
    println!(
        "bench: {name} {iters} iters, {} ms total, {per_iter} ns/iter",
        elapsed.as_millis()
    );
    per_iter
}

/// Parses the shared benchmark flags out of `std::env::args`:
/// `--size S` (default `large`), `--runs N` (default 30), `--iters N`
/// (default 10). Unknown flags abort with a usage message so a typo
/// cannot silently benchmark the wrong configuration.
pub fn parse_bench_args() -> BenchArgs {
    let mut out = BenchArgs::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} needs {what}")))
        };
        match flag.as_str() {
            "--size" => {
                let name = value("a size name");
                out.size = hetsim_workloads::InputSize::ALL
                    .into_iter()
                    .find(|s| s.name() == name)
                    .unwrap_or_else(|| die(&format!("unknown size `{name}`")));
            }
            "--runs" => out.runs = parse_count(value("a run count")),
            "--iters" => out.iters = parse_count(value("an iteration count")),
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    out
}

fn parse_count(s: &str) -> u64 {
    match s.parse() {
        Ok(n) if n > 0 => n,
        _ => die(&format!("`{s}` is not a positive count")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: bench_* [--size S] [--runs N] [--iters N]");
    std::process::exit(2);
}

/// Shared benchmark configuration (see [`parse_bench_args`]).
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Input size the figure data is regenerated at.
    pub size: hetsim_workloads::InputSize,
    /// Runs per experiment cell (the paper's methodology uses 30).
    pub runs: u64,
    /// Timed iterations of the hot-path slice.
    pub iters: u64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            size: hetsim_workloads::InputSize::Large,
            runs: 30,
            iters: 10,
        }
    }
}
