//! # hetsim-bench
//!
//! The benchmark harness of the hetsim reproduction. Every bench target
//! regenerates one of the paper's tables or figures — it *prints the data
//! series the paper plots* and then times a representative slice of the
//! simulation with Criterion. The `ablation_*` targets sweep the
//! simulator's own design knobs (fault batch size, prefetch coverage,
//! async control overhead, block/tile sampling) to show how sensitive the
//! reproduced results are to each modelling choice.
//!
//! Run everything with `cargo bench --workspace`; each target's figure
//! data appears on stdout before its timing samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hetsim::experiment::Experiment;

/// Criterion configuration shared by all figure benches: tiny sample
/// counts, since each iteration is a full simulator run.
pub fn quick_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// The experiment configuration used when regenerating figure data inside
/// a bench: full 30-run methodology.
pub fn paper_experiment() -> Experiment {
    Experiment::new().with_runs(30)
}

/// A faster experiment for the expensive sweeps.
pub fn quick_experiment() -> Experiment {
    Experiment::new().with_runs(10)
}
