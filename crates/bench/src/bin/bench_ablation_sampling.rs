//! Ablation: block/tile sampling width vs extrapolation error. The
//! executor simulates a handful of blocks and tiles and extrapolates;
//! this sweep quantifies how much the answer moves with the sample, then
//! times the default-width executor with `std::time::Instant`.

use hetsim_bench::{parse_bench_args, time_stage};
use hetsim_gpu::exec::{ExecEnv, KernelExecutor};
use hetsim_gpu::kernel::KernelStyle;
use hetsim_gpu::GpuConfig;
use hetsim_runtime::GpuProgram;
use hetsim_workloads::micro;

fn main() {
    let args = parse_bench_args();
    println!("\n==== Ablation: sampling width vs kernel-time estimate ====");
    let w = micro::conv2d(args.size);
    let kernels = w.kernels();
    let k = kernels[0];
    let reference = KernelExecutor::new(GpuConfig::a100())
        .with_sample_blocks(48)
        .with_max_sampled_tiles(1024)
        .execute(k, KernelStyle::Direct, &ExecEnv::standard());
    for blocks in [1u64, 2, 4, 6, 12, 24] {
        let exec = KernelExecutor::new(GpuConfig::a100()).with_sample_blocks(blocks);
        let r = exec.execute(k, KernelStyle::Direct, &ExecEnv::standard());
        println!(
            "sample_blocks {blocks:>3}: kernel estimate off by {:+.2}%",
            (r.cycles / reference.cycles - 1.0) * 100.0
        );
    }

    let exec = KernelExecutor::new(GpuConfig::a100());
    time_stage("ablation/conv2d_exec_default_blocks", args.iters, || {
        exec.execute(k, KernelStyle::Direct, &ExecEnv::standard())
    });
}
