//! Regenerates the paper's Fig 7: side-by-side comparison of the five
//! transfer modes on the 7 microbenchmarks, normalized to `standard`,
//! then times the headline aggregation and one full grid regeneration
//! with `std::time::Instant`.
//!
//! By default the figure data is printed at both main-experiment sizes
//! (Large and Super); passing `--size S` restricts it to that one size so
//! smoke runs stay cheap.

use hetsim::experiment::Experiment;
use hetsim::figures;
use hetsim::headline::Headline;
use hetsim_bench::{parse_bench_args, time_stage};
use hetsim_workloads::InputSize;

fn main() {
    let args = parse_bench_args();
    let exp = Experiment::new().with_runs(args.runs);
    let sizes: Vec<InputSize> = if args.size == InputSize::Large {
        InputSize::main_experiment_sizes().to_vec()
    } else {
        vec![args.size]
    };
    for &size in &sizes {
        let s = figures::fig7(&exp, size);
        println!("\n==== Figure 7: micro comparison @ {size} ====");
        println!("{}", s.to_table());
        println!("{}", Headline::from_suite(&s).to_table());
    }

    let size = sizes[0];
    let suite = figures::fig7(&exp, size);
    time_stage("fig07/headline_aggregation", args.iters, || {
        Headline::from_suite(&suite)
    });
    // A cold grid per iteration: fresh experiment, empty memo, so the
    // timing tracks the simulator itself rather than the cache layer.
    time_stage("fig07/grid_regeneration", args.iters.min(3), || {
        figures::fig7(&Experiment::new().with_runs(args.runs), size)
    });
}
