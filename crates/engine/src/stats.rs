//! Summary statistics used by the paper's methodology.
//!
//! Section 3.3 of the paper selects input sizes by looking at the standard
//! deviation over the mean of 30 runs (Fig 5) and at run-time distributions
//! (Fig 4). [`Summary`] computes exactly those quantities, plus the geometric
//! mean the results section reports across workloads.

use crate::time::Nanos;

/// Summary statistics over a sample of observations.
///
/// # Example
///
/// ```
/// use hetsim_engine::stats::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    std: f64,
    min: f64,
    max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Builds a summary from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of empty sample set");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            sorted,
        }
    }

    /// Builds a summary from durations, in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_nanos(samples: &[Nanos]) -> Self {
        let xs: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
        Summary::from_samples(&xs)
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sample set is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Coefficient of variation, `std / mean` — the Fig 5 stability metric.
    ///
    /// Returns zero for a zero mean (all-zero samples).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.n == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Half-width of the normal-approximation 95% confidence interval on the
    /// mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std / (self.n as f64).sqrt()
    }
}

/// A fixed-bin histogram over a sample range — the compact form of the
/// paper's Fig 4 run-time distributions.
///
/// # Example
///
/// ```
/// use hetsim_engine::stats::Histogram;
/// let h = Histogram::from_samples(&[1.0, 1.1, 1.2, 5.0], 4);
/// assert_eq!(h.bins().iter().sum::<usize>(), 4);
/// assert_eq!(h.bins()[0], 3, "the cluster lands in the first bin");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the sample
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `bins` is zero.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "histogram of empty sample set");
        assert!(bins > 0, "histogram needs at least one bin");
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = (hi - lo).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &x in samples {
            let i = (((x - lo) / width) * bins as f64) as usize;
            counts[i.min(bins - 1)] += 1;
        }
        Histogram {
            lo,
            hi,
            bins: counts,
        }
    }

    /// Lower edge of the first bin.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the last bin.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Renders a one-line sparkline (`▁▂▃▄▅▆▇█`) of the distribution.
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        self.bins
            .iter()
            .map(|&c| LEVELS[(c * (LEVELS.len() - 1)).div_ceil(max).min(LEVELS.len() - 1)])
            .collect()
    }
}

/// Geometric mean of positive values.
///
/// Values `<= 0` are skipped (they would make the product meaningless);
/// returns zero if nothing remains.
///
/// # Example
///
/// ```
/// use hetsim_engine::stats::geomean;
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .filter(|v| **v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Percentage change of `new` relative to `base`: positive means `new` is
/// faster/smaller is NOT implied — this is the raw `(new - base) / base`.
///
/// # Example
///
/// ```
/// use hetsim_engine::stats::pct_change;
/// assert_eq!(pct_change(100.0, 120.0), 20.0);
/// ```
pub fn pct_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

/// Speedup of `new` over `base` (`base / new`), the convention the paper
/// uses for "X× speedups over standard".
pub fn speedup(base: f64, new: f64) -> f64 {
    if new == 0.0 {
        f64::INFINITY
    } else {
        base / new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std(), 2.0);
        assert_eq!(s.cv(), 0.4);
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 4.0);
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.median(), 3.5);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn zero_mean_cv_is_zero() {
        let s = Summary::from_samples(&[0.0, 0.0]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn from_nanos_matches_f64() {
        let s = Summary::from_nanos(&[Nanos::from_nanos(10), Nanos::from_nanos(20)]);
        assert_eq!(s.mean(), 15.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_samples_panic() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    fn histogram_counts_conserve_samples() {
        let xs = [0.0, 0.5, 1.0, 1.5, 2.0, 2.0, 2.0];
        let h = Histogram::from_samples(&xs, 4);
        assert_eq!(h.bins().iter().sum::<usize>(), xs.len());
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 2.0);
        // 1.5 plus the three max values land in the last bin.
        assert_eq!(*h.bins().last().unwrap(), 4);
    }

    #[test]
    fn histogram_single_value() {
        let h = Histogram::from_samples(&[3.0, 3.0], 5);
        assert_eq!(h.bins().iter().sum::<usize>(), 2);
        assert_eq!(h.sparkline().chars().count(), 5);
    }

    #[test]
    fn sparkline_height_tracks_counts() {
        let h = Histogram::from_samples(&[1.0, 1.0, 1.0, 1.0, 9.0], 2);
        let s: Vec<char> = h.sparkline().chars().collect();
        assert!(s[0] > s[1], "the dense bin renders taller: {s:?}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn histogram_empty_panics() {
        let _ = Histogram::from_samples(&[], 4);
    }

    #[test]
    fn geomean_skips_nonpositive() {
        assert!((geomean(&[2.0, 8.0, 0.0, -3.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0]), 0.0);
    }

    #[test]
    fn pct_change_and_speedup() {
        assert_eq!(pct_change(200.0, 150.0), -25.0);
        assert_eq!(pct_change(0.0, 5.0), 0.0);
        assert_eq!(speedup(200.0, 100.0), 2.0);
        assert!(speedup(1.0, 0.0).is_infinite());
    }
}
