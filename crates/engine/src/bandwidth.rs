//! Bandwidth and latency primitives for transfer-cost models.
//!
//! Every link in the simulated system (PCIe, HBM, DDR4, UVM migration path)
//! is characterized by a [`Bandwidth`] and a fixed per-operation [`Latency`];
//! [`Bandwidth::transfer_time`] converts a byte count into simulated time.

use crate::time::Nanos;
use std::fmt;

/// A link bandwidth in bytes per second.
///
/// # Example
///
/// ```
/// use hetsim_engine::bandwidth::Bandwidth;
/// // Pageable-host cudaMemcpy effective throughput.
/// let pcie = Bandwidth::from_gib_per_sec(6.2);
/// let t = pcie.transfer_time(6_657_199_309); // ~6.2 GiB
/// assert!((t.as_secs_f64() - 1.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not finite and positive.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps > 0.0,
            "bandwidth must be positive and finite"
        );
        Bandwidth { bytes_per_sec: bps }
    }

    /// Creates a bandwidth from GiB/s (2^30 bytes per second).
    pub fn from_gib_per_sec(gib: f64) -> Self {
        Bandwidth::from_bytes_per_sec(gib * (1u64 << 30) as f64)
    }

    /// Creates a bandwidth from GB/s (10^9 bytes per second), the unit in
    /// vendor datasheets.
    pub fn from_gb_per_sec(gb: f64) -> Self {
        Bandwidth::from_bytes_per_sec(gb * 1e9)
    }

    /// Raw bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// In GB/s (10^9).
    pub fn as_gb_per_sec(self) -> f64 {
        self.bytes_per_sec / 1e9
    }

    /// Time to move `bytes` at this bandwidth (no fixed latency).
    pub fn transfer_time(self, bytes: u64) -> Nanos {
        Nanos::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Derates the bandwidth by `factor` in `(0, 1]` — e.g. cross-NUMA-chip
    /// host traffic.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn derate(self, factor: f64) -> Bandwidth {
        assert!(factor > 0.0 && factor <= 1.0, "derate factor out of (0,1]");
        Bandwidth::from_bytes_per_sec(self.bytes_per_sec * factor)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gb_per_sec())
    }
}

/// A fixed per-operation latency.
///
/// Wraps [`Nanos`] to distinguish "cost per operation" from generic elapsed
/// time in model signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Latency(Nanos);

impl Latency {
    /// Zero latency.
    pub const ZERO: Latency = Latency(Nanos::ZERO);

    /// Creates a latency from a duration.
    pub const fn new(d: Nanos) -> Self {
        Latency(d)
    }

    /// Creates a latency from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Latency(Nanos::from_nanos(ns))
    }

    /// Creates a latency from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Latency(Nanos::from_micros(us))
    }

    /// The wrapped duration.
    pub const fn as_nanos(self) -> Nanos {
        self.0
    }

    /// Total cost of `n` back-to-back operations.
    pub fn times(self, n: u64) -> Nanos {
        self.0 * n
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Full cost of one transfer over a link: fixed latency + size / bandwidth.
///
/// # Example
///
/// ```
/// use hetsim_engine::bandwidth::{link_transfer_time, Bandwidth, Latency};
/// let t = link_transfer_time(Latency::from_micros(2), Bandwidth::from_gb_per_sec(10.0), 10_000);
/// assert_eq!(t.as_nanos(), 2_000 + 1_000);
/// ```
pub fn link_transfer_time(latency: Latency, bw: Bandwidth, bytes: u64) -> Nanos {
    latency.as_nanos() + bw.transfer_time(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let bw = Bandwidth::from_gb_per_sec(1.0);
        assert_eq!(bw.transfer_time(1_000_000_000), Nanos::from_secs(1));
        assert_eq!(bw.transfer_time(500_000_000), Nanos::from_millis(500));
        assert_eq!(bw.transfer_time(0), Nanos::ZERO);
    }

    #[test]
    fn gib_vs_gb_units() {
        let gib = Bandwidth::from_gib_per_sec(1.0);
        let gb = Bandwidth::from_gb_per_sec(1.0);
        assert!(gib.bytes_per_sec() > gb.bytes_per_sec());
        assert_eq!(gib.bytes_per_sec(), (1u64 << 30) as f64);
    }

    #[test]
    fn derate_reduces_bandwidth() {
        let bw = Bandwidth::from_gb_per_sec(10.0).derate(0.5);
        assert!((bw.as_gb_per_sec() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn derate_rejects_zero() {
        let _ = Bandwidth::from_gb_per_sec(1.0).derate(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bandwidth_rejects_negative() {
        let _ = Bandwidth::from_bytes_per_sec(-5.0);
    }

    #[test]
    fn latency_times() {
        let l = Latency::from_micros(3);
        assert_eq!(l.times(4), Nanos::from_micros(12));
        assert_eq!(Latency::ZERO.times(100), Nanos::ZERO);
    }

    #[test]
    fn link_transfer_combines_terms() {
        let t = link_transfer_time(
            Latency::from_nanos(100),
            Bandwidth::from_gb_per_sec(1.0),
            2_000,
        );
        assert_eq!(t, Nanos::from_nanos(100 + 2_000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::from_gb_per_sec(6.2).to_string(), "6.20 GB/s");
        assert_eq!(Latency::from_micros(2).to_string(), "2.000us");
    }
}
