//! Deterministic random numbers for reproducible simulation.
//!
//! Every stochastic element of a run (allocation jitter, DRAM-chip spill,
//! random-access address streams) draws from a [`SimRng`] seeded by a stable
//! hash of `(workload, size, mode, run_index)`. Re-running an experiment
//! therefore reproduces the exact 30-run distributions in the paper's
//! methodology (Fig 4–6) bit-for-bit.
//!
//! The generator is SplitMix64 — tiny, fast, and statistically solid for
//! simulation workloads (it seeds xoshiro in the reference implementations).

/// A deterministic SplitMix64 random number generator.
///
/// # Example
///
/// ```
/// use hetsim_engine::rng::SimRng;
/// let mut a = SimRng::seed_from_parts(&["vector_seq", "large", "uvm"], 7);
/// let mut b = SimRng::seed_from_parts(&["vector_seq", "large", "uvm"], 7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives a seed from string parts plus a numeric discriminator.
    ///
    /// This is the canonical way experiments seed per-run generators: the
    /// parts name the configuration and `index` is the run number.
    pub fn seed_from_parts(parts: &[&str], index: u64) -> Self {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for p in parts {
            for b in p.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
                h = h.rotate_left(17);
            }
            h ^= 0xFF; // separator so ["ab","c"] != ["a","bc"]
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h ^= index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        SimRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // simulation purposes and determinism is what matters here.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Standard normal deviate (Box–Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A multiplicative jitter factor `max(floor, 1 + sigma * N(0,1))`.
    ///
    /// Used for measurement-noise models; `floor` prevents non-physical
    /// negative or tiny factors.
    pub fn jitter(&mut self, sigma: f64, floor: f64) -> f64 {
        (1.0 + sigma * self.next_gaussian()).max(floor)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Splits off an independent child generator.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn part_separation_matters() {
        let a = SimRng::seed_from_parts(&["ab", "c"], 0);
        let b = SimRng::seed_from_parts(&["a", "bc"], 0);
        assert_ne!(a, b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            let x = r.range(5, 8);
            assert!((5..8).contains(&x));
        }
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut r = SimRng::new(123);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn jitter_has_floor() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(r.jitter(10.0, 0.25) >= 0.25);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0), "p clamps to 1");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut parent = SimRng::new(77);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }
}
