//! # hetsim-engine
//!
//! Discrete-event simulation core shared by every other `hetsim` crate.
//!
//! The crate provides four small, composable building blocks:
//!
//! * [`time`] — integer-nanosecond simulated time ([`SimTime`], [`Nanos`])
//!   and clock-domain conversion ([`ClockDomain`]);
//! * [`event`] — a deterministic, stable-ordered event queue
//!   ([`EventQueue`]) plus a busy-interval tracker ([`resource::BusyTracker`])
//!   for utilization/occupancy accounting;
//! * [`rng`] — a tiny, fully deterministic SplitMix64 RNG ([`rng::SimRng`])
//!   so that a run is a pure function of its seed;
//! * [`stats`] — the summary statistics the paper's methodology section
//!   relies on (mean, std/mean, geometric mean, percentiles).
//!
//! # Example
//!
//! ```
//! use hetsim_engine::prelude::*;
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(Nanos::from_micros(5).into(), "later");
//! q.push(Nanos::from_micros(1).into(), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_nanos(1_000), "sooner"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenient glob-import of the types used by nearly every simulator module.
pub mod prelude {
    pub use crate::bandwidth::{Bandwidth, Latency};
    pub use crate::event::EventQueue;
    pub use crate::resource::BusyTracker;
    pub use crate::rng::SimRng;
    pub use crate::stats::Summary;
    pub use crate::time::{ClockDomain, Nanos, SimTime};
}

pub use bandwidth::{Bandwidth, Latency};
pub use event::EventQueue;
pub use resource::BusyTracker;
pub use rng::SimRng;
pub use stats::Summary;
pub use time::{ClockDomain, Nanos, SimTime};
