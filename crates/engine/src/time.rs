//! Simulated time: absolute instants ([`SimTime`]), durations ([`Nanos`]) and
//! clock-domain conversion ([`ClockDomain`]).
//!
//! All timing in the simulator is integer nanoseconds. Integer time keeps the
//! event queue totally ordered without floating-point tie-break hazards and
//! makes runs bit-reproducible across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration in simulated nanoseconds.
///
/// `Nanos` is the unit every cost model in the simulator speaks. It is a
/// thin newtype over `u64`, so copies are free and arithmetic is saturating
/// only where documented.
///
/// # Example
///
/// ```
/// use hetsim_engine::time::Nanos;
/// let setup = Nanos::from_micros(2);
/// let burst = Nanos::from_nanos(500);
/// assert_eq!((setup + burst).as_nanos(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// nanosecond. Non-finite or negative factors clamp to zero.
    pub fn scale(self, factor: f64) -> Nanos {
        if !factor.is_finite() || factor <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// # Panics
    ///
    /// Panics in debug builds on underflow, like integer subtraction. Use
    /// [`Nanos::saturating_sub`] when the operands may be unordered.
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An absolute instant on the simulated timeline, measured in nanoseconds
/// since the start of the run.
///
/// # Example
///
/// ```
/// use hetsim_engine::time::{Nanos, SimTime};
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + Nanos::from_micros(3);
/// assert_eq!(t1.duration_since(t0), Nanos::from_micros(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds since time zero.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> Nanos {
        Nanos(self.0 - earlier.0)
    }

    /// Saturating variant of [`SimTime::duration_since`].
    pub fn saturating_duration_since(self, earlier: SimTime) -> Nanos {
        Nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<Nanos> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Nanos) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Nanos> for SimTime {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.as_nanos();
    }
}

impl From<Nanos> for SimTime {
    fn from(d: Nanos) -> SimTime {
        SimTime(d.as_nanos())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Nanos::from_nanos(self.0))
    }
}

/// A clock domain converting between cycle counts and wall-clock durations.
///
/// GPU cost models naturally count cycles; the event engine speaks
/// nanoseconds. A `ClockDomain` does the conversion for a fixed frequency.
///
/// # Example
///
/// ```
/// use hetsim_engine::time::ClockDomain;
/// // The A100's 1410 MHz boost clock.
/// let sm = ClockDomain::from_mhz(1410);
/// assert_eq!(sm.cycles_to_nanos(1410).as_nanos(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    hz: f64,
}

impl ClockDomain {
    /// Creates a clock domain from a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be non-zero");
        ClockDomain {
            hz: mhz as f64 * 1e6,
        }
    }

    /// Frequency in Hz.
    pub fn hz(self) -> f64 {
        self.hz
    }

    /// Converts a cycle count to a duration, rounding to the nearest
    /// nanosecond.
    pub fn cycles_to_nanos(self, cycles: u64) -> Nanos {
        Nanos::from_secs_f64(cycles as f64 / self.hz)
    }

    /// Converts a fractional cycle count to a duration.
    pub fn cycles_f64_to_nanos(self, cycles: f64) -> Nanos {
        Nanos::from_secs_f64(cycles / self.hz)
    }

    /// Converts a duration to whole cycles (rounded to nearest).
    pub fn nanos_to_cycles(self, d: Nanos) -> u64 {
        (d.as_secs_f64() * self.hz).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1_000));
    }

    #[test]
    fn nanos_from_secs_f64_rounds() {
        assert_eq!(Nanos::from_secs_f64(1.5e-9), Nanos::from_nanos(2));
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_nanos(300);
        let b = Nanos::from_nanos(200);
        assert_eq!(a + b, Nanos::from_nanos(500));
        assert_eq!(a - b, Nanos::from_nanos(100));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a * 3, Nanos::from_nanos(900));
        assert_eq!(a / 3, Nanos::from_nanos(100));
    }

    #[test]
    fn nanos_scale_clamps_bad_factors() {
        let a = Nanos::from_nanos(1_000);
        assert_eq!(a.scale(0.5), Nanos::from_nanos(500));
        assert_eq!(a.scale(-1.0), Nanos::ZERO);
        assert_eq!(a.scale(f64::INFINITY), Nanos::ZERO);
    }

    #[test]
    fn nanos_sum() {
        let total: Nanos = (1..=4).map(Nanos::from_nanos).sum();
        assert_eq!(total, Nanos::from_nanos(10));
    }

    #[test]
    fn nanos_display_picks_unit() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn simtime_advances() {
        let mut t = SimTime::ZERO;
        t += Nanos::from_nanos(7);
        assert_eq!(t.as_nanos(), 7);
        assert_eq!(t.duration_since(SimTime::ZERO), Nanos::from_nanos(7));
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(t),
            Nanos::ZERO,
            "saturating subtraction must not underflow"
        );
    }

    #[test]
    fn clock_domain_round_trips() {
        let c = ClockDomain::from_mhz(1410);
        let d = c.cycles_to_nanos(1_410_000);
        assert_eq!(d, Nanos::from_millis(1));
        assert_eq!(c.nanos_to_cycles(d), 1_410_000);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn clock_domain_rejects_zero() {
        let _ = ClockDomain::from_mhz(0);
    }
}
