//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue keyed on [`SimTime`] with a stable
//! tiebreak: events scheduled for the same instant pop in the order they were
//! pushed. That guarantee is what makes whole-simulator runs reproducible —
//! a `BinaryHeap` alone would make same-time ordering depend on heap shape.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue over an arbitrary payload type.
///
/// # Example
///
/// ```
/// use hetsim_engine::event::EventQueue;
/// use hetsim_engine::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "b");
/// q.push(SimTime::from_nanos(10), "c");
/// q.push(SimTime::from_nanos(5), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, FIFO among equal times.
    ///
    /// When a [`hetsim_trace::session`] is active, each dispatch leaves an
    /// `engine` instant (and a queue-depth counter sample) in the trace.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = self.heap.pop().map(|e| (e.at, e.payload));
        if let Some((at, _)) = &popped {
            if hetsim_trace::session::enabled() {
                let depth = self.heap.len();
                let ns = at.as_nanos();
                hetsim_trace::session::with(|b| {
                    let track = b.track("engine");
                    b.instant_at(
                        track,
                        hetsim_trace::Category::Engine,
                        "dispatch",
                        ns,
                        Some(("queue_depth", depth as f64)),
                    );
                    b.counter_at("engine.queue_depth", ns, depth as f64);
                });
            }
        }
        popped
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains every pending event in firing order.
    pub fn drain_ordered(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Nanos;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), "late");
        q.push(SimTime::from_nanos(10), "early");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_nanos(10), "early"));
        q.push(SimTime::from_nanos(50) + Nanos::ZERO, "mid");
        let rest: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(rest, vec!["mid", "late"]);
    }
}
