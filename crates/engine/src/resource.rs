//! Busy-interval accounting for utilization and occupancy metrics.
//!
//! Section 6 of the paper reports GPU occupancy rising from 25.15% to 37.79%
//! once data transfer overlaps computation. [`BusyTracker`] records the busy
//! intervals of a resource (an SM pool, a DMA engine, the host allocator) and
//! reports the fraction of a window the resource was active, merging
//! overlapping intervals so concurrent work is not double counted.

use crate::time::{Nanos, SimTime};

/// Records busy intervals of a single logical resource.
///
/// # Example
///
/// ```
/// use hetsim_engine::resource::BusyTracker;
/// use hetsim_engine::time::SimTime;
///
/// let mut sm = BusyTracker::new();
/// sm.record(SimTime::from_nanos(0), SimTime::from_nanos(40));
/// sm.record(SimTime::from_nanos(30), SimTime::from_nanos(60)); // overlaps
/// assert_eq!(sm.busy_within(SimTime::from_nanos(0), SimTime::from_nanos(100)).as_nanos(), 60);
/// assert!((sm.utilization(SimTime::from_nanos(0), SimTime::from_nanos(100)) - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    /// Recorded `(start, end)` intervals, unmerged until queried.
    intervals: Vec<(SimTime, SimTime)>,
}

impl BusyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        BusyTracker::default()
    }

    /// Records a busy interval `[start, end)`.
    ///
    /// Zero-length and inverted intervals are ignored rather than rejected:
    /// cost models frequently produce zero-duration steps.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        if end > start {
            self.intervals.push((start, end));
        }
    }

    /// Records a busy interval starting at `start` lasting `dur`.
    pub fn record_for(&mut self, start: SimTime, dur: Nanos) {
        self.record(start, start + dur);
    }

    /// Number of raw recorded intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total busy time within `[from, to)`, with overlapping recordings
    /// merged.
    pub fn busy_within(&self, from: SimTime, to: SimTime) -> Nanos {
        if to <= from || self.intervals.is_empty() {
            return Nanos::ZERO;
        }
        let mut clipped: Vec<(u64, u64)> = self
            .intervals
            .iter()
            .filter_map(|&(s, e)| {
                let s = s.max(from).as_nanos();
                let e = e.as_nanos().min(to.as_nanos());
                (e > s).then_some((s, e))
            })
            .collect();
        clipped.sort_unstable();
        let mut busy = 0u64;
        let mut cur: Option<(u64, u64)> = None;
        for (s, e) in clipped {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    busy += ce - cs;
                    cur = Some((s, e));
                    let _ = cs;
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            busy += ce - cs;
        }
        Nanos::from_nanos(busy)
    }

    /// Fraction of `[from, to)` the resource was busy, in `[0, 1]`.
    ///
    /// Returns zero for an empty window.
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        let window = to.saturating_duration_since(from);
        if window.is_zero() {
            return 0.0;
        }
        self.busy_within(from, to).as_nanos() as f64 / window.as_nanos() as f64
    }

    /// The end of the last recorded interval, or time zero.
    pub fn horizon(&self) -> SimTime {
        self.intervals
            .iter()
            .map(|&(_, e)| e)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Clears all recordings.
    pub fn clear(&mut self) {
        self.intervals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disjoint_intervals_sum() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(10));
        b.record(t(20), t(35));
        assert_eq!(b.busy_within(t(0), t(100)), Nanos::from_nanos(25));
    }

    #[test]
    fn overlaps_merge() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(50));
        b.record(t(25), t(75));
        b.record(t(74), t(80));
        assert_eq!(b.busy_within(t(0), t(100)), Nanos::from_nanos(80));
    }

    #[test]
    fn adjacent_intervals_merge_without_gap() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(10));
        b.record(t(10), t(20));
        assert_eq!(b.busy_within(t(0), t(100)), Nanos::from_nanos(20));
    }

    #[test]
    fn clipping_to_window() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(100));
        assert_eq!(b.busy_within(t(40), t(60)), Nanos::from_nanos(20));
        assert_eq!(b.busy_within(t(200), t(300)), Nanos::ZERO);
    }

    #[test]
    fn utilization_fraction() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(25));
        assert!((b.utilization(t(0), t(100)) - 0.25).abs() < 1e-12);
        assert_eq!(b.utilization(t(5), t(5)), 0.0, "empty window");
    }

    #[test]
    fn ignores_degenerate_records() {
        let mut b = BusyTracker::new();
        b.record(t(10), t(10));
        b.record(t(20), t(5));
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.horizon(), SimTime::ZERO);
    }

    #[test]
    fn horizon_and_clear() {
        let mut b = BusyTracker::new();
        b.record_for(t(10), Nanos::from_nanos(15));
        assert_eq!(b.horizon(), t(25));
        b.clear();
        assert!(b.is_empty());
    }
}
