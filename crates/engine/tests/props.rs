//! Property-based tests for the discrete-event core.

use hetsim_engine::prelude::*;
use hetsim_engine::stats::geomean;
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, with FIFO ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let drained = q.drain_ordered();
        prop_assert_eq!(drained.len(), times.len());
        for w in drained.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tiebreak violated");
            }
        }
    }

    /// Busy time within a window never exceeds the window, regardless of
    /// how intervals overlap.
    #[test]
    fn busy_tracker_bounded(intervals in prop::collection::vec((0u64..500, 0u64..500), 0..50)) {
        let mut b = BusyTracker::new();
        for (s, d) in &intervals {
            b.record_for(SimTime::from_nanos(*s), Nanos::from_nanos(*d));
        }
        let window = Nanos::from_nanos(500 + 500);
        let busy = b.busy_within(SimTime::ZERO, SimTime::ZERO + window);
        prop_assert!(busy <= window);
        let util = b.utilization(SimTime::ZERO, SimTime::ZERO + window);
        prop_assert!((0.0..=1.0).contains(&util));
    }

    /// Merging overlapping recordings never reports less busy time than
    /// the single longest interval.
    #[test]
    fn busy_tracker_lower_bound(intervals in prop::collection::vec((0u64..500, 1u64..500), 1..50)) {
        let mut b = BusyTracker::new();
        let mut longest = 0u64;
        for (s, d) in &intervals {
            b.record_for(SimTime::from_nanos(*s), Nanos::from_nanos(*d));
            longest = longest.max(*d);
        }
        let busy = b.busy_within(SimTime::ZERO, SimTime::from_nanos(1_000));
        prop_assert!(busy.as_nanos() >= longest.min(1_000));
    }

    /// SimRng stays deterministic under forking and in-range for bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(bound) < bound);
            let f = r.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// Summary invariants: min <= percentiles <= max, cv >= 0.
    #[test]
    fn summary_invariants(xs in prop::collection::vec(0.0f64..1e12, 1..100)) {
        let s = Summary::from_samples(&xs);
        prop_assert!(s.min() <= s.mean() + 1e-6);
        prop_assert!(s.mean() <= s.max() + 1e-6);
        for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(s.min() - 1e-9 <= v && v <= s.max() + 1e-9);
        }
        prop_assert!(s.cv() >= 0.0);
    }

    /// Geomean sits between min and max of positive inputs.
    #[test]
    fn geomean_bounds(xs in prop::collection::vec(1e-6f64..1e6, 1..50)) {
        let g = geomean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(min * 0.999 <= g && g <= max * 1.001);
    }

    /// Bandwidth transfer time is monotonic in bytes and additive-ish.
    #[test]
    fn transfer_time_monotonic(a in 0u64..1u64<<32, b in 0u64..1u64<<32) {
        let bw = Bandwidth::from_gb_per_sec(6.2);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bw.transfer_time(lo) <= bw.transfer_time(hi));
    }
}
