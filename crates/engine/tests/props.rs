//! Randomized invariant tests for the discrete-event core.
//!
//! These were originally `proptest` properties; they now drive the same
//! invariants from the crate's own deterministic [`SimRng`] so the test
//! suite builds with no external dependencies (offline tier-1 CI).

use hetsim_engine::prelude::*;
use hetsim_engine::stats::geomean;

const CASES: u64 = 64;

/// Events always pop in non-decreasing time order, with FIFO ties.
#[test]
fn event_queue_total_order() {
    let mut rng = SimRng::seed_from_parts(&["props", "event_queue_total_order"], 0);
    for _ in 0..CASES {
        let n = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let drained = q.drain_ordered();
        assert_eq!(drained.len(), times.len());
        for w in drained.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tiebreak violated");
            }
        }
    }
}

/// Busy time within a window never exceeds the window, regardless of how
/// intervals overlap.
#[test]
fn busy_tracker_bounded() {
    let mut rng = SimRng::seed_from_parts(&["props", "busy_tracker_bounded"], 0);
    for _ in 0..CASES {
        let n = rng.below(50) as usize;
        let mut b = BusyTracker::new();
        for _ in 0..n {
            let s = rng.below(500);
            let d = rng.below(500);
            b.record_for(SimTime::from_nanos(s), Nanos::from_nanos(d));
        }
        let window = Nanos::from_nanos(500 + 500);
        let busy = b.busy_within(SimTime::ZERO, SimTime::ZERO + window);
        assert!(busy <= window);
        let util = b.utilization(SimTime::ZERO, SimTime::ZERO + window);
        assert!((0.0..=1.0).contains(&util));
    }
}

/// Merging overlapping recordings never reports less busy time than the
/// single longest interval.
#[test]
fn busy_tracker_lower_bound() {
    let mut rng = SimRng::seed_from_parts(&["props", "busy_tracker_lower_bound"], 0);
    for _ in 0..CASES {
        let n = rng.range(1, 50) as usize;
        let mut b = BusyTracker::new();
        let mut longest = 0u64;
        for _ in 0..n {
            let s = rng.below(500);
            let d = rng.range(1, 500);
            b.record_for(SimTime::from_nanos(s), Nanos::from_nanos(d));
            longest = longest.max(d);
        }
        let busy = b.busy_within(SimTime::ZERO, SimTime::from_nanos(1_000));
        assert!(busy.as_nanos() >= longest.min(1_000));
    }
}

/// SimRng stays deterministic under forking and in-range for bounds.
#[test]
fn rng_bounds() {
    let mut seeds = SimRng::seed_from_parts(&["props", "rng_bounds"], 0);
    for _ in 0..CASES {
        let seed = seeds.next_u64();
        let bound = seeds.range(1, 1_000_000);
        let mut r = SimRng::new(seed);
        for _ in 0..50 {
            assert!(r.below(bound) < bound);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}

/// Summary invariants: min <= percentiles <= max, cv >= 0.
#[test]
fn summary_invariants() {
    let mut rng = SimRng::seed_from_parts(&["props", "summary_invariants"], 0);
    for _ in 0..CASES {
        let n = rng.range(1, 100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 1e12).collect();
        let s = Summary::from_samples(&xs);
        assert!(s.min() <= s.mean() + 1e-6);
        assert!(s.mean() <= s.max() + 1e-6);
        for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
            let v = s.percentile(p);
            assert!(s.min() - 1e-9 <= v && v <= s.max() + 1e-9);
        }
        assert!(s.cv() >= 0.0);
    }
}

/// Geomean sits between min and max of positive inputs.
#[test]
fn geomean_bounds() {
    let mut rng = SimRng::seed_from_parts(&["props", "geomean_bounds"], 0);
    for _ in 0..CASES {
        let n = rng.range(1, 50) as usize;
        // Log-uniform over [1e-6, 1e6].
        let xs: Vec<f64> = (0..n)
            .map(|_| 10f64.powf(rng.next_f64() * 12.0 - 6.0))
            .collect();
        let g = geomean(&xs);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(min * 0.999 <= g && g <= max * 1.001);
    }
}

/// Bandwidth transfer time is monotonic in bytes.
#[test]
fn transfer_time_monotonic() {
    let mut rng = SimRng::seed_from_parts(&["props", "transfer_time_monotonic"], 0);
    let bw = Bandwidth::from_gb_per_sec(6.2);
    for _ in 0..CASES {
        let a = rng.below(1u64 << 32);
        let b = rng.below(1u64 << 32);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(bw.transfer_time(lo) <= bw.transfer_time(hi));
    }
}
