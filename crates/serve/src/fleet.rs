//! The fleet simulator: arrivals × policy × topology → a serving report.
//!
//! [`Fleet`] owns the expensive, shareable state — the cost model (one
//! memoized base simulation per `(workload, mode)`, prewarmed in parallel
//! through the pool executor) and the cluster topology. [`Fleet::serve`]
//! then plays one arrival plan through one policy in a **single serial
//! pass in arrival order**: that pass is the determinism backbone, so no
//! thread count can reorder placement decisions. Parallelism lives where
//! order cannot leak — the prewarm grid and the independent
//! `(policy × rate)` cells of a [`ServeSweep`], both assembled in index
//! order by `hetsim::pool`.
//!
//! Per-device execution generalizes the batch `InterJobPipeline`
//! recurrence. A request is a two-stage job (CPU alloc stage, GPU
//! memcpy+kernel stage) with a *release time* (its arrival plus any
//! policy-charged queue delay):
//!
//! ```text
//! cpu_start = max(release, cpu_free[d])      cpu_free[d] = cpu_start + cpu
//! gpu_start = max(cpu_done, gpu_free[d])     gpu_free[d] = gpu_start + gpu
//! ```
//!
//! With every release at zero this is *exactly* the pipelined schedule of
//! `InterJobPipeline` — pinned by a unit test — so the serving layer and
//! the batch figures share one execution model rather than two
//! re-implementations that could drift.

use crate::arrival::{ArrivalMix, ArrivalPlan};
use crate::metrics::{DeviceUtilization, LatencyAccumulator, PolicyReport, ServeReport};
use crate::policy::{Admission, DeviceView, FleetView, ModeCosts, PolicyKind, ServingPolicy};
use crate::resilience::ResilienceConfig;
use crate::topology::ClusterTopology;
use hetsim::batch::JobStages;
use hetsim::{pool, Experiment};
use hetsim_engine::rng::SimRng;
use hetsim_engine::time::Nanos;
use hetsim_runtime::{
    ChaosOverhead, GpuProgram, HealthState, HealthTimeline, LifecycleEvent, TransferMode,
};
use hetsim_trace::{Category, Dim, Trace, TraceBuilder, TraceConfig, TraceSink};
use hetsim_workloads::spec::Workload;
use hetsim_workloads::{suite, InputSize};

/// Configuration of one serving cell.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The policy under test.
    pub policy: PolicyKind,
    /// The arrival mix.
    pub mix: ArrivalMix,
    /// Base seed (arrivals, noise, and policy draws all derive from it).
    pub seed: u64,
    /// Number of offered requests.
    pub requests: u64,
}

/// One request that ran to completion, with its full schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRequest {
    /// Request id (arrival order).
    pub id: u64,
    /// Workload registry name.
    pub workload: &'static str,
    /// Transfer mode it ran in.
    pub mode: TransferMode,
    /// Device it landed on.
    pub device: usize,
    /// Arrival instant.
    pub arrival: Nanos,
    /// Policy-charged delay before the CPU stage could start.
    pub queue_delay: Nanos,
    /// CPU (alloc) stage start.
    pub cpu_start: Nanos,
    /// CPU stage duration.
    pub cpu_dur: Nanos,
    /// GPU (memcpy+kernel) stage start.
    pub gpu_start: Nanos,
    /// GPU stage duration (after any policy scaling).
    pub gpu_dur: Nanos,
    /// Devices that failed a placement attempt before this one, in
    /// attempt order.
    pub failed_devices: Vec<usize>,
    /// The request's SLO deadline (arrival + budget).
    pub deadline: Nanos,
    /// Additive recovery cost the resilience layer charged this request
    /// (retry backoff, abandoned partial work, re-staging, degraded
    /// service). All-zero for a fault-free run.
    pub recovery: ChaosOverhead,
    /// Whether the request was hedged off a degraded primary onto a peer.
    pub hedged: bool,
}

impl CompletedRequest {
    /// Completion instant (GPU stage end).
    pub fn completion(&self) -> Nanos {
        self.gpu_start + self.gpu_dur
    }

    /// End-to-end latency: arrival → completion, queueing included.
    pub fn latency(&self) -> Nanos {
        self.completion() - self.arrival
    }
}

/// One request shed at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedRequest {
    /// Request id.
    pub id: u64,
    /// Arrival instant.
    pub arrival: Nanos,
    /// The policy's shed reason.
    pub reason: &'static str,
}

/// Everything one serving cell produced: the report plus the raw
/// schedule, from which [`FleetOutcome::trace`] renders the observability
/// view.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The aggregated report.
    pub report: PolicyReport,
    /// Completed requests in arrival order.
    pub completed: Vec<CompletedRequest>,
    /// Shed requests in arrival order.
    pub shed: Vec<ShedRequest>,
    /// Fleet size (device count).
    pub devices: usize,
    /// Device-lifecycle transitions the fault plan produced, sorted by
    /// `(time, device)`. Empty for a fault-free run.
    pub lifecycle: Vec<LifecycleEvent>,
    /// Requests hedged onto a peer device.
    pub hedges: usize,
}

/// Internal per-device scheduling state for the serial pass.
#[derive(Debug, Clone, Default)]
struct DeviceState {
    cpu_free: Nanos,
    gpu_free: Nanos,
    /// In-flight working sets: `(completion, bytes)`.
    inflight: Vec<(Nanos, u64)>,
    busy: Nanos,
    completed: usize,
    peak_committed: u64,
    consecutive_failures: u32,
}

impl DeviceState {
    /// Drops working sets completed by `now` and returns committed bytes.
    fn settle(&mut self, now: Nanos) -> u64 {
        self.inflight.retain(|&(done, _)| done > now);
        self.inflight.iter().map(|&(_, b)| b).sum()
    }
}

/// The two-stage pipelined step shared with `InterJobPipeline` (see the
/// module docs): returns `(cpu_start, gpu_start)` and advances the
/// per-device availability clocks.
fn two_stage_step(
    release: Nanos,
    stages: JobStages,
    cpu_free: &mut Nanos,
    gpu_free: &mut Nanos,
) -> (Nanos, Nanos) {
    let cpu_start = release.max(*cpu_free);
    let cpu_done = cpu_start + stages.cpu;
    *cpu_free = cpu_done;
    let gpu_start = cpu_done.max(*gpu_free);
    *gpu_free = gpu_start + stages.gpu;
    (cpu_start, gpu_start)
}

/// A GPU fleet with a prewarmed cost model, ready to serve arrival plans.
pub struct Fleet {
    topology: ClusterTopology,
    experiment: Experiment,
    catalog: Vec<&'static str>,
    workloads: Vec<Workload>,
    size: InputSize,
}

impl Fleet {
    /// The transfer modes a shipped policy or the SLO degradation ladder
    /// can place requests in; the prewarm grid covers exactly these.
    const PREWARM_MODES: [TransferMode; 5] = [
        TransferMode::Async,
        TransferMode::UvmPrefetchAsync,
        TransferMode::UvmPrefetch,
        TransferMode::Uvm,
        TransferMode::Standard,
    ];

    /// Builds a fleet over `topology` serving the full workload registry
    /// at `size`, and prewarms the cost model: one deterministic base
    /// simulation per `(workload, prewarm mode)`, fanned across the pool
    /// executor (results land in the experiment's index-independent memo,
    /// so thread count cannot affect anything downstream).
    pub fn new(topology: ClusterTopology, size: InputSize) -> Fleet {
        Fleet::with_experiment(topology, size, Experiment::new())
    }

    /// Like [`Fleet::new`], but prewarms through a caller-supplied
    /// [`Experiment`] — the hook for attaching an on-disk result cache so
    /// repeated serve runs skip the cold prewarm grid.
    pub fn with_experiment(
        topology: ClusterTopology,
        size: InputSize,
        experiment: Experiment,
    ) -> Fleet {
        let catalog = ArrivalPlan::full_catalog();
        let workloads: Vec<Workload> = catalog
            .iter()
            .map(|name| suite::by_name(name, size).expect("catalog names come from the registry"))
            .collect();
        let grid = workloads.len() * Fleet::PREWARM_MODES.len();
        pool::run(grid, |i| {
            let w = &workloads[i / Fleet::PREWARM_MODES.len()];
            let mode = Fleet::PREWARM_MODES[i % Fleet::PREWARM_MODES.len()];
            experiment.base_run(w, mode);
        });
        Fleet {
            topology,
            experiment,
            catalog,
            workloads,
            size,
        }
    }

    /// An NVLink-mesh fleet of `gpus` devices at `size` (the CLI default).
    pub fn nvlink(gpus: usize, size: InputSize) -> Fleet {
        Fleet::new(ClusterTopology::nvlink_mesh(gpus), size)
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The per-request stage costs of `catalog_idx` in `mode`, with the
    /// run's deterministic measurement noise applied (`run_index` is the
    /// request id, matching the batch harness convention).
    fn stages(&self, catalog_idx: usize, mode: TransferMode, run_index: u64) -> JobStages {
        let w = &self.workloads[catalog_idx];
        let base = self.experiment.base_run(w, mode);
        let noisy = self
            .experiment
            .runner()
            .apply_noise(&base, w, mode, run_index);
        JobStages::from_report(&noisy)
    }

    /// Plays one serving cell: generates the arrival plan, admits and
    /// places every request through `config.policy`, schedules per-device
    /// execution, and aggregates the report.
    pub fn serve(&self, config: &ServeConfig) -> FleetOutcome {
        let policy = config.policy.build();
        let plan = ArrivalPlan::generate(
            config.mix,
            config.seed,
            config.requests,
            &self.catalog,
            self.size,
        );
        self.serve_plan(&plan, policy.as_ref(), config.seed)
    }

    /// Plays one serving cell under a fault plan: like [`Fleet::serve`],
    /// but with `res.slo_budget` as every request's deadline budget and
    /// the device-lifecycle timeline of `res.plan` driving health,
    /// deadline-budgeted retries, and hedging. At intensity zero the
    /// timeline is empty and the outcome is byte-identical to
    /// [`Fleet::serve`] with the same config (given the default budget).
    ///
    /// # Panics
    ///
    /// Panics if `res.plan` fails [`validation`](hetsim_runtime::FleetFaultPlan::validate).
    pub fn serve_resilient(&self, config: &ServeConfig, res: &ResilienceConfig) -> FleetOutcome {
        res.plan
            .validate()
            .expect("resilience fault plan must be valid");
        let policy = config.policy.build();
        let plan = ArrivalPlan::generate_with_deadline(
            config.mix,
            config.seed,
            config.requests,
            &self.catalog,
            self.size,
            res.slo_budget,
        );
        // A deterministic timeline horizon: the last arrival plus the SLO
        // budget plus one full episode cycle of margin. Work queued past
        // it simply sees a recovered fleet.
        let last = plan
            .requests
            .last()
            .map(|r| r.arrival)
            .unwrap_or(Nanos::ZERO);
        let margin = res.plan.degrade_lead + res.plan.repair + res.plan.drain + res.plan.cooldown;
        let horizon = last + res.slo_budget + margin;
        let timeline = HealthTimeline::generate(&res.plan, self.topology.len(), horizon);
        let resilience = Resilience {
            timeline,
            cfg: *res,
        };
        self.run_plan(&plan, policy.as_ref(), config.seed, Some(&resilience))
    }

    /// [`Fleet::serve`] with an explicit plan and policy instance (the
    /// extension point for custom policies).
    pub fn serve_plan(
        &self,
        plan: &ArrivalPlan,
        policy: &dyn ServingPolicy,
        seed: u64,
    ) -> FleetOutcome {
        self.run_plan(plan, policy, seed, None)
    }

    /// The single serial pass shared by the fault-free and resilient
    /// entry points. When `res` is `None` *or its timeline is empty*, the
    /// resilient branches are never entered — zero extra arithmetic, zero
    /// extra RNG draws — which is what makes an intensity-zero resilient
    /// run byte-identical to the plain one.
    fn run_plan(
        &self,
        plan: &ArrivalPlan,
        policy: &dyn ServingPolicy,
        seed: u64,
        res: Option<&Resilience>,
    ) -> FleetOutcome {
        let n = self.topology.len();
        let mut states = vec![DeviceState::default(); n];
        let mut completed = Vec::new();
        let mut shed = Vec::new();
        let mut failovers = 0usize;
        let mut hedges = 0usize;
        let mut recovery_total = ChaosOverhead::default();
        // O(1)-per-sample latency accounting: exact for small cells,
        // fixed-memory streaming histogram past the exact limit.
        let mut latency = LatencyAccumulator::new();
        // An armed-but-quiet timeline behaves exactly like no timeline.
        let active = res.filter(|r| !r.timeline.is_empty());

        for req in &plan.requests {
            let catalog_idx = self
                .catalog
                .iter()
                .position(|&w| w == req.workload)
                .expect("request workloads come from the catalog");
            let footprint = self.workloads[catalog_idx].footprint();

            // Snapshot the fleet as of this arrival.
            let views: Vec<DeviceView> = states
                .iter_mut()
                .enumerate()
                .map(|(index, s)| {
                    let committed = s.settle(req.arrival);
                    let base_capacity = self.topology.capacity(index);
                    let (capacity, health) = match active {
                        Some(r) => {
                            let f = r.timeline.capacity_factor(index, req.arrival);
                            let cap = if f < 1.0 {
                                (base_capacity as f64 * f) as u64
                            } else {
                                base_capacity
                            };
                            (cap, r.timeline.state(index, req.arrival))
                        }
                        None => (base_capacity, HealthState::Healthy),
                    };
                    DeviceView {
                        index,
                        cpu_free: s.cpu_free,
                        gpu_free: s.gpu_free,
                        committed,
                        capacity,
                        inflight: s.inflight.len(),
                        consecutive_failures: s.consecutive_failures,
                        health,
                    }
                })
                .collect();
            let view = FleetView {
                now: req.arrival,
                devices: &views,
                topology: &self.topology,
                costs: ModeCosts::from_fn(|mode| self.stages(catalog_idx, mode, req.id)),
            };

            // One deterministic RNG per request, independent of every
            // other request's draws.
            let mut rng = SimRng::seed_from_parts(
                &["serve.fleet", policy.name()],
                config_index(seed, req.id),
            );

            match policy.admit(req, footprint, &view, &mut rng) {
                Admission::Shed { reason } => {
                    shed.push(ShedRequest {
                        id: req.id,
                        arrival: req.arrival,
                        reason,
                    });
                    continue;
                }
                Admission::Accept => {}
            }

            let placement = policy.place(req, footprint, &view, &mut rng);
            assert!(placement.device < n, "policy placed outside the fleet");
            let stages = self.stages(catalog_idx, placement.mode, req.id);
            let gpu_dur = if placement.gpu_scale > 1.0 {
                stages.gpu.scale(placement.gpu_scale)
            } else {
                stages.gpu
            };

            // Chaos bookkeeping before the schedule advances.
            for &failed in &placement.failed_devices {
                states[failed].consecutive_failures += 1;
            }
            failovers += placement.failed_devices.len();

            let base_release = req.arrival + placement.queue_delay;
            let mut failed_devices = placement.failed_devices;
            let mut recovery = ChaosOverhead::default();
            let mut hedged = false;

            // Resolve (device, release, stages) — trivially on the
            // fault-free path, through the deadline-budgeted attempt walk
            // when a lifecycle timeline is armed.
            let resolved: Result<(usize, Nanos, JobStages), &'static str> = match active {
                None => Ok((
                    placement.device,
                    base_release,
                    JobStages {
                        cpu: stages.cpu,
                        gpu: gpu_dur,
                    },
                )),
                Some(r) => {
                    let tl = &r.timeline;
                    let cfg = &r.cfg;
                    // Candidate order: the policy's pick, then peers by
                    // queue depth. The walk is bounded by the retry
                    // budget and by the deadline: a hop is only taken if
                    // backoff + re-staging still make the SLO.
                    let mut order: Vec<usize> = Vec::with_capacity(n);
                    order.push(placement.device);
                    let mut rest: Vec<usize> = (0..n).filter(|&i| i != placement.device).collect();
                    rest.sort_by_key(|&i| (views[i].gpu_free, i));
                    order.extend(rest);
                    let max_attempts = (cfg.recovery.max_retries as usize + 1).min(order.len());

                    let mut committed: Option<(usize, Nanos, JobStages)> = None;
                    // A primary that can run the request late (degraded
                    // or just queued): kept as the fallback if no peer
                    // beats the deadline.
                    let mut fallback: Option<(usize, Nanos, JobStages, Nanos)> = None;
                    let mut pending_backoff = Nanos::ZERO;
                    let mut hedge_pending = false;
                    let mut saw_viable = false;

                    for (attempt, &cand) in order.iter().take(max_attempts).enumerate() {
                        // The hop cost: backoff owed from a previous
                        // failure, plus re-staging the working set over
                        // the (possibly degraded) peer link.
                        let mut hop = ChaosOverhead::default();
                        let mut release = base_release;
                        if attempt > 0 {
                            hop.system += pending_backoff;
                            release += pending_backoff;
                            let link = tl
                                .link_factor(placement.device, release)
                                .max(tl.link_factor(cand, release));
                            let restage = self
                                .topology
                                .peer_transfer_time(placement.device, cand, footprint)
                                .scale(link);
                            hop.memcpy += restage;
                            release += restage;
                        }
                        if !tl.accepts(cand, release) {
                            // Failed before any data moved: only the
                            // backoff is sunk.
                            recovery.system += hop.system;
                            pending_backoff = cfg.recovery.backoff(attempt as u32);
                            states[cand].consecutive_failures += 1;
                            failed_devices.push(cand);
                            failovers += 1;
                            continue;
                        }
                        let penalty = tl.service_penalty(cand, release);
                        let slow_gpu = if penalty > 1.0 {
                            gpu_dur.scale(penalty)
                        } else {
                            gpu_dur
                        };
                        let rs = JobStages {
                            cpu: stages.cpu,
                            gpu: slow_gpu,
                        };
                        let s = &states[cand];
                        let cpu_start = release.max(s.cpu_free);
                        let done = (cpu_start + rs.cpu).max(s.gpu_free) + rs.gpu;
                        let quarantined_mid_run = tl
                            .next_quarantine_start(cand, release)
                            .map(|q| q <= done)
                            .unwrap_or(false);
                        if quarantined_mid_run {
                            // The attempt started and died mid-run:
                            // backoff, re-staging, and the partial work
                            // are all sunk cost.
                            let q = tl
                                .next_quarantine_start(cand, release)
                                .expect("checked above");
                            recovery.system += hop.system + q.saturating_sub(cpu_start);
                            recovery.memcpy += hop.memcpy;
                            pending_backoff = cfg.recovery.backoff(attempt as u32);
                            states[cand].consecutive_failures += 1;
                            failed_devices.push(cand);
                            failovers += 1;
                            continue;
                        }
                        let extra_kernel = slow_gpu.saturating_sub(gpu_dur);
                        if done > req.deadline {
                            saw_viable = true;
                            if attempt == 0 {
                                fallback = Some((cand, release, rs, extra_kernel));
                                if cfg.hedging && penalty > 1.0 {
                                    // Late *because it degraded*: hedge
                                    // onto a peer if one makes the SLO.
                                    hedge_pending = true;
                                    continue;
                                }
                                // Late from plain queueing: run it late,
                                // exactly like the fault-free path.
                                break;
                            }
                            // A hop that still misses is not worth paying
                            // for.
                            continue;
                        }
                        // Commit: the hop that lands charges its backoff
                        // and re-staging; a degraded device charges its
                        // service slowdown.
                        recovery.system += hop.system;
                        recovery.memcpy += hop.memcpy;
                        recovery.kernel += extra_kernel;
                        hedged = hedge_pending && attempt > 0;
                        committed = Some((cand, release, rs));
                        break;
                    }
                    if committed.is_none() {
                        if let Some((cand, release, rs, extra_kernel)) = fallback {
                            // No peer beats the deadline: run late on the
                            // primary rather than shed runnable work.
                            recovery.kernel += extra_kernel;
                            committed = Some((cand, release, rs));
                        }
                    }
                    committed.ok_or(if saw_viable {
                        "deadline_exhausted"
                    } else {
                        "fleet_unavailable"
                    })
                }
            };

            let (d, release, run_stages) = match resolved {
                Ok(t) => t,
                Err(reason) => {
                    // Attempts exhausted: shed post-admission; the wasted
                    // attempt work still lands in the ledger.
                    add_overhead(&mut recovery_total, recovery);
                    shed.push(ShedRequest {
                        id: req.id,
                        arrival: req.arrival,
                        reason,
                    });
                    continue;
                }
            };
            states[d].consecutive_failures = 0;
            if hedged {
                hedges += 1;
            }
            add_overhead(&mut recovery_total, recovery);

            let (cpu_start, gpu_start) = {
                let s = &mut states[d];
                two_stage_step(release, run_stages, &mut s.cpu_free, &mut s.gpu_free)
            };
            let done = gpu_start + run_stages.gpu;
            latency.observe(done - req.arrival);
            let s = &mut states[d];
            s.busy += run_stages.gpu;
            s.completed += 1;
            s.inflight.push((done, footprint));
            let committed_now: u64 = s.inflight.iter().map(|&(_, b)| b).sum();
            s.peak_committed = s.peak_committed.max(committed_now);

            completed.push(CompletedRequest {
                id: req.id,
                workload: req.workload,
                mode: placement.mode,
                device: d,
                arrival: req.arrival,
                queue_delay: placement.queue_delay,
                cpu_start,
                cpu_dur: stages.cpu,
                gpu_start,
                gpu_dur: run_stages.gpu,
                failed_devices,
                deadline: req.deadline,
                recovery,
                hedged,
            });
        }

        let horizon = completed
            .iter()
            .map(CompletedRequest::completion)
            .max()
            .unwrap_or(Nanos::ZERO);
        let horizon_s = horizon.as_secs_f64();
        let per_device: Vec<DeviceUtilization> = states
            .iter()
            .enumerate()
            .map(|(i, s)| DeviceUtilization {
                device: self.topology.device_label(i),
                completed: s.completed,
                busy: s.busy,
                utilization: if horizon_s > 0.0 {
                    s.busy.as_secs_f64() / horizon_s
                } else {
                    0.0
                },
                peak_committed: s.peak_committed,
            })
            .collect();

        let deadline_misses = completed
            .iter()
            .filter(|c| c.completion() > c.deadline)
            .count();
        let report = PolicyReport {
            policy: policy.name().to_string(),
            mix: plan.mix.name().to_string(),
            rate_rps: plan.mix.base_rate(),
            seed,
            offered: plan.requests.len(),
            completed: completed.len(),
            shed: shed.len(),
            failovers,
            hedges,
            deadline_misses,
            slo_attainment: if plan.requests.is_empty() {
                0.0
            } else {
                (completed.len() - deadline_misses) as f64 / plan.requests.len() as f64
            },
            recovery: recovery_total,
            horizon,
            goodput_rps: if horizon_s > 0.0 {
                completed.len() as f64 / horizon_s
            } else {
                0.0
            },
            latency: latency.finalize(),
            per_device,
        };

        FleetOutcome {
            report,
            completed,
            shed,
            devices: n,
            lifecycle: active.map(|r| r.timeline.events()).unwrap_or_default(),
            hedges,
        }
    }
}

/// The armed state one resilient run carries: the generated health
/// timeline plus the configuration that produced it.
struct Resilience {
    timeline: HealthTimeline,
    cfg: ResilienceConfig,
}

/// Accumulates one request's recovery ledger into the run total
/// (component-wise, preserving separability).
fn add_overhead(total: &mut ChaosOverhead, part: ChaosOverhead) {
    total.alloc += part.alloc;
    total.memcpy += part.memcpy;
    total.kernel += part.kernel;
    total.system += part.system;
}

/// Mixes a serve seed and a request id into one RNG index (SplitMix-style
/// odd multiplier spreads consecutive seeds far apart before the id is
/// added, so per-request streams never overlap within a run).
fn config_index(seed: u64, id: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(id)
}

impl FleetOutcome {
    /// Renders the schedule as a trace: per device a `gpu{d}.cpu` and a
    /// `gpu{d}.gpu` track (alloc / kernel spans per request, labeled with
    /// the `device`, `job`, and `mode` dimensions), plus a `fleet` track
    /// carrying shed and failover instants. Emission order is fixed —
    /// fleet track first, then devices in index order, requests in
    /// arrival order — so exports are byte-identical regardless of how
    /// the outcome was computed.
    pub fn trace(&self, config: TraceConfig) -> Trace {
        self.render(TraceBuilder::new(config))
    }

    /// [`FleetOutcome::trace`] with a streaming sink attached: events are
    /// drained to `sink` incrementally, so arbitrarily long serving runs
    /// export without buffering the whole schedule.
    pub fn trace_streaming(&self, config: TraceConfig, sink: Box<dyn TraceSink>) -> Trace {
        self.render(TraceBuilder::new(config).with_sink(sink))
    }

    /// The number of events [`FleetOutcome::trace`] emits (for sizing
    /// ring capacities).
    pub fn trace_events(&self) -> usize {
        2 * self.completed.len()
            + self.shed.len()
            + self.lifecycle.len()
            + self.hedges
            + self
                .completed
                .iter()
                .filter(|c| !c.failed_devices.is_empty())
                .count()
    }

    fn render(&self, mut b: TraceBuilder) -> Trace {
        let fleet = b.track("fleet");
        // Lifecycle transitions first: the fault plan's schedule is the
        // backdrop the per-request events play against.
        for e in &self.lifecycle {
            b.instant_at(
                fleet,
                Category::Chaos,
                format!("{}[gpu{}]", e.phase.name(), e.device),
                e.at.as_nanos(),
                None,
            );
        }
        for s in &self.shed {
            b.instant_at(
                fleet,
                Category::Chaos,
                format!("shed[{}]({})", s.id, s.reason),
                s.arrival.as_nanos(),
                None,
            );
        }
        for c in self
            .completed
            .iter()
            .filter(|c| !c.failed_devices.is_empty())
        {
            b.instant_at(
                fleet,
                Category::Chaos,
                format!("failover[{}]", c.id),
                c.arrival.as_nanos(),
                Some(("hops", c.failed_devices.len() as f64)),
            );
        }
        for c in self.completed.iter().filter(|c| c.hedged) {
            b.instant_at(
                fleet,
                Category::Chaos,
                format!("hedge[{}]", c.id),
                c.arrival.as_nanos(),
                None,
            );
        }
        for d in 0..self.devices {
            let cpu = b.track(&format!("gpu{d}.cpu"));
            let gpu = b.track(&format!("gpu{d}.gpu"));
            for c in self.completed.iter().filter(|c| c.device == d) {
                b.set_label(Dim::Device, &format!("gpu{d}"));
                b.set_label(Dim::Job, &c.id.to_string());
                b.set_label(Dim::Mode, c.mode.name());
                b.span_at(
                    cpu,
                    Category::Alloc,
                    format!("alloc[{}]", c.id),
                    c.cpu_start.as_nanos(),
                    c.cpu_dur.as_nanos(),
                );
                b.span_at(
                    gpu,
                    Category::Kernel,
                    format!("kernel[{}]", c.id),
                    c.gpu_start.as_nanos(),
                    c.gpu_dur.as_nanos(),
                );
            }
            b.clear_label(Dim::Device);
            b.clear_label(Dim::Job);
            b.clear_label(Dim::Mode);
        }
        b.finish()
    }
}

/// A `(policy × rate)` sweep over one fleet — the serving analogue of the
/// chaos degradation sweep, with cells fanned across the pool executor
/// and assembled in grid order.
#[derive(Debug, Clone)]
pub struct ServeSweep {
    /// Policies, in report order.
    pub policies: Vec<PolicyKind>,
    /// Base arrival rates (requests per second), in report order.
    pub rates: Vec<f64>,
    /// Mix name (`poisson`, `bursty`, `diurnal`); each rate instantiates
    /// it via [`ArrivalMix::by_name`].
    pub mix: String,
    /// Base seed.
    pub seed: u64,
    /// Offered requests per cell.
    pub requests: u64,
}

impl ServeSweep {
    /// Runs every `(policy, rate)` cell on `fleet` and collects the
    /// report. Cells are independent, so they fan out through
    /// `hetsim::pool`; results are assembled in grid order (policy-major),
    /// which keeps the report identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the policy or rate list is empty, or the mix name is
    /// unknown.
    pub fn run(&self, fleet: &Fleet) -> ServeReport {
        assert!(!self.policies.is_empty(), "sweep needs at least one policy");
        assert!(!self.rates.is_empty(), "sweep needs at least one rate");
        assert!(
            ArrivalMix::by_name(&self.mix, 1.0).is_some(),
            "unknown mix {:?}",
            self.mix
        );
        let grid: Vec<(PolicyKind, f64)> = self
            .policies
            .iter()
            .flat_map(|&p| self.rates.iter().map(move |&r| (p, r)))
            .collect();
        let cells = pool::run(grid.len(), |i| {
            let (policy, rate) = grid[i];
            let mix = ArrivalMix::by_name(&self.mix, rate).expect("mix validated above");
            fleet
                .serve(&ServeConfig {
                    policy,
                    mix,
                    seed: self.seed,
                    requests: self.requests,
                })
                .report
        });
        ServeReport { cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::batch::InterJobPipeline;

    fn small_fleet(gpus: usize) -> Fleet {
        Fleet::nvlink(gpus, InputSize::Tiny)
    }

    fn config(policy: PolicyKind, requests: u64) -> ServeConfig {
        ServeConfig {
            policy,
            mix: ArrivalMix::Poisson { rate_rps: 500.0 },
            seed: 11,
            requests,
        }
    }

    #[test]
    fn two_stage_step_matches_interjob_pipeline() {
        // With every release at zero, folding the step over a job list is
        // exactly the batch pipeline's schedule.
        let jobs: Vec<JobStages> = [(40u64, 60u64), (10, 90), (90, 10), (55, 55), (1, 200)]
            .iter()
            .map(|&(c, g)| JobStages {
                cpu: Nanos::from_millis(c),
                gpu: Nanos::from_millis(g),
            })
            .collect();
        let mut cpu_free = Nanos::ZERO;
        let mut gpu_free = Nanos::ZERO;
        for &j in &jobs {
            two_stage_step(Nanos::ZERO, j, &mut cpu_free, &mut gpu_free);
        }
        let expected = InterJobPipeline::new(jobs).estimate().pipelined;
        assert_eq!(gpu_free, expected, "fleet recurrence == batch pipeline");
    }

    #[test]
    fn release_times_delay_the_schedule() {
        let j = JobStages {
            cpu: Nanos::from_millis(10),
            gpu: Nanos::from_millis(20),
        };
        let mut cpu_free = Nanos::ZERO;
        let mut gpu_free = Nanos::ZERO;
        let (cpu_start, gpu_start) =
            two_stage_step(Nanos::from_millis(5), j, &mut cpu_free, &mut gpu_free);
        assert_eq!(cpu_start, Nanos::from_millis(5));
        assert_eq!(gpu_start, Nanos::from_millis(15));
        // A second job released earlier still queues behind the first.
        let (cpu2, _) = two_stage_step(Nanos::ZERO, j, &mut cpu_free, &mut gpu_free);
        assert_eq!(cpu2, Nanos::from_millis(15));
    }

    #[test]
    fn serve_is_reproducible() {
        let fleet = small_fleet(2);
        let cfg = config(PolicyKind::ModePacking, 40);
        let a = fleet.serve(&cfg);
        let b = fleet.serve(&cfg);
        assert_eq!(a.report, b.report);
        assert_eq!(a.completed, b.completed);
        // And across independently built fleets (no hidden shared state).
        let c = small_fleet(2).serve(&cfg);
        assert_eq!(a.report, c.report);
    }

    #[test]
    fn all_policies_complete_requests() {
        let fleet = small_fleet(2);
        for kind in PolicyKind::ALL {
            let out = fleet.serve(&config(kind, 30));
            assert_eq!(
                out.report.offered,
                out.report.completed + out.report.shed,
                "{}: offered = completed + shed",
                kind.name()
            );
            assert!(
                out.report.completed > 0,
                "{}: tiny requests must mostly complete",
                kind.name()
            );
            assert!(out.report.horizon > Nanos::ZERO);
            assert!(out.report.goodput_rps > 0.0);
            assert_eq!(out.report.per_device.len(), 2);
            for c in &out.completed {
                assert!(c.cpu_start >= c.arrival, "no time travel");
                assert!(c.gpu_start >= c.cpu_start + c.cpu_dur);
                assert!(c.latency() >= c.gpu_dur);
            }
        }
    }

    #[test]
    fn resilient_at_intensity_zero_is_plain_serve() {
        // The separability anchor: an armed-but-quiet resilience config
        // must reproduce the fault-free schedule exactly.
        let fleet = small_fleet(2);
        for kind in [PolicyKind::ChaosFailover, PolicyKind::SloDeadline] {
            let cfg = config(kind, 30);
            let plain = fleet.serve(&cfg);
            let res = fleet.serve_resilient(&cfg, &ResilienceConfig::default());
            assert_eq!(plain.report, res.report, "{}", kind.name());
            assert_eq!(plain.completed, res.completed);
            assert_eq!(plain.shed, res.shed);
            assert!(res.lifecycle.is_empty());
            assert_eq!(res.hedges, 0);
        }
    }

    #[test]
    fn faults_charge_the_recovery_ledger() {
        let fleet = small_fleet(2);
        let cfg = config(PolicyKind::ChaosFailover, 60);
        let res = ResilienceConfig::at_intensity(cfg.seed, 1.0);
        let out = fleet.serve_resilient(&cfg, &res);
        assert!(
            !out.lifecycle.is_empty(),
            "full intensity must produce lifecycle episodes"
        );
        assert_eq!(out.report.offered, out.report.completed + out.report.shed);
        // The run ledger covers at least every completed request's
        // charges (shed attempts add more, never less).
        let mut sum = ChaosOverhead::default();
        for c in &out.completed {
            add_overhead(&mut sum, c.recovery);
        }
        assert!(out.report.recovery.total() >= sum.total());
        assert_eq!(
            out.hedges,
            out.completed.iter().filter(|c| c.hedged).count()
        );
        // Determinism: the same armed run reproduces itself.
        let again = fleet.serve_resilient(&cfg, &res);
        assert_eq!(out.report, again.report);
        assert_eq!(out.completed, again.completed);
        assert_eq!(out.lifecycle, again.lifecycle);
    }

    #[test]
    fn latency_grows_with_load() {
        // Same offered work, 10x the arrival rate: queueing must show up
        // in the tail.
        let fleet = small_fleet(1);
        let slow = fleet.serve(&ServeConfig {
            policy: PolicyKind::ModePacking,
            mix: ArrivalMix::Poisson { rate_rps: 2.0 },
            seed: 5,
            requests: 30,
        });
        let fast = fleet.serve(&ServeConfig {
            policy: PolicyKind::ModePacking,
            mix: ArrivalMix::Poisson { rate_rps: 2000.0 },
            seed: 5,
            requests: 30,
        });
        assert!(
            fast.report.latency.p99 > slow.report.latency.p99,
            "open-loop overload must inflate p99: {:?} vs {:?}",
            fast.report.latency.p99,
            slow.report.latency.p99
        );
    }

    #[test]
    fn trace_covers_every_completion() {
        let fleet = small_fleet(2);
        let out = fleet.serve(&config(PolicyKind::ChaosFailover, 25));
        let cap = out.trace_events().max(1);
        let trace = out.trace(TraceConfig::default().with_capacity(cap));
        assert_eq!(trace.dropped(), 0, "capacity estimate must hold");
        assert_eq!(trace.total_events(), out.trace_events() as u64);
        // Device + job labels are queryable, per the observability
        // contract.
        let jsonl = trace.to_jsonl();
        assert!(jsonl.contains("\"device\":\"gpu0\""));
        assert!(jsonl.contains("\"job\":\"0\""));
        // The trace horizon is the report horizon.
        assert_eq!(trace.horizon(), out.report.horizon.as_nanos());
    }

    #[test]
    fn sweep_grid_is_policy_major() {
        let fleet = small_fleet(2);
        let sweep = ServeSweep {
            policies: vec![PolicyKind::ModePacking, PolicyKind::UvmSpillover],
            rates: vec![100.0, 1000.0],
            mix: "poisson".into(),
            seed: 3,
            requests: 12,
        };
        let report = sweep.run(&fleet);
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.cells[0].policy, "mode_packing");
        assert_eq!(report.cells[1].policy, "mode_packing");
        assert_eq!(report.cells[2].policy, "uvm_spillover");
        assert!((report.cells[0].rate_rps - 100.0).abs() < 1e-9);
        assert!((report.cells[1].rate_rps - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_sweep_rejected() {
        let sweep = ServeSweep {
            policies: vec![],
            rates: vec![1.0],
            mix: "poisson".into(),
            seed: 0,
            requests: 1,
        };
        let _ = sweep.run(&small_fleet(1));
    }
}
