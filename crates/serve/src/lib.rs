//! Server mode: a simulated GPU fleet under live traffic.
//!
//! Every other entry point in the hetsim suite is a *batch* sweep — run a
//! workload N times, average, compare transfer modes. This crate puts the
//! same cost models behind a serving front door: an **open-loop** arrival
//! process drives requests drawn from the 22-workload registry onto a
//! multi-GPU cluster, an [`AdmissionPolicy`]/[`PlacementPolicy`] pair
//! decides which requests run where and in which transfer mode, and the
//! fleet reports the numbers a service owner actually watches — p50/p99/
//! p999 latency, goodput, and per-device utilization.
//!
//! # Open-loop vs. closed-loop
//!
//! A **closed-loop** load generator models N captive users: each waits for
//! its previous response before issuing the next request, so when the
//! system slows down the offered load politely slows down with it. That
//! feedback hides exactly the failure mode a serving layer exists to
//! manage — queueing collapse under load the system did not choose.
//! An **open-loop** generator ([`arrival`]) instead schedules arrivals
//! from an external clock (Poisson, bursty, diurnal): requests keep
//! landing whether or not the fleet is keeping up, queues grow without
//! bound past saturation, and tail latency honestly explodes. All serving
//! experiments in this crate are open-loop; the batch sweeps elsewhere in
//! the suite are the closed-loop limit (concurrency 1).
//!
//! # Pipeline
//!
//! 1. [`arrival::ArrivalPlan::generate`] samples a seeded request sequence.
//! 2. [`topology::ClusterTopology`] describes the devices and their peer
//!    links (NVLink / PCIe peer / NUMA-remote).
//! 3. A [`policy`] implementation admits and places each request.
//! 4. [`fleet::Fleet`] schedules per-device execution with the same
//!    two-stage (CPU alloc / GPU work) recurrence as the batch
//!    `InterJobPipeline`, generalized with request release times.
//! 5. [`metrics`] turns completions into percentile/goodput/utilization
//!    reports; [`fleet::FleetOutcome::trace`] renders the schedule as a
//!    labeled trace for Perfetto.
//! 6. [`resilience`] arms the loop with a device-lifecycle fault plan:
//!    health-aware placement, SLO deadlines with deadline-budgeted
//!    retries and hedging, and `(policy × rate × intensity)`
//!    availability sweeps.
//!
//! # Determinism
//!
//! Identical inputs (policy, mix, seed, request count, fleet size) produce
//! byte-identical reports and traces at any worker-thread count. The
//! arrival sequence is a pure function of its seed; placement is one
//! serial pass in arrival order with per-request forked RNGs; thread
//! parallelism is confined to the cost-model prewarm and to fanning
//! independent sweep cells through the pool executor, both of which
//! assemble results in index order. Nothing reads a wall clock.
//!
//! [`AdmissionPolicy`]: policy::AdmissionPolicy
//! [`PlacementPolicy`]: policy::PlacementPolicy

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod fleet;
pub mod metrics;
pub mod policy;
pub mod resilience;
pub mod topology;

pub use arrival::{ArrivalMix, ArrivalPlan, Request};
pub use fleet::{CompletedRequest, Fleet, FleetOutcome, ServeConfig, ServeSweep, ShedRequest};
pub use metrics::{
    DeviceUtilization, LatencyAccumulator, LatencyStats, PolicyReport, ServeReport,
    StreamingHistogram,
};
pub use policy::{
    predicted_completion, Admission, AdmissionPolicy, ChaosFailover, FleetView, ModeAdvisor,
    ModeCosts, ModePacking, Placement, PlacementPolicy, PolicyKind, ServingPolicy, SloDeadline,
    UvmSpillover,
};
pub use resilience::{AvailabilityCell, AvailabilityReport, AvailabilitySweep, ResilienceConfig};
pub use topology::{ClusterTopology, PeerClass, PeerLink};
