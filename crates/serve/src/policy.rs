//! Admission and placement: who gets in, where they run, in which mode.
//!
//! The serving control plane is a pair of traits. [`AdmissionPolicy`]
//! answers *"do we take this request at all?"* — a fleet past saturation
//! serves its existing queue better by shedding than by queueing without
//! bound. [`PlacementPolicy`] answers *"which device, which transfer
//! mode, at what extra cost?"*. The two are split so that experiments can
//! mix them independently, but each shipped policy implements both (tied
//! together by [`ServingPolicy`]).
//!
//! Policies are pure decision functions over a [`FleetView`] snapshot —
//! they hold no mutable state, and all randomness comes from the
//! per-request [`SimRng`] the fleet hands in (forked deterministically
//! from the serve seed and the request id), so a policy decision depends
//! only on `(policy, view, request, seed)` and never on thread timing.
//!
//! Four implementations ship:
//!
//! * [`ModePacking`] — the fleet is split into an *explicit* lane
//!   (async memcpy) and a *managed* lane (UVM + prefetch); requests are
//!   routed by working-set size and best-fit bin-packed within the lane.
//! * [`UvmSpillover`] — everything runs managed; admission allows the
//!   fleet to oversubscribe up to a ratio, and placement spills to the
//!   least-committed device, charging a thrashing penalty on the GPU
//!   stage once a device is past its HBM capacity.
//! * [`ChaosFailover`] — devices fail placement attempts at a seeded
//!   rate; the policy walks healthy devices in load order, paying
//!   recovery backoff plus the peer-link cost of re-staging the working
//!   set on each hop, and quarantines devices that fail repeatedly.
//! * [`ModeAdvisor`] — each request runs in the transfer mode the static
//!   performance advisor predicts fastest for its workload × size, on
//!   the least-loaded device with room; the serving-layer consumer of
//!   the `SAN-P*` analysis.
//! * [`SloDeadline`] — SLO-aware admission: sheds by *predicted deadline
//!   miss* (memoized cost estimates plus current queue depth), and walks
//!   the overload degradation ladder ([`ModeCosts::LADDER`]) to cheaper
//!   transfer modes before giving up on a request.

use crate::arrival::Request;
use crate::topology::ClusterTopology;
use hetsim::batch::JobStages;
use hetsim_engine::rng::SimRng;
use hetsim_engine::time::Nanos;
use hetsim_runtime::{HealthState, RecoveryPolicy, TransferMode};

/// One device's scheduling state as a policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceView {
    /// Device index in the topology.
    pub index: usize,
    /// When the device's CPU (alloc) stage next drains.
    pub cpu_free: Nanos,
    /// When the device's GPU stage next drains.
    pub gpu_free: Nanos,
    /// Bytes of working sets currently in flight on the device.
    pub committed: u64,
    /// HBM capacity, bytes.
    pub capacity: u64,
    /// Requests currently in flight.
    pub inflight: usize,
    /// Consecutive failed placement attempts (chaos bookkeeping).
    pub consecutive_failures: u32,
    /// Lifecycle health at the deciding instant. Always
    /// [`HealthState::Healthy`] on a fault-free run; under a
    /// `FleetFaultPlan` this is the device's state machine position.
    pub health: HealthState,
}

/// The fleet snapshot a policy decides against.
#[derive(Debug)]
pub struct FleetView<'a> {
    /// The deciding request's arrival instant.
    pub now: Nanos,
    /// Per-device state, indexed like the topology.
    pub devices: &'a [DeviceView],
    /// The cluster's device + peer-link model.
    pub topology: &'a ClusterTopology,
    /// Memoized cost estimates for the deciding request, one
    /// [`JobStages`] per rung of the degradation ladder — what
    /// deadline-aware policies predict completions with.
    pub costs: ModeCosts,
}

impl FleetView<'_> {
    /// Total committed bytes across the fleet.
    pub fn total_committed(&self) -> u64 {
        self.devices.iter().map(|d| d.committed).sum()
    }

    /// Total HBM capacity across the fleet.
    pub fn total_capacity(&self) -> u64 {
        self.devices.iter().map(|d| d.capacity).sum()
    }
}

/// The deciding request's memoized cost estimates, one per rung of the
/// overload degradation ladder.
///
/// The estimates come from the fleet's `Experiment`-memoized base runs
/// (the same numbers the scheduler will charge if the request lands), so
/// a policy predicting a completion with them is consistent with the
/// clock the report is measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeCosts {
    entries: [(TransferMode, JobStages); ModeCosts::LADDER.len()],
}

impl ModeCosts {
    /// The overload degradation ladder, preferred mode first: the same
    /// walk as the chaos [`RecoveryPolicy`]'s mode degradation
    /// (`uvm_prefetch_async → uvm_prefetch → uvm → standard`). A
    /// deadline-aware policy tries each rung in order before shedding.
    pub const LADDER: [TransferMode; 4] = [
        TransferMode::UvmPrefetchAsync,
        TransferMode::UvmPrefetch,
        TransferMode::Uvm,
        TransferMode::Standard,
    ];

    /// Builds the table by pricing every ladder rung through `stages`.
    pub fn from_fn(mut stages: impl FnMut(TransferMode) -> JobStages) -> ModeCosts {
        ModeCosts {
            entries: ModeCosts::LADDER.map(|mode| (mode, stages(mode))),
        }
    }

    /// All-zero estimates — the deadline-unaware placeholder (every
    /// prediction collapses to "free", so nothing is ever shed by it).
    pub fn zero() -> ModeCosts {
        ModeCosts::from_fn(|_| JobStages {
            cpu: Nanos::ZERO,
            gpu: Nanos::ZERO,
        })
    }

    /// The estimate for `mode`, if it is on the ladder.
    pub fn get(&self, mode: TransferMode) -> Option<JobStages> {
        self.entries
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|&(_, s)| s)
    }

    /// Ladder rungs with their estimates, preferred mode first.
    pub fn ladder(&self) -> impl Iterator<Item = (TransferMode, JobStages)> + '_ {
        self.entries.iter().copied()
    }
}

/// Predicted completion of a request released at `now` on device `d`,
/// costing `stages` — a pure peek of the fleet's two-stage recurrence
/// (CPU stage behind `cpu_free`, GPU stage behind `gpu_free`) that
/// mutates nothing.
pub fn predicted_completion(now: Nanos, d: &DeviceView, stages: JobStages) -> Nanos {
    let cpu_start = now.max(d.cpu_free);
    let cpu_done = cpu_start + stages.cpu;
    let gpu_start = cpu_done.max(d.gpu_free);
    gpu_start + stages.gpu
}

/// An admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the request.
    Accept,
    /// Reject it up front (load shedding).
    Shed {
        /// Stable shed reason, reported and traced.
        reason: &'static str,
    },
}

/// A placement decision: where the request runs and at what extra cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Target device index.
    pub device: usize,
    /// Transfer mode the request runs in.
    pub mode: TransferMode,
    /// Extra delay before the request's CPU stage may start (failover
    /// backoff, peer re-staging).
    pub queue_delay: Nanos,
    /// Multiplier on the GPU stage (≥ 1; oversubscription thrashing).
    pub gpu_scale: f64,
    /// Devices that failed an attempt before the request landed, in
    /// attempt order (chaos bookkeeping + trace instants).
    pub failed_devices: Vec<usize>,
}

impl Placement {
    /// A clean placement on `device` in `mode` with no extra cost.
    pub fn clean(device: usize, mode: TransferMode) -> Placement {
        Placement {
            device,
            mode,
            queue_delay: Nanos::ZERO,
            gpu_scale: 1.0,
            failed_devices: Vec::new(),
        }
    }
}

/// Decides whether a request is served at all.
pub trait AdmissionPolicy {
    /// Admit or shed `req` (working set `footprint` bytes) given the
    /// fleet snapshot. `rng` is the request's deterministic fork.
    fn admit(
        &self,
        req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        rng: &mut SimRng,
    ) -> Admission;
}

/// Decides where an admitted request runs.
pub trait PlacementPolicy {
    /// Place `req` (working set `footprint` bytes). Must return a device
    /// index inside the view; only called after admission accepted.
    fn place(
        &self,
        req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        rng: &mut SimRng,
    ) -> Placement;
}

/// A complete serving policy: admission + placement + a stable name.
pub trait ServingPolicy: AdmissionPolicy + PlacementPolicy + Sync {
    /// Stable policy name (CLI `--policy` value, report rows).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// ModePacking
// ---------------------------------------------------------------------------

/// Per-mode bin-packing: an explicit-copy lane and a managed (UVM) lane.
///
/// The fleet's first half serves async-memcpy requests, the second half
/// serves UVM+prefetch requests (a single-device "fleet" serves both from
/// device 0). Requests route by working-set size — at or above
/// [`ModePacking::managed_threshold`] the request runs managed, below it
/// explicit — and within the lane are **best-fit** packed: the fittest
/// device is the one with the *most* committed bytes that still has room,
/// which keeps the other lane devices free for large requests. A request
/// that fits no lane device is shed.
#[derive(Debug, Clone)]
pub struct ModePacking {
    /// Working sets at or above this many bytes run in the managed lane.
    pub managed_threshold: u64,
    /// Mode of the explicit lane.
    pub explicit_mode: TransferMode,
    /// Mode of the managed lane.
    pub managed_mode: TransferMode,
}

impl Default for ModePacking {
    fn default() -> Self {
        ModePacking {
            managed_threshold: 512 << 20,
            explicit_mode: TransferMode::Async,
            managed_mode: TransferMode::UvmPrefetchAsync,
        }
    }
}

impl ModePacking {
    /// The lane (device index list) and mode for a working set.
    fn lane(&self, footprint: u64, n: usize) -> (std::ops::Range<usize>, TransferMode) {
        let split = n.div_ceil(2);
        if footprint >= self.managed_threshold {
            (split.min(n - 1)..n, self.managed_mode)
        } else if n == 1 {
            (0..1, self.explicit_mode)
        } else {
            (0..split, self.explicit_mode)
        }
    }

    /// Best-fit device in the lane: most committed bytes that still fits.
    fn best_fit(
        &self,
        footprint: u64,
        lane: std::ops::Range<usize>,
        view: &FleetView<'_>,
    ) -> Option<usize> {
        lane.filter(|&d| {
            let dev = &view.devices[d];
            dev.committed + footprint <= dev.capacity
        })
        .max_by_key(|&d| (view.devices[d].committed, usize::MAX - d))
    }
}

impl AdmissionPolicy for ModePacking {
    fn admit(
        &self,
        _req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        _rng: &mut SimRng,
    ) -> Admission {
        let (lane, _) = self.lane(footprint, view.devices.len());
        if self.best_fit(footprint, lane, view).is_some() {
            Admission::Accept
        } else {
            Admission::Shed {
                reason: "lane_full",
            }
        }
    }
}

impl PlacementPolicy for ModePacking {
    fn place(
        &self,
        _req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        _rng: &mut SimRng,
    ) -> Placement {
        let (lane, mode) = self.lane(footprint, view.devices.len());
        let device = self
            .best_fit(footprint, lane, view)
            .expect("place called without admission");
        Placement::clean(device, mode)
    }
}

impl ServingPolicy for ModePacking {
    fn name(&self) -> &'static str {
        "mode_packing"
    }
}

// ---------------------------------------------------------------------------
// UvmSpillover
// ---------------------------------------------------------------------------

/// UVM oversubscription spillover: everything runs managed, and the fleet
/// admits past physical capacity.
///
/// Admission allows total committed bytes up to
/// [`UvmSpillover::oversubscription`] × total HBM capacity — UVM's demand
/// paging makes that *possible*, and this policy measures what it *costs*:
/// placement always spills to the least-committed device, and once that
/// device is past its own capacity the request's GPU stage is scaled by
/// `1 + thrash_penalty × overflow_ratio`, the serving-layer analogue of
/// the paper's UVM oversubscription cliff.
#[derive(Debug, Clone)]
pub struct UvmSpillover {
    /// Admitted committed-bytes ratio over total HBM capacity (≥ 1).
    pub oversubscription: f64,
    /// GPU-stage penalty slope per unit of device-level overflow.
    pub thrash_penalty: f64,
    /// The managed mode requests run in.
    pub mode: TransferMode,
}

impl Default for UvmSpillover {
    fn default() -> Self {
        UvmSpillover {
            oversubscription: 1.5,
            thrash_penalty: 4.0,
            mode: TransferMode::UvmPrefetchAsync,
        }
    }
}

impl AdmissionPolicy for UvmSpillover {
    fn admit(
        &self,
        _req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        _rng: &mut SimRng,
    ) -> Admission {
        let admitted = view.total_committed() + footprint;
        let limit = (view.total_capacity() as f64 * self.oversubscription) as u64;
        if admitted <= limit {
            Admission::Accept
        } else {
            Admission::Shed {
                reason: "oversubscription_limit",
            }
        }
    }
}

impl PlacementPolicy for UvmSpillover {
    fn place(
        &self,
        _req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        _rng: &mut SimRng,
    ) -> Placement {
        let device = view
            .devices
            .iter()
            .min_by_key(|d| (d.committed, d.index))
            .expect("fleet has at least one device")
            .index;
        let dev = &view.devices[device];
        let after = dev.committed + footprint;
        let overflow = (after as f64 / dev.capacity as f64 - 1.0).max(0.0);
        let mut p = Placement::clean(device, self.mode);
        p.gpu_scale = 1.0 + self.thrash_penalty * overflow;
        p
    }
}

impl ServingPolicy for UvmSpillover {
    fn name(&self) -> &'static str {
        "uvm_spillover"
    }
}

// ---------------------------------------------------------------------------
// ChaosFailover
// ---------------------------------------------------------------------------

/// Chaos-aware failover: placements fail at a seeded rate and the request
/// hops to the next healthy device, paying for the detour.
///
/// Devices are tried in load order (least committed first). Each attempt
/// fails independently with probability [`ChaosFailover::fault_rate`]
/// (drawn from the request's deterministic RNG). A failed attempt charges
/// the recovery policy's exponential backoff, and moving on to the next
/// device additionally charges the peer-link transfer of the request's
/// working set from the failed device — an NVLink-island hop is cheap, a
/// NUMA-remote hop is not. Devices whose recent attempts failed
/// [`ChaosFailover::quarantine_threshold`] times in a row are skipped
/// while any healthy device remains (the fleet resets the counter on the
/// next success). If every attempt fails, the final device retries once
/// more at full backoff and is forced through — shedding on chaos alone
/// would confound the latency comparison.
#[derive(Debug, Clone)]
pub struct ChaosFailover {
    /// Per-attempt placement failure probability, in `[0, 1)`.
    pub fault_rate: f64,
    /// Recovery costs (backoff schedule) charged per failed attempt.
    pub recovery: RecoveryPolicy,
    /// Consecutive failures after which a device is quarantined.
    pub quarantine_threshold: u32,
    /// Mode requests run in.
    pub mode: TransferMode,
}

impl Default for ChaosFailover {
    fn default() -> Self {
        ChaosFailover {
            fault_rate: 0.05,
            recovery: RecoveryPolicy::default(),
            quarantine_threshold: 3,
            mode: TransferMode::Async,
        }
    }
}

impl AdmissionPolicy for ChaosFailover {
    fn admit(
        &self,
        _req: &Request,
        _footprint: u64,
        _view: &FleetView<'_>,
        _rng: &mut SimRng,
    ) -> Admission {
        // Failover never sheds: the policy's whole point is to absorb
        // faults, and its cost shows up as latency, not lost requests.
        Admission::Accept
    }
}

impl PlacementPolicy for ChaosFailover {
    fn place(
        &self,
        _req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        rng: &mut SimRng,
    ) -> Placement {
        // Healthy devices in load order; quarantined ones — by failure
        // streak or by lifecycle state — only as a last resort (appended
        // so the walk still terminates fleet-wide).
        let sidelined = |d: &DeviceView| {
            d.consecutive_failures >= self.quarantine_threshold || !d.health.accepts_work()
        };
        let mut order: Vec<usize> = view
            .devices
            .iter()
            .filter(|d| !sidelined(d))
            .map(|d| d.index)
            .collect();
        let quarantined: Vec<usize> = view
            .devices
            .iter()
            .filter(|d| sidelined(d))
            .map(|d| d.index)
            .collect();
        order.extend(quarantined);
        order.sort_by_key(|&d| {
            let dev = &view.devices[d];
            (sidelined(dev), dev.committed, d)
        });

        let mut delay = Nanos::ZERO;
        let mut failed = Vec::new();
        for (attempt, &device) in order.iter().enumerate() {
            if let Some(&prev) = failed.last() {
                delay += view.topology.peer_transfer_time(prev, device, footprint);
            }
            if !rng.chance(self.fault_rate) {
                let mut p = Placement::clean(device, self.mode);
                p.queue_delay = delay;
                p.failed_devices = failed;
                return p;
            }
            delay += self.recovery.backoff(attempt as u32);
            failed.push(device);
        }
        // Everyone failed once: force the request through on the last
        // device after one more full-depth backoff.
        let device = *failed.last().expect("fleet has at least one device");
        failed.pop();
        delay += self.recovery.backoff(order.len() as u32);
        let mut p = Placement::clean(device, self.mode);
        p.queue_delay = delay;
        p.failed_devices = failed;
        p
    }
}

impl ServingPolicy for ChaosFailover {
    fn name(&self) -> &'static str {
        "chaos_failover"
    }
}

// ---------------------------------------------------------------------------
// ModeAdvisor
// ---------------------------------------------------------------------------

/// Advisor-driven placement: each request runs in the transfer mode the
/// static performance advisor (`hetsim_sanitizer::advise`, reached through
/// `hetsim::verify::advise_program`) predicts fastest for its workload ×
/// size on the paper's device model — no simulation, the prediction is
/// closed-form. Requests land on the least-committed device with room for
/// the working set, so the fleet is one shared pool with per-request mode
/// selection rather than static mode lanes.
///
/// Advice is memoized per `(workload, size)` behind a mutex; the cache is
/// a pure lookup table of a deterministic function, so placement decisions
/// remain a function of `(view, request)` alone.
pub struct ModeAdvisor {
    /// The device model predictions are priced against.
    pub device: hetsim_runtime::Device,
    cache: std::sync::Mutex<
        std::collections::HashMap<(&'static str, hetsim_workloads::InputSize), TransferMode>,
    >,
}

impl std::fmt::Debug for ModeAdvisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModeAdvisor")
            .field("device", &self.device.name)
            .finish_non_exhaustive()
    }
}

impl Default for ModeAdvisor {
    fn default() -> Self {
        ModeAdvisor {
            device: hetsim_runtime::Device::a100_epyc(),
            cache: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

impl ModeAdvisor {
    /// The advisor's predicted-fastest mode for the request's workload ×
    /// size, memoized. Unknown workload names (impossible for registry
    /// arrivals) fall back to the explicit standard mode.
    fn best_mode(&self, req: &Request) -> TransferMode {
        let key = (req.workload, req.size);
        if let Some(&mode) = self.cache.lock().expect("advice cache").get(&key) {
            return mode;
        }
        let mode = match hetsim_workloads::suite::by_name(req.workload, req.size) {
            Some(w) => hetsim::verify::advise_program(&w, &self.device).best().mode,
            None => TransferMode::Standard,
        };
        self.cache.lock().expect("advice cache").insert(key, mode);
        mode
    }

    /// Least-committed device that still fits `footprint` (ties break to
    /// the lowest index).
    fn fittest(&self, footprint: u64, view: &FleetView<'_>) -> Option<usize> {
        view.devices
            .iter()
            .filter(|d| d.committed + footprint <= d.capacity)
            .min_by_key(|d| (d.committed, d.index))
            .map(|d| d.index)
    }
}

impl AdmissionPolicy for ModeAdvisor {
    fn admit(
        &self,
        _req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        _rng: &mut SimRng,
    ) -> Admission {
        if self.fittest(footprint, view).is_some() {
            Admission::Accept
        } else {
            Admission::Shed {
                reason: "no_capacity",
            }
        }
    }
}

impl PlacementPolicy for ModeAdvisor {
    fn place(
        &self,
        req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        _rng: &mut SimRng,
    ) -> Placement {
        let device = self
            .fittest(footprint, view)
            .expect("place called without admission");
        Placement::clean(device, self.best_mode(req))
    }
}

impl ServingPolicy for ModeAdvisor {
    fn name(&self) -> &'static str {
        "mode_advisor"
    }
}

// ---------------------------------------------------------------------------
// SloDeadline
// ---------------------------------------------------------------------------

/// SLO-aware admission and deadline-driven placement.
///
/// Admission sheds by **predicted deadline miss**, not by capacity: a
/// request is accepted iff *some* `(device, ladder mode)` pair — healthy
/// device with HBM room, any rung of [`ModeCosts::LADDER`] — is
/// predicted (via [`predicted_completion`] over the memoized cost
/// estimates plus the device's current queue frontiers) to finish by the
/// request's deadline. A fleet with plenty of free HBM but a deep queue
/// honestly sheds, and one rung of the ladder making the deadline is
/// enough to admit.
///
/// Placement walks the ladder preferred-mode-first: for each rung it
/// picks the serving device with the earliest predicted completion, and
/// takes the first rung that makes the deadline — the *overload
/// degradation ladder*: under load a request degrades to a cheaper
/// transfer mode before the fleet gives up on it. If no rung makes it
/// (only possible when placement is driven without admission), the
/// request lands on the globally earliest-finishing pair anyway.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloDeadline;

impl SloDeadline {
    /// The earliest-finishing serving device for `stages`, among devices
    /// that admit work and fit `footprint`: `(device, predicted done)`.
    fn best_device(
        &self,
        footprint: u64,
        stages: JobStages,
        view: &FleetView<'_>,
    ) -> Option<(usize, Nanos)> {
        view.devices
            .iter()
            .filter(|d| d.health.accepts_work() && d.committed + footprint <= d.capacity)
            .map(|d| (d.index, predicted_completion(view.now, d, stages)))
            .min_by_key(|&(index, done)| (done, index))
    }
}

impl AdmissionPolicy for SloDeadline {
    fn admit(
        &self,
        req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        _rng: &mut SimRng,
    ) -> Admission {
        let mut any_device = false;
        for (_, stages) in view.costs.ladder() {
            if let Some((_, done)) = self.best_device(footprint, stages, view) {
                any_device = true;
                if done <= req.deadline {
                    return Admission::Accept;
                }
            }
        }
        if any_device {
            Admission::Shed {
                reason: "predicted_deadline_miss",
            }
        } else {
            Admission::Shed {
                reason: "no_capacity",
            }
        }
    }
}

impl PlacementPolicy for SloDeadline {
    fn place(
        &self,
        req: &Request,
        footprint: u64,
        view: &FleetView<'_>,
        _rng: &mut SimRng,
    ) -> Placement {
        let mut fallback: Option<(TransferMode, usize, Nanos)> = None;
        for (mode, stages) in view.costs.ladder() {
            if let Some((device, done)) = self.best_device(footprint, stages, view) {
                if done <= req.deadline {
                    return Placement::clean(device, mode);
                }
                if fallback.is_none_or(|(_, _, best)| done < best) {
                    fallback = Some((mode, device, done));
                }
            }
        }
        // Post-admission this is unreachable; standalone placement still
        // lands somewhere sensible instead of panicking.
        match fallback {
            Some((mode, device, _)) => Placement::clean(device, mode),
            None => {
                let device = view
                    .devices
                    .iter()
                    .min_by_key(|d| (d.committed, d.index))
                    .expect("fleet has at least one device")
                    .index;
                Placement::clean(device, ModeCosts::LADDER[ModeCosts::LADDER.len() - 1])
            }
        }
    }
}

impl ServingPolicy for SloDeadline {
    fn name(&self) -> &'static str {
        "slo_deadline"
    }
}

// ---------------------------------------------------------------------------
// PolicyKind
// ---------------------------------------------------------------------------

/// The shipped policies, by CLI name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`ModePacking`].
    ModePacking,
    /// [`UvmSpillover`].
    UvmSpillover,
    /// [`ChaosFailover`].
    ChaosFailover,
    /// [`ModeAdvisor`].
    ModeAdvisor,
    /// [`SloDeadline`].
    SloDeadline,
}

impl PolicyKind {
    /// All shipped policies, in canonical order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::ModePacking,
        PolicyKind::UvmSpillover,
        PolicyKind::ChaosFailover,
        PolicyKind::ModeAdvisor,
        PolicyKind::SloDeadline,
    ];

    /// The canonical CLI names, aligned with [`PolicyKind::ALL`].
    pub const NAMES: [&'static str; 5] = [
        "mode_packing",
        "uvm_spillover",
        "chaos_failover",
        "mode_advisor",
        "slo_deadline",
    ];

    /// Parses a CLI name.
    pub fn by_name(name: &str) -> Option<PolicyKind> {
        match name {
            "mode_packing" => Some(PolicyKind::ModePacking),
            "uvm_spillover" => Some(PolicyKind::UvmSpillover),
            "chaos_failover" => Some(PolicyKind::ChaosFailover),
            "mode_advisor" => Some(PolicyKind::ModeAdvisor),
            "slo_deadline" => Some(PolicyKind::SloDeadline),
            _ => None,
        }
    }

    /// The policy's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::ModePacking => "mode_packing",
            PolicyKind::UvmSpillover => "uvm_spillover",
            PolicyKind::ChaosFailover => "chaos_failover",
            PolicyKind::ModeAdvisor => "mode_advisor",
            PolicyKind::SloDeadline => "slo_deadline",
        }
    }

    /// Instantiates the policy with its default parameters.
    pub fn build(self) -> Box<dyn ServingPolicy> {
        match self {
            PolicyKind::ModePacking => Box::new(ModePacking::default()),
            PolicyKind::UvmSpillover => Box::new(UvmSpillover::default()),
            PolicyKind::ChaosFailover => Box::new(ChaosFailover::default()),
            PolicyKind::ModeAdvisor => Box::new(ModeAdvisor::default()),
            PolicyKind::SloDeadline => Box::new(SloDeadline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_workloads::InputSize;

    fn devices(n: usize, capacity: u64) -> Vec<DeviceView> {
        (0..n)
            .map(|index| DeviceView {
                index,
                cpu_free: Nanos::ZERO,
                gpu_free: Nanos::ZERO,
                committed: 0,
                capacity,
                inflight: 0,
                consecutive_failures: 0,
                health: HealthState::Healthy,
            })
            .collect()
    }

    fn req(id: u64) -> Request {
        Request {
            id,
            arrival: Nanos::ZERO,
            workload: "vector_seq",
            size: InputSize::Tiny,
            deadline: Nanos::from_millis(50),
        }
    }

    fn rng(id: u64) -> SimRng {
        SimRng::seed_from_parts(&["test.policy"], id)
    }

    #[test]
    fn mode_packing_routes_by_size_and_packs_best_fit() {
        let topo = ClusterTopology::nvlink_mesh(4);
        let mut devs = devices(4, 100);
        devs[0].committed = 40;
        devs[1].committed = 60;
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        let p = ModePacking {
            managed_threshold: 50,
            ..ModePacking::default()
        };
        // Small request: explicit lane {0,1}; best fit is device 1 (more
        // committed, still fits 30).
        let placed = p.place(&req(0), 30, &view, &mut rng(0));
        assert_eq!(placed.device, 1);
        assert_eq!(placed.mode, TransferMode::Async);
        // Large request: managed lane {2,3}, both empty -> best-fit
        // tie-break picks the lowest index.
        let placed = p.place(&req(1), 60, &view, &mut rng(1));
        assert_eq!(placed.device, 2);
        assert_eq!(placed.mode, TransferMode::UvmPrefetchAsync);
    }

    #[test]
    fn mode_packing_sheds_when_lane_is_full() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let mut devs = devices(2, 100);
        devs[0].committed = 95; // explicit lane = {0}
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        let p = ModePacking {
            managed_threshold: 50,
            ..ModePacking::default()
        };
        assert_eq!(
            p.admit(&req(0), 10, &view, &mut rng(0)),
            Admission::Shed {
                reason: "lane_full"
            }
        );
        // The managed lane {1} still has room for a big request.
        assert_eq!(p.admit(&req(1), 60, &view, &mut rng(1)), Admission::Accept);
    }

    #[test]
    fn single_device_fleet_serves_both_lanes() {
        let topo = ClusterTopology::single();
        let devs = devices(1, 100);
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        let p = ModePacking {
            managed_threshold: 50,
            ..ModePacking::default()
        };
        assert_eq!(p.place(&req(0), 10, &view, &mut rng(0)).device, 0);
        assert_eq!(p.place(&req(1), 90, &view, &mut rng(1)).device, 0);
    }

    #[test]
    fn spillover_admits_past_capacity_then_sheds() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let mut devs = devices(2, 100);
        let p = UvmSpillover {
            oversubscription: 1.5,
            ..UvmSpillover::default()
        };
        devs[0].committed = 150;
        devs[1].committed = 100;
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        // 250 committed of 200 capacity: below the 300 limit.
        assert_eq!(p.admit(&req(0), 40, &view, &mut rng(0)), Admission::Accept);
        assert_eq!(
            p.admit(&req(1), 60, &view, &mut rng(1)),
            Admission::Shed {
                reason: "oversubscription_limit"
            }
        );
    }

    #[test]
    fn spillover_places_least_loaded_and_charges_thrash() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let mut devs = devices(2, 100);
        devs[0].committed = 120;
        devs[1].committed = 80;
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        let p = UvmSpillover {
            thrash_penalty: 4.0,
            ..UvmSpillover::default()
        };
        let placed = p.place(&req(0), 40, &view, &mut rng(0));
        assert_eq!(placed.device, 1, "least committed wins");
        // Device 1 lands at 120 of 100: overflow 0.2 -> scale 1.8.
        assert!((placed.gpu_scale - 1.8).abs() < 1e-9);
        // An in-capacity placement carries no penalty.
        let mut fits = devices(2, 100);
        fits[0].committed = 50;
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &fits,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        assert_eq!(p.place(&req(1), 10, &view, &mut rng(1)).gpu_scale, 1.0);
    }

    #[test]
    fn failover_is_deterministic_and_pays_for_hops() {
        let topo = ClusterTopology::nvlink_mesh(4);
        let devs = devices(4, 100);
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        let p = ChaosFailover {
            fault_rate: 0.9, // almost always hop
            ..ChaosFailover::default()
        };
        let a = p.place(&req(7), 1 << 20, &view, &mut rng(7));
        let b = p.place(&req(7), 1 << 20, &view, &mut rng(7));
        assert_eq!(a, b, "same request seed, same decision");
        if !a.failed_devices.is_empty() {
            assert!(a.queue_delay > Nanos::ZERO, "hops must cost backoff");
        }
    }

    #[test]
    fn failover_skips_quarantined_devices() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let mut devs = devices(2, 100);
        devs[0].consecutive_failures = 5; // quarantined
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        let p = ChaosFailover {
            fault_rate: 0.0, // first healthy attempt succeeds
            ..ChaosFailover::default()
        };
        let placed = p.place(&req(0), 1 << 20, &view, &mut rng(0));
        assert_eq!(placed.device, 1, "healthy device preferred");
        assert!(placed.failed_devices.is_empty());
        assert_eq!(placed.queue_delay, Nanos::ZERO);
    }

    #[test]
    fn failover_forces_through_when_everything_fails() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let devs = devices(2, 100);
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        let p = ChaosFailover {
            fault_rate: 1.0,
            ..ChaosFailover::default()
        };
        let placed = p.place(&req(3), 1 << 20, &view, &mut rng(3));
        assert!(placed.device < 2);
        assert!(placed.queue_delay > Nanos::ZERO);
        assert_eq!(
            p.admit(&req(3), 1 << 20, &view, &mut rng(3)),
            Admission::Accept,
            "failover never sheds"
        );
    }

    #[test]
    fn mode_advisor_places_predicted_best_mode_on_least_loaded_fit() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let mut devs = devices(2, 100 << 20);
        devs[0].committed = 50 << 20;
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        let p = ModeAdvisor::default();
        let r = req(0); // vector_seq @ tiny
        let placed = p.place(&r, 1 << 20, &view, &mut rng(0));
        assert_eq!(placed.device, 1, "least committed wins");
        assert_eq!(placed.queue_delay, Nanos::ZERO);
        assert_eq!(placed.gpu_scale, 1.0);
        // The mode is the advisor's pick for this workload, and the
        // memoized second call agrees.
        let w = hetsim_workloads::suite::by_name(r.workload, r.size).unwrap();
        let advised = hetsim::verify::advise_program(&w, &p.device).best().mode;
        assert_eq!(placed.mode, advised);
        let again = p.place(&r, 1 << 20, &view, &mut rng(0));
        assert_eq!(again.mode, advised);
        // Nothing fits: shed, not panic.
        assert_eq!(
            p.admit(&r, 200 << 20, &view, &mut rng(0)),
            Admission::Shed {
                reason: "no_capacity"
            }
        );
    }

    #[test]
    fn failover_sidelines_lifecycle_quarantined_devices() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let mut devs = devices(2, 100);
        devs[0].health = HealthState::Draining;
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs: ModeCosts::zero(),
        };
        let p = ChaosFailover {
            fault_rate: 0.0,
            ..ChaosFailover::default()
        };
        let placed = p.place(&req(0), 1 << 20, &view, &mut rng(0));
        assert_eq!(placed.device, 1, "non-admitting device goes to the back");
    }

    #[test]
    fn slo_deadline_sheds_predicted_misses() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let mut devs = devices(2, 100);
        // Both devices' GPU queues drain long after the 50 ms deadline.
        for d in &mut devs {
            d.gpu_free = Nanos::from_millis(100);
        }
        let costs = ModeCosts::from_fn(|_| JobStages {
            cpu: Nanos::from_micros(10),
            gpu: Nanos::from_micros(10),
        });
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs,
        };
        let p = SloDeadline;
        assert_eq!(
            p.admit(&req(0), 10, &view, &mut rng(0)),
            Admission::Shed {
                reason: "predicted_deadline_miss"
            }
        );
        // An idle fleet admits and places in the preferred rung.
        let idle = devices(2, 100);
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &idle,
            topology: &topo,
            costs,
        };
        assert_eq!(p.admit(&req(1), 10, &view, &mut rng(1)), Admission::Accept);
        let placed = p.place(&req(1), 10, &view, &mut rng(1));
        assert_eq!(placed.mode, ModeCosts::LADDER[0]);
        assert_eq!(placed.gpu_scale, 1.0);
    }

    #[test]
    fn slo_deadline_walks_the_ladder_before_shedding() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let devs = devices(2, 100);
        // The preferred rungs blow the deadline; standard makes it.
        let costs = ModeCosts::from_fn(|mode| JobStages {
            cpu: Nanos::ZERO,
            gpu: if mode == TransferMode::Standard {
                Nanos::from_millis(1)
            } else {
                Nanos::from_millis(100)
            },
        });
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs,
        };
        let p = SloDeadline;
        assert_eq!(p.admit(&req(0), 10, &view, &mut rng(0)), Admission::Accept);
        let placed = p.place(&req(0), 10, &view, &mut rng(0));
        assert_eq!(
            placed.mode,
            TransferMode::Standard,
            "the ladder walks down to the rung that makes the deadline"
        );
    }

    #[test]
    fn slo_deadline_ignores_devices_that_refuse_work() {
        let topo = ClusterTopology::nvlink_mesh(2);
        let mut devs = devices(2, 100);
        devs[0].health = HealthState::Quarantined;
        let costs = ModeCosts::from_fn(|_| JobStages {
            cpu: Nanos::ZERO,
            gpu: Nanos::from_micros(1),
        });
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs,
        };
        let p = SloDeadline;
        assert_eq!(p.admit(&req(0), 10, &view, &mut rng(0)), Admission::Accept);
        let placed = p.place(&req(0), 10, &view, &mut rng(0));
        assert_eq!(placed.device, 1, "quarantined device skipped");
        // No device admits work at all: shed by capacity, not deadline.
        devs[1].health = HealthState::Draining;
        let view = FleetView {
            now: Nanos::ZERO,
            devices: &devs,
            topology: &topo,
            costs,
        };
        assert_eq!(
            p.admit(&req(1), 10, &view, &mut rng(1)),
            Admission::Shed {
                reason: "no_capacity"
            }
        );
    }

    #[test]
    fn policy_kind_round_trips() {
        for (kind, name) in PolicyKind::ALL.iter().zip(PolicyKind::NAMES) {
            assert_eq!(kind.name(), name);
            assert_eq!(PolicyKind::by_name(name), Some(*kind));
            assert_eq!(kind.build().name(), name);
        }
        assert!(PolicyKind::by_name("round_robin").is_none());
    }
}
