//! Fleet resilience: fault-aware serving runs and availability curves.
//!
//! This module ties the chaos crate's device-lifecycle model
//! ([`FleetFaultPlan`] / `HealthTimeline`) to the serving loop. A
//! [`ResilienceConfig`] arms one serving cell with a fault plan, an SLO
//! budget (every request's deadline is its arrival plus the budget), a
//! retry/backoff policy, and optionally hedging; an [`AvailabilitySweep`]
//! then walks a `(policy × rate × fault intensity)` grid and reports the
//! curves a capacity planner reads — goodput, SLO attainment, and tail
//! latency as the fault intensity rises.
//!
//! # Separability, fleet-scale
//!
//! The chaos crate's core invariant carries over: every cost the
//! resilience layer adds (retry backoff, abandoned partial work,
//! re-staging transfers, degraded-service slowdown) is charged into a
//! `ChaosOverhead` ledger on the report, *additively*. At intensity zero
//! the lifecycle timeline is empty, the resilient code path performs no
//! extra arithmetic and draws no extra randomness, and the run is
//! **byte-identical** to the fault-free [`Fleet::serve`] — the property
//! `tests/serve_resilience.rs` pins across seeds and policies.
//!
//! # Determinism
//!
//! The grid fans across `hetsim::pool` and is assembled in grid order
//! (policy-major, then rate, then intensity), so tables and JSON are
//! byte-identical at any `HETSIM_THREADS` — the CI serve-resilience gate
//! compares the rendered report at 1 and 4 threads.

use crate::arrival::{ArrivalMix, ArrivalPlan};
use crate::fleet::{Fleet, ServeConfig};
use crate::metrics::{PolicyReport, ServeReport};
use crate::policy::PolicyKind;
use hetsim::pool;
use hetsim_counters::report::Table;
use hetsim_engine::time::Nanos;
use hetsim_runtime::{FleetFaultPlan, RecoveryPolicy};

/// Everything a resilient serving run needs beyond the base
/// [`ServeConfig`]: what goes wrong, how long each request may take, and
/// what the fleet does about failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// The device-lifecycle fault plan (seed, intensity, episode shape).
    pub plan: FleetFaultPlan,
    /// Per-request SLO budget: `deadline = arrival + slo_budget`.
    pub slo_budget: Nanos,
    /// Retry/backoff policy for placement attempts that land on a device
    /// about to quarantine.
    pub recovery: RecoveryPolicy,
    /// Whether to hedge: move work off a degraded primary onto a healthy
    /// peer when the remaining deadline budget still covers re-staging.
    pub hedging: bool,
}

impl ResilienceConfig {
    /// A config armed at `intensity` with default budget, recovery, and
    /// hedging (the sweep's per-cell construction).
    pub fn at_intensity(seed: u64, intensity: f64) -> ResilienceConfig {
        ResilienceConfig {
            plan: FleetFaultPlan::at_intensity(seed, intensity),
            ..ResilienceConfig::default()
        }
    }
}

impl Default for ResilienceConfig {
    /// Faults off, the default 50 ms SLO budget, default recovery,
    /// hedging enabled.
    fn default() -> Self {
        ResilienceConfig {
            plan: FleetFaultPlan::off(0),
            slo_budget: ArrivalPlan::DEFAULT_SLO_BUDGET,
            recovery: RecoveryPolicy::default(),
            hedging: true,
        }
    }
}

/// A `(policy × rate × fault intensity)` grid over one fleet — the
/// resilience analogue of [`crate::fleet::ServeSweep`].
#[derive(Debug, Clone)]
pub struct AvailabilitySweep {
    /// Policies, in report order.
    pub policies: Vec<PolicyKind>,
    /// Base arrival rates (requests per second), in report order.
    pub rates: Vec<f64>,
    /// Fault intensities in `[0, 1]`, in report order. Zero is the
    /// fault-free control row.
    pub intensities: Vec<f64>,
    /// Mix name (`poisson`, `bursty`, `diurnal`).
    pub mix: String,
    /// Base seed (arrivals, noise, policy draws, and the fault plan all
    /// derive from it).
    pub seed: u64,
    /// Offered requests per cell.
    pub requests: u64,
    /// Per-request SLO budget shared by every cell.
    pub slo_budget: Nanos,
}

impl AvailabilitySweep {
    /// The default intensity ramp (`--chaos` without `--intensities`).
    pub const DEFAULT_INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];

    /// Runs every `(policy, rate, intensity)` cell on `fleet` and
    /// collects the availability report. Cells are independent, so they
    /// fan out through `hetsim::pool`; results assemble in grid order
    /// (policy-major, rate next, intensity innermost), which keeps the
    /// report identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any list is empty, the mix name is unknown, or an
    /// intensity yields an invalid [`FleetFaultPlan`].
    pub fn run(&self, fleet: &Fleet) -> AvailabilityReport {
        assert!(!self.policies.is_empty(), "sweep needs at least one policy");
        assert!(!self.rates.is_empty(), "sweep needs at least one rate");
        assert!(
            !self.intensities.is_empty(),
            "sweep needs at least one intensity"
        );
        assert!(
            ArrivalMix::by_name(&self.mix, 1.0).is_some(),
            "unknown mix {:?}",
            self.mix
        );
        for &x in &self.intensities {
            FleetFaultPlan::at_intensity(self.seed, x)
                .validate()
                .expect("intensity yields a valid fault plan");
        }
        let grid: Vec<(PolicyKind, f64, f64)> = self
            .policies
            .iter()
            .flat_map(|&p| {
                self.rates
                    .iter()
                    .flat_map(move |&r| self.intensities.iter().map(move |&x| (p, r, x)))
            })
            .collect();
        let cells = pool::run(grid.len(), |i| {
            let (policy, rate, intensity) = grid[i];
            let mix = ArrivalMix::by_name(&self.mix, rate).expect("mix validated above");
            let res = ResilienceConfig {
                plan: FleetFaultPlan::at_intensity(self.seed, intensity),
                slo_budget: self.slo_budget,
                ..ResilienceConfig::default()
            };
            let out = fleet.serve_resilient(
                &ServeConfig {
                    policy,
                    mix,
                    seed: self.seed,
                    requests: self.requests,
                },
                &res,
            );
            AvailabilityCell {
                intensity,
                report: out.report,
            }
        });
        AvailabilityReport { cells }
    }
}

/// One `(policy, rate, intensity)` cell of an availability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityCell {
    /// The cell's fault intensity.
    pub intensity: f64,
    /// The cell's serving report (goodput, SLO attainment, tails,
    /// recovery ledger).
    pub report: PolicyReport,
}

/// The collected availability curves: the serving report columns with an
/// `intensity` column prepended.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// The cells, in deterministic (policy, rate, intensity) grid order.
    pub cells: Vec<AvailabilityCell>,
}

impl AvailabilityReport {
    /// One summary row per cell: `intensity` plus the shared serving
    /// columns.
    pub fn to_table(&self) -> Table {
        let mut cols = vec!["intensity"];
        cols.extend_from_slice(&ServeReport::COLUMNS);
        let mut t = Table::new(cols);
        for c in &self.cells {
            let mut row = vec![format!("{:.2}", c.intensity)];
            row.extend(c.report.table_row());
            t.row(row);
        }
        t
    }

    /// The whole report as pretty-printed JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"intensity\": {:.4}, \"report\": {}}}",
                c.intensity,
                c.report.to_json_value()
            ));
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim_workloads::InputSize;

    fn sweep() -> AvailabilitySweep {
        AvailabilitySweep {
            policies: vec![PolicyKind::ModePacking, PolicyKind::SloDeadline],
            rates: vec![200.0],
            intensities: vec![0.0, 1.0],
            mix: "poisson".into(),
            seed: 9,
            requests: 16,
            slo_budget: ArrivalPlan::DEFAULT_SLO_BUDGET,
        }
    }

    #[test]
    fn grid_is_policy_major_intensity_minor() {
        let fleet = Fleet::nvlink(2, InputSize::Tiny);
        let report = sweep().run(&fleet);
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.cells[0].report.policy, "mode_packing");
        assert_eq!(report.cells[0].intensity, 0.0);
        assert_eq!(report.cells[1].report.policy, "mode_packing");
        assert_eq!(report.cells[1].intensity, 1.0);
        assert_eq!(report.cells[2].report.policy, "slo_deadline");
        assert_eq!(report.to_table().len(), 4);
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let fleet = Fleet::nvlink(2, InputSize::Tiny);
        let s = sweep();
        let run = || s.run(&fleet).to_json();
        let one = pool::with_threads(1, run);
        let four = pool::with_threads(4, run);
        assert_eq!(one, four, "availability report must be byte-identical");
    }

    #[test]
    #[should_panic(expected = "at least one intensity")]
    fn empty_intensities_rejected() {
        let fleet = Fleet::nvlink(1, InputSize::Tiny);
        let mut s = sweep();
        s.intensities.clear();
        let _ = s.run(&fleet);
    }
}
