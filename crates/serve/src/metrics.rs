//! Serving metrics: latency percentiles, goodput, per-device utilization.
//!
//! The serving layer reports what a service owner watches, not what a
//! benchmark prints: **p50/p99/p999 latency** over completed requests
//! (arrival to GPU-stage completion, queueing included), **goodput**
//! (completed requests per second of simulated horizon — shed requests
//! don't count), and **per-device utilization** (GPU-busy fraction of the
//! horizon, which exposes the imbalance a placement policy creates).
//!
//! Percentiles are *exact* sample quantiles — sorted samples with linear
//! interpolation between ranks, the same estimator as
//! `hetsim_engine::stats::Summary::percentile` — not a streaming sketch.
//! A serving simulation holds every latency in memory anyway, and exact
//! quantiles keep reports byte-reproducible, which a randomized sketch
//! would forfeit.

use hetsim_counters::report::Table;
use hetsim_engine::time::Nanos;

/// Exact sample quantiles over a latency population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: Nanos,
    /// Median (p50).
    pub p50: Nanos,
    /// 99th percentile.
    pub p99: Nanos,
    /// 99.9th percentile.
    pub p999: Nanos,
    /// Worst observed latency.
    pub max: Nanos,
}

impl LatencyStats {
    /// Computes the stats from unsorted latency samples. Returns an
    /// all-zero record for an empty population (an all-shed cell).
    pub fn from_samples(samples: &[Nanos]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats {
                count: 0,
                mean: Nanos::ZERO,
                p50: Nanos::ZERO,
                p99: Nanos::ZERO,
                p999: Nanos::ZERO,
                max: Nanos::ZERO,
            };
        }
        let mut sorted: Vec<u64> = samples.iter().map(|n| n.as_nanos()).collect();
        sorted.sort_unstable();
        let sum: u64 = sorted.iter().sum();
        LatencyStats {
            count: sorted.len(),
            mean: Nanos::from_nanos(sum / sorted.len() as u64),
            p50: percentile(&sorted, 50.0),
            p99: percentile(&sorted, 99.0),
            p999: percentile(&sorted, 99.9),
            max: Nanos::from_nanos(*sorted.last().expect("non-empty")),
        }
    }
}

/// Exact linear-interpolated percentile over an already-sorted sample
/// array (ascending), `p` in `[0, 100]`.
///
/// Rank convention matches `Summary::percentile`: rank
/// `p/100 × (n-1)` interpolated between the two straddling samples, so
/// `p=0` is the minimum and `p=100` the maximum. The interpolation is
/// done in integer-free `f64` and rounded to the nearest nanosecond.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile(sorted: &[u64], p: f64) -> Nanos {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile out of [0,100]");
    if sorted.len() == 1 {
        return Nanos::from_nanos(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let v = sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac;
    Nanos::from_nanos(v.round() as u64)
}

/// One device's share of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceUtilization {
    /// Stable device label (`gpu0`, `gpu1`, …).
    pub device: String,
    /// Requests completed on the device.
    pub completed: usize,
    /// GPU-busy time.
    pub busy: Nanos,
    /// GPU-busy fraction of the fleet horizon, in `[0, 1]`.
    pub utilization: f64,
    /// Peak committed working-set bytes observed on the device.
    pub peak_committed: u64,
}

/// The serving report for one `(policy, mix, rate)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// Policy name.
    pub policy: String,
    /// Arrival mix name.
    pub mix: String,
    /// Requested base arrival rate, requests per second.
    pub rate_rps: f64,
    /// Base seed.
    pub seed: u64,
    /// Requests offered by the arrival plan.
    pub offered: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Failed placement attempts absorbed by failover.
    pub failovers: usize,
    /// End of the simulated schedule (last GPU-stage completion).
    pub horizon: Nanos,
    /// Completed requests per second of horizon.
    pub goodput_rps: f64,
    /// Latency over completed requests (arrival → completion).
    pub latency: LatencyStats,
    /// Per-device breakdown, in device-index order.
    pub per_device: Vec<DeviceUtilization>,
}

impl PolicyReport {
    /// The summary row of this cell (shared column layout with
    /// [`ServeReport::to_table`]).
    fn table_row(&self) -> Vec<String> {
        vec![
            self.policy.clone(),
            self.mix.clone(),
            format!("{:.1}", self.rate_rps),
            self.offered.to_string(),
            self.completed.to_string(),
            self.shed.to_string(),
            self.failovers.to_string(),
            format!("{:.3}", self.latency.p50.as_millis_f64()),
            format!("{:.3}", self.latency.p99.as_millis_f64()),
            format!("{:.3}", self.latency.p999.as_millis_f64()),
            format!("{:.2}", self.goodput_rps),
            self.per_device
                .iter()
                .map(|d| format!("{:.2}", d.utilization))
                .collect::<Vec<_>>()
                .join("/"),
        ]
    }

    /// Renders the cell as a two-part table: the summary row plus one row
    /// per device.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(ServeReport::COLUMNS.to_vec());
        t.row(self.table_row());
        t
    }

    /// Per-device breakdown table.
    pub fn device_table(&self) -> Table {
        let mut t = Table::new(vec![
            "device",
            "completed",
            "busy_ms",
            "utilization",
            "peak_committed_mb",
        ]);
        for d in &self.per_device {
            t.row(vec![
                d.device.clone(),
                d.completed.to_string(),
                format!("{:.3}", d.busy.as_millis_f64()),
                format!("{:.4}", d.utilization),
                format!("{:.1}", d.peak_committed as f64 / (1 << 20) as f64),
            ]);
        }
        t
    }

    /// The cell as one JSON object (no trailing newline).
    pub fn to_json_value(&self) -> String {
        let devices: Vec<String> = self
            .per_device
            .iter()
            .map(|d| {
                format!(
                    "{{\"device\": {}, \"completed\": {}, \"busy_ns\": {}, \
                     \"utilization\": {:.6}, \"peak_committed_bytes\": {}}}",
                    json_string(&d.device),
                    d.completed,
                    d.busy.as_nanos(),
                    d.utilization,
                    d.peak_committed,
                )
            })
            .collect();
        format!(
            "{{\"policy\": {}, \"mix\": {}, \"rate_rps\": {:.4}, \"seed\": {}, \
             \"offered\": {}, \"completed\": {}, \"shed\": {}, \"failovers\": {}, \
             \"horizon_ns\": {}, \"goodput_rps\": {:.6}, \
             \"latency\": {{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}, \
             \"devices\": [{}]}}",
            json_string(&self.policy),
            json_string(&self.mix),
            self.rate_rps,
            self.seed,
            self.offered,
            self.completed,
            self.shed,
            self.failovers,
            self.horizon.as_nanos(),
            self.goodput_rps,
            self.latency.count,
            self.latency.mean.as_nanos(),
            self.latency.p50.as_nanos(),
            self.latency.p99.as_nanos(),
            self.latency.p999.as_nanos(),
            self.latency.max.as_nanos(),
            devices.join(", "),
        )
    }
}

/// A collection of cells — one serving run or a (policy × rate) sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The cells, in deterministic (policy, rate) grid order.
    pub cells: Vec<PolicyReport>,
}

impl ServeReport {
    /// The shared summary-table column layout.
    pub const COLUMNS: [&'static str; 12] = [
        "policy",
        "mix",
        "rate_rps",
        "offered",
        "completed",
        "shed",
        "failovers",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "goodput_rps",
        "util_per_gpu",
    ];

    /// One summary row per cell.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(ServeReport::COLUMNS.to_vec());
        for c in &self.cells {
            t.row(c.table_row());
        }
        t
    }

    /// The whole report as pretty-printed JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&c.to_json_value());
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string quoting (policy/mix/device names are printable
/// ASCII, but quotes and backslashes must still escape).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(vals: &[u64]) -> Vec<Nanos> {
        vals.iter().copied().map(Nanos::from_nanos).collect()
    }

    #[test]
    fn percentiles_exact_on_uniform_ramp() {
        // 0, 1, ..., 100: pXX lands exactly on sample XX.
        let sorted: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile(&sorted, 0.0).as_nanos(), 0);
        assert_eq!(percentile(&sorted, 50.0).as_nanos(), 50);
        assert_eq!(percentile(&sorted, 99.0).as_nanos(), 99);
        assert_eq!(percentile(&sorted, 100.0).as_nanos(), 100);
        // p99.9 interpolates between 99 and 100: 99.9.
        assert_eq!(percentile(&sorted, 99.9).as_nanos(), 100);
    }

    #[test]
    fn percentiles_interpolate_between_ranks() {
        let sorted = vec![10, 20, 30, 40];
        // rank(50) = 1.5 -> midway between 20 and 30.
        assert_eq!(percentile(&sorted, 50.0).as_nanos(), 25);
        // rank(75) = 2.25 -> 30 + 0.25 * 10 = 32.5, rounds to 33 (ties
        // away from zero in f64::round).
        assert_eq!(percentile(&sorted, 75.0).as_nanos(), 33);
    }

    #[test]
    fn percentile_matches_engine_summary() {
        use hetsim_engine::stats::Summary;
        let samples: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 97, 11];
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let summary = Summary::from_samples(&samples.iter().map(|&v| v as f64).collect::<Vec<_>>());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let got = percentile(&sorted, p).as_nanos();
            let want = summary.percentile(p).round() as u64;
            assert_eq!(got, want, "p{p}");
        }
    }

    #[test]
    fn singleton_and_constant_distributions() {
        assert_eq!(percentile(&[42], 99.9).as_nanos(), 42);
        let constant = vec![7u64; 1000];
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(percentile(&constant, p).as_nanos(), 7, "p{p}");
        }
    }

    #[test]
    fn stats_from_samples_known_values() {
        let s = LatencyStats::from_samples(&ns(&(1..=1000).collect::<Vec<u64>>()));
        assert_eq!(s.count, 1000);
        assert_eq!(s.mean.as_nanos(), 500); // integer mean of 500.5
                                            // p50 rank is 499.5: midway between samples 500 and 501 -> 500.5,
                                            // rounded half-away-from-zero to 501.
        assert_eq!(s.p50.as_nanos(), 501);
        assert_eq!(s.max.as_nanos(), 1000);
    }

    #[test]
    fn empty_population_is_all_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p999, Nanos::ZERO);
        assert_eq!(s.max, Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of [0,100]")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1], 101.0);
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    fn sample_report() -> PolicyReport {
        PolicyReport {
            policy: "mode_packing".into(),
            mix: "poisson".into(),
            rate_rps: 100.0,
            seed: 42,
            offered: 10,
            completed: 9,
            shed: 1,
            failovers: 0,
            horizon: Nanos::from_millis(100),
            goodput_rps: 90.0,
            latency: LatencyStats::from_samples(&ns(&[1_000_000, 2_000_000, 3_000_000])),
            per_device: vec![DeviceUtilization {
                device: "gpu0".into(),
                completed: 9,
                busy: Nanos::from_millis(60),
                utilization: 0.6,
                peak_committed: 1 << 20,
            }],
        }
    }

    #[test]
    fn tables_have_expected_shape() {
        let cell = sample_report();
        let report = ServeReport {
            cells: vec![cell.clone(), cell.clone()],
        };
        assert_eq!(report.to_table().len(), 2);
        assert_eq!(cell.to_table().len(), 1);
        assert_eq!(cell.device_table().len(), 1);
        let csv = report.to_table().to_csv();
        assert!(csv.starts_with("policy,mix,rate_rps"));
        assert!(csv.contains("mode_packing"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let report = ServeReport {
            cells: vec![sample_report()],
        };
        let json = report.to_json();
        assert!(json.contains("\"policy\": \"mode_packing\""));
        assert!(json.contains("\"p999_ns\""));
        assert!(json.contains("\"devices\": ["));
        assert!(json.ends_with("]\n}\n"));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in a zero-dep crate).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "{open}{close} balance");
        }
    }
}
