//! Serving metrics: latency percentiles, goodput, per-device utilization.
//!
//! The serving layer reports what a service owner watches, not what a
//! benchmark prints: **p50/p99/p999 latency** over completed requests
//! (arrival to GPU-stage completion, queueing included), **goodput**
//! (completed requests per second of simulated horizon — shed requests
//! don't count), and **per-device utilization** (GPU-busy fraction of the
//! horizon, which exposes the imbalance a placement policy creates).
//!
//! # Two quantile regimes
//!
//! Small runs use *exact* sample quantiles — sorted samples with linear
//! interpolation between ranks, the same estimator as
//! `hetsim_engine::stats::Summary::percentile`. Fleet-scale runs cannot
//! buffer and sort millions of latencies, so [`LatencyAccumulator`]
//! switches to a fixed-memory [`StreamingHistogram`] once a run outgrows
//! [`LatencyAccumulator::EXACT_LIMIT`] samples: an HDR-style
//! logarithmic-bucket histogram (128 sub-buckets per power of two) whose
//! quantiles are within a *guaranteed* relative error bound of the exact
//! oracle ([`StreamingHistogram::RELATIVE_ERROR_BOUND`], 1/256 ≈ 0.4%).
//! Count, mean, and max stay exact in both regimes.
//!
//! The histogram is a deterministic, order-insensitive function of the
//! sample multiset — no randomization, no merge order — so reports remain
//! byte-reproducible at any thread count, which a randomized sketch
//! (t-digest) would forfeit. The exact path doubles as the test oracle:
//! `tests/streaming_estimator.rs` pins the error bound across all arrival
//! mixes.

use hetsim_counters::report::Table;
use hetsim_engine::time::Nanos;
use hetsim_runtime::ChaosOverhead;

/// Number of sub-bucket bits per power of two in [`StreamingHistogram`]:
/// 128 sub-buckets per octave.
const SUB_BITS: u32 = 7;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: values below
/// `2 * SUBS` get one bucket each (exact), every octave above contributes
/// `SUBS` buckets.
const BUCKETS: usize = (63 - SUB_BITS as usize + 2) * SUBS;

/// A fixed-memory logarithmic histogram over `u64` nanosecond samples.
///
/// Values below 256 are binned exactly; larger values share a bucket with
/// at most a `1/128` relative spread, so reporting a bucket's midpoint is
/// off by at most [`StreamingHistogram::RELATIVE_ERROR_BOUND`] of the true
/// sample. Memory is a constant ~58 KiB regardless of sample count, and
/// every observation is O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl StreamingHistogram {
    /// Guaranteed relative error of any reported quantile against the
    /// exact sample quantile: a bucket's midpoint is within `1/256` of
    /// every sample the bucket holds, and interpolation between bucket
    /// midpoints preserves the bound (plus ≤ 1 ns of integer rounding).
    pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / 256.0;

    /// An empty histogram.
    pub fn new() -> Self {
        StreamingHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample. O(1).
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact integer mean (sum / count); zero when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// Exact maximum observed; zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Estimated quantile with the exact path's rank convention
    /// (`p/100 × (n-1)`, linear interpolation between the straddling
    /// ranks' bucket midpoints).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is outside `[0, 100]`.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!(self.count > 0, "quantile of an empty histogram");
        assert!((0.0..=100.0).contains(&p), "percentile out of [0,100]");
        if self.count == 1 {
            // A single sample may still be mid-bucket; max is exact.
            return self.max;
        }
        let rank = p / 100.0 * (self.count - 1) as f64;
        let lo = rank.floor() as u64;
        let hi = rank.ceil() as u64;
        let frac = rank - lo as f64;
        let (a, b) = self.values_at_ranks(lo, hi);
        let v = a as f64 * (1.0 - frac) + b as f64 * frac;
        v.round() as u64
    }

    /// Bucket-midpoint values at two 0-based ranks (`lo <= hi`), found in
    /// one cumulative walk. The top rank reports the exact max.
    fn values_at_ranks(&self, lo: u64, hi: u64) -> (u64, u64) {
        let exact_top = |rank: u64, mid: u64| -> u64 {
            // The greatest rank is the greatest sample: exact.
            if rank == self.count - 1 {
                self.max
            } else {
                mid
            }
        };
        let mut cum = 0u64;
        let mut first = None;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if first.is_none() && cum > lo {
                first = Some(exact_top(lo, bucket_mid(i)));
            }
            if cum > hi {
                let a = first.expect("lo <= hi implies lo found by now");
                return (a, exact_top(hi, bucket_mid(i)));
            }
        }
        unreachable!("ranks are below the total count");
    }
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        StreamingHistogram::new()
    }
}

/// Bucket index of a value: identity below `2 * SUBS`, then
/// `SUBS` log-spaced buckets per octave.
fn bucket_index(v: u64) -> usize {
    if v < (2 * SUBS) as u64 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let shift = top - SUB_BITS;
        shift as usize * SUBS + (v >> shift) as usize
    }
}

/// Midpoint of a bucket (inverse of [`bucket_index`] up to the bucket's
/// width).
fn bucket_mid(index: usize) -> u64 {
    if index < 2 * SUBS {
        index as u64
    } else {
        let shift = (index / SUBS - 1) as u32;
        let q = (index - shift as usize * SUBS) as u64;
        (q << shift) + (1u64 << shift) / 2
    }
}

/// Streaming latency accounting: exact below
/// [`LatencyAccumulator::EXACT_LIMIT`] samples, fixed-memory
/// [`StreamingHistogram`] beyond. Feeding samples in any order yields the
/// same [`LatencyStats`] for the same multiset, and a run that stays small
/// is *byte-identical* to [`LatencyStats::from_samples`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyAccumulator {
    exact: Vec<Nanos>,
    hist: Option<StreamingHistogram>,
}

impl LatencyAccumulator {
    /// Largest population kept exact. Past this, samples stream into the
    /// histogram and memory stays constant.
    pub const EXACT_LIMIT: usize = 8192;

    /// An empty accumulator in the exact regime.
    pub fn new() -> Self {
        LatencyAccumulator {
            exact: Vec::new(),
            hist: None,
        }
    }

    /// Records one latency sample. O(1) amortized: the one-time spill into
    /// the histogram replays the buffered samples and frees the buffer.
    pub fn observe(&mut self, v: Nanos) {
        if let Some(h) = &mut self.hist {
            h.observe(v.as_nanos());
            return;
        }
        self.exact.push(v);
        if self.exact.len() > Self::EXACT_LIMIT {
            let mut h = StreamingHistogram::new();
            for s in self.exact.drain(..) {
                h.observe(s.as_nanos());
            }
            self.exact.shrink_to_fit();
            self.hist = Some(h);
        }
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> usize {
        match &self.hist {
            Some(h) => h.count() as usize,
            None => self.exact.len(),
        }
    }

    /// Whether the accumulator has spilled into the streaming regime.
    pub fn is_streaming(&self) -> bool {
        self.hist.is_some()
    }

    /// Produces the stats. Exact regime delegates to
    /// [`LatencyStats::from_samples`]; streaming regime reports exact
    /// count/mean/max and histogram quantiles within
    /// [`StreamingHistogram::RELATIVE_ERROR_BOUND`].
    pub fn finalize(&self) -> LatencyStats {
        match &self.hist {
            None => LatencyStats::from_samples(&self.exact),
            Some(h) => LatencyStats {
                count: h.count() as usize,
                mean: Nanos::from_nanos(h.mean()),
                p50: Nanos::from_nanos(h.quantile(50.0)),
                p99: Nanos::from_nanos(h.quantile(99.0)),
                p999: Nanos::from_nanos(h.quantile(99.9)),
                max: Nanos::from_nanos(h.max()),
            },
        }
    }
}

impl Default for LatencyAccumulator {
    fn default() -> Self {
        LatencyAccumulator::new()
    }
}

/// Exact sample quantiles over a latency population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: Nanos,
    /// Median (p50).
    pub p50: Nanos,
    /// 99th percentile.
    pub p99: Nanos,
    /// 99.9th percentile.
    pub p999: Nanos,
    /// Worst observed latency.
    pub max: Nanos,
}

impl LatencyStats {
    /// Computes the stats from unsorted latency samples. Returns an
    /// all-zero record for an empty population (an all-shed cell).
    pub fn from_samples(samples: &[Nanos]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats {
                count: 0,
                mean: Nanos::ZERO,
                p50: Nanos::ZERO,
                p99: Nanos::ZERO,
                p999: Nanos::ZERO,
                max: Nanos::ZERO,
            };
        }
        let mut sorted: Vec<u64> = samples.iter().map(|n| n.as_nanos()).collect();
        sorted.sort_unstable();
        let sum: u64 = sorted.iter().sum();
        LatencyStats {
            count: sorted.len(),
            mean: Nanos::from_nanos(sum / sorted.len() as u64),
            p50: percentile(&sorted, 50.0),
            p99: percentile(&sorted, 99.0),
            p999: percentile(&sorted, 99.9),
            max: Nanos::from_nanos(*sorted.last().expect("non-empty")),
        }
    }
}

/// Exact linear-interpolated percentile over an already-sorted sample
/// array (ascending), `p` in `[0, 100]`.
///
/// Rank convention matches `Summary::percentile`: rank
/// `p/100 × (n-1)` interpolated between the two straddling samples, so
/// `p=0` is the minimum and `p=100` the maximum. The interpolation is
/// done in integer-free `f64` and rounded to the nearest nanosecond.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile(sorted: &[u64], p: f64) -> Nanos {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile out of [0,100]");
    if sorted.len() == 1 {
        return Nanos::from_nanos(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let v = sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac;
    Nanos::from_nanos(v.round() as u64)
}

/// One device's share of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceUtilization {
    /// Stable device label (`gpu0`, `gpu1`, …).
    pub device: String,
    /// Requests completed on the device.
    pub completed: usize,
    /// GPU-busy time.
    pub busy: Nanos,
    /// GPU-busy fraction of the fleet horizon, in `[0, 1]`.
    pub utilization: f64,
    /// Peak committed working-set bytes observed on the device.
    pub peak_committed: u64,
}

/// The serving report for one `(policy, mix, rate)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// Policy name.
    pub policy: String,
    /// Arrival mix name.
    pub mix: String,
    /// Requested base arrival rate, requests per second.
    pub rate_rps: f64,
    /// Base seed.
    pub seed: u64,
    /// Requests offered by the arrival plan.
    pub offered: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Failed placement attempts absorbed by failover.
    pub failovers: usize,
    /// Requests whose work moved to a peer device mid-flight because the
    /// primary degraded and the deadline budget still allowed re-staging.
    pub hedges: usize,
    /// Completed requests that finished past their SLO deadline.
    pub deadline_misses: usize,
    /// Fraction of *offered* requests that completed within their
    /// deadline (`0.0` for an empty cell — never NaN).
    pub slo_attainment: f64,
    /// Additive recovery cost charged by the resilience layer (retry
    /// backoff, abandoned partial work, re-staging transfers, degraded
    /// service), separable per the chaos contract.
    pub recovery: ChaosOverhead,
    /// End of the simulated schedule (last GPU-stage completion).
    pub horizon: Nanos,
    /// Completed requests per second of horizon.
    pub goodput_rps: f64,
    /// Latency over completed requests (arrival → completion).
    pub latency: LatencyStats,
    /// Per-device breakdown, in device-index order.
    pub per_device: Vec<DeviceUtilization>,
}

impl PolicyReport {
    /// The summary row of this cell (shared column layout with
    /// [`ServeReport::to_table`]; the availability sweep prepends an
    /// intensity column).
    pub(crate) fn table_row(&self) -> Vec<String> {
        vec![
            self.policy.clone(),
            self.mix.clone(),
            format!("{:.1}", self.rate_rps),
            self.offered.to_string(),
            self.completed.to_string(),
            self.shed.to_string(),
            self.failovers.to_string(),
            self.hedges.to_string(),
            self.deadline_misses.to_string(),
            format!("{:.4}", self.slo_attainment),
            format!("{:.3}", self.latency.p50.as_millis_f64()),
            format!("{:.3}", self.latency.p99.as_millis_f64()),
            format!("{:.3}", self.latency.p999.as_millis_f64()),
            format!("{:.2}", self.goodput_rps),
            self.per_device
                .iter()
                .map(|d| format!("{:.2}", d.utilization))
                .collect::<Vec<_>>()
                .join("/"),
        ]
    }

    /// Renders the cell as a two-part table: the summary row plus one row
    /// per device.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(ServeReport::COLUMNS.to_vec());
        t.row(self.table_row());
        t
    }

    /// Per-device breakdown table.
    pub fn device_table(&self) -> Table {
        let mut t = Table::new(vec![
            "device",
            "completed",
            "busy_ms",
            "utilization",
            "peak_committed_mb",
        ]);
        for d in &self.per_device {
            t.row(vec![
                d.device.clone(),
                d.completed.to_string(),
                format!("{:.3}", d.busy.as_millis_f64()),
                format!("{:.4}", d.utilization),
                format!("{:.1}", d.peak_committed as f64 / (1 << 20) as f64),
            ]);
        }
        t
    }

    /// The cell as one JSON object (no trailing newline).
    pub fn to_json_value(&self) -> String {
        let devices: Vec<String> = self
            .per_device
            .iter()
            .map(|d| {
                format!(
                    "{{\"device\": {}, \"completed\": {}, \"busy_ns\": {}, \
                     \"utilization\": {:.6}, \"peak_committed_bytes\": {}}}",
                    json_string(&d.device),
                    d.completed,
                    d.busy.as_nanos(),
                    d.utilization,
                    d.peak_committed,
                )
            })
            .collect();
        format!(
            "{{\"policy\": {}, \"mix\": {}, \"rate_rps\": {:.4}, \"seed\": {}, \
             \"offered\": {}, \"completed\": {}, \"shed\": {}, \"failovers\": {}, \
             \"hedges\": {}, \"deadline_misses\": {}, \"slo_attainment\": {:.6}, \
             \"recovery\": {{\"alloc_ns\": {}, \"memcpy_ns\": {}, \"kernel_ns\": {}, \
             \"system_ns\": {}}}, \
             \"horizon_ns\": {}, \"goodput_rps\": {:.6}, \
             \"latency\": {{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}, \
             \"devices\": [{}]}}",
            json_string(&self.policy),
            json_string(&self.mix),
            self.rate_rps,
            self.seed,
            self.offered,
            self.completed,
            self.shed,
            self.failovers,
            self.hedges,
            self.deadline_misses,
            self.slo_attainment,
            self.recovery.alloc.as_nanos(),
            self.recovery.memcpy.as_nanos(),
            self.recovery.kernel.as_nanos(),
            self.recovery.system.as_nanos(),
            self.horizon.as_nanos(),
            self.goodput_rps,
            self.latency.count,
            self.latency.mean.as_nanos(),
            self.latency.p50.as_nanos(),
            self.latency.p99.as_nanos(),
            self.latency.p999.as_nanos(),
            self.latency.max.as_nanos(),
            devices.join(", "),
        )
    }
}

/// A collection of cells — one serving run or a (policy × rate) sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The cells, in deterministic (policy, rate) grid order.
    pub cells: Vec<PolicyReport>,
}

impl ServeReport {
    /// The shared summary-table column layout.
    pub const COLUMNS: [&'static str; 15] = [
        "policy",
        "mix",
        "rate_rps",
        "offered",
        "completed",
        "shed",
        "failovers",
        "hedges",
        "misses",
        "slo",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "goodput_rps",
        "util_per_gpu",
    ];

    /// One summary row per cell.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(ServeReport::COLUMNS.to_vec());
        for c in &self.cells {
            t.row(c.table_row());
        }
        t
    }

    /// The whole report as pretty-printed JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&c.to_json_value());
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string quoting (policy/mix/device names are printable
/// ASCII, but quotes and backslashes must still escape).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(vals: &[u64]) -> Vec<Nanos> {
        vals.iter().copied().map(Nanos::from_nanos).collect()
    }

    #[test]
    fn percentiles_exact_on_uniform_ramp() {
        // 0, 1, ..., 100: pXX lands exactly on sample XX.
        let sorted: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile(&sorted, 0.0).as_nanos(), 0);
        assert_eq!(percentile(&sorted, 50.0).as_nanos(), 50);
        assert_eq!(percentile(&sorted, 99.0).as_nanos(), 99);
        assert_eq!(percentile(&sorted, 100.0).as_nanos(), 100);
        // p99.9 interpolates between 99 and 100: 99.9.
        assert_eq!(percentile(&sorted, 99.9).as_nanos(), 100);
    }

    #[test]
    fn percentiles_interpolate_between_ranks() {
        let sorted = vec![10, 20, 30, 40];
        // rank(50) = 1.5 -> midway between 20 and 30.
        assert_eq!(percentile(&sorted, 50.0).as_nanos(), 25);
        // rank(75) = 2.25 -> 30 + 0.25 * 10 = 32.5, rounds to 33 (ties
        // away from zero in f64::round).
        assert_eq!(percentile(&sorted, 75.0).as_nanos(), 33);
    }

    #[test]
    fn percentile_matches_engine_summary() {
        use hetsim_engine::stats::Summary;
        let samples: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 97, 11];
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let summary = Summary::from_samples(&samples.iter().map(|&v| v as f64).collect::<Vec<_>>());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let got = percentile(&sorted, p).as_nanos();
            let want = summary.percentile(p).round() as u64;
            assert_eq!(got, want, "p{p}");
        }
    }

    #[test]
    fn singleton_and_constant_distributions() {
        assert_eq!(percentile(&[42], 99.9).as_nanos(), 42);
        let constant = vec![7u64; 1000];
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(percentile(&constant, p).as_nanos(), 7, "p{p}");
        }
    }

    #[test]
    fn stats_from_samples_known_values() {
        let s = LatencyStats::from_samples(&ns(&(1..=1000).collect::<Vec<u64>>()));
        assert_eq!(s.count, 1000);
        assert_eq!(s.mean.as_nanos(), 500); // integer mean of 500.5
                                            // p50 rank is 499.5: midway between samples 500 and 501 -> 500.5,
                                            // rounded half-away-from-zero to 501.
        assert_eq!(s.p50.as_nanos(), 501);
        assert_eq!(s.max.as_nanos(), 1000);
    }

    #[test]
    fn empty_population_is_all_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p999, Nanos::ZERO);
        assert_eq!(s.max, Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of [0,100]")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1], 101.0);
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn bucket_index_is_monotone_and_mid_is_in_bucket() {
        let mut last = 0usize;
        for v in (0u64..2048).chain([1 << 20, (1 << 20) + 513, 1 << 40, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i >= last || v < 2048, "monotone");
            last = last.max(i);
            assert!(i < BUCKETS);
            let mid = bucket_mid(i);
            assert_eq!(bucket_index(mid), i, "midpoint stays in its bucket (v={v})");
            if v >= 256 {
                let rel = (mid as f64 - v as f64).abs() / v as f64;
                assert!(
                    rel <= StreamingHistogram::RELATIVE_ERROR_BOUND,
                    "v={v} mid={mid} rel={rel}"
                );
            } else {
                assert_eq!(mid, v, "small values are exact");
            }
        }
    }

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = StreamingHistogram::new();
        for v in 0..=255u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 256);
        assert_eq!(h.max(), 255);
        let sorted: Vec<u64> = (0..=255).collect();
        for p in [0.0, 25.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.quantile(p), percentile(&sorted, p).as_nanos(), "p{p}");
        }
    }

    #[test]
    fn histogram_quantiles_within_bound_on_log_uniform() {
        // A deterministic log-uniform-ish stream spanning six decades.
        let mut samples: Vec<u64> = (0..50_000u64)
            .map(|i| {
                let x = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) % 60;
                (1u64 << (x / 3)) + i % 997
            })
            .collect();
        let mut h = StreamingHistogram::new();
        for &s in &samples {
            h.observe(s);
        }
        samples.sort_unstable();
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = percentile(&samples, p).as_nanos();
            let est = h.quantile(p);
            let err = (est as f64 - exact as f64).abs();
            assert!(
                err <= exact as f64 * StreamingHistogram::RELATIVE_ERROR_BOUND + 1.0,
                "p{p}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(h.quantile(100.0), *samples.last().unwrap(), "max exact");
    }

    #[test]
    fn accumulator_matches_exact_path_below_limit() {
        let samples: Vec<Nanos> = (0..1000u64)
            .map(|i| Nanos::from_nanos(i.wrapping_mul(2_654_435_761) % 10_000_000))
            .collect();
        let mut acc = LatencyAccumulator::new();
        for &s in &samples {
            acc.observe(s);
        }
        assert!(!acc.is_streaming());
        assert_eq!(acc.finalize(), LatencyStats::from_samples(&samples));
    }

    #[test]
    fn accumulator_spills_once_and_stays_bounded() {
        let mut acc = LatencyAccumulator::new();
        let n = LatencyAccumulator::EXACT_LIMIT * 3;
        for i in 0..n as u64 {
            acc.observe(Nanos::from_nanos(1_000_000 + i * 13));
        }
        assert!(acc.is_streaming());
        assert_eq!(acc.count(), n);
        let stats = acc.finalize();
        assert_eq!(stats.count, n);
        // Count, mean, max exact even in the streaming regime.
        let samples: Vec<Nanos> = (0..n as u64)
            .map(|i| Nanos::from_nanos(1_000_000 + i * 13))
            .collect();
        let exact = LatencyStats::from_samples(&samples);
        assert_eq!(stats.mean, exact.mean);
        assert_eq!(stats.max, exact.max);
        for (got, want, label) in [
            (stats.p50, exact.p50, "p50"),
            (stats.p99, exact.p99, "p99"),
            (stats.p999, exact.p999, "p999"),
        ] {
            let err = (got.as_nanos() as f64 - want.as_nanos() as f64).abs();
            assert!(
                err <= want.as_nanos() as f64 * StreamingHistogram::RELATIVE_ERROR_BOUND + 1.0,
                "{label}: {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn accumulator_is_order_insensitive() {
        let forward: Vec<Nanos> = (0..20_000u64)
            .map(|i| Nanos::from_nanos(i.wrapping_mul(0x5851_F42D_4C95_7F2D) % 1_000_000_000))
            .collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let mut a = LatencyAccumulator::new();
        let mut b = LatencyAccumulator::new();
        for (&x, &y) in forward.iter().zip(reversed.iter()) {
            a.observe(x);
            b.observe(y);
        }
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn empty_accumulator_finalizes_to_zero() {
        assert_eq!(
            LatencyAccumulator::new().finalize(),
            LatencyStats::from_samples(&[])
        );
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn histogram_quantile_rejects_empty() {
        let _ = StreamingHistogram::new().quantile(50.0);
    }

    fn sample_report() -> PolicyReport {
        PolicyReport {
            policy: "mode_packing".into(),
            mix: "poisson".into(),
            rate_rps: 100.0,
            seed: 42,
            offered: 10,
            completed: 9,
            shed: 1,
            failovers: 0,
            hedges: 0,
            deadline_misses: 1,
            slo_attainment: 0.8,
            recovery: ChaosOverhead::default(),
            horizon: Nanos::from_millis(100),
            goodput_rps: 90.0,
            latency: LatencyStats::from_samples(&ns(&[1_000_000, 2_000_000, 3_000_000])),
            per_device: vec![DeviceUtilization {
                device: "gpu0".into(),
                completed: 9,
                busy: Nanos::from_millis(60),
                utilization: 0.6,
                peak_committed: 1 << 20,
            }],
        }
    }

    #[test]
    fn fully_shed_cell_renders_zeros_not_nan() {
        // A cell where every request was shed (or a device completed
        // nothing) must report a zero-count latency record and finite
        // ratios — never NaN, never a panic.
        let cell = PolicyReport {
            policy: "slo_deadline".into(),
            mix: "poisson".into(),
            rate_rps: 400.0,
            seed: 7,
            offered: 5,
            completed: 0,
            shed: 5,
            failovers: 0,
            hedges: 0,
            deadline_misses: 0,
            slo_attainment: 0.0,
            recovery: ChaosOverhead::default(),
            horizon: Nanos::ZERO,
            goodput_rps: 0.0,
            latency: LatencyStats::from_samples(&[]),
            per_device: vec![DeviceUtilization {
                device: "gpu0".into(),
                completed: 0,
                busy: Nanos::ZERO,
                utilization: 0.0,
                peak_committed: 0,
            }],
        };
        assert_eq!(cell.latency.count, 0);
        let csv = cell.to_table().to_csv();
        assert!(!csv.contains("NaN"), "table must stay finite: {csv}");
        let json = cell.to_json_value();
        assert!(json.contains("\"completed\": 0"));
        assert!(json.contains("\"slo_attainment\": 0.000000"));
        assert!(!json.contains("NaN"), "json must stay finite: {json}");
        assert!(!cell.device_table().to_csv().contains("NaN"));
    }

    #[test]
    fn tables_have_expected_shape() {
        let cell = sample_report();
        let report = ServeReport {
            cells: vec![cell.clone(), cell.clone()],
        };
        assert_eq!(report.to_table().len(), 2);
        assert_eq!(cell.to_table().len(), 1);
        assert_eq!(cell.device_table().len(), 1);
        let csv = report.to_table().to_csv();
        assert!(csv.starts_with("policy,mix,rate_rps"));
        assert!(csv.contains("mode_packing"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let report = ServeReport {
            cells: vec![sample_report()],
        };
        let json = report.to_json();
        assert!(json.contains("\"policy\": \"mode_packing\""));
        assert!(json.contains("\"p999_ns\""));
        assert!(json.contains("\"slo_attainment\": 0.800000"));
        assert!(json.contains("\"recovery\": {\"alloc_ns\": 0"));
        assert!(json.contains("\"devices\": ["));
        assert!(json.ends_with("]\n}\n"));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in a zero-dep crate).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "{open}{close} balance");
        }
    }
}
