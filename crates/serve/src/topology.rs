//! The multi-GPU cluster model: devices plus a peer-to-peer link topology.
//!
//! The single-device [`Device`] model (its CPU↔GPU link, HBM, allocator)
//! is reused unchanged — a cluster is N copies of it stitched together by
//! a matrix of [`PeerLink`]s. Links come in three classes, matching the
//! NVLink/NUMA structure of the DGX-style machines the serving layer
//! models:
//!
//! * [`PeerClass::NvLink`] — same NUMA half, direct NVLink: high
//!   bandwidth, sub-microsecond setup.
//! * [`PeerClass::PciePeer`] — peer DMA over the PCIe root complex.
//! * [`PeerClass::NumaRemote`] — the other NUMA half: PCIe hop plus a
//!   socket-interconnect crossing, the slowest path.
//!
//! Peer transfers matter to serving because failover (see
//! [`crate::policy::ChaosFailover`]) re-stages a request's working set on
//! another device: the charge for that move is
//! [`ClusterTopology::peer_transfer_time`], so a failover across the NUMA
//! boundary honestly costs more than one inside an NVLink island.

use hetsim_engine::bandwidth::{link_transfer_time, Bandwidth, Latency};
use hetsim_engine::time::Nanos;
use hetsim_runtime::Device;

/// The class of a peer-to-peer link between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerClass {
    /// Direct NVLink within an NVLink island (same NUMA half).
    NvLink,
    /// Peer DMA through the shared PCIe root complex.
    PciePeer,
    /// Across the NUMA boundary: PCIe plus a socket-interconnect hop.
    NumaRemote,
    /// A device's link to itself (no transfer needed).
    Local,
}

impl PeerClass {
    /// Short lowercase name, used in tables and traces.
    pub fn name(self) -> &'static str {
        match self {
            PeerClass::NvLink => "nvlink",
            PeerClass::PciePeer => "pcie_peer",
            PeerClass::NumaRemote => "numa_remote",
            PeerClass::Local => "local",
        }
    }
}

/// A directed peer link: fixed setup latency plus streaming bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerLink {
    /// Link class.
    pub class: PeerClass,
    /// Per-transfer setup latency.
    pub latency: Latency,
    /// Streaming bandwidth.
    pub bandwidth: Bandwidth,
}

impl PeerLink {
    /// The default link model for a class. Numbers follow the same
    /// datasheet-effective convention as the CPU↔GPU link: NVLink 3.0 at
    /// ~200 GB/s effective per direction, PCIe 4.0 x16 peer DMA at
    /// ~22 GB/s, and the NUMA-remote path derated to ~16 GB/s with the
    /// socket hop folded into latency.
    pub fn of_class(class: PeerClass) -> PeerLink {
        let (latency_us, gb_per_sec) = match class {
            PeerClass::NvLink => (2, 200.0),
            PeerClass::PciePeer => (5, 22.0),
            PeerClass::NumaRemote => (9, 16.0),
            PeerClass::Local => {
                return PeerLink {
                    class,
                    latency: Latency::ZERO,
                    bandwidth: Bandwidth::from_gb_per_sec(1e6),
                }
            }
        };
        PeerLink {
            class,
            latency: Latency::from_micros(latency_us),
            bandwidth: Bandwidth::from_gb_per_sec(gb_per_sec),
        }
    }

    /// Time to move `bytes` across this link (latency + bytes/bandwidth);
    /// zero for [`PeerClass::Local`].
    pub fn transfer_time(&self, bytes: u64) -> Nanos {
        if self.class == PeerClass::Local {
            return Nanos::ZERO;
        }
        link_transfer_time(self.latency, self.bandwidth, bytes)
    }
}

/// A fleet of devices plus the peer-link class between every ordered pair.
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    devices: Vec<Device>,
    /// Row-major `len × len` link matrix; `links[src * len + dst]`.
    links: Vec<PeerLink>,
}

impl ClusterTopology {
    /// A DGX-style NVLink mesh of `n` identical A100+EPYC devices split
    /// into two NUMA halves: NVLink inside a half, NUMA-remote across
    /// halves. With `n == 1` the topology degenerates to a single device.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn nvlink_mesh(n: usize) -> ClusterTopology {
        assert!(n > 0, "cluster needs at least one device");
        let half = n.div_ceil(2);
        ClusterTopology::build(n, |src, dst| {
            if src == dst {
                PeerClass::Local
            } else if (src < half) == (dst < half) {
                PeerClass::NvLink
            } else {
                PeerClass::NumaRemote
            }
        })
    }

    /// A PCIe-only cluster of `n` devices: every peer pair shares the root
    /// complex, no NVLink.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pcie_cluster(n: usize) -> ClusterTopology {
        assert!(n > 0, "cluster needs at least one device");
        ClusterTopology::build(n, |src, dst| {
            if src == dst {
                PeerClass::Local
            } else {
                PeerClass::PciePeer
            }
        })
    }

    /// The trivial single-device "fleet".
    pub fn single() -> ClusterTopology {
        ClusterTopology::nvlink_mesh(1)
    }

    fn build(n: usize, class: impl Fn(usize, usize) -> PeerClass) -> ClusterTopology {
        let devices = vec![Device::a100_epyc(); n];
        let mut links = Vec::with_capacity(n * n);
        for src in 0..n {
            for dst in 0..n {
                links.push(PeerLink::of_class(class(src, dst)));
            }
        }
        ClusterTopology { devices, links }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster is empty (never true for the shipped presets).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn device(&self, idx: usize) -> &Device {
        &self.devices[idx]
    }

    /// Stable display name for the device at `idx` (e.g. `gpu2`).
    pub fn device_label(&self, idx: usize) -> String {
        format!("gpu{idx}")
    }

    /// HBM capacity of the device at `idx`, bytes.
    pub fn capacity(&self, idx: usize) -> u64 {
        self.devices[idx].gpu.hbm.capacity()
    }

    /// The directed peer link from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn peer_link(&self, src: usize, dst: usize) -> PeerLink {
        self.links[src * self.devices.len() + dst]
    }

    /// Time to re-stage `bytes` from device `src` onto device `dst`.
    pub fn peer_transfer_time(&self, src: usize, dst: usize, bytes: u64) -> Nanos {
        self.peer_link(src, dst).transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_splits_into_numa_halves() {
        let t = ClusterTopology::nvlink_mesh(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.peer_link(0, 1).class, PeerClass::NvLink);
        assert_eq!(t.peer_link(2, 3).class, PeerClass::NvLink);
        assert_eq!(t.peer_link(1, 2).class, PeerClass::NumaRemote);
        assert_eq!(t.peer_link(3, 0).class, PeerClass::NumaRemote);
        assert_eq!(t.peer_link(2, 2).class, PeerClass::Local);
    }

    #[test]
    fn odd_mesh_rounds_first_half_up() {
        let t = ClusterTopology::nvlink_mesh(3);
        // Halves are {0, 1} and {2}.
        assert_eq!(t.peer_link(0, 1).class, PeerClass::NvLink);
        assert_eq!(t.peer_link(1, 2).class, PeerClass::NumaRemote);
    }

    #[test]
    fn pcie_cluster_is_uniform() {
        let t = ClusterTopology::pcie_cluster(3);
        for s in 0..3 {
            for d in 0..3 {
                let want = if s == d {
                    PeerClass::Local
                } else {
                    PeerClass::PciePeer
                };
                assert_eq!(t.peer_link(s, d).class, want);
            }
        }
    }

    #[test]
    fn transfer_costs_order_by_class() {
        let t = ClusterTopology::nvlink_mesh(4);
        let bytes = 1 << 30; // 1 GiB working set
        let local = t.peer_transfer_time(0, 0, bytes);
        let nvlink = t.peer_transfer_time(0, 1, bytes);
        let remote = t.peer_transfer_time(0, 2, bytes);
        assert_eq!(local, Nanos::ZERO);
        assert!(nvlink < remote, "NVLink must beat the NUMA hop");
        let pcie = ClusterTopology::pcie_cluster(2).peer_transfer_time(0, 1, bytes);
        assert!(nvlink < pcie && pcie < remote);
    }

    #[test]
    fn nvlink_bandwidth_dominates_its_latency() {
        // At 1 GiB the setup latency is noise: the transfer should take
        // roughly bytes / 200 GB/s. (A 2-mesh has one device per NUMA
        // half, so the NVLink pair needs a 4-mesh.)
        let t = ClusterTopology::nvlink_mesh(4).peer_transfer_time(0, 1, 1 << 30);
        let ideal = (1u64 << 30) as f64 / 200e9;
        assert!((t.as_secs_f64() / ideal - 1.0).abs() < 0.01);
    }

    #[test]
    fn capacity_is_a100_hbm() {
        let t = ClusterTopology::single();
        assert_eq!(t.capacity(0), 40 * (1u64 << 30));
        assert_eq!(t.device(0).name, Device::a100_epyc().name);
        assert_eq!(t.device_label(0), "gpu0");
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        let _ = ClusterTopology::nvlink_mesh(0);
    }
}
