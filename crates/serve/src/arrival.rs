//! Open-loop request arrival generation.
//!
//! A serving fleet is driven by an **open-loop** arrival process: requests
//! land on their own schedule, whether or not the fleet has finished the
//! previous ones. (A *closed-loop* generator — N users who each wait for
//! their response before issuing the next request — throttles itself when
//! the fleet saturates and therefore hides queueing collapse; open-loop
//! arrivals are what expose the p99/p999 latency cliffs this subsystem
//! exists to measure. See the module docs of [`crate`] for the longer
//! discussion.)
//!
//! [`ArrivalMix`] describes the process shape — seeded Poisson at a fixed
//! rate, a square-wave bursty profile, or a sinusoidal diurnal profile —
//! and [`ArrivalPlan::generate`] samples it into a concrete, reproducible
//! request sequence. Workloads are drawn from the registry catalog
//! (`hetsim-workloads`), so a request stream exercises the same 22
//! workload specs as every batch figure.
//!
//! # Determinism
//!
//! Generation is a pure function of `(mix, seed, request count, catalog)`.
//! All randomness flows through one [`SimRng`] seeded from those parts, the
//! sampling loop is strictly sequential, and no wall clock is consulted —
//! the same inputs reproduce the identical arrival sequence bit-for-bit,
//! on any machine, at any worker-thread count (the generator runs before
//! any fleet parallelism starts).

use hetsim_engine::rng::SimRng;
use hetsim_engine::time::Nanos;
use hetsim_workloads::{suite, InputSize};

/// The arrival-process shape of a request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMix {
    /// Memoryless arrivals at a fixed mean rate (requests per second):
    /// exponential inter-arrival gaps, the classic M/./. front door.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
    },
    /// A square-wave profile: quiet base-load traffic interrupted by
    /// periodic bursts at `burst_factor` times the base rate — the shape
    /// of retry storms and synchronized client cron jobs.
    Bursty {
        /// Base arrival rate outside bursts, requests per second.
        rate_rps: f64,
        /// Rate multiplier during a burst window.
        burst_factor: f64,
        /// Full cycle length (quiet + burst), seconds of sim time.
        period_s: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        duty: f64,
    },
    /// A sinusoidal day/night profile: the rate swings between
    /// `rate_rps * (1 - swing)` and `rate_rps * (1 + swing)` over one
    /// period — the compressed shape of diurnal user traffic.
    Diurnal {
        /// Mean arrival rate over a full period, requests per second.
        rate_rps: f64,
        /// Relative swing amplitude in `[0, 1)`.
        swing: f64,
        /// One simulated "day", seconds of sim time.
        period_s: f64,
    },
}

impl ArrivalMix {
    /// The canonical mix names accepted by the CLI (`--mix`).
    pub const NAMES: [&'static str; 3] = ["poisson", "bursty", "diurnal"];

    /// A mix by CLI name at the given base rate, with the default shape
    /// parameters (`burst_factor` 4 at 20% duty over 2 s periods for
    /// `bursty`; 80% swing over a 10 s compressed day for `diurnal`).
    pub fn by_name(name: &str, rate_rps: f64) -> Option<ArrivalMix> {
        match name {
            "poisson" => Some(ArrivalMix::Poisson { rate_rps }),
            "bursty" => Some(ArrivalMix::Bursty {
                rate_rps,
                burst_factor: 4.0,
                period_s: 2.0,
                duty: 0.2,
            }),
            "diurnal" => Some(ArrivalMix::Diurnal {
                rate_rps,
                swing: 0.8,
                period_s: 10.0,
            }),
            _ => None,
        }
    }

    /// The base (mean/quiet) arrival rate the mix was built from,
    /// requests per second.
    pub fn base_rate(&self) -> f64 {
        match *self {
            ArrivalMix::Poisson { rate_rps }
            | ArrivalMix::Bursty { rate_rps, .. }
            | ArrivalMix::Diurnal { rate_rps, .. } => rate_rps,
        }
    }

    /// The mix's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalMix::Poisson { .. } => "poisson",
            ArrivalMix::Bursty { .. } => "bursty",
            ArrivalMix::Diurnal { .. } => "diurnal",
        }
    }

    /// The instantaneous arrival rate (requests per second) at sim time
    /// `t_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the mix was constructed with a non-positive base rate.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            ArrivalMix::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "arrival rate must be positive");
                rate_rps
            }
            ArrivalMix::Bursty {
                rate_rps,
                burst_factor,
                period_s,
                duty,
            } => {
                assert!(rate_rps > 0.0, "arrival rate must be positive");
                let phase = (t_s / period_s).fract();
                if phase < duty {
                    rate_rps * burst_factor
                } else {
                    rate_rps
                }
            }
            ArrivalMix::Diurnal {
                rate_rps,
                swing,
                period_s,
            } => {
                assert!(rate_rps > 0.0, "arrival rate must be positive");
                let phase = (t_s / period_s).fract();
                rate_rps * (1.0 + swing * (std::f64::consts::TAU * phase).sin())
            }
        }
    }
}

/// One request in the arrival sequence: what to run, and when it lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Sequence number in arrival order (also the noise/fault seed index).
    pub id: u64,
    /// Sim-time arrival instant.
    pub arrival: Nanos,
    /// Registry name of the workload this request runs.
    pub workload: &'static str,
    /// Input size the workload is built at.
    pub size: InputSize,
    /// SLO deadline: the completion instant after which the response no
    /// longer counts toward SLO attainment. Always `arrival + budget`;
    /// resilience policies spend the remaining budget on retries and
    /// hedges, and deadline-aware admission sheds predicted misses.
    pub deadline: Nanos,
}

impl Request {
    /// The request's remaining SLO budget at sim time `now` (zero once
    /// the deadline has passed).
    pub fn remaining_budget(&self, now: Nanos) -> Nanos {
        self.deadline.saturating_sub(now)
    }
}

/// A generated arrival sequence plus the parameters that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalPlan {
    /// The mix that was sampled.
    pub mix: ArrivalMix,
    /// The base seed.
    pub seed: u64,
    /// The requests, in strictly non-decreasing arrival order.
    pub requests: Vec<Request>,
}

impl ArrivalPlan {
    /// Samples `count` arrivals of `mix`, drawing workloads uniformly from
    /// `catalog` (registry names) at input size `size`.
    ///
    /// Time-varying mixes are sampled by the standard inversion-free
    /// stepping scheme: each gap is exponential with the *instantaneous*
    /// rate at the current clock, which tracks the profile faithfully as
    /// long as the rate changes slowly relative to the mean gap (true for
    /// the shipped burst/diurnal periods at serving rates).
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is empty, if `count` is zero, or if the mix's
    /// base rate is non-positive.
    pub fn generate(
        mix: ArrivalMix,
        seed: u64,
        count: u64,
        catalog: &[&'static str],
        size: InputSize,
    ) -> ArrivalPlan {
        Self::generate_with_deadline(mix, seed, count, catalog, size, Self::DEFAULT_SLO_BUDGET)
    }

    /// The default per-request SLO budget (arrival → deadline): 50 ms,
    /// generous next to the calibrated per-request service times so that
    /// deadline-unaware runs behave exactly as before deadlines existed.
    pub const DEFAULT_SLO_BUDGET: Nanos = Nanos::from_millis(50);

    /// [`ArrivalPlan::generate`] with an explicit SLO budget: every
    /// request's deadline is `arrival + budget`. The budget does not
    /// touch the RNG stream, so plans at different budgets share the
    /// identical arrival sequence.
    ///
    /// # Panics
    ///
    /// As [`ArrivalPlan::generate`].
    pub fn generate_with_deadline(
        mix: ArrivalMix,
        seed: u64,
        count: u64,
        catalog: &[&'static str],
        size: InputSize,
        budget: Nanos,
    ) -> ArrivalPlan {
        assert!(!catalog.is_empty(), "arrival catalog must not be empty");
        assert!(count > 0, "arrival plan needs at least one request");
        let mut rng = SimRng::seed_from_parts(&["serve.arrival", mix.name(), size.name()], seed);
        let mut clock_ns = 0u64;
        let mut requests = Vec::with_capacity(count as usize);
        for id in 0..count {
            let rate = mix.rate_at(clock_ns as f64 / 1e9);
            // Exponential gap with mean 1/rate; u is nudged away from zero
            // so ln() stays finite.
            let u = rng.next_f64().max(1e-12);
            let gap_s = -u.ln() / rate;
            clock_ns += (gap_s * 1e9) as u64;
            let workload = catalog[rng.below(catalog.len() as u64) as usize];
            let arrival = Nanos::from_nanos(clock_ns);
            requests.push(Request {
                id,
                arrival,
                workload,
                size,
                deadline: arrival + budget,
            });
        }
        ArrivalPlan {
            mix,
            seed,
            requests,
        }
    }

    /// The default request catalog: every registered workload (micro +
    /// apps + irregular), in registry order.
    pub fn full_catalog() -> Vec<&'static str> {
        suite::all_entries().iter().map(|e| e.name).collect()
    }

    /// Sim-time span from the first arrival to the last.
    pub fn span(&self) -> Nanos {
        match (self.requests.first(), self.requests.last()) {
            (Some(first), Some(last)) => last.arrival - first.arrival,
            _ => Nanos::ZERO,
        }
    }

    /// Observed mean arrival rate over the generated sequence, requests
    /// per second (zero for a degenerate single-request plan).
    pub fn observed_rate(&self) -> f64 {
        let span_s = self.span().as_secs_f64();
        if span_s <= 0.0 {
            return 0.0;
        }
        (self.requests.len() as f64 - 1.0) / span_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CATALOG: [&str; 3] = ["vector_seq", "kmeans", "bfs"];

    fn poisson(rate: f64) -> ArrivalMix {
        ArrivalMix::Poisson { rate_rps: rate }
    }

    #[test]
    fn same_seed_same_sequence() {
        let a = ArrivalPlan::generate(poisson(100.0), 7, 500, &CATALOG, InputSize::Tiny);
        let b = ArrivalPlan::generate(poisson(100.0), 7, 500, &CATALOG, InputSize::Tiny);
        assert_eq!(a, b, "generation must be a pure function of its inputs");
    }

    #[test]
    fn different_seeds_differ() {
        let a = ArrivalPlan::generate(poisson(100.0), 7, 100, &CATALOG, InputSize::Tiny);
        let b = ArrivalPlan::generate(poisson(100.0), 8, 100, &CATALOG, InputSize::Tiny);
        assert_ne!(a.requests, b.requests);
    }

    #[test]
    fn arrivals_are_sorted_and_ids_sequential() {
        let plan = ArrivalPlan::generate(poisson(50.0), 3, 200, &CATALOG, InputSize::Tiny);
        for (i, pair) in plan.requests.windows(2).enumerate() {
            assert!(pair[0].arrival <= pair[1].arrival, "unsorted at {i}");
        }
        for (i, r) in plan.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(CATALOG.contains(&r.workload));
        }
    }

    #[test]
    fn observed_rate_tracks_requested_rate() {
        let plan = ArrivalPlan::generate(poisson(200.0), 42, 4000, &CATALOG, InputSize::Tiny);
        let observed = plan.observed_rate();
        assert!(
            (observed / 200.0 - 1.0).abs() < 0.1,
            "observed {observed} rps should be within 10% of 200"
        );
    }

    #[test]
    fn bursty_rate_toggles_between_levels() {
        let mix = ArrivalMix::by_name("bursty", 100.0).unwrap();
        assert_eq!(mix.rate_at(0.0), 400.0, "burst window opens each period");
        assert_eq!(mix.rate_at(1.0), 100.0, "quiet phase at base rate");
        assert_eq!(mix.rate_at(2.05), 400.0, "next period bursts again");
    }

    #[test]
    fn diurnal_rate_swings_around_mean() {
        let mix = ArrivalMix::by_name("diurnal", 100.0).unwrap();
        let peak = mix.rate_at(2.5); // quarter period: sin = 1
        let trough = mix.rate_at(7.5); // three quarters: sin = -1
        assert!((peak - 180.0).abs() < 1e-9, "peak {peak}");
        assert!((trough - 20.0).abs() < 1e-9, "trough {trough}");
        assert!((mix.rate_at(0.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn deadlines_are_arrival_plus_budget() {
        let budget = Nanos::from_millis(5);
        let plan = ArrivalPlan::generate_with_deadline(
            poisson(100.0),
            7,
            50,
            &CATALOG,
            InputSize::Tiny,
            budget,
        );
        for r in &plan.requests {
            assert_eq!(r.deadline, r.arrival + budget);
            assert_eq!(r.remaining_budget(r.arrival), budget);
            assert_eq!(r.remaining_budget(r.deadline + budget), Nanos::ZERO);
        }
        // The default entry point applies DEFAULT_SLO_BUDGET without
        // perturbing the arrival sequence.
        let default = ArrivalPlan::generate(poisson(100.0), 7, 50, &CATALOG, InputSize::Tiny);
        for (a, b) in plan.requests.iter().zip(&default.requests) {
            assert_eq!(a.arrival, b.arrival, "budget must not shift arrivals");
            assert_eq!(b.deadline, b.arrival + ArrivalPlan::DEFAULT_SLO_BUDGET);
        }
    }

    #[test]
    fn mix_names_round_trip() {
        for name in ArrivalMix::NAMES {
            let mix = ArrivalMix::by_name(name, 10.0).unwrap();
            assert_eq!(mix.name(), name);
        }
        assert!(ArrivalMix::by_name("steady", 10.0).is_none());
    }

    #[test]
    fn full_catalog_covers_registry() {
        let catalog = ArrivalPlan::full_catalog();
        assert_eq!(catalog.len(), 22);
        assert!(catalog.contains(&"bfs") && catalog.contains(&"gemm"));
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_requests_rejected() {
        let _ = ArrivalPlan::generate(poisson(10.0), 1, 0, &CATALOG, InputSize::Tiny);
    }

    #[test]
    #[should_panic(expected = "catalog")]
    fn empty_catalog_rejected() {
        let _ = ArrivalPlan::generate(poisson(10.0), 1, 5, &[], InputSize::Tiny);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalPlan::generate(poisson(0.0), 1, 5, &CATALOG, InputSize::Tiny);
    }
}
