//! Minimal flag parsing for the artifact CLI — no external dependency.

use hetsim_workloads::InputSize;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Positional operands (e.g. the workload of `trace <workload>`).
    pub positional: Vec<String>,
    /// `--workload NAME`
    pub workload: Option<String>,
    /// `--size tiny|small|medium|large|super|mega` (default: large).
    pub size: InputSize,
    /// `--runs N` (default: 30, the paper's methodology).
    pub runs: u64,
    /// `--csv`: emit CSV instead of aligned tables.
    pub csv: bool,
    /// `--study blocks|threads|carveout`.
    pub study: Option<String>,
    /// `--out DIR` (or the trace output file for `trace`).
    pub out: Option<String>,
    /// `--jobs N` (default 16).
    pub jobs: u32,
    /// `--mode standard|pinned|uvm|uvm_prefetch|uvm_prefetch_async`.
    pub mode: Option<String>,
    /// `--trace FILE`: also export a trace of the run to FILE.
    pub trace: Option<String>,
    /// `--trace-stream FILE`: stream trace events to FILE *during* the
    /// run (bounded memory) instead of buffering the whole recording.
    pub trace_stream: Option<String>,
    /// `--trace-format jsonl|chrome`: wire format for `--trace-stream`
    /// (default: jsonl, or chrome when the file ends in `.json`).
    pub trace_format: Option<String>,
    /// `--self-profile`: include host wall-clock spans in the trace.
    pub self_profile: bool,
    /// `--threads N`: worker threads for parallel sweeps (default: the
    /// `HETSIM_THREADS` env var, then the machine's parallelism; `1`
    /// forces fully serial execution).
    pub threads: Option<usize>,
    /// `--help`/`-h`: print the command's usage (and, for `run`, the
    /// workload registry) instead of running.
    pub help: bool,
    /// `--all`: for `check`, sweep the entire workload registry.
    pub all: bool,
    /// `--deny warnings`: promote sanitizer warnings to failures.
    pub deny_warnings: bool,
    /// `--format text|json` (default text): sanitizer report rendering.
    pub format: Option<String>,
    /// `--verify-specs`: run the sanitizer over the workloads a command is
    /// about to simulate and abort (deny-warnings) if any spec is dirty.
    pub verify_specs: bool,
    /// `--seed N`: base seed for chaos fault plans (default 42).
    pub seed: u64,
    /// `--rates R1,R2,...`: fault-intensity ramp for `chaos` (each a
    /// finite non-negative number).
    pub rates: Option<Vec<f64>>,
    /// `--seeds N`: seeds per chaos sweep cell (default 8, nonzero).
    pub seeds: u64,
    /// `--retries N`: overrides the chaos recovery retry/replay budgets.
    pub retries: Option<u32>,
    /// `--policy NAME|all`: serving policy for `serve` (default: all).
    pub policy: Option<String>,
    /// `--mix poisson|bursty|diurnal`: arrival mix for `serve`
    /// (default: poisson).
    pub mix: Option<String>,
    /// `--rate R`: base arrival rate in requests/second for `serve`
    /// (default 100; finite and positive).
    pub rate: Option<f64>,
    /// `--gpus N`: fleet size for `serve` (default 4, nonzero).
    pub gpus: usize,
    /// `--requests N`: offered requests per serve cell (default 200,
    /// nonzero).
    pub requests: u64,
    /// `--chaos`: arm the serve command's resilience layer (device
    /// lifecycle faults, SLO deadlines, availability sweep).
    pub chaos: bool,
    /// `--intensities X1,X2,...`: fault-intensity grid for
    /// `serve --chaos` (each finite and in `[0, 1]`).
    pub intensities: Option<Vec<f64>>,
    /// `--deadline MS`: per-request SLO budget in milliseconds for
    /// `serve` (finite and positive; default 50).
    pub deadline_ms: Option<f64>,
    /// `--cache off|on|DIR`: on-disk base-run result cache. `on` uses
    /// `target/hetsim-cache`, a path roots the store there, `off`
    /// disables. Unset falls back to the `HETSIM_CACHE` env var with the
    /// same grammar; default disabled.
    pub cache: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            positional: Vec::new(),
            workload: None,
            size: InputSize::Large,
            runs: 30,
            csv: false,
            study: None,
            out: None,
            jobs: 16,
            mode: None,
            trace: None,
            trace_stream: None,
            trace_format: None,
            self_profile: false,
            threads: None,
            help: false,
            all: false,
            deny_warnings: false,
            format: None,
            verify_specs: false,
            seed: 42,
            rates: None,
            seeds: 8,
            retries: None,
            policy: None,
            mix: None,
            rate: None,
            gpus: 4,
            requests: 200,
            chaos: false,
            intensities: None,
            deadline_ms: None,
            cache: None,
        }
    }
}

impl Args {
    /// Splits `argv` into `(command, options)`; `None` on empty or
    /// malformed input.
    pub fn parse(argv: &[String]) -> Option<(String, Args)> {
        let mut it = argv.iter();
        let command = it.next()?.clone();
        let mut args = Args::default();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--csv" => args.csv = true,
                "--help" | "-h" => args.help = true,
                "--self-profile" => args.self_profile = true,
                "--all" => args.all = true,
                "--verify-specs" => args.verify_specs = true,
                "--deny" => {
                    // Mirrors rustc's `--deny warnings`; other lint groups
                    // don't exist, so anything else is a usage error.
                    if it.next()?.as_str() != "warnings" {
                        return None;
                    }
                    args.deny_warnings = true;
                }
                "--format" => {
                    let v = it.next()?;
                    if v != "text" && v != "json" {
                        return None;
                    }
                    args.format = Some(v.clone());
                }
                "--workload" => args.workload = Some(it.next()?.clone()),
                "--study" => args.study = Some(it.next()?.clone()),
                "--out" => args.out = Some(it.next()?.clone()),
                "--mode" => args.mode = Some(it.next()?.clone()),
                "--trace" => args.trace = Some(it.next()?.clone()),
                "--trace-stream" => args.trace_stream = Some(it.next()?.clone()),
                "--trace-format" => {
                    let v = it.next()?;
                    if v != "jsonl" && v != "chrome" {
                        return None;
                    }
                    args.trace_format = Some(v.clone());
                }
                "--size" => {
                    let v = it.next()?;
                    args.size = InputSize::ALL.into_iter().find(|s| s.name() == v)?;
                }
                "--runs" => {
                    // Zero runs would panic later in Experiment::with_runs;
                    // reject it at the parse boundary instead.
                    let n: u64 = it.next()?.parse().ok()?;
                    if n == 0 {
                        return None;
                    }
                    args.runs = n;
                }
                "--jobs" => args.jobs = it.next()?.parse().ok()?,
                "--seed" => args.seed = it.next()?.parse().ok()?,
                "--retries" => args.retries = Some(it.next()?.parse().ok()?),
                "--seeds" => {
                    let n: u64 = it.next()?.parse().ok()?;
                    if n == 0 {
                        return None;
                    }
                    args.seeds = n;
                }
                "--rates" => {
                    let list = it.next()?;
                    let mut rates = Vec::new();
                    for part in list.split(',') {
                        let r: f64 = part.trim().parse().ok()?;
                        if !r.is_finite() || r < 0.0 {
                            return None;
                        }
                        rates.push(r);
                    }
                    if rates.is_empty() {
                        return None;
                    }
                    args.rates = Some(rates);
                }
                "--chaos" => args.chaos = true,
                "--intensities" => {
                    let list = it.next()?;
                    let mut xs = Vec::new();
                    for part in list.split(',') {
                        let x: f64 = part.trim().parse().ok()?;
                        if !x.is_finite() || !(0.0..=1.0).contains(&x) {
                            return None;
                        }
                        xs.push(x);
                    }
                    if xs.is_empty() {
                        return None;
                    }
                    args.intensities = Some(xs);
                }
                "--deadline" => {
                    // Zero or negative budgets would shed every request;
                    // reject them at the parse boundary like --rate.
                    let ms: f64 = it.next()?.parse().ok()?;
                    if !ms.is_finite() || ms <= 0.0 {
                        return None;
                    }
                    args.deadline_ms = Some(ms);
                }
                "--policy" => args.policy = Some(it.next()?.clone()),
                "--cache" => args.cache = Some(it.next()?.clone()),
                "--mix" => {
                    let v = it.next()?;
                    if v != "poisson" && v != "bursty" && v != "diurnal" {
                        return None;
                    }
                    args.mix = Some(v.clone());
                }
                "--rate" => {
                    let r: f64 = it.next()?.parse().ok()?;
                    if !r.is_finite() || r <= 0.0 {
                        return None;
                    }
                    args.rate = Some(r);
                }
                "--gpus" => {
                    let n: usize = it.next()?.parse().ok()?;
                    if n == 0 {
                        return None;
                    }
                    args.gpus = n;
                }
                "--requests" => {
                    let n: u64 = it.next()?.parse().ok()?;
                    if n == 0 {
                        return None;
                    }
                    args.requests = n;
                }
                "--threads" => {
                    let n: usize = it.next()?.parse().ok()?;
                    if n == 0 {
                        return None;
                    }
                    args.threads = Some(n);
                }
                other if !other.starts_with('-') => args.positional.push(other.to_string()),
                _ => return None,
            }
        }
        Some((command, args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let (cmd, a) = Args::parse(&v(&[
            "run",
            "--workload",
            "lud",
            "--size",
            "super",
            "--runs",
            "5",
            "--csv",
        ]))
        .unwrap();
        assert_eq!(cmd, "run");
        assert_eq!(a.workload.as_deref(), Some("lud"));
        assert_eq!(a.size, InputSize::Super);
        assert_eq!(a.runs, 5);
        assert!(a.csv);
    }

    #[test]
    fn defaults() {
        let (_, a) = Args::parse(&v(&["micro"])).unwrap();
        assert_eq!(a.size, InputSize::Large);
        assert_eq!(a.runs, 30);
        assert!(!a.csv);
        assert_eq!(a.jobs, 16);
    }

    #[test]
    fn parses_trace_command_shape() {
        let (cmd, a) = Args::parse(&v(&[
            "trace",
            "vector_seq",
            "--mode",
            "uvm",
            "--size",
            "large",
            "--out",
            "/tmp/t.json",
            "--self-profile",
        ]))
        .unwrap();
        assert_eq!(cmd, "trace");
        assert_eq!(a.positional, vec!["vector_seq".to_string()]);
        assert_eq!(a.mode.as_deref(), Some("uvm"));
        assert_eq!(a.out.as_deref(), Some("/tmp/t.json"));
        assert!(a.self_profile);
    }

    #[test]
    fn parses_trace_flag_on_run() {
        let (_, a) = Args::parse(&v(&["run", "--workload", "lud", "--trace", "t.json"])).unwrap();
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert!(!a.self_profile);
    }

    #[test]
    fn parses_trace_stream_flags() {
        let (_, a) = Args::parse(&v(&[
            "run",
            "--workload",
            "lud",
            "--trace-stream",
            "t.jsonl",
            "--trace-format",
            "chrome",
        ]))
        .unwrap();
        assert_eq!(a.trace_stream.as_deref(), Some("t.jsonl"));
        assert_eq!(a.trace_format.as_deref(), Some("chrome"));
        let (_, a) = Args::parse(&v(&["run", "--trace-stream", "t.jsonl"])).unwrap();
        assert_eq!(a.trace_format, None);
        assert!(Args::parse(&v(&["run", "--trace-format", "xml"])).is_none());
        assert!(Args::parse(&v(&["run", "--trace-stream"])).is_none());
    }

    #[test]
    fn parses_help_flag_and_positional_run() {
        let (cmd, a) = Args::parse(&v(&["run", "--help"])).unwrap();
        assert_eq!(cmd, "run");
        assert!(a.help);
        let (_, a) = Args::parse(&v(&["run", "bfs", "--mode", "uvm"])).unwrap();
        assert_eq!(a.positional, vec!["bfs".to_string()]);
        assert_eq!(a.mode.as_deref(), Some("uvm"));
    }

    #[test]
    fn parses_threads_flag() {
        let (_, a) = Args::parse(&v(&["figures", "--threads", "4"])).unwrap();
        assert_eq!(a.threads, Some(4));
        let (_, a) = Args::parse(&v(&["figures"])).unwrap();
        assert_eq!(a.threads, None);
        assert!(Args::parse(&v(&["figures", "--threads", "0"])).is_none());
        assert!(Args::parse(&v(&["figures", "--threads", "x"])).is_none());
    }

    #[test]
    fn parses_check_flags() {
        let (cmd, a) = Args::parse(&v(&[
            "check", "--all", "--deny", "warnings", "--format", "json",
        ]))
        .unwrap();
        assert_eq!(cmd, "check");
        assert!(a.all);
        assert!(a.deny_warnings);
        assert_eq!(a.format.as_deref(), Some("json"));
        let (_, a) = Args::parse(&v(&["check", "bfs"])).unwrap();
        assert!(!a.all && !a.deny_warnings && a.format.is_none());
        assert_eq!(a.positional, vec!["bfs".to_string()]);
        assert!(Args::parse(&v(&["check", "--deny", "errors"])).is_none());
        assert!(Args::parse(&v(&["check", "--format", "yaml"])).is_none());
    }

    #[test]
    fn parses_verify_specs_flag() {
        let (_, a) = Args::parse(&v(&["micro", "--verify-specs"])).unwrap();
        assert!(a.verify_specs);
        let (_, a) = Args::parse(&v(&["micro"])).unwrap();
        assert!(!a.verify_specs);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Args::parse(&v(&[])).is_none());
        assert!(Args::parse(&v(&["run", "--size", "giga"])).is_none());
        assert!(Args::parse(&v(&["run", "--runs", "abc"])).is_none());
        assert!(Args::parse(&v(&["run", "--runs", "0"])).is_none());
        assert!(Args::parse(&v(&["run", "--bogus"])).is_none());
        assert!(Args::parse(&v(&["run", "--workload"])).is_none());
    }

    #[test]
    fn parses_chaos_flags() {
        let (cmd, a) = Args::parse(&v(&[
            "chaos",
            "--seed",
            "7",
            "--rates",
            "0.0,0.5, 1.0",
            "--seeds",
            "4",
            "--retries",
            "2",
        ]))
        .unwrap();
        assert_eq!(cmd, "chaos");
        assert_eq!(a.seed, 7);
        assert_eq!(a.rates, Some(vec![0.0, 0.5, 1.0]));
        assert_eq!(a.seeds, 4);
        assert_eq!(a.retries, Some(2));
    }

    #[test]
    fn chaos_flag_defaults() {
        let (_, a) = Args::parse(&v(&["chaos"])).unwrap();
        assert_eq!(a.seed, 42);
        assert_eq!(a.rates, None);
        assert_eq!(a.seeds, 8);
        assert_eq!(a.retries, None);
    }

    #[test]
    fn parses_serve_flags() {
        let (cmd, a) = Args::parse(&v(&[
            "serve",
            "--policy",
            "uvm_spillover",
            "--mix",
            "bursty",
            "--rate",
            "250.5",
            "--gpus",
            "8",
            "--requests",
            "500",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(cmd, "serve");
        assert_eq!(a.policy.as_deref(), Some("uvm_spillover"));
        assert_eq!(a.mix.as_deref(), Some("bursty"));
        assert_eq!(a.rate, Some(250.5));
        assert_eq!(a.gpus, 8);
        assert_eq!(a.requests, 500);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn serve_flag_defaults_and_rejections() {
        let (_, a) = Args::parse(&v(&["serve"])).unwrap();
        assert_eq!(a.policy, None);
        assert_eq!(a.mix, None);
        assert_eq!(a.rate, None);
        assert_eq!(a.gpus, 4);
        assert_eq!(a.requests, 200);
        assert!(Args::parse(&v(&["serve", "--mix", "steady"])).is_none());
        assert!(Args::parse(&v(&["serve", "--rate", "0"])).is_none());
        assert!(Args::parse(&v(&["serve", "--rate", "-3"])).is_none());
        assert!(Args::parse(&v(&["serve", "--rate", "inf"])).is_none());
        assert!(Args::parse(&v(&["serve", "--gpus", "0"])).is_none());
        assert!(Args::parse(&v(&["serve", "--requests", "0"])).is_none());
    }

    #[test]
    fn parses_resilience_flags() {
        let (_, a) = Args::parse(&v(&[
            "serve",
            "--chaos",
            "--intensities",
            "0.0, 0.5,1.0",
            "--deadline",
            "25.5",
        ]))
        .unwrap();
        assert!(a.chaos);
        assert_eq!(a.intensities, Some(vec![0.0, 0.5, 1.0]));
        assert_eq!(a.deadline_ms, Some(25.5));
        let (_, a) = Args::parse(&v(&["serve"])).unwrap();
        assert!(!a.chaos);
        assert_eq!(a.intensities, None);
        assert_eq!(a.deadline_ms, None);
    }

    #[test]
    fn rejects_bad_resilience_flags() {
        assert!(Args::parse(&v(&["serve", "--intensities", ""])).is_none());
        assert!(Args::parse(&v(&["serve", "--intensities", "0.5,1.5"])).is_none());
        assert!(Args::parse(&v(&["serve", "--intensities", "-0.1"])).is_none());
        assert!(Args::parse(&v(&["serve", "--intensities", "nan"])).is_none());
        assert!(Args::parse(&v(&["serve", "--intensities", "0.5,nope"])).is_none());
        assert!(Args::parse(&v(&["serve", "--intensities"])).is_none());
        assert!(Args::parse(&v(&["serve", "--deadline", "0"])).is_none());
        assert!(Args::parse(&v(&["serve", "--deadline", "-5"])).is_none());
        assert!(Args::parse(&v(&["serve", "--deadline", "inf"])).is_none());
        assert!(Args::parse(&v(&["serve", "--deadline", "abc"])).is_none());
        assert!(Args::parse(&v(&["serve", "--deadline"])).is_none());
    }

    #[test]
    fn parses_cache_flag() {
        let (_, a) = Args::parse(&v(&["micro", "--cache", "on"])).unwrap();
        assert_eq!(a.cache.as_deref(), Some("on"));
        let (_, a) = Args::parse(&v(&["micro", "--cache", "/tmp/c"])).unwrap();
        assert_eq!(a.cache.as_deref(), Some("/tmp/c"));
        let (cmd, a) = Args::parse(&v(&["cache", "stats", "--cache", "off"])).unwrap();
        assert_eq!(cmd, "cache");
        assert_eq!(a.positional, vec!["stats".to_string()]);
        assert_eq!(a.cache.as_deref(), Some("off"));
        let (_, a) = Args::parse(&v(&["micro"])).unwrap();
        assert_eq!(a.cache, None);
        assert!(Args::parse(&v(&["micro", "--cache"])).is_none());
    }

    #[test]
    fn rejects_bad_chaos_flags() {
        assert!(Args::parse(&v(&["chaos", "--seeds", "0"])).is_none());
        assert!(Args::parse(&v(&["chaos", "--rates", ""])).is_none());
        assert!(Args::parse(&v(&["chaos", "--rates", "0.5,-1"])).is_none());
        assert!(Args::parse(&v(&["chaos", "--rates", "0.5,nope"])).is_none());
        assert!(Args::parse(&v(&["chaos", "--rates", "inf"])).is_none());
        assert!(Args::parse(&v(&["chaos", "--retries", "x"])).is_none());
    }
}
