//! `hetsim` — the artifact workflow of the reproduction as one binary.
//!
//! Mirrors the paper's appendix scripts (`run_micro_all.py`,
//! `run_real_all.py`, `run_micro_sensitivity.py`, `process_perf.py`) as
//! subcommands:
//!
//! ```text
//! hetsim-cli list
//! hetsim-cli check [--all | <workload>] [--deny warnings] [--format json]
//! hetsim-cli run <workload> [--size super] [--runs 30] [--mode M] [--csv]
//! hetsim-cli micro --size large [--runs 30] [--csv]
//! hetsim-cli apps [--runs 30] [--csv]
//! hetsim-cli irregular [--size large] [--runs 30] [--csv]
//! hetsim-cli counters [--size large]
//! hetsim-cli sensitivity --study blocks|threads|carveout [--size large]
//! hetsim-cli figures --out DIR      # write every figure's CSV + SVG
//! hetsim-cli interjob [--workload W] [--jobs N]
//! hetsim-cli trace <workload> [--mode M] [--out trace.json]
//! ```
//!
//! `run --help` prints the full workload registry. With `--mode`, `run`
//! executes that one mode and reports the breakdown plus the UVM
//! fault-batcher statistics; without it, all five modes are compared.
//! `irregular` runs the fault-batcher study trio (bfs, kmeans,
//! pathfinder) and reports their batch-fill/refault profiles.
//!
//! `check` runs the static spec sanitizer (`hetsim-sanitizer`) over one
//! workload or the whole registry — no simulation — and exits non-zero on
//! errors (or on warnings under `--deny warnings`). The sweep commands
//! (`run`, `micro`, `apps`, `irregular`, `figures`) accept
//! `--verify-specs` to run the same checks before burning compute.
//!
//! `advise` runs the static performance advisor: per workload it ranks
//! all five transfer modes by predicted cost (alloc/memcpy/kernel, with a
//! one-line rationale each) and reports the `SAN-P*` advisory lints —
//! again with no simulation. `--format json` emits an array of advice
//! objects whose shape is pinned by a CI golden test.
//!
//! `trace` records one deterministic run as a structured sim-time trace
//! and exports it by output extension: `.jsonl` → line-delimited JSON,
//! `.json` → Chrome trace-event format (load in Perfetto /
//! `chrome://tracing`), `.csv` → flat CSV, anything else (or `-`) →
//! plain text. `run` and `interjob` accept `--trace FILE` to export a
//! trace alongside their tables.
//!
//! `run`, `irregular`, `interjob`, `chaos`, and `trace` also accept
//! `--trace-stream FILE` (with `--trace-format jsonl|chrome`): events
//! drain to FILE *during* the run in bounded memory, so fleet-scale
//! recordings never have to fit in the ring buffer — and never drop. The
//! streamed bytes are identical to a buffered export of the same run, at
//! any `--threads N`.
//!
//! `chaos` sweeps the `hetsim-chaos` fault injector over a workload set ×
//! intensity ramp × seed grid and prints the degradation curve: mean
//! slowdown over the fault-free baseline, how many runs degraded off the
//! requested mode, and how many exhausted their recovery budget. Plans
//! that can never recover (a nonzero fault rate with `--retries 0`) are
//! rejected before any simulation.
//!
//! `serve` puts a multi-GPU fleet under open-loop traffic
//! (`hetsim-serve`): seeded Poisson/bursty/diurnal arrivals drawn from
//! the workload registry, admission + placement through one of the five
//! shipped policies (or all of them), and a report of p50/p99/p999
//! latency, goodput, SLO attainment, and per-device utilization.
//! `serve --chaos` arms the fleet resilience layer — seeded
//! device-lifecycle faults, SLO deadlines, deadline-budgeted retries and
//! hedging — and sweeps availability curves over a fault-intensity grid.
//! A single-cell run can export the fleet schedule with
//! `--trace`/`--trace-stream`; reports and traces are byte-identical at
//! any `--threads N` for a fixed seed. See `docs/SERVING.md` for the
//! architecture.

use hetsim::batch::{InterJobPipeline, JobStages};
use hetsim::cache::{CacheChoice, DiskCache};
use hetsim::experiment::Experiment;
use hetsim::figures;
use hetsim::headline::{Headline, Section6};
use hetsim_counters::report::Table;
use hetsim_counters::svg::BarChart;
use hetsim_runtime::TransferMode;
use hetsim_workloads::{suite, InputSize};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::{Arc, OnceLock};

mod args;
use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, args)) = Args::parse(&argv) else {
        print_usage();
        return ExitCode::FAILURE;
    };
    hetsim::pool::set_threads(args.threads);
    let result = dispatch(&command, &args);
    report_cache_stats();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The process-wide disk cache, resolved once from `--cache` (falling back
/// to `HETSIM_CACHE`). `None` when caching is disabled — the default.
static DISK_CACHE: OnceLock<Option<Arc<DiskCache>>> = OnceLock::new();

fn disk_cache(args: &Args) -> Option<Arc<DiskCache>> {
    DISK_CACHE
        .get_or_init(
            || match hetsim::cache::resolve_choice(args.cache.as_deref()) {
                CacheChoice::Disabled => None,
                CacheChoice::Dir(dir) => Some(Arc::new(DiskCache::at(dir))),
            },
        )
        .clone()
}

/// The experiment every sweep command starts from: `--runs` applied and
/// the on-disk result cache attached when `--cache`/`HETSIM_CACHE`
/// enables one.
fn experiment(args: &Args) -> Experiment {
    let exp = Experiment::new().with_runs(args.runs);
    match disk_cache(args) {
        Some(disk) => exp.with_cache(disk),
        None => exp,
    }
}

/// One summary line on stderr after a cached command, so sweep scripts can
/// scrape hit/miss counts without perturbing the byte-compared stdout.
fn report_cache_stats() {
    if let Some(Some(disk)) = DISK_CACHE.get() {
        let s = disk.stats();
        if s.hits + s.misses + s.stores + s.errors > 0 {
            eprintln!(
                "cache: {} hits, {} misses, {} stored, {} errors ({})",
                s.hits,
                s.misses,
                s.stores,
                s.errors,
                disk.root().display()
            );
        }
    }
}

/// `cache stats` / `cache clear`: administration of the on-disk result
/// cache. Location follows the same `--cache`/`HETSIM_CACHE` resolution
/// as the sweep commands, except an unset knob points at the default root
/// (`target/hetsim-cache`) instead of disabling — inspecting a cache
/// should not require turning caching on.
fn cmd_cache(args: &Args) -> Result<(), String> {
    if args.help {
        println!(
            "usage: hetsim-cli cache <stats|clear> [--cache DIR]\n\
             \u{20} stats   entry count and total bytes of the cache store\n\
             \u{20} clear   delete every cached entry (the directory stays)"
        );
        return Ok(());
    }
    let root = match hetsim::cache::resolve_choice(args.cache.as_deref()) {
        CacheChoice::Dir(dir) => dir,
        CacheChoice::Disabled => DiskCache::default_root(),
    };
    let disk = DiskCache::at(root);
    let op = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("stats");
    match op {
        "stats" => {
            let scan = disk
                .scan()
                .map_err(|e| format!("cannot scan {}: {e}", disk.root().display()))?;
            println!("cache root: {}", disk.root().display());
            println!("entries:    {}", scan.entries);
            println!("bytes:      {}", scan.bytes);
            Ok(())
        }
        "clear" => {
            let removed = disk
                .clear()
                .map_err(|e| format!("cannot clear {}: {e}", disk.root().display()))?;
            println!("removed {removed} entries from {}", disk.root().display());
            Ok(())
        }
        other => Err(format!("unknown cache operation `{other}` (stats|clear)")),
    }
}

fn dispatch(command: &str, args: &Args) -> Result<(), String> {
    match command {
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        "list" => cmd_list(),
        "check" => cmd_check(args),
        "advise" => cmd_advise(args),
        "run" => cmd_run(args),
        "micro" => cmd_micro(args),
        "apps" => cmd_apps(args),
        "irregular" => cmd_irregular(args),
        "counters" => cmd_counters(args),
        "sensitivity" => cmd_sensitivity(args),
        "figures" => cmd_figures(args),
        "interjob" => cmd_interjob(args),
        "trace" => cmd_trace(args),
        "chaos" => cmd_chaos(args),
        "serve" => cmd_serve(args),
        "cache" => cmd_cache(args),
        "alternatives" => cmd_alternatives(args),
        other => Err(format!("unknown command `{other}` (try `hetsim-cli list`)")),
    }
}

fn print_usage() {
    eprintln!(
        "usage: hetsim-cli <command> [options]\n\
         commands:\n\
         \u{20}  list                               list every registered workload\n\
         \u{20}  check [--all | W] [--deny warnings] static spec sanitizer (no simulation)\n\
         \u{20}  advise [--all | W] [--size S]      static transfer-mode advisor (no simulation):\n\
         \u{20}         [--deny warnings]           per-mode cost ranking + SAN-P lints\n\
         \u{20}  run W [--size S] [--mode M]        compare modes (or run one) for a workload\n\
         \u{20}  micro [--size S]                   Fig 7: the microbenchmark suite\n\
         \u{20}  apps [--size S]                    Fig 8: the application suite\n\
         \u{20}  irregular [--size S]               fault-batcher study: bfs/kmeans/pathfinder\n\
         \u{20}  counters [--size S]                Figs 9/10: gemm/lud/yolov3 deep dive\n\
         \u{20}  sensitivity --study X [--size S]   Figs 11-13 (blocks|threads|carveout)\n\
         \u{20}  figures --out DIR                  write every figure's CSV to DIR\n\
         \u{20}  interjob [--workload W] [--jobs N] Fig 14: inter-job pipeline estimate\n\
         \u{20}  trace W [--mode M] [--out FILE]    export one run as a Chrome/Perfetto trace\n\
         \u{20}  chaos [W...] [--all] [--rates L]   fault-injection sweep: degradation curves\n\
         \u{20}  serve [--policy P] [--mix M]       GPU fleet under open-loop traffic: latency,\n\
         \u{20}        [--rate R] [--gpus N]        goodput, and per-device utilization\n\
         \u{20}        [--chaos [--intensities L]]  resilience mode: lifecycle faults, SLO\n\
         \u{20}        [--deadline MS]              deadlines, availability curves\n\
         \u{20}  cache stats|clear                  inspect or empty the on-disk result cache\n\
         options: --size tiny|small|medium|large|super|mega  --runs N  --csv\n\
         \u{20}        --cache off|on|DIR            on-disk result cache for base runs\n\
         \u{20}                      (default: HETSIM_CACHE env, else off; `on` uses\n\
         \u{20}                      target/hetsim-cache; stats print on stderr)\n\
         \u{20}        --mode standard|async|uvm|uvm_prefetch|uvm_prefetch_async\n\
         \u{20}        --trace FILE  --self-profile\n\
         \u{20}        --trace-stream FILE           stream events to FILE during the run\n\
         \u{20}        --trace-format jsonl|chrome   wire format for --trace-stream\n\
         \u{20}                      (default: jsonl, or chrome when FILE ends in .json)\n\
         \u{20}        --format text|json            check report rendering\n\
         \u{20}        --verify-specs                run `check` on the involved specs first\n\
         \u{20}        --seed N --seeds N --retries N --rates R1,R2,...   chaos sweep grid\n\
         \u{20}        --policy mode_packing|uvm_spillover|chaos_failover|mode_advisor|\n\
         \u{20}                      slo_deadline|all\n\
         \u{20}        --mix poisson|bursty|diurnal  --rate R  --gpus N  --requests N   serve\n\
         \u{20}        --chaos  --intensities X1,X2,...  --deadline MS    serve resilience\n\
         \u{20}        --threads N   worker threads for sweeps (default: HETSIM_THREADS,\n\
         \u{20}                      then machine parallelism; output is identical at any N)\n\
         `run --help` lists every valid workload name."
    );
}

fn emit(table: &Table, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

/// The registry of every runnable workload, grouped, one per line.
fn workload_registry() -> String {
    let mut s = String::new();
    for (group, entries) in [
        ("micro", suite::micro_names()),
        ("apps", suite::app_names()),
        ("irregular", suite::irregular_names()),
    ] {
        for e in entries {
            s.push_str(&format!(
                "  {:<12} {:<10} {}\n",
                e.name, group, e.description
            ));
        }
    }
    s
}

fn cmd_list() -> Result<(), String> {
    let mut t = Table::new(vec!["workload", "suite", "description"]);
    for e in suite::micro_names() {
        t.row(vec![e.name.into(), "micro".into(), e.description.into()]);
    }
    for e in suite::app_names() {
        t.row(vec![e.name.into(), "apps".into(), e.description.into()]);
    }
    for e in suite::irregular_names() {
        t.row(vec![
            e.name.into(),
            "irregular".into(),
            e.description.into(),
        ]);
    }
    println!("{t}");
    Ok(())
}

/// The UVM fault-batcher statistics of one or more reports.
fn fault_stats_table(rows: &[(String, TransferMode, hetsim_runtime::RunReport)]) -> Table {
    let mut t = Table::new(vec![
        "workload",
        "mode",
        "page_faults",
        "fault_batches",
        "mean_fill",
        "underfilled",
        "refaults",
        "heuristic_pages",
        "migrated_pages",
        "fault_stall_ns",
    ]);
    for (name, mode, r) in rows {
        let u = &r.counters.uvm;
        t.row(vec![
            name.clone(),
            mode.name().to_string(),
            u.page_faults().to_string(),
            u.fault_batches().to_string(),
            format!("{:.1}", u.mean_batch_fill()),
            format!("{:.2}", u.underfilled_batch_fraction()),
            u.refaults().to_string(),
            u.pages_heuristic().to_string(),
            u.pages_migrated().to_string(),
            u.fault_stall().as_nanos().to_string(),
        ]);
    }
    t
}

/// The `check` subcommand: runs the static sanitizer over one workload or
/// (with `--all`, or no operand) the full registry, renders the report in
/// the requested format, and fails per the `--deny warnings` policy.
fn cmd_check(args: &Args) -> Result<(), String> {
    if args.help {
        println!(
            "usage: hetsim-cli check [--all | <workload>] [--size S] [--deny warnings] \
             [--format text|json]\n\
             workloads:"
        );
        print!("{}", workload_registry());
        return Ok(());
    }
    let target = args
        .positional
        .first()
        .map(String::as_str)
        .or(args.workload.as_deref());
    let (report, checked) = match target {
        Some(name) if !args.all => {
            let w = suite::by_name(name, args.size).ok_or_else(|| {
                format!(
                    "unknown workload `{name}`; valid names:\n{}",
                    workload_registry()
                )
            })?;
            (hetsim::verify::check_program(&w), 1)
        }
        _ => (
            hetsim::verify::check_registry(args.size),
            suite::all_entries().len(),
        ),
    };
    match args.format.as_deref() {
        Some("json") => println!("{}", report.to_json()),
        _ => println!("{}", report.to_text()),
    }
    eprintln!(
        "checked {checked} workload{} at {}",
        if checked == 1 { "" } else { "s" },
        args.size
    );
    if report.is_clean(args.deny_warnings) {
        Ok(())
    } else {
        Err(format!(
            "check failed: {} error{}, {} warning{}{}",
            report.errors(),
            if report.errors() == 1 { "" } else { "s" },
            report.warnings(),
            if report.warnings() == 1 { "" } else { "s" },
            if args.deny_warnings {
                " (warnings denied)"
            } else {
                ""
            },
        ))
    }
}

/// The `advise` subcommand: runs the static performance advisor over one
/// workload or (with `--all`, or no operand) the full registry — no
/// simulation — printing each workload's per-mode cost ranking with
/// rationale plus any `SAN-P*` advisory lints. JSON output is an array of
/// advice objects (one per workload); the shape is pinned by a CI golden
/// test. `--deny warnings` exits non-zero when any advisory fires.
fn cmd_advise(args: &Args) -> Result<(), String> {
    if args.help {
        println!(
            "usage: hetsim-cli advise [--all | <workload>] [--size S] [--deny warnings] \
             [--format text|json]\n\
             workloads:"
        );
        print!("{}", workload_registry());
        return Ok(());
    }
    let device = hetsim_runtime::Device::a100_epyc();
    let target = args
        .positional
        .first()
        .map(String::as_str)
        .or(args.workload.as_deref());
    let advices = match target {
        Some(name) if !args.all => {
            let w = suite::by_name(name, args.size).ok_or_else(|| {
                format!(
                    "unknown workload `{name}`; valid names:\n{}",
                    workload_registry()
                )
            })?;
            vec![hetsim::verify::advise_program(&w, &device)]
        }
        _ => hetsim::verify::advise_registry(args.size, &device),
    };

    if args.format.as_deref() == Some("json") {
        let body: Vec<String> = advices.iter().map(|a| a.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for advice in &advices {
            println!(
                "{} @ {} on {} — best: {}",
                advice.workload,
                args.size,
                advice.device,
                advice.best().mode.name()
            );
            let mut t = Table::new(vec![
                "rank",
                "mode",
                "alloc_ms",
                "memcpy_ms",
                "kernel_ms",
                "total_ms",
                "rationale",
            ]);
            for (rank, p) in advice.ranked.iter().enumerate() {
                t.row(vec![
                    (rank + 1).to_string(),
                    p.mode.name().to_string(),
                    format!("{:.3}", p.alloc.as_millis_f64()),
                    format!("{:.3}", p.memcpy.as_millis_f64()),
                    format!("{:.3}", p.kernel.as_millis_f64()),
                    format!("{:.3}", p.total().as_millis_f64()),
                    p.rationale.clone(),
                ]);
            }
            emit(&t, args.csv);
            if !advice.report.diagnostics.is_empty() {
                println!("{}", advice.report.to_text());
            }
        }
    }

    let warnings: usize = advices.iter().map(|a| a.report.warnings()).sum();
    let errors: usize = advices.iter().map(|a| a.report.errors()).sum();
    eprintln!(
        "advised {} workload{} at {} on {} ({} advisories)",
        advices.len(),
        if advices.len() == 1 { "" } else { "s" },
        args.size,
        device.name,
        warnings + errors,
    );
    if errors > 0 || (args.deny_warnings && warnings > 0) {
        Err(format!(
            "advise failed: {errors} error{}, {warnings} warning{}{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
            if args.deny_warnings {
                " (warnings denied)"
            } else {
                ""
            },
        ))
    } else {
        Ok(())
    }
}

/// `--verify-specs` support: sanitize the spec(s) a command is about to
/// simulate — one workload when named, else the whole registry — and fail
/// fast (deny-warnings) before any compute is spent.
fn verify_specs(args: &Args, workload: Option<&str>) -> Result<(), String> {
    if !args.verify_specs {
        return Ok(());
    }
    let report = match workload {
        Some(name) => {
            let w = suite::by_name(name, args.size)
                .ok_or_else(|| format!("unknown workload {name}"))?;
            hetsim::verify::check_program(&w)
        }
        None => hetsim::verify::check_registry(args.size),
    };
    hetsim::verify::enforce(&report, true)?;
    eprintln!(
        "verify-specs: {} clean at {}",
        workload.unwrap_or("registry"),
        args.size
    );
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    if args.help {
        println!(
            "usage: hetsim-cli run <workload> [--size S] [--runs N] [--mode M] [--csv] [--trace FILE]\n\
             workloads:"
        );
        print!("{}", workload_registry());
        return Ok(());
    }
    let name = args
        .positional
        .first()
        .map(String::as_str)
        .or(args.workload.as_deref())
        .ok_or_else(|| {
            format!(
                "run needs a workload name; valid names:\n{}",
                workload_registry()
            )
        })?;
    let w = suite::by_name(name, args.size).ok_or_else(|| {
        format!(
            "unknown workload `{name}`; valid names:\n{}",
            workload_registry()
        )
    })?;
    verify_specs(args, Some(name))?;
    let exp = experiment(args).with_trace(trace_config(args));
    if let Some(mode_name) = args.mode.as_deref() {
        // Single-mode run: the paper's three-way breakdown plus the UVM
        // fault-batcher profile of the deterministic base run.
        let mode = parse_mode(mode_name)?;
        let report = exp.base_run(&w, mode);
        println!(
            "{name} @ {} [{}] ({} MB footprint)",
            args.size,
            mode.name(),
            hetsim_runtime::GpuProgram::footprint(&w) >> 20
        );
        println!("{report}");
        if mode.uses_uvm() {
            emit(
                &fault_stats_table(&[(name.to_string(), mode, report)]),
                args.csv,
            );
        }
        if let Some(path) = args.trace.as_deref() {
            let (_, trace) = exp.traced_run(&w, mode);
            write_trace(&trace, path)?;
        }
        if let Some(path) = args.trace_stream.as_deref() {
            // A second deterministic base run, this time draining events
            // to the sink as it goes; identical content by determinism.
            let (_, trace) = exp.traced_run_streaming(&w, mode, open_sink(args, path)?);
            report_stream(&trace, args, path)?;
        }
        return Ok(());
    }
    let cmp = exp.compare_modes(&w);
    println!(
        "{name} @ {} ({} runs, {} MB footprint)",
        args.size,
        args.runs,
        hetsim_runtime::GpuProgram::footprint(&w) >> 20
    );
    emit(&cmp.to_table(), args.csv);
    if let Some(path) = args.trace.as_deref() {
        // One recording with all five modes back to back on the timeline.
        let (_, trace) = exp.traced_modes(&w);
        write_trace(&trace, path)?;
        report_merge_profile(&trace, args);
    }
    if let Some(path) = args.trace_stream.as_deref() {
        // Same five-mode recording, but the merge drains through the sink
        // in mode order — byte-identical output at every --threads N.
        let (_, trace) = exp.traced_modes_streaming(&w, open_sink(args, path)?);
        report_stream(&trace, args, path)?;
        report_merge_profile(&trace, args);
    }
    Ok(())
}

/// Under `--self-profile`, one stderr line with the memo layer's
/// bookkeeping overhead after a figure grid: wall time spent in
/// `get_or_compute` that was not spent simulating. This is the number
/// ROADMAP's sweep-throughput item asks to track (threads=4 slower than
/// serial on 1-core hosts), recorded per PR by `scripts/bench.sh`.
fn report_memo_profile(exp: &Experiment, args: &Args) {
    if !args.self_profile {
        return;
    }
    let stats = exp.memo_stats();
    eprintln!(
        "self-profile: memo overhead {:.3} ms ({} lookups, {} computes, {:.3} ms simulating)",
        stats.overhead_ns() as f64 / 1e6,
        stats.lookups,
        stats.computes,
        stats.compute_ns as f64 / 1e6,
    );
}

/// Under `--self-profile`, one stderr line with the five-mode trace
/// merge's wall-clock cost (the `host.trace_merge` span recorded by the
/// experiment's merge loop) — the serial tail every parallel traced
/// sweep pays.
fn report_merge_profile(trace: &hetsim_trace::Trace, args: &Args) {
    if !args.self_profile {
        return;
    }
    let Some(track) = trace.find_track("host.trace_merge") else {
        return;
    };
    let merge_ns: u64 = trace.track_spans(track).iter().map(|e| e.dur()).sum();
    eprintln!("self-profile: trace merge {:.3} ms", merge_ns as f64 / 1e6);
}

/// The irregular-access study: bfs, kmeans, and pathfinder compared
/// across all five modes, with their fault-batcher profiles under plain
/// `uvm` (where batching behaviour is undiluted by prefetch).
fn cmd_irregular(args: &Args) -> Result<(), String> {
    verify_specs(args, None)?;
    let exp = experiment(args).with_trace(trace_config(args));
    let s = figures::irregular(&exp, args.size);
    println!(
        "irregular study (bfs/kmeans/pathfinder) @ {} ({} runs)",
        args.size, args.runs
    );
    emit(&s.to_table(), args.csv);
    emit(&Headline::from_suite(&s).to_table(), args.csv);
    // The memoized base runs: `figures::irregular` already simulated the
    // trio under plain uvm, so these lookups are free.
    let mut rows: Vec<(String, TransferMode, hetsim_runtime::RunReport)> = Vec::new();
    for name in figures::IRREGULAR_WORKLOADS {
        let w = suite::by_name(name, args.size)
            .ok_or_else(|| format!("irregular trio workload `{name}` missing from registry"))?;
        let r = exp.base_run(&w, TransferMode::Uvm);
        rows.push((name.to_string(), TransferMode::Uvm, r));
    }
    emit(&fault_stats_table(&rows), args.csv);
    if let Some(path) = args.trace_stream.as_deref() {
        // Stream the trio's plain-uvm base runs back to back as one
        // bounded-memory recording: each run carries its own mode/device
        // labels, and the merge order is the fixed trio order.
        let sink = open_sink(args, path)?;
        let mut merged = hetsim_trace::TraceBuilder::new(trace_config(args)).with_sink(sink);
        for name in figures::IRREGULAR_WORKLOADS {
            let w = suite::by_name(name, args.size)
                .ok_or_else(|| format!("irregular trio workload `{name}` missing from registry"))?;
            let (_, t) = exp.traced_run(&w, TransferMode::Uvm);
            let at = merged.now();
            merged.absorb_at(&t, at);
        }
        let trace = merged.finish();
        report_stream(&trace, args, path)?;
    }
    Ok(())
}

/// The `chaos` subcommand: sweep the fault injector over a workload ×
/// intensity × seed grid and print the degradation curve.
fn cmd_chaos(args: &Args) -> Result<(), String> {
    use hetsim::degradation::{ChaosSweep, ChaosSweepConfig};
    use hetsim_runtime::FaultPlan;
    if args.help {
        println!(
            "usage: hetsim-cli chaos [<workload>...] [--all] [--size S] [--mode M]\n\
             \u{20}       [--seed N] [--seeds N] [--retries N] [--rates R1,R2,...]\n\
             \u{20}       [--format json] [--out FILE] [--trace FILE] [--csv]\n\
             default workloads: bfs kmeans pathfinder vector_seq; --all sweeps the registry\n\
             workloads:"
        );
        print!("{}", workload_registry());
        return Ok(());
    }
    let mut cfg = ChaosSweepConfig {
        size: args.size,
        seed: args.seed,
        seeds: args.seeds,
        ..ChaosSweepConfig::default()
    };
    if args.all {
        cfg.workloads = suite::all_entries()
            .iter()
            .map(|e| e.name.to_string())
            .collect();
    } else if !args.positional.is_empty() {
        cfg.workloads = args.positional.clone();
    } else if let Some(w) = args.workload.as_deref() {
        cfg.workloads = vec![w.to_string()];
    }
    for name in &cfg.workloads {
        if suite::by_name(name, cfg.size).is_none() {
            return Err(format!(
                "unknown workload `{name}`; valid names:\n{}",
                workload_registry()
            ));
        }
    }
    if let Some(rates) = &args.rates {
        cfg.rates = rates.clone();
    }
    if let Some(mode) = args.mode.as_deref() {
        cfg.mode = parse_mode(mode)?;
    }
    if let Some(r) = args.retries {
        cfg.policy.max_retries = r;
        cfg.policy.max_replays = r;
    }
    // Plan-aware verification: reject grids that contain an impossible
    // plan (e.g. a nonzero fault rate against a zero retry budget) before
    // burning any compute on the possible cells.
    for &rate in &cfg.rates {
        hetsim::verify::check_plan(&FaultPlan::at_intensity(cfg.seed, rate), &cfg.policy)
            .map_err(|e| format!("{e} (intensity {rate})"))?;
    }
    verify_specs(args, None)?;

    let exp = experiment(args);
    let sweep = ChaosSweep::run(&exp, &cfg);
    println!(
        "chaos sweep @ {} [{}]: {} workloads x {} intensities x {} seeds",
        args.size,
        cfg.mode.name(),
        cfg.workloads.len(),
        cfg.rates.len(),
        cfg.seeds,
    );
    match args.format.as_deref() {
        Some("json") => println!("{}", sweep.to_json()),
        _ => emit(&sweep.to_table(), args.csv),
    }
    if let Some(path) = args.out.as_deref() {
        std::fs::write(path, sweep.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if args.trace.is_some() || args.trace_stream.is_some() {
        reject_trace_and_stream("chaos", args)?;
        // One representative traced run at the ramp's top intensity: the
        // injected faults land as instants on the `chaos` track and every
        // recovery cost as a phase span in its component's category.
        let name = cfg
            .workloads
            .first()
            .ok_or("chaos --trace needs at least one workload")?;
        let w = suite::by_name(name, cfg.size).ok_or_else(|| format!("unknown workload {name}"))?;
        let top = cfg.rates.iter().copied().fold(0.0, f64::max);
        match args.trace_stream.as_deref() {
            Some(path) => {
                hetsim_trace::session::start_streaming(trace_config(args), open_sink(args, path)?)
            }
            None => hetsim_trace::session::start(trace_config(args)),
        }
        let armed = exp
            .clone()
            .with_chaos(FaultPlan::at_intensity(cfg.seed, top), cfg.policy);
        let outcome = armed.try_run(&w, cfg.mode);
        let trace =
            hetsim_trace::session::finish().ok_or("trace session vanished before export")?;
        if let Some(path) = args.trace.as_deref() {
            write_trace(&trace, path)?;
        }
        if let Some(path) = args.trace_stream.as_deref() {
            report_stream(&trace, args, path)?;
        }
        if let Err(e) = outcome {
            eprintln!("traced run at intensity {top:.2} did not recover: {e}");
        }
    }
    Ok(())
}

/// The `serve` subcommand: a GPU fleet under open-loop traffic.
///
/// One `(policy, rate)` cell prints the summary row plus the per-device
/// breakdown and may export the fleet schedule as a trace; multiple
/// policies (`--policy all`, the default) or rates (`--rates`) run the
/// full grid through the pool executor. Reports and traces are
/// byte-identical at any `--threads N` for a fixed seed.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use hetsim_engine::time::Nanos;
    use hetsim_runtime::FleetFaultPlan;
    use hetsim_serve::{
        ArrivalMix, ArrivalPlan, AvailabilityCell, AvailabilityReport, AvailabilitySweep,
        ClusterTopology, Fleet, PolicyKind, ResilienceConfig, ServeConfig, ServeReport, ServeSweep,
    };
    if args.help {
        println!(
            "usage: hetsim-cli serve [--policy P|all] [--mix M] [--rate R | --rates R1,R2,...]\n\
             \u{20}       [--gpus N] [--requests N] [--size S] [--seed N] [--format json]\n\
             \u{20}       [--out FILE] [--csv] [--trace FILE | --trace-stream FILE]\n\
             \u{20}       [--chaos [--intensities X1,X2,...] [--deadline MS]]\n\
             policies: {}   (default: all)\n\
             mixes:    {}   (default: poisson)\n\
             Requests draw uniformly from the full workload registry at --size.\n\
             --chaos arms the resilience layer: seeded device-lifecycle faults at each\n\
             intensity (default grid 0.0,0.5,1.0), SLO deadlines (--deadline, default\n\
             50 ms), deadline-budgeted retries/hedging, and availability curves.",
            PolicyKind::NAMES.join(" "),
            ArrivalMix::NAMES.join(" "),
        );
        return Ok(());
    }
    let policies: Vec<PolicyKind> = match args.policy.as_deref() {
        None | Some("all") => PolicyKind::ALL.to_vec(),
        Some(name) => vec![PolicyKind::by_name(name).ok_or_else(|| {
            format!(
                "unknown policy `{name}` ({}|all)",
                PolicyKind::NAMES.join("|")
            )
        })?],
    };
    let mix_name = args.mix.as_deref().unwrap_or("poisson");
    let rates: Vec<f64> = match &args.rates {
        Some(rates) => {
            if rates.iter().any(|&r| r <= 0.0) {
                return Err("serve: every --rates entry must be positive".into());
            }
            rates.clone()
        }
        None => vec![args.rate.unwrap_or(100.0)],
    };
    if !args.chaos && (args.intensities.is_some() || args.deadline_ms.is_some()) {
        return Err("serve: --intensities/--deadline require --chaos".into());
    }
    let slo_budget = match args.deadline_ms {
        Some(ms) => Nanos::from_secs_f64(ms / 1_000.0),
        None => ArrivalPlan::DEFAULT_SLO_BUDGET,
    };
    let intensities: Vec<f64> = args
        .intensities
        .clone()
        .unwrap_or_else(|| AvailabilitySweep::DEFAULT_INTENSITIES.to_vec());
    if args.chaos {
        // Surface impossible fault plans before any simulation, like the
        // chaos command does.
        for &x in &intensities {
            FleetFaultPlan::at_intensity(args.seed, x)
                .validate()
                .map_err(|e| format!("serve --chaos: invalid plan at intensity {x}: {e}"))?;
        }
    }
    reject_trace_and_stream("serve", args)?;
    let single_cell =
        policies.len() == 1 && rates.len() == 1 && (!args.chaos || intensities.len() == 1);
    if (args.trace.is_some() || args.trace_stream.is_some()) && !single_cell {
        return Err(
            "serve: tracing needs a single cell — pick one --policy, one --rate, and (with \
             --chaos) one intensity"
                .into(),
        );
    }

    eprintln!(
        "serve @ {} [{mix_name}]: {} gpus, {} requests/cell, {} policies x {} rates{}",
        args.size,
        args.gpus,
        args.requests,
        policies.len(),
        rates.len(),
        if args.chaos {
            format!(" x {} intensities", intensities.len())
        } else {
            String::new()
        },
    );
    let fleet = Fleet::with_experiment(
        ClusterTopology::nvlink_mesh(args.gpus),
        args.size,
        experiment(args),
    );

    // The single-cell schedule export, shared by both modes.
    let export = |outcome: &hetsim_serve::FleetOutcome| -> Result<(), String> {
        let cap = outcome.trace_events().max(1);
        let config = hetsim_trace::TraceConfig::default().with_capacity(cap);
        if let Some(path) = args.trace_stream.as_deref() {
            let trace = outcome.trace_streaming(config, open_sink(args, path)?);
            report_stream(&trace, args, path)?;
        } else if let Some(path) = args.trace.as_deref() {
            let trace = outcome.trace(config);
            write_trace(&trace, path)?;
        }
        Ok(())
    };

    if args.chaos {
        let report = if single_cell {
            let mix = ArrivalMix::by_name(mix_name, rates[0]).expect("mix validated at parse");
            let res = ResilienceConfig {
                plan: FleetFaultPlan::at_intensity(args.seed, intensities[0]),
                slo_budget,
                ..ResilienceConfig::default()
            };
            let outcome = fleet.serve_resilient(
                &ServeConfig {
                    policy: policies[0],
                    mix,
                    seed: args.seed,
                    requests: args.requests,
                },
                &res,
            );
            export(&outcome)?;
            AvailabilityReport {
                cells: vec![AvailabilityCell {
                    intensity: intensities[0],
                    report: outcome.report,
                }],
            }
        } else {
            AvailabilitySweep {
                policies,
                rates,
                intensities,
                mix: mix_name.to_string(),
                seed: args.seed,
                requests: args.requests,
                slo_budget,
            }
            .run(&fleet)
        };
        match args.format.as_deref() {
            Some("json") => print!("{}", report.to_json()),
            _ => {
                emit(&report.to_table(), args.csv);
                if let [cell] = report.cells.as_slice() {
                    emit(&cell.report.device_table(), args.csv);
                }
            }
        }
        if let Some(path) = args.out.as_deref() {
            std::fs::write(path, report.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        return Ok(());
    }

    let report = if single_cell {
        let mix = ArrivalMix::by_name(mix_name, rates[0]).expect("mix validated at parse");
        let outcome = fleet.serve(&ServeConfig {
            policy: policies[0],
            mix,
            seed: args.seed,
            requests: args.requests,
        });
        export(&outcome)?;
        ServeReport {
            cells: vec![outcome.report],
        }
    } else {
        let sweep = ServeSweep {
            policies,
            rates,
            mix: mix_name.to_string(),
            seed: args.seed,
            requests: args.requests,
        };
        sweep.run(&fleet)
    };

    match args.format.as_deref() {
        Some("json") => print!("{}", report.to_json()),
        _ => {
            emit(&report.to_table(), args.csv);
            if let [cell] = report.cells.as_slice() {
                emit(&cell.device_table(), args.csv);
            }
        }
    }
    if let Some(path) = args.out.as_deref() {
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .first()
        .map(String::as_str)
        .or(args.workload.as_deref())
        .ok_or("trace needs a workload: hetsim-cli trace <workload> [--mode M] [--out FILE]")?;
    let w = suite::by_name(name, args.size).ok_or_else(|| format!("unknown workload {name}"))?;
    let mode = parse_mode(args.mode.as_deref().unwrap_or("standard"))?;
    let exp = Experiment::new().with_trace(trace_config(args));
    let (report, trace) = match args.trace_stream.as_deref() {
        Some(path) => {
            let (report, trace) = exp.traced_run_streaming(&w, mode, open_sink(args, path)?);
            report_stream(&trace, args, path)?;
            (report, trace)
        }
        None => {
            let (report, trace) = exp.traced_run(&w, mode);
            write_trace(&trace, args.out.as_deref().unwrap_or("-"))?;
            (report, trace)
        }
    };
    eprintln!(
        "{name} @ {} [{}]: alloc {} memcpy {} kernel {} system {} | {} events{}",
        args.size,
        mode.name(),
        report.alloc,
        report.memcpy,
        report.kernel,
        report.system,
        trace.total_events(),
        if trace.dropped() > 0 {
            format!(" ({} dropped)", trace.dropped())
        } else {
            String::new()
        },
    );
    Ok(())
}

/// The trace configuration implied by the common flags.
fn trace_config(args: &Args) -> hetsim_trace::TraceConfig {
    let config = hetsim_trace::TraceConfig::default();
    if args.self_profile {
        config.with_self_profile()
    } else {
        config
    }
}

/// The streamed-trace wire format for `path`: the explicit
/// `--trace-format` when given, else Chrome trace-event JSON for `.json`
/// outputs, else JSONL.
fn stream_format(args: &Args, path: &str) -> &'static str {
    match args.trace_format.as_deref() {
        Some("chrome") => "chrome",
        Some(_) => "jsonl",
        None if path.ends_with(".json") => "chrome",
        None => "jsonl",
    }
}

/// Opens `path` and wraps it in the streaming sink for the chosen format.
fn open_sink(args: &Args, path: &str) -> Result<Box<dyn hetsim_trace::TraceSink>, String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let out = std::io::BufWriter::new(file);
    Ok(match stream_format(args, path) {
        "chrome" => Box::new(hetsim_trace::ChromeSink::new(out)),
        _ => Box::new(hetsim_trace::JsonlSink::new(out)),
    })
}

/// Post-run status for a streamed trace: where it went, how many events,
/// and a hard error when the sink failed mid-run (the file is truncated;
/// trusting it silently is worse than failing the command).
fn report_stream(trace: &hetsim_trace::Trace, args: &Args, path: &str) -> Result<(), String> {
    if let Some(err) = trace.stream_error() {
        return Err(format!(
            "trace stream to {path} failed mid-run: {err} \
             (recording fell back to the in-memory ring; the file is incomplete)"
        ));
    }
    warn_dropped(trace);
    eprintln!(
        "streamed {} events to {path} ({})",
        trace.total_events(),
        stream_format(args, path)
    );
    Ok(())
}

/// Loud stderr warning when a recording dropped events (ring buffer full
/// with no sink attached) — silently truncated traces get trusted, so
/// every CLI trace path routes through this.
fn warn_dropped(trace: &hetsim_trace::Trace) {
    if trace.dropped() > 0 {
        eprintln!(
            "warning: trace dropped {} events (ring buffer full); \
             raise the capacity or stream with --trace-stream",
            trace.dropped()
        );
    }
}

/// Rejects `--trace` + `--trace-stream` together on commands where both
/// would have to share one recording session.
fn reject_trace_and_stream(command: &str, args: &Args) -> Result<(), String> {
    if args.trace.is_some() && args.trace_stream.is_some() {
        return Err(format!(
            "{command}: --trace and --trace-stream are mutually exclusive here \
             (one run, one recording session)"
        ));
    }
    Ok(())
}

fn parse_mode(name: &str) -> Result<TransferMode, String> {
    TransferMode::ALL
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| {
            let names = TransferMode::ALL.map(|m| m.name()).join("|");
            format!("unknown mode `{name}` ({names})")
        })
}

/// Writes a trace in the format implied by the output path: `.jsonl` →
/// line-delimited JSON, `.json` → Chrome trace-event JSON, `.csv` → CSV,
/// `-` or anything else → text.
fn write_trace(trace: &hetsim_trace::Trace, path: &str) -> Result<(), String> {
    warn_dropped(trace);
    let contents = if path.ends_with(".jsonl") {
        trace.to_jsonl()
    } else if path.ends_with(".json") {
        trace.to_chrome_json()
    } else if path.ends_with(".csv") {
        trace.to_csv()
    } else {
        trace.to_text()
    };
    if path == "-" {
        print!("{contents}");
        return Ok(());
    }
    // Status note on stderr: stdout may be carrying a machine-readable
    // report (e.g. `chaos --format json --trace FILE`) that must stay
    // byte-identical regardless of where the trace file landed.
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}

fn cmd_micro(args: &Args) -> Result<(), String> {
    verify_specs(args, None)?;
    let exp = experiment(args);
    let s = figures::fig7(&exp, args.size);
    println!("Fig 7: microbenchmarks @ {}", args.size);
    emit(&s.to_table(), args.csv);
    emit(&Headline::from_suite(&s).to_table(), args.csv);
    report_memo_profile(&exp, args);
    Ok(())
}

fn cmd_apps(args: &Args) -> Result<(), String> {
    verify_specs(args, None)?;
    let exp = experiment(args);
    let s = figures::fig8_at(&exp, args.size);
    println!("Fig 8: applications @ {}", args.size);
    emit(&s.to_table(), args.csv);
    emit(&Headline::from_suite(&s).to_table(), args.csv);
    emit(&Section6::from_suite(&s).to_table(), args.csv);
    report_memo_profile(&exp, args);
    Ok(())
}

fn cmd_counters(args: &Args) -> Result<(), String> {
    let exp = experiment(args);
    let c = figures::fig9_fig10(&exp, args.size);
    println!("Figs 9/10: counters @ {}", args.size);
    emit(&c.to_table(), args.csv);
    Ok(())
}

fn cmd_sensitivity(args: &Args) -> Result<(), String> {
    let exp = experiment(args);
    let study = args.study.as_deref().ok_or("sensitivity needs --study")?;
    let sweep = match study {
        "blocks" => figures::fig11(&exp, args.size),
        "threads" => figures::fig12(&exp, args.size),
        "carveout" => figures::fig13(&exp, args.size),
        other => return Err(format!("unknown study {other} (blocks|threads|carveout)")),
    };
    println!("sensitivity ({study}) @ {}", args.size);
    emit(&sweep.to_table(), args.csv);
    Ok(())
}

fn cmd_interjob(args: &Args) -> Result<(), String> {
    reject_trace_and_stream("interjob", args)?;
    let name = args.workload.as_deref().unwrap_or("vector_seq");
    let w = suite::by_name(name, args.size).ok_or_else(|| format!("unknown workload {name}"))?;
    let exp = experiment(args);
    match args.trace_stream.as_deref() {
        Some(path) => {
            hetsim_trace::session::start_streaming(trace_config(args), open_sink(args, path)?)
        }
        None if args.trace.is_some() => hetsim_trace::session::start(trace_config(args)),
        None => {}
    }
    let report = exp.base_run(&w, TransferMode::UvmPrefetchAsync);
    let pipeline = InterJobPipeline::homogeneous(JobStages::from_report(&report), args.jobs);
    if args.trace.is_some() || args.trace_stream.is_some() {
        // Append the pipelined batch schedule after the measured job, so
        // the export shows both the single run and the Fig 14 overlap.
        let (_, piped) = pipeline.traces();
        hetsim_trace::session::with(|b| {
            let at = b.now();
            b.absorb_at(&piped, at);
        });
        let trace =
            hetsim_trace::session::finish().ok_or("trace session vanished before export")?;
        if let Some(path) = args.trace.as_deref() {
            write_trace(&trace, path)?;
        }
        if let Some(path) = args.trace_stream.as_deref() {
            report_stream(&trace, args, path)?;
        }
    }
    println!(
        "Fig 14: inter-job pipeline, {name} @ {} x {} jobs",
        args.size, args.jobs
    );
    emit(&pipeline.to_table(), args.csv);
    Ok(())
}

fn cmd_alternatives(args: &Args) -> Result<(), String> {
    let name = args
        .workload
        .as_deref()
        .ok_or("alternatives needs --workload")?;
    let w = suite::by_name(name, args.size).ok_or_else(|| format!("unknown workload {name}"))?;
    let runner = hetsim_runtime::Runner::new(hetsim_runtime::Device::a100_epyc());
    println!("transfer-hiding alternatives: {name} @ {}", args.size);
    emit(
        &hetsim::extensions::alternatives_table(&runner, &w),
        args.csv,
    );
    Ok(())
}

fn cmd_figures(args: &Args) -> Result<(), String> {
    verify_specs(args, None)?;
    let out = args.out.as_deref().ok_or("figures needs --out DIR")?;
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let exp = experiment(args);

    let mut files: HashMap<&str, String> = HashMap::new();
    eprintln!("fig4/fig5 ...");
    let grid = figures::fig4(&exp, &InputSize::ALL);
    files.insert("fig04_distributions.csv", grid.to_table().to_csv());
    files.insert(
        "fig05_stability.csv",
        figures::fig5(&grid, &InputSize::ALL).to_csv(),
    );
    eprintln!("fig6 ...");
    files.insert(
        "fig06_mega_breakdown.csv",
        figures::fig6(&exp).to_table().to_csv(),
    );
    eprintln!("fig7 ...");
    let micro_large = figures::fig7(&exp, InputSize::Large);
    files.insert("fig07_micro_large.csv", micro_large.to_table().to_csv());
    files.insert(
        "fig07_micro_large.svg",
        suite_chart("Fig 7: microbenchmarks @ large", &micro_large),
    );
    files.insert(
        "fig07_micro_super.csv",
        figures::fig7(&exp, InputSize::Super).to_table().to_csv(),
    );
    eprintln!("fig8 ...");
    let apps = figures::fig8(&exp);
    files.insert("fig08_apps_super.csv", apps.to_table().to_csv());
    files.insert(
        "fig08_apps_super.svg",
        suite_chart("Fig 8: applications @ super", &apps),
    );
    files.insert(
        "headline_apps.csv",
        Headline::from_suite(&apps).to_table().to_csv(),
    );
    files.insert(
        "section6_shares.csv",
        Section6::from_suite(&apps).to_table().to_csv(),
    );
    eprintln!("fig9/fig10 ...");
    files.insert(
        "fig09_fig10_counters.csv",
        figures::fig9_fig10(&exp, InputSize::Large)
            .to_table()
            .to_csv(),
    );
    eprintln!("fig11..fig13 ...");
    files.insert(
        "fig11_blocks.csv",
        figures::fig11(&exp, InputSize::Large).to_table().to_csv(),
    );
    files.insert(
        "fig12_threads.csv",
        figures::fig12(&exp, InputSize::Large).to_table().to_csv(),
    );
    files.insert(
        "fig13_carveout.csv",
        figures::fig13(&exp, InputSize::Large).to_table().to_csv(),
    );

    for (name, contents) in files {
        let path = format!("{out}/{name}");
        std::fs::write(&path, contents).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Renders a suite comparison as the paper's grouped-bar figure style.
fn suite_chart(title: &str, suite: &figures::SuiteComparison) -> String {
    let mut chart = BarChart::new(title, "time normalized to standard");
    let names: Vec<String> = suite
        .comparisons()
        .iter()
        .map(|c| c.workload().to_string())
        .collect();
    chart.categories(&names);
    for mode in TransferMode::ALL {
        let values: Vec<f64> = suite
            .comparisons()
            .iter()
            .map(|c| c.normalized_total(mode))
            .collect();
        chart.series(mode.name(), &values);
    }
    chart.render()
}
