//! Model-based equivalence test: the dense-`Vec` + intrusive-LRU
//! [`PageTable`] must be observationally indistinguishable from the
//! map-based reference implementation it replaced (`HashMap` state +
//! `BTreeSet<(last_use, chunk)>` LRU index), on random operation
//! sequences. Driven by the engine's deterministic [`SimRng`] (no
//! external test dependencies).

use hetsim_engine::rng::SimRng;
use hetsim_uvm::page::{ChunkId, Residency};
use hetsim_uvm::table::PageTable;
use std::collections::{BTreeSet, HashMap};

/// The pre-rewrite reference implementation, kept verbatim as the model:
/// per-chunk state in a `HashMap`, LRU as an ordered `(stamp, chunk)` set.
#[derive(Default)]
struct ModelTable {
    chunks: HashMap<ChunkId, (Residency, bool, u64)>,
    lru: BTreeSet<(u64, ChunkId)>,
    clock: u64,
}

impl ModelTable {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn register(&mut self, chunk: ChunkId) {
        let now = self.tick();
        if let Some((res, _, stamp)) = self.chunks.insert(chunk, (Residency::Host, false, now)) {
            if res == Residency::Device {
                self.lru.remove(&(stamp, chunk));
            }
        }
    }

    fn is_managed(&self, chunk: ChunkId) -> bool {
        self.chunks.contains_key(&chunk)
    }

    fn is_resident(&self, chunk: ChunkId) -> bool {
        self.chunks
            .get(&chunk)
            .is_some_and(|&(res, _, _)| res == Residency::Device)
    }

    fn touch(&mut self, chunk: ChunkId, write: bool) {
        let now = self.tick();
        let s = self.chunks.get_mut(&chunk).expect("model: unmanaged");
        if s.0 == Residency::Device {
            self.lru.remove(&(s.2, chunk));
            self.lru.insert((now, chunk));
        }
        s.2 = now;
        if write {
            s.1 = true;
        }
    }

    fn make_resident(&mut self, chunk: ChunkId) {
        let now = self.tick();
        let s = self.chunks.get_mut(&chunk).expect("model: unmanaged");
        if s.0 == Residency::Device {
            self.lru.remove(&(s.2, chunk));
        }
        s.0 = Residency::Device;
        s.2 = now;
        self.lru.insert((now, chunk));
    }

    fn clear_dirty(&mut self, chunk: ChunkId) {
        self.chunks.get_mut(&chunk).expect("model: unmanaged").1 = false;
    }

    fn evict_lru(&mut self) -> Option<(ChunkId, bool)> {
        let &(stamp, victim) = self.lru.iter().next()?;
        self.lru.remove(&(stamp, victim));
        let s = self.chunks.get_mut(&victim).expect("victim exists");
        let dirty = s.1;
        s.0 = Residency::Host;
        s.1 = false;
        Some((victim, dirty))
    }

    fn unregister(&mut self, chunk: ChunkId) -> bool {
        match self.chunks.remove(&chunk) {
            Some((Residency::Device, dirty, stamp)) => {
                self.lru.remove(&(stamp, chunk));
                dirty
            }
            _ => false,
        }
    }

    fn managed_count(&self) -> usize {
        self.chunks.len()
    }

    fn resident_count(&self) -> usize {
        self.lru.len()
    }

    fn dirty_resident(&self) -> Vec<ChunkId> {
        let mut v: Vec<ChunkId> = self
            .chunks
            .iter()
            .filter(|(_, &(res, dirty, _))| res == Residency::Device && dirty)
            .map(|(&c, _)| c)
            .collect();
        v.sort_unstable();
        v
    }
}

/// The chunk universe: two dense per-buffer runs far apart in the address
/// space, mirroring how the runtime lays managed buffers out at
/// `(i + 1) << 42`.
fn universe() -> Vec<ChunkId> {
    let mut v: Vec<ChunkId> = (0..24).map(ChunkId::new).collect();
    v.extend((0..24).map(|i| ChunkId::new((1 << 26) + i)));
    v
}

fn assert_same_observations(real: &PageTable, model: &ModelTable, universe: &[ChunkId], step: u64) {
    assert_eq!(
        real.managed_count(),
        model.managed_count(),
        "managed_count @ step {step}"
    );
    assert_eq!(
        real.resident_count(),
        model.resident_count(),
        "resident_count @ step {step}"
    );
    assert_eq!(
        real.dirty_resident(),
        model.dirty_resident(),
        "dirty_resident @ step {step}"
    );
    for &c in universe {
        assert_eq!(
            real.is_managed(c),
            model.is_managed(c),
            "is_managed({c}) @ step {step}"
        );
        assert_eq!(
            real.is_resident(c),
            model.is_resident(c),
            "is_resident({c}) @ step {step}"
        );
    }
}

/// Random register/touch/make_resident/evict/clear_dirty/unregister
/// sequences produce identical observable behaviour — including the exact
/// LRU eviction order — on the dense table and the map-based model.
#[test]
fn dense_table_matches_map_model_on_random_sequences() {
    let universe = universe();
    for case in 0..32u64 {
        let mut rng = SimRng::seed_from_parts(&["table_equiv", "ops"], case);
        let mut real = PageTable::new();
        let mut model = ModelTable::default();
        // Start from a registered baseline so touch/make_resident have
        // targets; later ops re-register and unregister freely.
        for &c in &universe {
            real.register(c);
            model.register(c);
        }
        for step in 0..400u64 {
            let c = universe[rng.below(universe.len() as u64) as usize];
            match rng.below(12) {
                0 => {
                    real.register(c);
                    model.register(c);
                }
                1..=3 => {
                    // Touch only what is managed (unmanaged touches panic
                    // by contract, identically on both).
                    if model.is_managed(c) {
                        let write = rng.chance(0.5);
                        real.touch(c, write);
                        model.touch(c, write);
                    }
                }
                4..=6 => {
                    if model.is_managed(c) {
                        real.make_resident(c);
                        model.make_resident(c);
                    }
                }
                7..=8 => {
                    assert_eq!(
                        real.evict_lru(),
                        model.evict_lru(),
                        "evict order @ step {step} case {case}"
                    );
                }
                9 => {
                    if model.is_managed(c) {
                        real.clear_dirty(c);
                        model.clear_dirty(c);
                    }
                }
                _ => {
                    assert_eq!(
                        real.unregister(c),
                        model.unregister(c),
                        "unregister({c}) @ step {step} case {case}"
                    );
                }
            }
            assert_same_observations(&real, &model, &universe, step);
        }
        // Drain: the full eviction order must match to the end.
        loop {
            let (a, b) = (real.evict_lru(), model.evict_lru());
            assert_eq!(a, b, "drain order, case {case}");
            if a.is_none() {
                break;
            }
        }
    }
}
