//! Randomized invariant tests for the UVM substrate, driven by the
//! engine's deterministic [`SimRng`] (no external test dependencies).

use hetsim_engine::rng::SimRng;
use hetsim_engine::time::Nanos;
use hetsim_mem::addr::Addr;
use hetsim_mem::link::CpuGpuLink;
use hetsim_uvm::page::{chunks_of_range, CHUNK_SIZE};
use hetsim_uvm::space::{UvmConfig, UvmSpace};

const CASES: u64 = 48;

/// Chunk enumeration covers exactly the bytes of the range.
#[test]
fn chunk_enumeration_covers_range() {
    let mut rng = SimRng::seed_from_parts(&["props", "chunk_enumeration"], 0);
    for _ in 0..CASES {
        let base = rng.below(1u64 << 40);
        let bytes = rng.below(1u64 << 28);
        let n = chunks_of_range(Addr::new(base), bytes, CHUNK_SIZE).count() as u64;
        let expected = if bytes == 0 {
            0
        } else {
            (base + bytes - 1) / CHUNK_SIZE - base / CHUNK_SIZE + 1
        };
        assert_eq!(n, expected, "base {base} bytes {bytes}");
    }
}

/// No chunk is ever double-resident: touching twice faults at most once
/// per chunk, and resident bytes equal faulted chunks.
#[test]
fn residency_conservation() {
    let mut rng = SimRng::seed_from_parts(&["props", "residency_conservation"], 0);
    let link = CpuGpuLink::pcie4_a100();
    for _ in 0..CASES {
        let bytes = rng.range(1, 1u64 << 26);
        let mut s = UvmSpace::new(UvmConfig::a100());
        s.managed_alloc(Addr::new(0), bytes);
        let chunks = bytes.div_ceil(CHUNK_SIZE);
        let r1 = s.demand_touch_range(Addr::new(0), bytes, false, true, &link);
        assert_eq!(r1.chunks, chunks);
        assert_eq!(s.resident_bytes(), chunks * CHUNK_SIZE);
        let r2 = s.demand_touch_range(Addr::new(0), bytes, false, true, &link);
        assert_eq!(r2.chunks, 0);
        assert_eq!(r2.stall, Nanos::ZERO);
    }
}

/// Prefetch coverage + residual demand faults always cover the whole range
/// exactly once.
#[test]
fn prefetch_plus_demand_covers_exactly() {
    let mut rng = SimRng::seed_from_parts(&["props", "prefetch_plus_demand"], 0);
    let link = CpuGpuLink::pcie4_a100();
    for _ in 0..CASES {
        let bytes = rng.range(1, 1u64 << 26);
        let cov = rng.next_f64();
        let mut s = UvmSpace::new(UvmConfig::a100());
        s.managed_alloc(Addr::new(0), bytes);
        s.prefetch_range(Addr::new(0), bytes, cov, &link);
        let prefetched = s.counters().pages_prefetched();
        let r = s.demand_touch_range(Addr::new(0), bytes, false, true, &link);
        assert_eq!(prefetched + r.chunks, bytes.div_ceil(CHUNK_SIZE));
    }
}

/// Higher coverage never increases the residual fault stall.
#[test]
fn coverage_monotonicity() {
    let mut rng = SimRng::seed_from_parts(&["props", "coverage_monotonicity"], 0);
    let link = CpuGpuLink::pcie4_a100();
    for _ in 0..CASES {
        let bytes = rng.range(1, 1u64 << 26);
        let a = rng.next_f64();
        let b = rng.next_f64();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let run = |cov: f64| {
            let mut s = UvmSpace::new(UvmConfig::a100());
            s.managed_alloc(Addr::new(0), bytes);
            s.prefetch_range(Addr::new(0), bytes, cov, &link);
            s.demand_touch_range(Addr::new(0), bytes, false, true, &link)
                .stall
        };
        assert!(run(hi) <= run(lo));
    }
}

/// Oversubscription never exceeds device capacity.
#[test]
fn eviction_respects_capacity() {
    let mut rng = SimRng::seed_from_parts(&["props", "eviction_respects_capacity"], 0);
    let link = CpuGpuLink::pcie4_a100();
    for _ in 0..CASES {
        let chunks = rng.range(1, 256);
        let cap_chunks = rng.range(1, 64);
        let mut cfg = UvmConfig::a100();
        cfg.device_capacity = cap_chunks * cfg.chunk_size;
        let bytes = chunks * cfg.chunk_size;
        let mut s = UvmSpace::new(cfg);
        s.managed_alloc(Addr::new(0), bytes);
        s.demand_touch_range(Addr::new(0), bytes, true, true, &link);
        assert!(s.resident_bytes() <= cfg.device_capacity);
    }
}
