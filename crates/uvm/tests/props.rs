//! Property-based tests for the UVM substrate.

use hetsim_engine::time::Nanos;
use hetsim_mem::addr::Addr;
use hetsim_mem::link::CpuGpuLink;
use hetsim_uvm::page::{chunks_of_range, CHUNK_SIZE};
use hetsim_uvm::space::{UvmConfig, UvmSpace};
use proptest::prelude::*;

proptest! {
    /// Chunk enumeration covers exactly the bytes of the range.
    #[test]
    fn chunk_enumeration_covers_range(base in 0u64..1u64<<40, bytes in 0u64..1u64<<28) {
        let n = chunks_of_range(Addr::new(base), bytes, CHUNK_SIZE).count() as u64;
        let expected = if bytes == 0 {
            0
        } else {
            (base + bytes - 1) / CHUNK_SIZE - base / CHUNK_SIZE + 1
        };
        prop_assert_eq!(n, expected);
    }

    /// No chunk is ever double-resident: touching twice faults at most
    /// once per chunk, and resident bytes equal faulted chunks.
    #[test]
    fn residency_conservation(bytes in 1u64..1u64<<26) {
        let link = CpuGpuLink::pcie4_a100();
        let mut s = UvmSpace::new(UvmConfig::a100());
        s.managed_alloc(Addr::new(0), bytes);
        let chunks = bytes.div_ceil(CHUNK_SIZE);
        let r1 = s.demand_touch_range(Addr::new(0), bytes, false, true, &link);
        prop_assert_eq!(r1.chunks, chunks);
        prop_assert_eq!(s.resident_bytes(), chunks * CHUNK_SIZE);
        let r2 = s.demand_touch_range(Addr::new(0), bytes, false, true, &link);
        prop_assert_eq!(r2.chunks, 0);
        prop_assert_eq!(r2.stall, Nanos::ZERO);
    }

    /// Prefetch coverage + residual demand faults always cover the whole
    /// range exactly once.
    #[test]
    fn prefetch_plus_demand_covers_exactly(bytes in 1u64..1u64<<26, cov in 0.0f64..=1.0) {
        let link = CpuGpuLink::pcie4_a100();
        let mut s = UvmSpace::new(UvmConfig::a100());
        s.managed_alloc(Addr::new(0), bytes);
        s.prefetch_range(Addr::new(0), bytes, cov, &link);
        let prefetched = s.counters().pages_prefetched();
        let r = s.demand_touch_range(Addr::new(0), bytes, false, true, &link);
        prop_assert_eq!(prefetched + r.chunks, bytes.div_ceil(CHUNK_SIZE));
    }

    /// Higher coverage never increases the residual fault stall.
    #[test]
    fn coverage_monotonicity(bytes in 1u64..1u64<<26, lo in 0.0f64..=1.0, hi in 0.0f64..=1.0) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let link = CpuGpuLink::pcie4_a100();
        let run = |cov: f64| {
            let mut s = UvmSpace::new(UvmConfig::a100());
            s.managed_alloc(Addr::new(0), bytes);
            s.prefetch_range(Addr::new(0), bytes, cov, &link);
            s.demand_touch_range(Addr::new(0), bytes, false, true, &link).stall
        };
        prop_assert!(run(hi) <= run(lo));
    }

    /// Oversubscription never exceeds device capacity.
    #[test]
    fn eviction_respects_capacity(chunks in 1u64..256, cap_chunks in 1u64..64) {
        let link = CpuGpuLink::pcie4_a100();
        let mut cfg = UvmConfig::a100();
        cfg.device_capacity = cap_chunks * cfg.chunk_size;
        let bytes = chunks * cfg.chunk_size;
        let mut s = UvmSpace::new(cfg);
        s.managed_alloc(Addr::new(0), bytes);
        s.demand_touch_range(Addr::new(0), bytes, true, true, &link);
        prop_assert!(s.resident_bytes() <= cfg.device_capacity);
    }
}
