//! Page/chunk identifiers and residency state.
//!
//! The driver tracks residency and migrates data at a coarser granularity
//! than the 4 KB architectural page — 64 KB chunks by default here, matching
//! the UVM driver's basic migration block. All UVM bookkeeping in the
//! simulator is chunk-granular.

use hetsim_mem::addr::Addr;
use std::fmt;

/// Default architectural page size (x86 host), bytes.
pub const PAGE_SIZE: u64 = 4 * 1024;

/// Default UVM migration chunk, bytes.
pub const CHUNK_SIZE: u64 = 64 * 1024;

/// Identifier of one migration chunk of the unified address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(u64);

impl ChunkId {
    /// Creates a chunk id from its index.
    pub const fn new(idx: u64) -> Self {
        ChunkId(idx)
    }

    /// The chunk containing `addr` for a given chunk size.
    pub fn containing(addr: Addr, chunk_size: u64) -> Self {
        ChunkId(addr.block(chunk_size))
    }

    /// Raw index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// First byte address of this chunk.
    pub const fn base(self, chunk_size: u64) -> u64 {
        self.0 * chunk_size
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk#{}", self.0)
    }
}

/// Where a chunk's backing memory currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Residency {
    /// Resident in host DRAM (the initial state of managed memory).
    Host,
    /// Resident in device (GPU) memory.
    Device,
}

/// Enumerates the chunks overlapped by `[base, base + bytes)`.
///
/// # Example
///
/// ```
/// use hetsim_uvm::page::{chunks_of_range, CHUNK_SIZE};
/// use hetsim_mem::addr::Addr;
/// let ids: Vec<_> = chunks_of_range(Addr::new(0), 2 * CHUNK_SIZE + 1, CHUNK_SIZE).collect();
/// assert_eq!(ids.len(), 3);
/// ```
pub fn chunks_of_range(base: Addr, bytes: u64, chunk_size: u64) -> impl Iterator<Item = ChunkId> {
    assert!(chunk_size > 0, "chunk size must be non-zero");
    let first = base.as_u64() / chunk_size;
    let last = if bytes == 0 {
        first
    } else {
        (base.as_u64() + bytes - 1) / chunk_size + 1
    };
    (first..last).map(ChunkId::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_chunk() {
        let c = ChunkId::containing(Addr::new(CHUNK_SIZE + 5), CHUNK_SIZE);
        assert_eq!(c.index(), 1);
        assert_eq!(c.base(CHUNK_SIZE), CHUNK_SIZE);
    }

    #[test]
    fn range_enumeration_counts() {
        let n = |base: u64, bytes: u64| chunks_of_range(Addr::new(base), bytes, CHUNK_SIZE).count();
        assert_eq!(n(0, 0), 0);
        assert_eq!(n(0, 1), 1);
        assert_eq!(n(0, CHUNK_SIZE), 1);
        assert_eq!(n(0, CHUNK_SIZE + 1), 2);
        // Unaligned base straddles a boundary.
        assert_eq!(n(CHUNK_SIZE - 1, 2), 2);
    }

    #[test]
    fn display_and_order() {
        assert_eq!(ChunkId::new(3).to_string(), "chunk#3");
        assert!(ChunkId::new(1) < ChunkId::new(2));
    }
}
