//! Far-fault generation and batched servicing.
//!
//! When a GPU access touches a non-resident page, the SM's address
//! translation raises a *far fault*, the faulting warp stalls, and the
//! driver drains the fault buffer in batches — handling a batch costs tens
//! of microseconds regardless of how many faults it contains (Allen & Ge;
//! Kim et al.'s batch-aware handling is cited in §2.1). Batched service
//! latency is the mechanism behind the paper's observation that plain `uvm`
//! *doubles* GPU kernel time on the microbenchmarks (§4.1.1, §4.2.2: the
//! inflation shows up in kernel time because the faulting warps stall
//! on-SM while the driver works).
//!
//! Because the batch cost is mostly fixed, *fill* matters: an
//! address-ordered streaming workload retires every batch at capacity,
//! while an irregular touch sequence (a BFS frontier, a wavefront halo)
//! keeps retiring partial batches and pays the fixed latency per handful
//! of faults. [`crate::touch`] drives this path and
//! `hetsim-counters`' batch-fill histogram exposes it; the streaming vs.
//! irregular contrast is pinned by `tests/irregular_shapes.rs`.

use hetsim_engine::time::Nanos;

/// Fault-servicing cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Maximum faults the driver retires per batch.
    pub batch_capacity: u32,
    /// Fixed service latency per batch (driver + replay round trip).
    pub batch_latency: Nanos,
    /// Additional per-fault overhead within a batch (TLB shootdown etc.).
    pub per_fault: Nanos,
}

impl FaultConfig {
    /// Calibrated to published A100 UVM measurements: 256-entry batches at
    /// ~38 µs per batch plus ~120 ns of per-fault bookkeeping.
    pub fn a100() -> Self {
        FaultConfig {
            batch_capacity: 256,
            batch_latency: Nanos::from_micros(38),
            per_fault: Nanos::from_nanos(120),
        }
    }

    /// Stall time for servicing `faults` far faults.
    ///
    /// Faults arrive over the course of the kernel, so they fill batches:
    /// `ceil(faults / batch_capacity)` batch services, each paying the fixed
    /// latency, plus the per-fault term.
    pub fn service_stall(&self, faults: u64) -> Nanos {
        if faults == 0 {
            return Nanos::ZERO;
        }
        let batches = faults.div_ceil(self.batch_capacity as u64);
        self.batch_latency * batches + self.per_fault * faults
    }

    /// Number of batches needed for `faults` faults.
    pub fn batches_for(&self, faults: u64) -> u64 {
        faults.div_ceil(self.batch_capacity as u64)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::a100()
    }
}

/// The outcome of demand-migrating a set of chunks during a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Chunks that faulted and migrated.
    pub chunks: u64,
    /// Fault batches serviced.
    pub batches: u64,
    /// Kernel stall attributable to fault servicing.
    pub stall: Nanos,
    /// Link busy time moving the chunks (counted as memcpy time).
    pub transfer: Nanos,
}

impl FaultReport {
    /// Merges two reports (e.g. across buffers of one kernel).
    pub fn merge(self, other: FaultReport) -> FaultReport {
        FaultReport {
            chunks: self.chunks + other.chunks,
            batches: self.batches + other.batches,
            stall: self.stall + other.stall,
            transfer: self.transfer + other.transfer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_faults_cost_nothing() {
        let f = FaultConfig::a100();
        assert_eq!(f.service_stall(0), Nanos::ZERO);
        assert_eq!(f.batches_for(0), 0);
    }

    #[test]
    fn one_fault_pays_full_batch() {
        let f = FaultConfig::a100();
        assert_eq!(
            f.service_stall(1),
            Nanos::from_micros(38) + Nanos::from_nanos(120)
        );
        assert_eq!(f.batches_for(1), 1);
    }

    #[test]
    fn batch_boundaries() {
        let f = FaultConfig::a100();
        assert_eq!(f.batches_for(256), 1);
        assert_eq!(f.batches_for(257), 2);
        let s256 = f.service_stall(256);
        let s257 = f.service_stall(257);
        assert!(s257 > s256);
        assert_eq!(
            s257 - s256,
            Nanos::from_micros(38) + Nanos::from_nanos(120),
            "crossing a batch boundary pays a whole batch latency"
        );
    }

    #[test]
    fn stall_scales_with_faults() {
        let f = FaultConfig::a100();
        // 512 MB buffer at 64 KB chunks = 8192 faults = 32 batches.
        let stall = f.service_stall(8192);
        let expected = Nanos::from_micros(38) * 32 + Nanos::from_nanos(120) * 8192;
        assert_eq!(stall, expected);
    }

    #[test]
    fn merge_reports() {
        let a = FaultReport {
            chunks: 10,
            batches: 1,
            stall: Nanos::from_micros(38),
            transfer: Nanos::from_micros(100),
        };
        let b = FaultReport {
            chunks: 5,
            batches: 1,
            stall: Nanos::from_micros(38),
            transfer: Nanos::from_micros(50),
        };
        let m = a.merge(b);
        assert_eq!(m.chunks, 15);
        assert_eq!(m.batches, 2);
        assert_eq!(m.stall, Nanos::from_micros(76));
        assert_eq!(m.transfer, Nanos::from_micros(150));
    }
}
