//! The device-side page table with chunk-granular residency and LRU
//! eviction.
//!
//! GPUs keep "a copy of the CPU virtual memory physical memory mapping" when
//! UVM is in use (§2.1); the simulator reduces that to the single question
//! the timing model needs: *is this chunk resident on the device right now?*
//!
//! Managed allocations register dense runs of chunk ids (one contiguous
//! range per buffer), so the table stores per-chunk state in dense
//! [`Vec`]-backed *regions* instead of a hash map, and threads an intrusive
//! doubly-linked LRU list through the slots instead of keeping a separate
//! ordered index. Every hot-path operation — `register`, `touch`,
//! `make_resident`, `evict_lru` — is `O(1)` (plus a binary search over the
//! handful of regions, one per buffer), which matters when Mega inputs
//! oversubscribe the device by hundreds of thousands of chunks and
//! irregular touch sequences hammer the fault path.

use crate::page::{ChunkId, Residency};

/// Reference to one slot: region index + chunk offset within the region.
/// Doubles as the link type of the intrusive LRU list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotRef {
    region: u32,
    offset: u32,
}

/// The list-terminator sentinel.
const NIL: SlotRef = SlotRef {
    region: u32::MAX,
    offset: u32::MAX,
};

impl SlotRef {
    fn is_nil(self) -> bool {
        self == NIL
    }
}

/// Per-chunk page-table state plus its LRU links. `prev`/`next` are only
/// meaningful while the chunk is device-resident (on the LRU list).
#[derive(Debug, Clone, Copy)]
struct Slot {
    managed: bool,
    residency: Residency,
    dirty: bool,
    prev: SlotRef,
    next: SlotRef,
}

impl Slot {
    fn fresh() -> Self {
        Slot {
            managed: true,
            residency: Residency::Host,
            dirty: false,
            prev: NIL,
            next: NIL,
        }
    }
}

/// One dense run of chunk ids starting at `start`.
#[derive(Debug, Clone)]
struct Region {
    start: u64,
    slots: Vec<Slot>,
}

impl Region {
    fn end(&self) -> u64 {
        self.start + self.slots.len() as u64
    }
}

/// The device page table for one managed address space.
#[derive(Debug, Clone)]
pub struct PageTable {
    /// Dense chunk-state regions, sorted by `start`, non-overlapping.
    regions: Vec<Region>,
    /// Intrusive LRU list over device-resident slots (head = oldest).
    head: SlotRef,
    tail: SlotRef,
    managed: usize,
    resident: usize,
}

impl Default for PageTable {
    fn default() -> Self {
        PageTable::new()
    }
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PageTable {
            regions: Vec::new(),
            head: NIL,
            tail: NIL,
            managed: 0,
            resident: 0,
        }
    }

    /// The region containing `chunk`, if any — a binary search over the
    /// per-buffer regions (a handful), not the chunks.
    fn find(&self, chunk: ChunkId) -> Option<SlotRef> {
        let idx = chunk.index();
        let r = self.regions.partition_point(|r| r.start <= idx);
        if r == 0 {
            return None;
        }
        let region = &self.regions[r - 1];
        if idx < region.end() {
            Some(SlotRef {
                region: (r - 1) as u32,
                offset: (idx - region.start) as u32,
            })
        } else {
            None
        }
    }

    fn slot(&self, r: SlotRef) -> &Slot {
        &self.regions[r.region as usize].slots[r.offset as usize]
    }

    fn slot_mut(&mut self, r: SlotRef) -> &mut Slot {
        &mut self.regions[r.region as usize].slots[r.offset as usize]
    }

    fn chunk_of(&self, r: SlotRef) -> ChunkId {
        ChunkId::new(self.regions[r.region as usize].start + r.offset as u64)
    }

    // ---- intrusive LRU list ----

    fn lru_unlink(&mut self, r: SlotRef) {
        let (prev, next) = {
            let s = self.slot(r);
            (s.prev, s.next)
        };
        if prev.is_nil() {
            self.head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next.is_nil() {
            self.tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
        let s = self.slot_mut(r);
        s.prev = NIL;
        s.next = NIL;
    }

    fn lru_push_back(&mut self, r: SlotRef) {
        let old_tail = self.tail;
        {
            let s = self.slot_mut(r);
            s.prev = old_tail;
            s.next = NIL;
        }
        if old_tail.is_nil() {
            self.head = r;
        } else {
            self.slot_mut(old_tail).next = r;
        }
        self.tail = r;
    }

    /// Registers a chunk as managed, initially host-resident.
    ///
    /// Re-registering an existing chunk resets it to host residency (a
    /// fresh allocation reusing the address range).
    pub fn register(&mut self, chunk: ChunkId) {
        if let Some(r) = self.find(chunk) {
            let s = *self.slot(r);
            if s.managed && s.residency == Residency::Device {
                self.lru_unlink(r);
                self.resident -= 1;
            }
            if !s.managed {
                self.managed += 1;
            }
            *self.slot_mut(r) = Slot::fresh();
            return;
        }
        let idx = chunk.index();
        // Extend the region this chunk is dense-adjacent to, if any;
        // managed_alloc registers each buffer's chunks in ascending order,
        // so this is the common case after the first chunk of a buffer.
        let at = self.regions.partition_point(|r| r.start <= idx);
        if at > 0 && self.regions[at - 1].end() == idx {
            self.regions[at - 1].slots.push(Slot::fresh());
        } else {
            self.regions.insert(
                at,
                Region {
                    start: idx,
                    slots: vec![Slot::fresh()],
                },
            );
        }
        self.managed += 1;
    }

    /// Whether the chunk is registered at all.
    pub fn is_managed(&self, chunk: ChunkId) -> bool {
        self.find(chunk).is_some_and(|r| self.slot(r).managed)
    }

    /// Whether the chunk is resident on the device.
    pub fn is_resident(&self, chunk: ChunkId) -> bool {
        self.find(chunk).is_some_and(|r| {
            let s = self.slot(r);
            s.managed && s.residency == Residency::Device
        })
    }

    fn managed_ref(&self, chunk: ChunkId) -> Option<SlotRef> {
        self.find(chunk).filter(|&r| self.slot(r).managed)
    }

    /// Records a device access: bumps LRU, marks dirty for writes.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not managed — touching unmanaged memory is a
    /// simulator bug, the analogue of a real segfault.
    pub fn touch(&mut self, chunk: ChunkId, write: bool) {
        let r = self.managed_ref(chunk).expect("touched unmanaged chunk");
        if self.slot(r).residency == Residency::Device {
            self.lru_unlink(r);
            self.lru_push_back(r);
        }
        if write {
            self.slot_mut(r).dirty = true;
        }
    }

    /// Marks a chunk device-resident (after migration or prefetch).
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not managed.
    pub fn make_resident(&mut self, chunk: ChunkId) {
        let r = self
            .managed_ref(chunk)
            .expect("made unmanaged chunk resident");
        if self.slot(r).residency == Residency::Device {
            self.lru_unlink(r);
        } else {
            self.slot_mut(r).residency = Residency::Device;
            self.resident += 1;
        }
        self.lru_push_back(r);
    }

    /// Clears a chunk's dirty bit after a writeback; residency is kept.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not managed.
    pub fn clear_dirty(&mut self, chunk: ChunkId) {
        let r = self
            .managed_ref(chunk)
            .expect("cleared dirty on unmanaged chunk");
        self.slot_mut(r).dirty = false;
    }

    /// Evicts the least-recently-used device-resident chunk back to the
    /// host, returning `(chunk, was_dirty)`; `None` if nothing is resident.
    pub fn evict_lru(&mut self) -> Option<(ChunkId, bool)> {
        let victim = self.head;
        if victim.is_nil() {
            return None;
        }
        self.lru_unlink(victim);
        self.resident -= 1;
        let chunk = self.chunk_of(victim);
        let s = self.slot_mut(victim);
        let dirty = s.dirty;
        s.residency = Residency::Host;
        s.dirty = false;
        Some((chunk, dirty))
    }

    /// Unregisters a chunk (free), returning whether it was dirty on the
    /// device (needs writeback).
    pub fn unregister(&mut self, chunk: ChunkId) -> bool {
        let Some(r) = self.managed_ref(chunk) else {
            return false;
        };
        let s = *self.slot(r);
        if s.residency == Residency::Device {
            self.lru_unlink(r);
            self.resident -= 1;
        }
        self.managed -= 1;
        let slot = self.slot_mut(r);
        slot.managed = false;
        slot.residency = Residency::Host;
        slot.dirty = false;
        s.residency == Residency::Device && s.dirty
    }

    /// Number of managed chunks.
    pub fn managed_count(&self) -> usize {
        self.managed
    }

    /// Number of device-resident chunks.
    pub fn resident_count(&self) -> usize {
        self.resident
    }

    /// Chunks that are both device-resident and dirty, in ascending chunk
    /// order (regions are sorted and dense, so the scan is already sorted).
    pub fn dirty_resident(&self) -> Vec<ChunkId> {
        let mut v = Vec::new();
        for region in &self.regions {
            for (off, s) in region.slots.iter().enumerate() {
                if s.managed && s.residency == Residency::Device && s.dirty {
                    v.push(ChunkId::new(region.start + off as u64));
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u64) -> ChunkId {
        ChunkId::new(i)
    }

    #[test]
    fn register_starts_host_resident() {
        let mut t = PageTable::new();
        t.register(c(0));
        assert!(t.is_managed(c(0)));
        assert!(!t.is_resident(c(0)));
        assert_eq!(t.managed_count(), 1);
        assert_eq!(t.resident_count(), 0);
    }

    #[test]
    fn migration_flow() {
        let mut t = PageTable::new();
        t.register(c(1));
        t.make_resident(c(1));
        assert!(t.is_resident(c(1)));
        assert_eq!(t.resident_count(), 1);
    }

    #[test]
    fn touch_marks_dirty() {
        let mut t = PageTable::new();
        t.register(c(2));
        t.make_resident(c(2));
        t.touch(c(2), false);
        assert!(t.dirty_resident().is_empty());
        t.touch(c(2), true);
        assert_eq!(t.dirty_resident(), vec![c(2)]);
    }

    #[test]
    fn evict_lru_picks_oldest() {
        let mut t = PageTable::new();
        for i in 0..3 {
            t.register(c(i));
            t.make_resident(c(i));
        }
        t.touch(c(0), false); // refresh chunk 0: chunk 1 is now LRU
        let (victim, dirty) = t.evict_lru().unwrap();
        assert_eq!(victim, c(1));
        assert!(!dirty);
        assert!(!t.is_resident(c(1)));
        assert!(t.is_managed(c(1)), "eviction keeps the mapping");
    }

    #[test]
    fn evict_reports_dirty() {
        let mut t = PageTable::new();
        t.register(c(0));
        t.make_resident(c(0));
        t.touch(c(0), true);
        let (_, dirty) = t.evict_lru().unwrap();
        assert!(dirty);
        assert_eq!(t.evict_lru(), None, "nothing left resident");
    }

    #[test]
    fn unregister_reports_writeback_need() {
        let mut t = PageTable::new();
        t.register(c(0));
        t.make_resident(c(0));
        t.touch(c(0), true);
        assert!(t.unregister(c(0)));
        assert!(!t.unregister(c(0)), "double free is a no-op");
        assert_eq!(t.managed_count(), 0);
        assert_eq!(t.resident_count(), 0);
    }

    #[test]
    fn reregister_resets_state() {
        let mut t = PageTable::new();
        t.register(c(0));
        t.make_resident(c(0));
        t.touch(c(0), true);
        t.register(c(0));
        assert!(!t.is_resident(c(0)));
        assert!(t.dirty_resident().is_empty());
        assert_eq!(t.resident_count(), 0, "LRU index must forget the chunk");
    }

    #[test]
    fn lru_index_stays_consistent_under_churn() {
        let mut t = PageTable::new();
        for i in 0..100 {
            t.register(c(i));
            t.make_resident(c(i));
        }
        for i in 0..100 {
            t.touch(c(i % 7), i % 2 == 0);
        }
        let mut evicted = 0;
        while t.evict_lru().is_some() {
            evicted += 1;
        }
        assert_eq!(evicted, 100);
        assert_eq!(t.resident_count(), 0);
        assert_eq!(t.managed_count(), 100);
    }

    #[test]
    fn disjoint_regions_stay_independent() {
        // Two buffers far apart in the address space: two dense regions.
        let mut t = PageTable::new();
        for i in 0..8 {
            t.register(c(i));
            t.register(c((1 << 26) + i));
        }
        assert_eq!(t.managed_count(), 16);
        assert!(t.is_managed(c(7)));
        assert!(t.is_managed(c((1 << 26) + 7)));
        assert!(!t.is_managed(c(8)));
        assert!(!t.is_managed(c((1 << 26) - 1)));
        t.make_resident(c(3));
        t.make_resident(c((1 << 26) + 5));
        assert_eq!(t.evict_lru().unwrap().0, c(3), "LRU order spans regions");
        assert_eq!(t.evict_lru().unwrap().0, c((1 << 26) + 5));
    }

    #[test]
    fn unregistered_slot_in_dense_region_acts_unmanaged() {
        let mut t = PageTable::new();
        for i in 0..4 {
            t.register(c(i));
        }
        t.unregister(c(2));
        assert!(!t.is_managed(c(2)));
        assert!(t.is_managed(c(1)) && t.is_managed(c(3)));
        // Re-registering the hole restores it without growing the count
        // past the dense range.
        t.register(c(2));
        assert_eq!(t.managed_count(), 4);
    }

    #[test]
    #[should_panic(expected = "unmanaged")]
    fn touching_unmanaged_panics() {
        let mut t = PageTable::new();
        t.touch(c(9), false);
    }
}
