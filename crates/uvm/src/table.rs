//! The device-side page table with chunk-granular residency and LRU
//! eviction.
//!
//! GPUs keep "a copy of the CPU virtual memory physical memory mapping" when
//! UVM is in use (§2.1); the simulator reduces that to the single question
//! the timing model needs: *is this chunk resident on the device right now?*
//! An LRU index (a `BTreeSet` keyed on use time) supports the
//! oversubscription path — eviction back to the host — in `O(log n)` per
//! operation, which matters when Mega inputs oversubscribe the device by
//! hundreds of thousands of chunks.

use crate::page::{ChunkId, Residency};
use std::collections::{BTreeSet, HashMap};

/// Per-chunk page-table state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkState {
    residency: Residency,
    dirty: bool,
    last_use: u64,
}

/// The device page table for one managed address space.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    chunks: HashMap<ChunkId, ChunkState>,
    /// Device-resident chunks ordered by last use (oldest first).
    lru: BTreeSet<(u64, ChunkId)>,
    clock: u64,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PageTable::default()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Registers a chunk as managed, initially host-resident.
    ///
    /// Re-registering an existing chunk resets it to host residency (a
    /// fresh allocation reusing the address range).
    pub fn register(&mut self, chunk: ChunkId) {
        let now = self.tick();
        if let Some(old) = self.chunks.insert(
            chunk,
            ChunkState {
                residency: Residency::Host,
                dirty: false,
                last_use: now,
            },
        ) {
            if old.residency == Residency::Device {
                self.lru.remove(&(old.last_use, chunk));
            }
        }
    }

    /// Whether the chunk is registered at all.
    pub fn is_managed(&self, chunk: ChunkId) -> bool {
        self.chunks.contains_key(&chunk)
    }

    /// Whether the chunk is resident on the device.
    pub fn is_resident(&self, chunk: ChunkId) -> bool {
        self.chunks
            .get(&chunk)
            .is_some_and(|s| s.residency == Residency::Device)
    }

    /// Records a device access: bumps LRU, marks dirty for writes.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not managed — touching unmanaged memory is a
    /// simulator bug, the analogue of a real segfault.
    pub fn touch(&mut self, chunk: ChunkId, write: bool) {
        let now = self.tick();
        let s = self
            .chunks
            .get_mut(&chunk)
            .expect("touched unmanaged chunk");
        if s.residency == Residency::Device {
            self.lru.remove(&(s.last_use, chunk));
            self.lru.insert((now, chunk));
        }
        s.last_use = now;
        if write {
            s.dirty = true;
        }
    }

    /// Marks a chunk device-resident (after migration or prefetch).
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not managed.
    pub fn make_resident(&mut self, chunk: ChunkId) {
        let now = self.tick();
        let s = self
            .chunks
            .get_mut(&chunk)
            .expect("made unmanaged chunk resident");
        if s.residency == Residency::Device {
            self.lru.remove(&(s.last_use, chunk));
        }
        s.residency = Residency::Device;
        s.last_use = now;
        self.lru.insert((now, chunk));
    }

    /// Clears a chunk's dirty bit after a writeback; residency is kept.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not managed.
    pub fn clear_dirty(&mut self, chunk: ChunkId) {
        let s = self
            .chunks
            .get_mut(&chunk)
            .expect("cleared dirty on unmanaged chunk");
        s.dirty = false;
    }

    /// Evicts the least-recently-used device-resident chunk back to the
    /// host, returning `(chunk, was_dirty)`; `None` if nothing is resident.
    pub fn evict_lru(&mut self) -> Option<(ChunkId, bool)> {
        let &(stamp, victim) = self.lru.iter().next()?;
        self.lru.remove(&(stamp, victim));
        let s = self.chunks.get_mut(&victim).expect("victim exists");
        let dirty = s.dirty;
        s.residency = Residency::Host;
        s.dirty = false;
        Some((victim, dirty))
    }

    /// Unregisters a chunk (free), returning whether it was dirty on the
    /// device (needs writeback).
    pub fn unregister(&mut self, chunk: ChunkId) -> bool {
        match self.chunks.remove(&chunk) {
            Some(s) if s.residency == Residency::Device => {
                self.lru.remove(&(s.last_use, chunk));
                s.dirty
            }
            _ => false,
        }
    }

    /// Number of managed chunks.
    pub fn managed_count(&self) -> usize {
        self.chunks.len()
    }

    /// Number of device-resident chunks.
    pub fn resident_count(&self) -> usize {
        self.lru.len()
    }

    /// Chunks that are both device-resident and dirty.
    pub fn dirty_resident(&self) -> Vec<ChunkId> {
        let mut v: Vec<ChunkId> = self
            .chunks
            .iter()
            .filter(|(_, s)| s.residency == Residency::Device && s.dirty)
            .map(|(&c, _)| c)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u64) -> ChunkId {
        ChunkId::new(i)
    }

    #[test]
    fn register_starts_host_resident() {
        let mut t = PageTable::new();
        t.register(c(0));
        assert!(t.is_managed(c(0)));
        assert!(!t.is_resident(c(0)));
        assert_eq!(t.managed_count(), 1);
        assert_eq!(t.resident_count(), 0);
    }

    #[test]
    fn migration_flow() {
        let mut t = PageTable::new();
        t.register(c(1));
        t.make_resident(c(1));
        assert!(t.is_resident(c(1)));
        assert_eq!(t.resident_count(), 1);
    }

    #[test]
    fn touch_marks_dirty() {
        let mut t = PageTable::new();
        t.register(c(2));
        t.make_resident(c(2));
        t.touch(c(2), false);
        assert!(t.dirty_resident().is_empty());
        t.touch(c(2), true);
        assert_eq!(t.dirty_resident(), vec![c(2)]);
    }

    #[test]
    fn evict_lru_picks_oldest() {
        let mut t = PageTable::new();
        for i in 0..3 {
            t.register(c(i));
            t.make_resident(c(i));
        }
        t.touch(c(0), false); // refresh chunk 0: chunk 1 is now LRU
        let (victim, dirty) = t.evict_lru().unwrap();
        assert_eq!(victim, c(1));
        assert!(!dirty);
        assert!(!t.is_resident(c(1)));
        assert!(t.is_managed(c(1)), "eviction keeps the mapping");
    }

    #[test]
    fn evict_reports_dirty() {
        let mut t = PageTable::new();
        t.register(c(0));
        t.make_resident(c(0));
        t.touch(c(0), true);
        let (_, dirty) = t.evict_lru().unwrap();
        assert!(dirty);
        assert_eq!(t.evict_lru(), None, "nothing left resident");
    }

    #[test]
    fn unregister_reports_writeback_need() {
        let mut t = PageTable::new();
        t.register(c(0));
        t.make_resident(c(0));
        t.touch(c(0), true);
        assert!(t.unregister(c(0)));
        assert!(!t.unregister(c(0)), "double free is a no-op");
        assert_eq!(t.managed_count(), 0);
        assert_eq!(t.resident_count(), 0);
    }

    #[test]
    fn reregister_resets_state() {
        let mut t = PageTable::new();
        t.register(c(0));
        t.make_resident(c(0));
        t.touch(c(0), true);
        t.register(c(0));
        assert!(!t.is_resident(c(0)));
        assert!(t.dirty_resident().is_empty());
        assert_eq!(t.resident_count(), 0, "LRU index must forget the chunk");
    }

    #[test]
    fn lru_index_stays_consistent_under_churn() {
        let mut t = PageTable::new();
        for i in 0..100 {
            t.register(c(i));
            t.make_resident(c(i));
        }
        for i in 0..100 {
            t.touch(c(i % 7), i % 2 == 0);
        }
        let mut evicted = 0;
        while t.evict_lru().is_some() {
            evicted += 1;
        }
        assert_eq!(evicted, 100);
        assert_eq!(t.resident_count(), 0);
        assert_eq!(t.managed_count(), 100);
    }

    #[test]
    #[should_panic(expected = "unmanaged")]
    fn touching_unmanaged_panics() {
        let mut t = PageTable::new();
        t.touch(c(9), false);
    }
}
