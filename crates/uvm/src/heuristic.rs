//! The UVM driver's fault-locality prefetch heuristic, simulated.
//!
//! NVIDIA's driver grows migrated regions on fault locality (the
//! "tree-based" prefetcher studied by Allen & Ge and tuned by the batching
//! work the paper cites): when a far fault lands next to recently migrated
//! chunks, the driver speculatively migrates a doubling-size block around
//! it, up to 2 MB. Dense sequential kernels are covered almost entirely
//! after a handful of faults; random access defeats the doubling.
//!
//! This module exists to *validate* the
//! [`Regularity`] coverage table that the
//! runtime uses: [`coverage_of_pattern`] runs the heuristic over synthetic
//! fault streams of each class and its tests pin the results against the
//! table's constants.

use crate::prefetch::Regularity;
use std::collections::HashSet;

/// The driver's region-growing prefetcher.
#[derive(Debug, Clone)]
pub struct HeuristicPrefetcher {
    /// Largest speculative block, in chunks (2 MB / 64 KB = 32 by default).
    max_block_chunks: u64,
    resident: HashSet<u64>,
    /// Current speculative block size for the active region.
    block: u64,
    last_fault: Option<u64>,
    demand_faults: u64,
    prefetched: u64,
}

impl HeuristicPrefetcher {
    /// Creates a prefetcher with the driver default (32-chunk = 2 MB cap).
    pub fn new() -> Self {
        HeuristicPrefetcher::with_max_block(32)
    }

    /// Creates a prefetcher with a custom speculative-block cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_block_chunks` is zero.
    pub fn with_max_block(max_block_chunks: u64) -> Self {
        assert!(max_block_chunks > 0, "block cap must be non-zero");
        HeuristicPrefetcher {
            max_block_chunks,
            resident: HashSet::new(),
            block: 1,
            last_fault: None,
            demand_faults: 0,
            prefetched: 0,
        }
    }

    /// Presents one access (by chunk index). Returns `true` if it faulted
    /// (was not resident and not covered by earlier speculation).
    pub fn access(&mut self, chunk: u64) -> bool {
        if self.resident.contains(&chunk) {
            return false;
        }
        self.demand_faults += 1;

        // Locality detection: a fault near the previous one (within the
        // current block, or a short stride) doubles the speculative block;
        // a jump resets it.
        let adjacent = self
            .last_fault
            .is_some_and(|p| chunk.abs_diff(p) <= self.block.max(4));
        self.block = if adjacent {
            (self.block * 2).min(self.max_block_chunks)
        } else {
            1
        };
        self.last_fault = Some(chunk);

        // Migrate the faulting chunk plus the speculative block after it.
        self.resident.insert(chunk);
        for c in chunk + 1..chunk + self.block {
            if self.resident.insert(c) {
                self.prefetched += 1;
            }
        }
        true
    }

    /// Demand faults taken so far.
    pub fn demand_faults(&self) -> u64 {
        self.demand_faults
    }

    /// Chunks migrated speculatively.
    pub fn prefetched(&self) -> u64 {
        self.prefetched
    }

    /// Fraction of touched chunks that were covered by speculation rather
    /// than faulting, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let total = self.demand_faults + self.prefetched;
        if total == 0 {
            0.0
        } else {
            // Only speculation that was actually useful counts: chunks
            // prefetched but never touched are not visible here, so this
            // is the optimistic bound the runtime's table encodes.
            self.prefetched as f64 / total as f64
        }
    }
}

impl Default for HeuristicPrefetcher {
    fn default() -> Self {
        HeuristicPrefetcher::new()
    }
}

/// Runs the heuristic over a synthetic access stream of the given
/// regularity class and returns the achieved coverage fraction.
///
/// The streams mirror the workload generators: `Regular` walks chunks in
/// order; `Strided` jumps by a fixed stride and wraps; `Irregular` mixes
/// sequential runs with jumps; `Random` draws hash-scattered chunks.
pub fn coverage_of_pattern(reg: Regularity, total_chunks: u64) -> f64 {
    assert!(total_chunks > 0, "need at least one chunk");
    let mut p = HeuristicPrefetcher::new();
    let mut touched: Vec<u64> = Vec::new();
    match reg {
        Regularity::Regular => touched.extend(0..total_chunks),
        Regularity::Strided => {
            // Stride of 3 chunks, three passes with different offsets:
            // locality exists but adjacency is diluted.
            for offset in 0..3 {
                let mut c = offset;
                while c < total_chunks {
                    touched.push(c);
                    c += 3;
                }
            }
        }
        Regularity::Irregular => {
            // Runs of 8 sequential chunks at data-dependent starts.
            let mut x: u64 = 0x9E3779B97F4A7C15;
            let runs = total_chunks / 8;
            for _ in 0..runs {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let start = (x >> 16) % total_chunks;
                for i in 0..8 {
                    touched.push((start + i) % total_chunks);
                }
            }
        }
        Regularity::Random => {
            let mut x: u64 = 0xDEADBEEFCAFEF00D;
            for _ in 0..total_chunks {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                touched.push((x >> 16) % total_chunks);
            }
        }
    }
    for c in touched {
        p.access(c);
    }
    p.coverage()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_is_almost_fully_covered() {
        let c = coverage_of_pattern(Regularity::Regular, 4096);
        assert!(c > 0.9, "sequential coverage {c}");
    }

    #[test]
    fn random_stream_defeats_speculation() {
        let c = coverage_of_pattern(Regularity::Random, 4096);
        assert!(c < 0.55, "random coverage {c}");
    }

    #[test]
    fn coverage_ordering_matches_the_runtime_table() {
        // The heuristic reproduces the ordering the Regularity table
        // encodes — the table's constants are driver-behaviour-shaped, not
        // arbitrary.
        let reg = coverage_of_pattern(Regularity::Regular, 4096);
        let strided = coverage_of_pattern(Regularity::Strided, 4096);
        let irregular = coverage_of_pattern(Regularity::Irregular, 4096);
        let random = coverage_of_pattern(Regularity::Random, 4096);
        assert!(
            reg > strided && strided > random,
            "ordering: {reg} / {strided} / {irregular} / {random}"
        );
        assert!(
            irregular > random,
            "irregular {irregular} must beat random {random}"
        );
    }

    #[test]
    fn heuristic_lower_bounds_the_table() {
        // The runtime's Regularity table models *explicit* whole-range
        // prefetch (cudaMemPrefetchAsync) plus the driver heuristic; the
        // demand-side heuristic alone must not exceed it by more than
        // noise, and the Regular class — where explicit prefetch adds
        // little — must land close to the table value.
        for reg in [
            Regularity::Regular,
            Regularity::Strided,
            Regularity::Irregular,
            Regularity::Random,
        ] {
            let measured = coverage_of_pattern(reg, 8192);
            let table = reg.prefetch_coverage();
            assert!(
                measured <= table + 0.10,
                "{reg}: demand heuristic {measured:.3} should not exceed the                  explicit-prefetch table {table:.3}"
            );
        }
        let reg = coverage_of_pattern(Regularity::Regular, 8192);
        assert!(
            (reg - Regularity::Regular.prefetch_coverage()).abs() < 0.15,
            "regular: heuristic {reg:.3} vs table {:.3}",
            Regularity::Regular.prefetch_coverage()
        );
    }

    #[test]
    fn doubling_caps_at_max_block() {
        let mut p = HeuristicPrefetcher::with_max_block(4);
        for c in 0..64 {
            p.access(c);
        }
        // With a cap of 4, at least a quarter of accesses fault.
        assert!(p.demand_faults() >= 16, "faults {}", p.demand_faults());
    }

    #[test]
    fn resident_chunks_never_fault_again() {
        let mut p = HeuristicPrefetcher::new();
        assert!(p.access(10));
        assert!(!p.access(10), "second touch must not fault");
    }

    #[test]
    fn empty_prefetcher_coverage_is_zero() {
        let p = HeuristicPrefetcher::default();
        assert_eq!(p.coverage(), 0.0);
        assert_eq!(p.demand_faults(), 0);
        assert_eq!(p.prefetched(), 0);
    }
}
