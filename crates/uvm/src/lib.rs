//! # hetsim-uvm
//!
//! The unified-virtual-memory substrate of the hetsim simulator.
//!
//! NVIDIA UVM (§2.1 of the paper) gives host and device one address space
//! and migrates data on demand: a GPU access to a non-resident page raises a
//! *far fault*, the driver services faults in batches, and 64 KB-granular
//! chunks migrate over the interconnect. `cudaMemPrefetchAsync` moves whole
//! ranges ahead of time instead. This crate models that machinery:
//!
//! * [`page`] — page/chunk identifiers and residency state;
//! * [`table`] — the per-device page table with residency tracking and
//!   LRU chunk eviction for oversubscription;
//! * [`fault`] — far-fault generation and batched servicing (the source of
//!   the paper's 2–2.2× `uvm` kernel-time inflation);
//! * [`prefetch`] — explicit range prefetch plus the access-regularity
//!   model that decides how much of a working set prefetch actually covers
//!   (the paper's lud/nw pathologies);
//! * [`heuristic`] — the driver's region-growing speculation, used to
//!   validate the regularity table and to cover sequential phases of
//!   temporal touch sequences;
//! * [`touch`] — temporal-order demand touching: partial fault batches,
//!   drain gaps, and refault (thrashing) tracking for irregular-access
//!   workloads;
//! * [`space`] — [`UvmSpace`], the façade the runtime drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod heuristic;
pub mod page;
pub mod prefetch;
pub mod space;
pub mod table;
pub mod touch;

pub use fault::{FaultConfig, FaultReport};
pub use heuristic::HeuristicPrefetcher;
pub use page::{ChunkId, Residency};
pub use prefetch::{PrefetchModel, Regularity};
pub use space::{UvmConfig, UvmSpace};
pub use table::PageTable;
pub use touch::{ChunkTouch, TouchConfig};
