//! [`UvmSpace`] — the managed-memory façade the runtime drives.
//!
//! One `UvmSpace` models the unified address space of one device: it owns
//! the page table, applies fault/prefetch cost models, moves chunks over the
//! CPU↔GPU link, and accumulates [`UvmCounters`].

use crate::fault::{FaultConfig, FaultReport};
use crate::page::{chunks_of_range, ChunkId, CHUNK_SIZE};
use crate::table::PageTable;
use crate::touch::{ChunkTouch, FaultBatcher, TouchConfig};
use hetsim_counters::UvmCounters;
use hetsim_engine::time::Nanos;
use hetsim_mem::addr::Addr;
use hetsim_mem::link::{CpuGpuLink, LinkPath};
use std::collections::HashSet;

/// Configuration of a UVM space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UvmConfig {
    /// Migration granularity, bytes.
    pub chunk_size: u64,
    /// Fault-servicing cost model.
    pub fault: FaultConfig,
    /// Sequence-driven batching parameters (drain gap, speculation cap).
    pub touch: TouchConfig,
    /// Device memory capacity available to managed allocations, bytes.
    pub device_capacity: u64,
}

impl UvmConfig {
    /// A100 defaults: 64 KB chunks, calibrated fault costs, 40 GB device
    /// memory.
    pub fn a100() -> Self {
        UvmConfig {
            chunk_size: CHUNK_SIZE,
            fault: FaultConfig::a100(),
            touch: TouchConfig::a100(),
            device_capacity: 40 * (1u64 << 30),
        }
    }
}

impl Default for UvmConfig {
    fn default() -> Self {
        UvmConfig::a100()
    }
}

/// The unified address space of one device.
#[derive(Debug, Clone)]
pub struct UvmSpace {
    config: UvmConfig,
    table: PageTable,
    counters: UvmCounters,
    resident_bytes: u64,
    eviction_transfer: Nanos,
    /// Chunks that have left the device at least once (LRU eviction or
    /// prefetch displacement): a later fault on one of these is a
    /// *refault* — the thrashing signature of re-touch workloads under
    /// memory pressure.
    evicted_once: HashSet<ChunkId>,
}

impl UvmSpace {
    /// Creates an empty space.
    pub fn new(config: UvmConfig) -> Self {
        UvmSpace {
            config,
            table: PageTable::new(),
            counters: UvmCounters::new(),
            resident_bytes: 0,
            eviction_transfer: Nanos::ZERO,
            evicted_once: HashSet::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> UvmConfig {
        self.config
    }

    /// Registers a managed allocation (`cudaMallocManaged`). Data starts
    /// host-resident; no transfer happens yet.
    pub fn managed_alloc(&mut self, base: Addr, bytes: u64) {
        for c in chunks_of_range(base, bytes, self.config.chunk_size) {
            if self.table.is_resident(c) {
                // Address reuse: drop the stale residency accounting.
                self.resident_bytes -= self.config.chunk_size;
            }
            self.evicted_once.remove(&c);
            self.table.register(c);
        }
    }

    /// Explicitly prefetches a range (`cudaMemPrefetchAsync` plus the
    /// driver's streaming heuristics), covering `coverage` of the
    /// not-yet-resident chunks.
    ///
    /// The prefetcher is a streaming engine, so the covered chunks are the
    /// range prefix — exactly the part a regular kernel consumes first.
    /// Returns the link busy time.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]`.
    pub fn prefetch_range(
        &mut self,
        base: Addr,
        bytes: u64,
        coverage: f64,
        link: &CpuGpuLink,
    ) -> Nanos {
        assert!((0.0..=1.0).contains(&coverage), "coverage out of [0,1]");
        let pending: Vec<ChunkId> = chunks_of_range(base, bytes, self.config.chunk_size)
            .filter(|&c| !self.table.is_resident(c))
            .collect();
        let n = (pending.len() as f64 * coverage).round() as usize;
        let mut moved = 0u64;
        for &c in pending.iter().take(n) {
            self.make_resident(c);
            moved += 1;
        }
        if moved == 0 {
            return Nanos::ZERO;
        }
        self.counters.record_prefetched_pages(moved);
        // One prefetch call streams the whole covered range: a single fixed
        // latency plus bulk bandwidth.
        let t = link.record_transfer(LinkPath::BulkPrefetch, moved * self.config.chunk_size);
        hetsim_trace::session::with(|b| {
            let track = b.track("uvm");
            b.detail_span(
                track,
                hetsim_trace::Category::Prefetch,
                "prefetch",
                t.as_nanos(),
                Some(("chunks", moved as f64)),
            );
            b.counter_on(
                track,
                "uvm.pages_prefetched",
                self.counters.pages_prefetched() as f64,
            );
        });
        t
    }

    /// Demand-touches a range during kernel execution: every non-resident
    /// chunk takes a far fault. `write` marks the chunks dirty (an output
    /// buffer).
    ///
    /// `host_backed` says whether the host initialized this data: if so,
    /// every faulting chunk migrates over the link (batched DMA bursts). If
    /// not — a GPU-first-touch output buffer — pages are simply *populated*
    /// in device memory: the faults still stall, but nothing crosses the
    /// link. This first-touch placement is a core UVM benefit the paper's
    /// transfer-time savings rest on.
    pub fn demand_touch_range(
        &mut self,
        base: Addr,
        bytes: u64,
        write: bool,
        host_backed: bool,
        link: &CpuGpuLink,
    ) -> FaultReport {
        let mut faulted = 0u64;
        let mut refaults = 0u64;
        for c in chunks_of_range(base, bytes, self.config.chunk_size) {
            if !self.table.is_resident(c) {
                if self.evicted_once.contains(&c) {
                    refaults += 1;
                }
                self.make_resident(c);
                faulted += 1;
            }
            self.table.touch(c, write);
        }
        if faulted == 0 {
            return FaultReport::default();
        }
        let stall = self.config.fault.service_stall(faulted);
        let batches = self.config.fault.batches_for(faulted);
        self.counters.record_fault_batch(faulted, stall);
        self.counters.record_refaults(refaults);
        // An address-ordered sweep raises every fault up front, so the
        // driver retires capacity-filled batches plus one remainder.
        let mut remaining = faulted;
        while remaining > 0 {
            let fill = remaining.min(self.config.fault.batch_capacity as u64);
            self.counters.record_batch_fill(fill);
            remaining -= fill;
        }
        let transfer = if host_backed {
            self.counters.record_migrated_pages(faulted);
            // Migrations are drained in batch-sized DMA bursts: the link's
            // per-operation latency amortizes over a whole fault batch.
            link.record_chunked_transfer(
                LinkPath::DemandMigration,
                faulted * self.config.chunk_size,
                self.config.chunk_size * self.config.fault.batch_capacity as u64,
            )
        } else {
            Nanos::ZERO
        };
        hetsim_trace::session::with(|b| {
            let track = b.track("uvm");
            b.detail_span(
                track,
                hetsim_trace::Category::FaultBatch,
                "fault_batch",
                stall.as_nanos(),
                Some(("chunks", faulted as f64)),
            );
            if !transfer.is_zero() {
                b.detail_span(
                    track,
                    hetsim_trace::Category::Migration,
                    "migration",
                    transfer.as_nanos(),
                    Some(("chunks", faulted as f64)),
                );
            }
            b.counter_on(track, "uvm.page_faults", self.counters.page_faults() as f64);
            b.counter_on(
                track,
                "uvm.pages_migrated",
                self.counters.pages_migrated() as f64,
            );
            b.counter_on(track, "uvm.resident_bytes", self.resident_bytes as f64);
        });
        FaultReport {
            chunks: faulted,
            batches,
            stall,
            transfer,
        }
    }

    /// Demand-touches chunks in the *temporal order* a kernel accesses
    /// them — the path irregular workloads use instead of
    /// [`UvmSpace::demand_touch_range`]'s address-ordered sweep.
    ///
    /// Three mechanisms the range walk cannot express fire here:
    ///
    /// * **Partial batches** — a [`FaultBatcher`] retires a batch when it
    ///   fills *or* when [`TouchConfig::drain_gap`] resident accesses pass
    ///   without a fault, so scattered faults pay the fixed batch latency
    ///   over small fills (§2.1's batched servicing under the worst case).
    /// * **Region-growing speculation** — the driver heuristic of
    ///   [`crate::heuristic`]: a fault adjacent to the previous one doubles
    ///   a speculative migration block (capped at
    ///   [`TouchConfig::max_spec_block`]); a jump resets it. Sequential
    ///   phases inside an irregular stream are covered cheaply; scattered
    ///   phases defeat the doubling.
    /// * **Refaults** — faults on chunks that were evicted or displaced
    ///   earlier count as thrashing in the [`UvmCounters`].
    ///
    /// Speculatively migrated chunks only cross the link when the touch is
    /// `host_backed`; either way they count toward the heuristic-pages
    /// counter. Touches to unmanaged chunks are a simulator bug and panic,
    /// matching the page-table contract.
    pub fn demand_touch_sequence(
        &mut self,
        touches: &[ChunkTouch],
        link: &CpuGpuLink,
    ) -> FaultReport {
        let tc = self.config.touch;
        let mut batcher = FaultBatcher::new(self.config.fault, tc);
        let mut spec_block: u64 = 1;
        let mut last_fault: Option<u64> = None;
        let mut faulted = 0u64;
        let mut migrated = 0u64; // chunks crossing the link
        let mut heuristic_pages = 0u64;
        let mut refaults = 0u64;
        for t in touches {
            if self.table.is_resident(t.chunk) {
                self.table.touch(t.chunk, t.write);
                batcher.hit();
                continue;
            }
            faulted += 1;
            if self.evicted_once.contains(&t.chunk) {
                refaults += 1;
            }
            batcher.fault();
            let idx = t.chunk.index();
            let adjacent = last_fault.is_some_and(|p| idx.abs_diff(p) <= spec_block.max(4));
            spec_block = if adjacent {
                (spec_block * 2).min(tc.max_spec_block.max(1))
            } else {
                1
            };
            last_fault = Some(idx);
            self.make_resident(t.chunk);
            self.table.touch(t.chunk, t.write);
            if t.host_backed {
                migrated += 1;
            }
            // The speculative block after the faulting chunk, clipped to
            // the managed range.
            for c in idx + 1..idx + spec_block {
                let spec = ChunkId::new(c);
                if self.table.is_managed(spec) && !self.table.is_resident(spec) {
                    self.make_resident(spec);
                    heuristic_pages += 1;
                    if t.host_backed {
                        migrated += 1;
                    }
                }
            }
        }
        if faulted == 0 {
            return FaultReport::default();
        }
        let fills = batcher.finish();
        let mut stall = Nanos::ZERO;
        for &fill in &fills {
            let s = self.config.fault.batch_latency + self.config.fault.per_fault * fill as u64;
            stall += s;
            self.counters.record_fault_batch(fill as u64, s);
            self.counters.record_batch_fill(fill as u64);
        }
        self.counters.record_refaults(refaults);
        self.counters.record_heuristic_pages(heuristic_pages);
        let transfer = if migrated > 0 {
            self.counters.record_migrated_pages(migrated);
            link.record_chunked_transfer(
                LinkPath::DemandMigration,
                migrated * self.config.chunk_size,
                self.config.chunk_size * self.config.fault.batch_capacity as u64,
            )
        } else {
            Nanos::ZERO
        };
        hetsim_trace::session::with(|b| {
            let track = b.track("uvm");
            b.detail_span(
                track,
                hetsim_trace::Category::FaultBatch,
                "fault_batch_seq",
                stall.as_nanos(),
                Some(("chunks", faulted as f64)),
            );
            if !transfer.is_zero() {
                b.detail_span(
                    track,
                    hetsim_trace::Category::Migration,
                    "migration",
                    transfer.as_nanos(),
                    Some(("chunks", migrated as f64)),
                );
            }
            b.counter_on(track, "uvm.page_faults", self.counters.page_faults() as f64);
            b.counter_on(
                track,
                "uvm.pages_migrated",
                self.counters.pages_migrated() as f64,
            );
            b.counter_on(track, "uvm.refaults", self.counters.refaults() as f64);
            b.counter_on(track, "uvm.resident_bytes", self.resident_bytes as f64);
        });
        FaultReport {
            chunks: faulted,
            batches: fills.len() as u64,
            stall,
            transfer,
        }
    }

    /// Writes dirty device-resident chunks of a range back to the host
    /// (what `cudaDeviceSynchronize` + host reads of results cost under
    /// UVM), over the given link path: demand-granular page faults when
    /// the host touches unprefetched results, or bulk streaming when the
    /// range was managed with explicit prefetch. Returns link busy time.
    /// Chunks stay resident but become clean.
    pub fn writeback_dirty(
        &mut self,
        base: Addr,
        bytes: u64,
        path: LinkPath,
        link: &CpuGpuLink,
    ) -> Nanos {
        let first = base.as_u64() / self.config.chunk_size;
        let last = if bytes == 0 {
            first
        } else {
            (base.as_u64() + bytes - 1) / self.config.chunk_size + 1
        };
        let dirty: Vec<ChunkId> = self
            .table
            .dirty_resident()
            .into_iter()
            .filter(|c| (first..last).contains(&c.index()))
            .collect();
        if dirty.is_empty() {
            return Nanos::ZERO;
        }
        for &c in &dirty {
            // Re-registering would lose residency; clear dirty by touching
            // through eviction-free path: mark clean via unregister/register
            // is wrong, so extend the table API minimally through touch
            // semantics: writeback leaves residency, clears dirty.
            self.table.clear_dirty(c);
        }
        let bytes_moved = dirty.len() as u64 * self.config.chunk_size;
        let t = link.record_transfer(path, bytes_moved);
        hetsim_trace::session::with(|b| {
            let track = b.track("uvm");
            b.detail_span(
                track,
                hetsim_trace::Category::Migration,
                "writeback",
                t.as_nanos(),
                Some(("chunks", dirty.len() as f64)),
            );
        });
        t
    }

    /// Displaces the trailing `fraction` of a range's device-resident
    /// chunks back to the host without writeback — what happens when
    /// prefetch decisions for one kernel move a shared data object out from
    /// under another (the paper's nw pathology). Returns displaced chunks.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn displace_fraction(&mut self, base: Addr, bytes: u64, fraction: f64) -> u64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of [0,1]");
        let resident: Vec<ChunkId> = chunks_of_range(base, bytes, self.config.chunk_size)
            .filter(|&c| self.table.is_resident(c))
            .collect();
        let n = (resident.len() as f64 * fraction).round() as usize;
        let mut displaced = 0u64;
        for &c in resident.iter().rev().take(n) {
            // Re-register: resets to host residency and clears dirty state.
            self.table.register(c);
            self.evicted_once.insert(c);
            self.resident_bytes -= self.config.chunk_size;
            displaced += 1;
        }
        if displaced > 0 {
            self.counters.record_evicted_pages(displaced);
            hetsim_trace::session::with(|b| {
                let track = b.track("uvm");
                b.instant(
                    track,
                    hetsim_trace::Category::Mem,
                    "displace",
                    Some(("chunks", displaced as f64)),
                );
                b.counter_on(
                    track,
                    "uvm.pages_evicted",
                    self.counters.pages_evicted() as f64,
                );
            });
        }
        displaced
    }

    /// Frees a managed range (`cudaFree`), returning writeback time for
    /// dirty device-resident chunks.
    pub fn free(&mut self, base: Addr, bytes: u64, link: &CpuGpuLink) -> Nanos {
        let mut dirty_chunks = 0u64;
        for c in chunks_of_range(base, bytes, self.config.chunk_size) {
            let was_resident = self.table.is_resident(c);
            self.evicted_once.remove(&c);
            if self.table.unregister(c) {
                dirty_chunks += 1;
            }
            if was_resident {
                self.resident_bytes -= self.config.chunk_size;
            }
        }
        if dirty_chunks == 0 {
            Nanos::ZERO
        } else {
            link.record_transfer(
                LinkPath::DemandMigration,
                dirty_chunks * self.config.chunk_size,
            )
        }
    }

    /// Makes one chunk device-resident, evicting LRU chunks if the device
    /// is full.
    fn make_resident(&mut self, chunk: ChunkId) {
        let mut evicted = 0u64;
        while self.resident_bytes + self.config.chunk_size > self.config.device_capacity {
            match self.table.evict_lru() {
                Some((victim, dirty)) => {
                    self.evicted_once.insert(victim);
                    self.resident_bytes -= self.config.chunk_size;
                    self.counters.record_evicted_pages(1);
                    evicted += 1;
                    if dirty {
                        self.eviction_transfer += Nanos::from_micros(8);
                    }
                }
                None => break,
            }
        }
        if evicted > 0 {
            hetsim_trace::session::with(|b| {
                let track = b.track("uvm");
                b.instant(
                    track,
                    hetsim_trace::Category::Mem,
                    "evict",
                    Some(("chunks", evicted as f64)),
                );
                b.counter_on(
                    track,
                    "uvm.pages_evicted",
                    self.counters.pages_evicted() as f64,
                );
            });
        }
        self.table.make_resident(chunk);
        self.resident_bytes += self.config.chunk_size;
    }

    /// Bytes currently device-resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Accumulated UVM counters.
    pub fn counters(&self) -> UvmCounters {
        self.counters
    }

    /// Accumulated link time spent on oversubscription eviction writebacks.
    pub fn eviction_transfer(&self) -> Nanos {
        self.eviction_transfer
    }

    /// Read-only access to the page table (tests, invariant checks).
    pub fn table(&self) -> &PageTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> UvmSpace {
        UvmSpace::new(UvmConfig::a100())
    }

    fn link() -> CpuGpuLink {
        CpuGpuLink::pcie4_a100()
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn alloc_registers_host_resident() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), 2 * MB);
        assert_eq!(s.table().managed_count(), 32); // 2MB / 64KB
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn full_demand_touch_faults_every_chunk() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), 2 * MB);
        let r = s.demand_touch_range(Addr::new(0), 2 * MB, false, true, &link());
        assert_eq!(r.chunks, 32);
        assert_eq!(r.batches, 1, "32 faults fit one 256-entry batch");
        assert!(r.stall > Nanos::ZERO);
        assert!(r.transfer > Nanos::ZERO);
        assert_eq!(s.resident_bytes(), 2 * MB);
        // Second touch: everything resident, no faults.
        let r2 = s.demand_touch_range(Addr::new(0), 2 * MB, false, true, &link());
        assert_eq!(r2, FaultReport::default());
    }

    #[test]
    fn prefetch_covers_prefix_and_reduces_faults() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), 2 * MB);
        let t = s.prefetch_range(Addr::new(0), 2 * MB, 0.75, &link());
        assert!(t > Nanos::ZERO);
        assert_eq!(s.counters().pages_prefetched(), 24);
        let r = s.demand_touch_range(Addr::new(0), 2 * MB, false, true, &link());
        assert_eq!(r.chunks, 8, "only the uncovered suffix faults");
    }

    #[test]
    fn full_coverage_prefetch_eliminates_faults() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), MB);
        s.prefetch_range(Addr::new(0), MB, 1.0, &link());
        let r = s.demand_touch_range(Addr::new(0), MB, false, true, &link());
        assert_eq!(r.chunks, 0);
        assert_eq!(r.stall, Nanos::ZERO);
    }

    #[test]
    fn zero_coverage_prefetch_is_free() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), MB);
        assert_eq!(
            s.prefetch_range(Addr::new(0), MB, 0.0, &link()),
            Nanos::ZERO
        );
    }

    #[test]
    fn writes_mark_dirty_and_writeback_clears() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), MB);
        s.demand_touch_range(Addr::new(0), MB, true, true, &link());
        let wb = s.writeback_dirty(Addr::new(0), MB, LinkPath::DemandMigration, &link());
        assert!(wb > Nanos::ZERO);
        let wb2 = s.writeback_dirty(Addr::new(0), MB, LinkPath::DemandMigration, &link());
        assert_eq!(wb2, Nanos::ZERO, "already clean");
    }

    #[test]
    fn free_pays_writeback_for_dirty() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), MB);
        s.demand_touch_range(Addr::new(0), MB, true, true, &link());
        let t = s.free(Addr::new(0), MB, &link());
        assert!(t > Nanos::ZERO);
        assert_eq!(s.table().managed_count(), 0);
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn free_clean_is_cheap() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), MB);
        s.demand_touch_range(Addr::new(0), MB, false, true, &link());
        assert_eq!(s.free(Addr::new(0), MB, &link()), Nanos::ZERO);
    }

    #[test]
    fn oversubscription_evicts_lru() {
        let mut cfg = UvmConfig::a100();
        cfg.device_capacity = 10 * cfg.chunk_size; // tiny device
        let mut s = UvmSpace::new(cfg);
        s.managed_alloc(Addr::new(0), 20 * cfg.chunk_size);
        s.demand_touch_range(Addr::new(0), 20 * cfg.chunk_size, false, true, &link());
        assert!(s.resident_bytes() <= cfg.device_capacity);
        assert!(s.counters().pages_evicted() >= 10);
    }

    #[test]
    fn faults_counted_in_counters() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), MB);
        s.demand_touch_range(Addr::new(0), MB, false, true, &link());
        assert_eq!(s.counters().page_faults(), 16);
        assert_eq!(s.counters().pages_migrated(), 16);
        assert_eq!(s.counters().fault_batches(), 1);
    }

    fn seq(chunks: &[u64], write: bool, host_backed: bool) -> Vec<ChunkTouch> {
        chunks
            .iter()
            .map(|&c| ChunkTouch {
                chunk: ChunkId::new(c),
                write,
                host_backed,
            })
            .collect()
    }

    #[test]
    fn sequential_sequence_speculates_and_fills_one_batch() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), 64 * MB); // 1024 chunks
        let touches = seq(&(0..1024).collect::<Vec<_>>(), false, true);
        let r = s.demand_touch_sequence(&touches, &link());
        // Region growing covers most of the stream: far fewer faults than
        // chunks, all migrated (demand + speculation).
        assert!(r.chunks < 1024 / 4, "faults {}", r.chunks);
        assert_eq!(r.batches, 1, "gaps stay below the drain threshold");
        assert_eq!(s.counters().pages_migrated(), 1024);
        assert!(s.counters().pages_heuristic() > 700);
        assert_eq!(s.resident_bytes(), 64 * MB);
    }

    #[test]
    fn scattered_sequence_pays_underfilled_batches() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), 64 * MB);
        // One fault every 300 resident touches: every batch drains partial.
        let mut touches = Vec::new();
        for i in 0..8u64 {
            touches.push(ChunkTouch {
                chunk: ChunkId::new(i * 100),
                write: false,
                host_backed: true,
            });
            for _ in 0..300 {
                touches.push(ChunkTouch {
                    chunk: ChunkId::new(i * 100),
                    write: false,
                    host_backed: true,
                });
            }
        }
        let r = s.demand_touch_sequence(&touches, &link());
        assert_eq!(r.chunks, 8);
        assert_eq!(r.batches, 8, "every fault drains its own batch");
        let dense_stall = UvmConfig::a100().fault.service_stall(8);
        assert!(
            r.stall > dense_stall * 6,
            "scattered {} vs dense {}",
            r.stall,
            dense_stall
        );
    }

    #[test]
    fn sequence_counts_refaults_after_displacement() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), MB); // 16 chunks
        let touches = seq(&(0..16).collect::<Vec<_>>(), false, true);
        s.demand_touch_sequence(&touches, &link());
        assert_eq!(s.counters().refaults(), 0);
        s.displace_fraction(Addr::new(0), MB, 1.0);
        let r = s.demand_touch_sequence(&touches, &link());
        assert!(r.chunks > 0);
        assert_eq!(s.counters().refaults(), r.chunks, "every fault re-faults");
    }

    #[test]
    fn sequence_on_resident_data_is_free() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), MB);
        let touches = seq(&(0..16).collect::<Vec<_>>(), false, true);
        s.demand_touch_sequence(&touches, &link());
        let r = s.demand_touch_sequence(&touches, &link());
        assert_eq!(r, FaultReport::default());
    }

    #[test]
    fn first_touch_output_sequence_moves_nothing() {
        let mut s = space();
        s.managed_alloc(Addr::new(0), MB);
        let touches = seq(&(0..16).collect::<Vec<_>>(), true, false);
        let r = s.demand_touch_sequence(&touches, &link());
        assert!(r.chunks > 0);
        assert_eq!(r.transfer, Nanos::ZERO, "no host backing, no link time");
        assert_eq!(s.counters().pages_migrated(), 0);
        let wb = s.writeback_dirty(Addr::new(0), MB, LinkPath::DemandMigration, &link());
        assert!(wb > Nanos::ZERO, "writes marked the chunks dirty");
    }

    #[test]
    fn sequence_refaults_under_oversubscription() {
        let mut cfg = UvmConfig::a100();
        cfg.device_capacity = 8 * cfg.chunk_size;
        let mut s = UvmSpace::new(cfg);
        s.managed_alloc(Addr::new(0), 32 * cfg.chunk_size);
        let pass: Vec<u64> = (0..32).collect();
        let touches = seq(&pass, false, true);
        s.demand_touch_sequence(&touches, &link());
        // The second pass re-touches data the first pass already evicted.
        s.demand_touch_sequence(&touches, &link());
        assert!(s.counters().refaults() > 0, "re-touch must thrash");
        assert!(s.counters().pages_evicted() > 0);
        assert!(s.resident_bytes() <= cfg.device_capacity);
    }
}
