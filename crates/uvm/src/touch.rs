//! Temporal-order demand touching: the fault batcher driven by a real
//! access *sequence* instead of an address-ordered range walk.
//!
//! [`UvmSpace::demand_touch_range`](crate::space::UvmSpace::demand_touch_range)
//! models a kernel that sweeps its buffers in address order: every
//! non-resident chunk faults at once and the batches fill perfectly. Real
//! irregular kernels — graph frontiers, clustering passes, wavefronts —
//! interleave faults with long resident runs, so the driver's fault buffer
//! drains *before* it fills: the fixed ~38 µs batch latency (§2.1, Allen &
//! Ge) amortizes over far fewer faults, and per-fault cost balloons. This
//! module supplies the two pieces that path needs:
//!
//! * [`ChunkTouch`] — one access of a temporal sequence, produced by a
//!   workload's touch model (`hetsim-workloads`) and consumed by
//!   [`UvmSpace::demand_touch_sequence`](crate::space::UvmSpace::demand_touch_sequence);
//! * [`FaultBatcher`] — the driver's fault buffer: it retires a batch when
//!   full *or* when the SMs run far enough ahead of the buffer (a drain
//!   gap of non-faulting accesses) that the driver services what it has.
//!
//! The per-batch fill values the batcher reports feed the
//! `hetsim-counters` batch-fill histogram, which is how the shape tests
//! tell an irregular workload (under-filled batches, many latencies) from
//! a streaming one (capacity-filled batches).

use crate::fault::FaultConfig;
use crate::page::ChunkId;

/// One access of a kernel's temporal chunk-touch sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTouch {
    /// Absolute chunk of the unified address space.
    pub chunk: ChunkId,
    /// Whether the access writes (marks the chunk dirty).
    pub write: bool,
    /// Whether a fault on this chunk migrates data over the link
    /// (host-initialized) or merely populates device memory (first touch).
    pub host_backed: bool,
}

/// Parameters of sequence-driven fault batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchConfig {
    /// Consecutive non-faulting touches after which the driver services a
    /// partially filled batch: the kernel has clearly run ahead of the
    /// fault buffer, so waiting for more faults only delays the stalled
    /// warps.
    pub drain_gap: u32,
    /// Cap of the driver's region-growing speculation, in chunks
    /// (2 MB / 64 KB = 32, matching
    /// [`HeuristicPrefetcher`](crate::heuristic::HeuristicPrefetcher)).
    pub max_spec_block: u64,
}

impl TouchConfig {
    /// Driver defaults paired with [`FaultConfig::a100`]: a 192-access
    /// drain gap (several warps' worth of hits) and the 2 MB speculation
    /// cap.
    pub fn a100() -> Self {
        TouchConfig {
            drain_gap: 192,
            max_spec_block: 32,
        }
    }
}

impl Default for TouchConfig {
    fn default() -> Self {
        TouchConfig::a100()
    }
}

/// The driver's fault buffer under a temporal access stream.
///
/// Feed it [`FaultBatcher::fault`] / [`FaultBatcher::hit`] events in
/// sequence order and collect the serviced batch fills from
/// [`FaultBatcher::finish`]. A batch retires when it reaches
/// [`FaultConfig::batch_capacity`] or when [`TouchConfig::drain_gap`]
/// consecutive hits pass without a new fault.
#[derive(Debug, Clone)]
pub struct FaultBatcher {
    capacity: u32,
    drain_gap: u32,
    pending: u32,
    gap: u32,
    fills: Vec<u32>,
}

impl FaultBatcher {
    /// Creates an empty batcher.
    pub fn new(fault: FaultConfig, touch: TouchConfig) -> Self {
        FaultBatcher {
            capacity: fault.batch_capacity.max(1),
            drain_gap: touch.drain_gap.max(1),
            pending: 0,
            gap: 0,
            fills: Vec::new(),
        }
    }

    /// Records one far fault; retires the batch if it is now full.
    pub fn fault(&mut self) {
        self.gap = 0;
        self.pending += 1;
        if self.pending >= self.capacity {
            self.flush();
        }
    }

    /// Records one resident (non-faulting) access; a long enough run of
    /// these drains a partial batch.
    pub fn hit(&mut self) {
        if self.pending == 0 {
            return;
        }
        self.gap += 1;
        if self.gap >= self.drain_gap {
            self.flush();
        }
    }

    /// Retires the trailing partial batch and returns every serviced
    /// batch's fill, in service order.
    pub fn finish(mut self) -> Vec<u32> {
        self.flush();
        self.fills
    }

    fn flush(&mut self) {
        if self.pending > 0 {
            self.fills.push(self.pending);
            self.pending = 0;
        }
        self.gap = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher() -> FaultBatcher {
        FaultBatcher::new(FaultConfig::a100(), TouchConfig::a100())
    }

    #[test]
    fn dense_faults_fill_batches_to_capacity() {
        let mut b = batcher();
        for _ in 0..600 {
            b.fault();
        }
        assert_eq!(b.finish(), vec![256, 256, 88]);
    }

    #[test]
    fn sparse_faults_drain_partial_batches() {
        let mut b = batcher();
        for _ in 0..3 {
            b.fault();
            for _ in 0..200 {
                b.hit(); // beyond the 192-access drain gap
            }
        }
        assert_eq!(b.finish(), vec![1, 1, 1], "each fault pays its own batch");
    }

    #[test]
    fn short_gaps_keep_the_batch_accumulating() {
        let mut b = batcher();
        for _ in 0..10 {
            b.fault();
            for _ in 0..31 {
                b.hit(); // a sequential stream with 32-chunk speculation
            }
        }
        assert_eq!(b.finish(), vec![10], "gaps below the drain keep filling");
    }

    #[test]
    fn hits_without_pending_faults_are_free() {
        let mut b = batcher();
        for _ in 0..10_000 {
            b.hit();
        }
        assert!(b.finish().is_empty());
    }

    #[test]
    fn trailing_partial_batch_is_serviced_at_finish() {
        let mut b = batcher();
        for _ in 0..5 {
            b.fault();
        }
        assert_eq!(b.finish(), vec![5]);
    }
}
