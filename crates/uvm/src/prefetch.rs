//! Prefetch effectiveness and the access-regularity model.
//!
//! The paper's `uvm_prefetch` configuration calls `cudaMemPrefetchAsync` on
//! whole buffers before kernel launch, and the driver's on-demand heuristics
//! extend migrated regions as the kernel runs. How much of the working set
//! that machinery covers *before* the kernel needs it depends on how
//! predictable the access pattern is — the crux of the paper's lud and nw
//! findings (§4.1.2):
//!
//! * regular streams (vector_seq, gemm, 2DCONV) are covered almost
//!   completely;
//! * irregular patterns (lud) defeat the prefetcher, leaving residual
//!   demand faults, so "lud benefits from Async Memcpy but not UVM";
//! * nw's two kernels share one data object, so prefetching for the first
//!   kernel *moves data out from under* the second — coverage is worse than
//!   doing nothing.
//!
//! Workloads that carry a temporal touch model (the irregular trio — see
//! `hetsim-workloads::irregular`) do not consult this coverage table at
//! all: their residual demand traffic is *replayed* through
//! [`crate::touch`], so prefetch effectiveness emerges from the sequence
//! itself — whole-buffer prefetch still removes the bulk migrations, but
//! the scattered frontier faults it cannot predict remain, which is why
//! the `uvm_prefetch` advantage shrinks on irregular access (the
//! prefetch-pays-off-when-predictable half of Takeaway 2).

use std::fmt;

/// How predictable a workload's global-memory access pattern is.
///
/// This classification drives prefetch coverage; it is assigned per
/// workload from the paper's own characterization (Table 2 discussion and
/// §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regularity {
    /// Dense sequential streaming (vector_seq, saxpy, gemm, convolutions).
    Regular,
    /// Strided but predictable (gemv columns, hotspot stencils).
    Strided,
    /// Data-dependent but with locality (kmeans centroids, srad).
    Irregular,
    /// Effectively unpredictable (vector_rand, lud pivot walks).
    Random,
}

impl Regularity {
    /// Fraction of a buffer's chunks the prefetcher lands on the device
    /// before the kernel touches them, when explicit whole-range prefetch
    /// is issued.
    pub fn prefetch_coverage(self) -> f64 {
        match self {
            Regularity::Regular => 0.985,
            Regularity::Strided => 0.93,
            Regularity::Irregular => 0.72,
            Regularity::Random => 0.45,
        }
    }

    /// Residual fraction that still demand-faults under prefetch.
    pub fn residual_fault_fraction(self) -> f64 {
        1.0 - self.prefetch_coverage()
    }

    /// Multiplier on per-access translation overhead while running under
    /// UVM *without* prefetch. Irregular patterns thrash the TLB harder.
    pub fn uvm_translation_penalty(self) -> f64 {
        match self {
            Regularity::Regular => 1.05,
            Regularity::Strided => 1.45,
            Regularity::Irregular => 1.65,
            Regularity::Random => 1.95,
        }
    }
}

impl fmt::Display for Regularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Regularity::Regular => "regular",
            Regularity::Strided => "strided",
            Regularity::Irregular => "irregular",
            Regularity::Random => "random",
        };
        f.write_str(s)
    }
}

/// Prefetch policy parameters, including the inter-kernel conflict model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchModel {
    /// Coverage multiplier applied when multiple kernels reuse the same
    /// data object and prefetch decisions for one kernel disturb the other
    /// (the paper's nw pathology). `1.0` means no conflict.
    pub inter_kernel_conflict: f64,
}

impl PrefetchModel {
    /// No inter-kernel conflict.
    pub fn clean() -> Self {
        PrefetchModel {
            inter_kernel_conflict: 1.0,
        }
    }

    /// A conflicting multi-kernel workload: prefetch for one kernel costs
    /// the other. The factor < 1 shrinks effective coverage and the evicted
    /// share must re-migrate.
    pub fn conflicting(factor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&factor),
            "conflict factor must be in [0,1]"
        );
        PrefetchModel {
            inter_kernel_conflict: factor,
        }
    }

    /// Effective coverage after conflicts.
    pub fn effective_coverage(&self, reg: Regularity) -> f64 {
        reg.prefetch_coverage() * self.inter_kernel_conflict
    }
}

impl Default for PrefetchModel {
    fn default() -> Self {
        PrefetchModel::clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_ordering_matches_regularity() {
        assert!(Regularity::Regular.prefetch_coverage() > Regularity::Strided.prefetch_coverage());
        assert!(
            Regularity::Strided.prefetch_coverage() > Regularity::Irregular.prefetch_coverage()
        );
        assert!(Regularity::Irregular.prefetch_coverage() > Regularity::Random.prefetch_coverage());
    }

    #[test]
    fn coverage_plus_residual_is_one() {
        for r in [
            Regularity::Regular,
            Regularity::Strided,
            Regularity::Irregular,
            Regularity::Random,
        ] {
            assert!((r.prefetch_coverage() + r.residual_fault_fraction() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn translation_penalty_grows_with_irregularity() {
        assert_eq!(Regularity::Regular.uvm_translation_penalty(), 1.05);
        assert!(
            Regularity::Random.uvm_translation_penalty()
                > Regularity::Irregular.uvm_translation_penalty()
        );
    }

    #[test]
    fn conflict_shrinks_coverage() {
        let clean = PrefetchModel::clean();
        let nw = PrefetchModel::conflicting(0.6);
        assert!(
            nw.effective_coverage(Regularity::Strided)
                < clean.effective_coverage(Regularity::Strided)
        );
        assert_eq!(PrefetchModel::default(), clean);
    }

    #[test]
    #[should_panic(expected = "conflict factor")]
    fn bad_conflict_factor_rejected() {
        let _ = PrefetchModel::conflicting(1.5);
    }

    #[test]
    fn display_names() {
        assert_eq!(Regularity::Regular.to_string(), "regular");
        assert_eq!(Regularity::Random.to_string(), "random");
    }
}
