//! CPU↔GPU transfer counters.
//!
//! Tracks bytes and busy time per direction for explicit copies
//! (`cudaMemcpy`), UVM on-demand migrations, and explicit prefetches — the
//! quantities behind the paper's "memcpy" breakdown component and its
//! 31–64% data-transfer-time savings claims.

use hetsim_engine::time::Nanos;
use std::ops::{Add, AddAssign};

/// Byte and time totals for host↔device data movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferCounters {
    h2d_bytes: u64,
    d2h_bytes: u64,
    h2d_time: Nanos,
    d2h_time: Nanos,
    explicit_copies: u64,
    migrations: u64,
    prefetch_ops: u64,
}

impl TransferCounters {
    /// An all-zero counter set.
    pub fn new() -> Self {
        TransferCounters::default()
    }

    /// Reconstructs a counter set from raw field values, as read back from a
    /// serialized result cache entry. The `record_*` methods conflate fields
    /// (a migration bumps both bytes and op counts), so exact round-trips
    /// need direct field reconstruction. Inverse of the field accessors.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        h2d_bytes: u64,
        d2h_bytes: u64,
        h2d_time: Nanos,
        d2h_time: Nanos,
        explicit_copies: u64,
        migrations: u64,
        prefetch_ops: u64,
    ) -> Self {
        TransferCounters {
            h2d_bytes,
            d2h_bytes,
            h2d_time,
            d2h_time,
            explicit_copies,
            migrations,
            prefetch_ops,
        }
    }

    /// Records an explicit host→device copy.
    pub fn record_h2d_copy(&mut self, bytes: u64, time: Nanos) {
        self.h2d_bytes += bytes;
        self.h2d_time += time;
        self.explicit_copies += 1;
    }

    /// Records an explicit device→host copy.
    pub fn record_d2h_copy(&mut self, bytes: u64, time: Nanos) {
        self.d2h_bytes += bytes;
        self.d2h_time += time;
        self.explicit_copies += 1;
    }

    /// Records a UVM on-demand migration (direction host→device).
    pub fn record_migration(&mut self, bytes: u64, time: Nanos) {
        self.h2d_bytes += bytes;
        self.h2d_time += time;
        self.migrations += 1;
    }

    /// Records a UVM writeback migration (device→host).
    pub fn record_writeback(&mut self, bytes: u64, time: Nanos) {
        self.d2h_bytes += bytes;
        self.d2h_time += time;
        self.migrations += 1;
    }

    /// Records an explicit `cudaMemPrefetchAsync`-style bulk prefetch.
    pub fn record_prefetch(&mut self, bytes: u64, time: Nanos) {
        self.h2d_bytes += bytes;
        self.h2d_time += time;
        self.prefetch_ops += 1;
    }

    /// Host→device bytes moved (copies + migrations + prefetches).
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d_bytes
    }

    /// Device→host bytes moved.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h_bytes
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Time spent moving data host→device.
    pub fn h2d_time(&self) -> Nanos {
        self.h2d_time
    }

    /// Time spent moving data device→host.
    pub fn d2h_time(&self) -> Nanos {
        self.d2h_time
    }

    /// Total transfer busy time — the "memcpy" breakdown component.
    pub fn total_time(&self) -> Nanos {
        self.h2d_time + self.d2h_time
    }

    /// Number of explicit `cudaMemcpy` operations.
    pub fn explicit_copies(&self) -> u64 {
        self.explicit_copies
    }

    /// Number of UVM migrations (either direction).
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Number of explicit prefetch operations.
    pub fn prefetch_ops(&self) -> u64 {
        self.prefetch_ops
    }

    /// Effective achieved bandwidth over all traffic, bytes/sec (zero when
    /// no time was spent).
    pub fn effective_bandwidth(&self) -> f64 {
        let t = self.total_time().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.total_bytes() as f64 / t
        }
    }
}

impl Add for TransferCounters {
    type Output = TransferCounters;
    fn add(self, rhs: TransferCounters) -> TransferCounters {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for TransferCounters {
    fn add_assign(&mut self, rhs: TransferCounters) {
        self.h2d_bytes += rhs.h2d_bytes;
        self.d2h_bytes += rhs.d2h_bytes;
        self.h2d_time += rhs.h2d_time;
        self.d2h_time += rhs.d2h_time;
        self.explicit_copies += rhs.explicit_copies;
        self.migrations += rhs.migrations;
        self.prefetch_ops += rhs.prefetch_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_accumulate() {
        let mut t = TransferCounters::new();
        t.record_h2d_copy(1_000, Nanos::from_micros(1));
        t.record_d2h_copy(500, Nanos::from_micros(2));
        assert_eq!(t.h2d_bytes(), 1_000);
        assert_eq!(t.d2h_bytes(), 500);
        assert_eq!(t.total_bytes(), 1_500);
        assert_eq!(t.total_time(), Nanos::from_micros(3));
        assert_eq!(t.explicit_copies(), 2);
        assert_eq!(t.migrations(), 0);
    }

    #[test]
    fn migrations_and_prefetch_counted_separately() {
        let mut t = TransferCounters::new();
        t.record_migration(4096, Nanos::from_micros(5));
        t.record_writeback(4096, Nanos::from_micros(5));
        t.record_prefetch(1 << 20, Nanos::from_micros(60));
        assert_eq!(t.migrations(), 2);
        assert_eq!(t.prefetch_ops(), 1);
        assert_eq!(t.explicit_copies(), 0);
        assert_eq!(t.h2d_bytes(), 4096 + (1 << 20));
    }

    #[test]
    fn effective_bandwidth() {
        let mut t = TransferCounters::new();
        t.record_h2d_copy(1_000_000_000, Nanos::from_secs(1));
        assert!((t.effective_bandwidth() - 1e9).abs() < 1.0);
        assert_eq!(TransferCounters::new().effective_bandwidth(), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = TransferCounters::new();
        a.record_h2d_copy(10, Nanos::from_nanos(1));
        let mut b = TransferCounters::new();
        b.record_d2h_copy(20, Nanos::from_nanos(2));
        let c = a + b;
        assert_eq!(c.total_bytes(), 30);
        assert_eq!(c.total_time(), Nanos::from_nanos(3));
        assert_eq!(c.explicit_copies(), 2);
    }
}
