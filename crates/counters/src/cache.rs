//! Cache hit/miss counters (the Fig 10 metric).
//!
//! The paper measures the global load and store miss rates of the unified
//! L1/texture cache and shows Async Memcpy cutting lud's load misses by ~36%
//! and store misses by ~70%. The simulator's cache model increments a
//! [`CacheCounters`] per access; miss rates are derived, never stored.

use std::ops::{Add, AddAssign};

/// Hit/miss counts for one cache, split by loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    load_hits: u64,
    load_misses: u64,
    store_hits: u64,
    store_misses: u64,
}

impl CacheCounters {
    /// An all-zero counter set.
    pub fn new() -> Self {
        CacheCounters::default()
    }

    /// Reconstructs a counter set from raw field values, as read back from a
    /// serialized result cache entry. Inverse of the four field accessors.
    pub fn from_parts(
        load_hits: u64,
        load_misses: u64,
        store_hits: u64,
        store_misses: u64,
    ) -> Self {
        CacheCounters {
            load_hits,
            load_misses,
            store_hits,
            store_misses,
        }
    }

    /// Records a load outcome.
    pub fn record_load(&mut self, hit: bool) {
        if hit {
            self.load_hits += 1;
        } else {
            self.load_misses += 1;
        }
    }

    /// Records a store outcome.
    pub fn record_store(&mut self, hit: bool) {
        if hit {
            self.store_hits += 1;
        } else {
            self.store_misses += 1;
        }
    }

    /// Load hits.
    pub fn load_hits(&self) -> u64 {
        self.load_hits
    }

    /// Load misses.
    pub fn load_misses(&self) -> u64 {
        self.load_misses
    }

    /// Store hits.
    pub fn store_hits(&self) -> u64 {
        self.store_hits
    }

    /// Store misses.
    pub fn store_misses(&self) -> u64 {
        self.store_misses
    }

    /// Total loads.
    pub fn loads(&self) -> u64 {
        self.load_hits + self.load_misses
    }

    /// Total stores.
    pub fn stores(&self) -> u64 {
        self.store_hits + self.store_misses
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.loads() + self.stores()
    }

    /// Load miss rate in `[0, 1]`; zero when no loads occurred.
    pub fn load_miss_rate(&self) -> f64 {
        rate(self.load_misses, self.loads())
    }

    /// Store miss rate in `[0, 1]`; zero when no stores occurred.
    pub fn store_miss_rate(&self) -> f64 {
        rate(self.store_misses, self.stores())
    }

    /// Overall miss rate in `[0, 1]`; zero when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        rate(self.load_misses + self.store_misses, self.accesses())
    }
}

fn rate(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

impl Add for CacheCounters {
    type Output = CacheCounters;
    fn add(self, rhs: CacheCounters) -> CacheCounters {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for CacheCounters {
    fn add_assign(&mut self, rhs: CacheCounters) {
        self.load_hits += rhs.load_hits;
        self.load_misses += rhs.load_misses;
        self.store_hits += rhs.store_hits;
        self.store_misses += rhs.store_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_rates() {
        let mut c = CacheCounters::new();
        c.record_load(true);
        c.record_load(true);
        c.record_load(false);
        c.record_store(false);
        assert_eq!(c.loads(), 3);
        assert_eq!(c.stores(), 1);
        assert_eq!(c.accesses(), 4);
        assert!((c.load_miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.store_miss_rate(), 1.0);
        assert_eq!(c.miss_rate(), 0.5);
    }

    #[test]
    fn empty_rates_are_zero() {
        let c = CacheCounters::new();
        assert_eq!(c.load_miss_rate(), 0.0);
        assert_eq!(c.store_miss_rate(), 0.0);
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CacheCounters::new();
        a.record_load(true);
        let mut b = CacheCounters::new();
        b.record_load(false);
        b.record_store(true);
        let c = a + b;
        assert_eq!(c.load_hits(), 1);
        assert_eq!(c.load_misses(), 1);
        assert_eq!(c.store_hits(), 1);
        assert_eq!(c.store_misses(), 0);
    }

    #[test]
    fn rates_bounded() {
        let mut c = CacheCounters::new();
        for i in 0..100 {
            c.record_load(i % 3 == 0);
            c.record_store(i % 7 == 0);
        }
        for r in [c.load_miss_rate(), c.store_miss_rate(), c.miss_rate()] {
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
