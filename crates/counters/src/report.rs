//! Plain-text and CSV report emission.
//!
//! The harness regenerates each paper figure as a data table. [`Table`]
//! renders fixed-width aligned text for terminals and CSV for downstream
//! plotting — no serialization dependency required.

use std::fmt;

/// A simple column-aligned table builder.
///
/// # Example
///
/// ```
/// use hetsim_counters::report::Table;
/// let mut t = Table::new(vec!["workload", "speedup"]);
/// t.row(vec!["vector_seq".into(), "1.22".into()]);
/// let text = t.to_string();
/// assert!(text.contains("vector_seq"));
/// assert_eq!(t.to_csv(), "workload,speedup\nvector_seq,1.22\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as RFC-4180-ish CSV (quotes cells containing `,` or `"`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        push_csv_line(&mut out, &self.headers);
        for r in &self.rows {
            push_csv_line(&mut out, r);
        }
        out
    }
}

fn push_csv_line(out: &mut String, cells: &[String]) {
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if c.contains(',') || c.contains('"') || c.contains('\n') {
            out.push('"');
            out.push_str(&c.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(c);
        }
    }
    out.push('\n');
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_line(f, r)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percent string with two decimals, e.g. `"21.34%"`.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a float with engineering-style precision for table cells.
pub fn num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_text_output() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer_name".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines.len(), 4);
        // Columns align: "value" column starts at the same offset in all rows.
        let off = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][off..off + 1], "1");
        assert_eq!(&lines[3][off..off + 2], "22");
    }

    #[test]
    fn csv_quotes_specials() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn accessors() {
        let mut t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        t.row(vec!["v".into()]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.headers(), ["h"]);
        assert_eq!(t.rows()[0], vec!["v".to_string()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.2134), "21.34%");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(1234.5), "1234.500");
        assert_eq!(num(1.5e9), "1.500e9");
    }
}
