//! GPU instruction-mix counters (the Fig 9 metric).
//!
//! The paper compares total counts of memory, floating-point, integer, and
//! control instructions across the five transfer-mode setups, and traces the
//! Async Memcpy overhead to a ~30–40% control-instruction increase. The
//! simulator's block executor charges instructions into an
//! [`InstructionMix`] while it replays a kernel's address stream.

use std::fmt;
use std::ops::{Add, AddAssign};

/// The instruction classes the paper's profiling distinguishes (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstClass {
    /// Global/shared memory load instructions.
    MemLoad,
    /// Global/shared memory store instructions.
    MemStore,
    /// Floating-point arithmetic.
    Fp,
    /// Integer arithmetic (addressing, loop counters, pipeline indices).
    Int,
    /// Control flow (branches, barriers, pipeline commit/wait).
    Control,
}

impl InstClass {
    /// All classes, in display order.
    pub const ALL: [InstClass; 5] = [
        InstClass::MemLoad,
        InstClass::MemStore,
        InstClass::Fp,
        InstClass::Int,
        InstClass::Control,
    ];

    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            InstClass::MemLoad => "mem_load",
            InstClass::MemStore => "mem_store",
            InstClass::Fp => "fp",
            InstClass::Int => "int",
            InstClass::Control => "control",
        }
    }

    fn index(self) -> usize {
        match self {
            InstClass::MemLoad => 0,
            InstClass::MemStore => 1,
            InstClass::Fp => 2,
            InstClass::Int => 3,
            InstClass::Control => 4,
        }
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counts of executed instructions per [`InstClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstructionMix {
    counts: [u64; 5],
}

impl InstructionMix {
    /// An all-zero mix.
    pub fn new() -> Self {
        InstructionMix::default()
    }

    /// Records `n` executed instructions of class `class`.
    pub fn record(&mut self, class: InstClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Count for one class.
    pub fn get(&self, class: InstClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total dynamic instruction count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Memory instructions (loads + stores).
    pub fn mem(&self) -> u64 {
        self.get(InstClass::MemLoad) + self.get(InstClass::MemStore)
    }

    /// Fraction of the total contributed by `class`; zero for an empty mix.
    pub fn fraction(&self, class: InstClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(class) as f64 / total as f64
        }
    }

    /// Multiplies every count by `factor`, used when extrapolating sampled
    /// blocks to the full grid.
    ///
    /// Rounds to the nearest count.
    pub fn scale(&self, factor: f64) -> InstructionMix {
        let mut out = InstructionMix::new();
        for c in InstClass::ALL {
            out.counts[c.index()] = (self.get(c) as f64 * factor).round() as u64;
        }
        out
    }

    /// Iterates `(class, count)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (InstClass, u64)> + '_ {
        InstClass::ALL.into_iter().map(move |c| (c, self.get(c)))
    }
}

impl Add for InstructionMix {
    type Output = InstructionMix;
    fn add(self, rhs: InstructionMix) -> InstructionMix {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for InstructionMix {
    fn add_assign(&mut self, rhs: InstructionMix) {
        for i in 0..self.counts.len() {
            self.counts[i] += rhs.counts[i];
        }
    }
}

impl fmt::Display for InstructionMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (c, n) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{c}={n}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut m = InstructionMix::new();
        m.record(InstClass::Fp, 10);
        m.record(InstClass::Fp, 5);
        m.record(InstClass::MemLoad, 3);
        m.record(InstClass::MemStore, 2);
        assert_eq!(m.get(InstClass::Fp), 15);
        assert_eq!(m.mem(), 5);
        assert_eq!(m.total(), 20);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut m = InstructionMix::new();
        for (i, c) in InstClass::ALL.into_iter().enumerate() {
            m.record(c, (i as u64 + 1) * 7);
        }
        let s: f64 = InstClass::ALL.iter().map(|&c| m.fraction(c)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mix_fraction_is_zero() {
        let m = InstructionMix::new();
        assert_eq!(m.fraction(InstClass::Control), 0.0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn merge_mixes() {
        let mut a = InstructionMix::new();
        a.record(InstClass::Int, 4);
        let mut b = InstructionMix::new();
        b.record(InstClass::Int, 6);
        b.record(InstClass::Control, 1);
        let c = a + b;
        assert_eq!(c.get(InstClass::Int), 10);
        assert_eq!(c.get(InstClass::Control), 1);
    }

    #[test]
    fn scale_rounds() {
        let mut m = InstructionMix::new();
        m.record(InstClass::Fp, 3);
        let s = m.scale(2.5);
        assert_eq!(s.get(InstClass::Fp), 8);
    }

    #[test]
    fn display_lists_all_classes() {
        let m = InstructionMix::new();
        let s = m.to_string();
        for c in InstClass::ALL {
            assert!(s.contains(c.name()), "{s} missing {c}");
        }
    }
}
