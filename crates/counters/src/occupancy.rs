//! GPU occupancy metrics.
//!
//! Two related quantities appear in the paper:
//!
//! * *theoretical occupancy* — resident warps per SM over the hardware
//!   maximum, limited by threads-per-block and shared-memory usage; and
//! * *achieved utilization* (§6) — the fraction of the run's wall clock the
//!   SM pool was busy, which rises from 25.15% to 37.79% once transfers
//!   overlap computation.

/// Occupancy figures for one kernel launch or one whole run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Occupancy {
    theoretical: f64,
    achieved: f64,
}

impl Occupancy {
    /// Creates an occupancy record; both fractions are clamped to `[0, 1]`.
    pub fn new(theoretical: f64, achieved: f64) -> Self {
        Occupancy {
            theoretical: theoretical.clamp(0.0, 1.0),
            achieved: achieved.clamp(0.0, 1.0),
        }
    }

    /// Resident-warp occupancy bound from launch configuration.
    ///
    /// `threads_per_block` and the per-block shared-memory footprint both
    /// limit how many blocks fit on an SM; the returned fraction is resident
    /// warps over `max_warps_per_sm`.
    ///
    /// # Panics
    ///
    /// Panics if any capacity argument is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn theoretical_from_limits(
        threads_per_block: u32,
        shared_bytes_per_block: u64,
        warp_size: u32,
        max_warps_per_sm: u32,
        max_threads_per_sm: u32,
        max_blocks_per_sm: u32,
        shared_bytes_per_sm: u64,
    ) -> f64 {
        assert!(threads_per_block > 0, "threads_per_block must be positive");
        assert!(warp_size > 0 && max_warps_per_sm > 0, "bad warp limits");
        assert!(
            max_threads_per_sm > 0 && max_blocks_per_sm > 0,
            "bad SM limits"
        );
        let by_threads = max_threads_per_sm / threads_per_block;
        let by_shared = shared_bytes_per_sm
            .checked_div(shared_bytes_per_block)
            .map_or(max_blocks_per_sm, |b| b as u32);
        let blocks = by_threads.min(by_shared).min(max_blocks_per_sm);
        let warps_per_block = threads_per_block.div_ceil(warp_size);
        let resident_warps = (blocks * warps_per_block).min(max_warps_per_sm);
        resident_warps as f64 / max_warps_per_sm as f64
    }

    /// Launch-configuration occupancy bound, `[0, 1]`.
    pub fn theoretical(&self) -> f64 {
        self.theoretical
    }

    /// Wall-clock SM-busy fraction, `[0, 1]`.
    pub fn achieved(&self) -> f64 {
        self.achieved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WARP: u32 = 32;
    const MAX_WARPS: u32 = 64;
    const MAX_THREADS: u32 = 2048;
    const MAX_BLOCKS: u32 = 32;
    const SMEM: u64 = 164 * 1024;

    fn theo(tpb: u32, smem: u64) -> f64 {
        Occupancy::theoretical_from_limits(
            tpb,
            smem,
            WARP,
            MAX_WARPS,
            MAX_THREADS,
            MAX_BLOCKS,
            SMEM,
        )
    }

    #[test]
    fn full_occupancy_with_256_threads() {
        // 2048/256 = 8 blocks, 8 warps each = 64 warps = 100%.
        assert_eq!(theo(256, 0), 1.0);
    }

    #[test]
    fn small_blocks_capped_by_block_limit() {
        // 32-thread blocks: thread limit allows 64, block limit caps at 32
        // blocks of 1 warp each => 32/64 = 50%.
        assert_eq!(theo(32, 0), 0.5);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        // 64KB per block: only 2 blocks fit in 164KB.
        let occ = theo(256, 64 * 1024);
        assert_eq!(occ, (2 * 8) as f64 / 64.0);
    }

    #[test]
    fn clamping() {
        let o = Occupancy::new(1.5, -0.2);
        assert_eq!(o.theoretical(), 1.0);
        assert_eq!(o.achieved(), 0.0);
    }

    #[test]
    fn monotone_in_threads_until_limit() {
        assert!(theo(64, 0) <= theo(128, 0));
        assert!(theo(128, 0) <= theo(256, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = theo(0, 0);
    }
}
