//! The aggregate counter set attached to every simulated run.

use crate::{CacheCounters, InstructionMix, Occupancy, TransferCounters, UvmCounters};
use std::ops::{Add, AddAssign};

/// Everything the simulator measures about one kernel or one whole run.
///
/// Populated by the GPU/memory/UVM models; consumed by the experiment layer
/// to produce the paper's figures. Merging two sets (`+`) sums the additive
/// counters and keeps the *maximum* occupancy figures (occupancy is a
/// fraction, not an additive count).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterSet {
    /// Dynamic instruction mix (Fig 9).
    pub inst: InstructionMix,
    /// Unified L1/texture cache hit/miss counts (Fig 10).
    pub l1: CacheCounters,
    /// L2 cache hit/miss counts.
    pub l2: CacheCounters,
    /// Host↔device traffic.
    pub transfer: TransferCounters,
    /// UVM fault/migration activity.
    pub uvm: UvmCounters,
    /// Occupancy figures.
    pub occupancy: Occupancy,
}

impl CounterSet {
    /// An all-zero counter set.
    pub fn new() -> Self {
        CounterSet::default()
    }
}

impl Add for CounterSet {
    type Output = CounterSet;
    fn add(self, rhs: CounterSet) -> CounterSet {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for CounterSet {
    fn add_assign(&mut self, rhs: CounterSet) {
        self.inst += rhs.inst;
        self.l1 += rhs.l1;
        self.l2 += rhs.l2;
        self.transfer += rhs.transfer;
        self.uvm += rhs.uvm;
        self.occupancy = Occupancy::new(
            self.occupancy
                .theoretical()
                .max(rhs.occupancy.theoretical()),
            self.occupancy.achieved().max(rhs.occupancy.achieved()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstClass;
    use hetsim_engine::time::Nanos;

    #[test]
    fn merge_sums_counters_and_maxes_occupancy() {
        let mut a = CounterSet::new();
        a.inst.record(InstClass::Fp, 10);
        a.l1.record_load(false);
        a.occupancy = Occupancy::new(0.5, 0.2);

        let mut b = CounterSet::new();
        b.inst.record(InstClass::Fp, 5);
        b.transfer.record_h2d_copy(100, Nanos::from_nanos(10));
        b.uvm.record_migrated_pages(2);
        b.occupancy = Occupancy::new(0.25, 0.4);

        let c = a + b;
        assert_eq!(c.inst.get(InstClass::Fp), 15);
        assert_eq!(c.l1.load_misses(), 1);
        assert_eq!(c.transfer.h2d_bytes(), 100);
        assert_eq!(c.uvm.pages_migrated(), 2);
        assert_eq!(c.occupancy.theoretical(), 0.5);
        assert_eq!(c.occupancy.achieved(), 0.4);
    }

    #[test]
    fn default_is_zero() {
        let c = CounterSet::new();
        assert_eq!(c.inst.total(), 0);
        assert_eq!(c.l1.accesses(), 0);
        assert_eq!(c.transfer.total_bytes(), 0);
        assert_eq!(c.uvm.page_faults(), 0);
    }
}
