//! UVM subsystem counters.
//!
//! The paper attributes the `uvm` configuration's 2–2.2× kernel-time
//! inflation to GPU far faults and their batched servicing (§4.1.1, citing
//! Allen & Ge). These counters expose that machinery: fault counts, batch
//! counts, pages moved by demand migration vs. prefetch, and the total
//! fault-service stall charged to the kernel.

use hetsim_engine::time::Nanos;
use std::ops::{Add, AddAssign};

/// Counters for the unified-virtual-memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UvmCounters {
    page_faults: u64,
    fault_batches: u64,
    pages_migrated: u64,
    pages_prefetched: u64,
    pages_evicted: u64,
    fault_stall: Nanos,
}

impl UvmCounters {
    /// An all-zero counter set.
    pub fn new() -> Self {
        UvmCounters::default()
    }

    /// Records `faults` far faults serviced in one batch with total stall
    /// `stall`.
    pub fn record_fault_batch(&mut self, faults: u64, stall: Nanos) {
        self.page_faults += faults;
        self.fault_batches += 1;
        self.fault_stall += stall;
    }

    /// Records pages moved host→device by demand migration.
    pub fn record_migrated_pages(&mut self, pages: u64) {
        self.pages_migrated += pages;
    }

    /// Records pages moved host→device by an explicit prefetch.
    pub fn record_prefetched_pages(&mut self, pages: u64) {
        self.pages_prefetched += pages;
    }

    /// Records pages evicted device→host (oversubscription path).
    pub fn record_evicted_pages(&mut self, pages: u64) {
        self.pages_evicted += pages;
    }

    /// Total GPU far faults.
    pub fn page_faults(&self) -> u64 {
        self.page_faults
    }

    /// Number of serviced fault batches.
    pub fn fault_batches(&self) -> u64 {
        self.fault_batches
    }

    /// Pages moved by demand migration.
    pub fn pages_migrated(&self) -> u64 {
        self.pages_migrated
    }

    /// Pages moved by explicit prefetch.
    pub fn pages_prefetched(&self) -> u64 {
        self.pages_prefetched
    }

    /// Pages evicted back to the host.
    pub fn pages_evicted(&self) -> u64 {
        self.pages_evicted
    }

    /// Total kernel stall attributable to fault servicing.
    pub fn fault_stall(&self) -> Nanos {
        self.fault_stall
    }

    /// Mean faults per batch; zero when no batch was serviced.
    pub fn faults_per_batch(&self) -> f64 {
        if self.fault_batches == 0 {
            0.0
        } else {
            self.page_faults as f64 / self.fault_batches as f64
        }
    }

    /// Fraction of touched pages that were satisfied by prefetch rather than
    /// demand migration; zero when nothing moved.
    pub fn prefetch_coverage(&self) -> f64 {
        let total = self.pages_migrated + self.pages_prefetched;
        if total == 0 {
            0.0
        } else {
            self.pages_prefetched as f64 / total as f64
        }
    }
}

impl Add for UvmCounters {
    type Output = UvmCounters;
    fn add(self, rhs: UvmCounters) -> UvmCounters {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for UvmCounters {
    fn add_assign(&mut self, rhs: UvmCounters) {
        self.page_faults += rhs.page_faults;
        self.fault_batches += rhs.fault_batches;
        self.pages_migrated += rhs.pages_migrated;
        self.pages_prefetched += rhs.pages_prefetched;
        self.pages_evicted += rhs.pages_evicted;
        self.fault_stall += rhs.fault_stall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_batches_accumulate() {
        let mut u = UvmCounters::new();
        u.record_fault_batch(200, Nanos::from_micros(38));
        u.record_fault_batch(56, Nanos::from_micros(38));
        assert_eq!(u.page_faults(), 256);
        assert_eq!(u.fault_batches(), 2);
        assert_eq!(u.fault_stall(), Nanos::from_micros(76));
        assert_eq!(u.faults_per_batch(), 128.0);
    }

    #[test]
    fn prefetch_coverage() {
        let mut u = UvmCounters::new();
        u.record_prefetched_pages(75);
        u.record_migrated_pages(25);
        assert!((u.prefetch_coverage() - 0.75).abs() < 1e-12);
        assert_eq!(UvmCounters::new().prefetch_coverage(), 0.0);
    }

    #[test]
    fn empty_rates_are_zero() {
        let u = UvmCounters::new();
        assert_eq!(u.faults_per_batch(), 0.0);
        assert_eq!(u.fault_stall(), Nanos::ZERO);
    }

    #[test]
    fn merge_sums() {
        let mut a = UvmCounters::new();
        a.record_fault_batch(10, Nanos::from_nanos(100));
        a.record_evicted_pages(3);
        let mut b = UvmCounters::new();
        b.record_migrated_pages(7);
        let c = a + b;
        assert_eq!(c.page_faults(), 10);
        assert_eq!(c.pages_migrated(), 7);
        assert_eq!(c.pages_evicted(), 3);
    }
}
