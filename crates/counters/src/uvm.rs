//! UVM subsystem counters.
//!
//! The paper attributes the `uvm` configuration's 2–2.2× kernel-time
//! inflation to GPU far faults and their batched servicing (§4.1.1, citing
//! Allen & Ge). These counters expose that machinery: fault counts, batch
//! counts, pages moved by demand migration vs. prefetch, and the total
//! fault-service stall charged to the kernel.

use hetsim_engine::time::Nanos;
use std::ops::{Add, AddAssign};

/// Number of batch-fill histogram buckets: power-of-two fills `1, 2–3,
/// 4–7, …, ≥256`. The last bucket holds capacity-filled batches on the
/// A100's 256-entry fault buffer.
pub const BATCH_FILL_BUCKETS: usize = 9;

/// Counters for the unified-virtual-memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UvmCounters {
    page_faults: u64,
    fault_batches: u64,
    pages_migrated: u64,
    pages_prefetched: u64,
    pages_heuristic: u64,
    pages_evicted: u64,
    refaults: u64,
    fault_stall: Nanos,
    batch_fill: [u64; BATCH_FILL_BUCKETS],
    fill_batches: u64,
    fill_faults: u64,
}

impl UvmCounters {
    /// An all-zero counter set.
    pub fn new() -> Self {
        UvmCounters::default()
    }

    /// Reconstructs a counter set from raw field values, as read back from a
    /// serialized result cache entry. `batch_fill` is the histogram returned
    /// by [`UvmCounters::batch_fill_histogram`]; `fill_batches`/`fill_faults`
    /// are the totals behind [`UvmCounters::mean_batch_fill`]. Inverse of the
    /// field accessors.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        page_faults: u64,
        fault_batches: u64,
        pages_migrated: u64,
        pages_prefetched: u64,
        pages_heuristic: u64,
        pages_evicted: u64,
        refaults: u64,
        fault_stall: Nanos,
        batch_fill: [u64; BATCH_FILL_BUCKETS],
        fill_batches: u64,
        fill_faults: u64,
    ) -> Self {
        UvmCounters {
            page_faults,
            fault_batches,
            pages_migrated,
            pages_prefetched,
            pages_heuristic,
            pages_evicted,
            refaults,
            fault_stall,
            batch_fill,
            fill_batches,
            fill_faults,
        }
    }

    /// Records `faults` far faults serviced in one batch with total stall
    /// `stall`.
    pub fn record_fault_batch(&mut self, faults: u64, stall: Nanos) {
        self.page_faults += faults;
        self.fault_batches += 1;
        self.fault_stall += stall;
    }

    /// Records the fill of one serviced batch into the power-of-two
    /// batch-fill histogram. Irregular access streams show up as mass in
    /// the low buckets (under-filled batches, each paying the full batch
    /// latency); streaming workloads pile into the top bucket.
    pub fn record_batch_fill(&mut self, fill: u64) {
        if fill == 0 {
            return;
        }
        let bucket = (63 - fill.leading_zeros() as usize).min(BATCH_FILL_BUCKETS - 1);
        self.batch_fill[bucket] += 1;
        self.fill_batches += 1;
        self.fill_faults += fill;
    }

    /// Records pages moved host→device by demand migration.
    pub fn record_migrated_pages(&mut self, pages: u64) {
        self.pages_migrated += pages;
    }

    /// Records pages moved host→device by an explicit prefetch.
    pub fn record_prefetched_pages(&mut self, pages: u64) {
        self.pages_prefetched += pages;
    }

    /// Records pages migrated speculatively by the driver's region-growing
    /// heuristic (fault-adjacent blocks, not explicit prefetch).
    pub fn record_heuristic_pages(&mut self, pages: u64) {
        self.pages_heuristic += pages;
    }

    /// Records pages evicted device→host (oversubscription path).
    pub fn record_evicted_pages(&mut self, pages: u64) {
        self.pages_evicted += pages;
    }

    /// Records faults on chunks that had been resident before and were
    /// evicted or displaced — the thrashing signature of re-touch
    /// workloads under memory pressure.
    pub fn record_refaults(&mut self, refaults: u64) {
        self.refaults += refaults;
    }

    /// Total GPU far faults.
    pub fn page_faults(&self) -> u64 {
        self.page_faults
    }

    /// Number of serviced fault batches.
    pub fn fault_batches(&self) -> u64 {
        self.fault_batches
    }

    /// Pages moved by demand migration.
    pub fn pages_migrated(&self) -> u64 {
        self.pages_migrated
    }

    /// Pages moved by explicit prefetch.
    pub fn pages_prefetched(&self) -> u64 {
        self.pages_prefetched
    }

    /// Pages migrated by the driver's region-growing speculation.
    pub fn pages_heuristic(&self) -> u64 {
        self.pages_heuristic
    }

    /// Pages evicted back to the host.
    pub fn pages_evicted(&self) -> u64 {
        self.pages_evicted
    }

    /// Faults on previously evicted or displaced chunks (thrashing).
    pub fn refaults(&self) -> u64 {
        self.refaults
    }

    /// Total kernel stall attributable to fault servicing.
    pub fn fault_stall(&self) -> Nanos {
        self.fault_stall
    }

    /// The batch-fill histogram: bucket `i` counts serviced batches whose
    /// fill was in `[2^i, 2^(i+1))`, with the last bucket open-ended.
    pub fn batch_fill_histogram(&self) -> [u64; BATCH_FILL_BUCKETS] {
        self.batch_fill
    }

    /// Number of batches recorded through
    /// [`UvmCounters::record_batch_fill`] (the denominator of
    /// [`UvmCounters::mean_batch_fill`]).
    pub fn fill_batches(&self) -> u64 {
        self.fill_batches
    }

    /// Total faults across batches recorded through
    /// [`UvmCounters::record_batch_fill`] (the numerator of
    /// [`UvmCounters::mean_batch_fill`]).
    pub fn fill_faults(&self) -> u64 {
        self.fill_faults
    }

    /// Mean fill of batches recorded through
    /// [`UvmCounters::record_batch_fill`]; zero when none were.
    pub fn mean_batch_fill(&self) -> f64 {
        if self.fill_batches == 0 {
            0.0
        } else {
            self.fill_faults as f64 / self.fill_batches as f64
        }
    }

    /// Fraction of recorded batches below the top histogram bucket (fill
    /// < 256 — under-filled relative to the A100's batch capacity); zero
    /// when none were recorded.
    pub fn underfilled_batch_fraction(&self) -> f64 {
        if self.fill_batches == 0 {
            return 0.0;
        }
        let full = self.batch_fill[BATCH_FILL_BUCKETS - 1];
        (self.fill_batches - full) as f64 / self.fill_batches as f64
    }

    /// Mean faults per batch; zero when no batch was serviced.
    pub fn faults_per_batch(&self) -> f64 {
        if self.fault_batches == 0 {
            0.0
        } else {
            self.page_faults as f64 / self.fault_batches as f64
        }
    }

    /// Fraction of touched pages that were satisfied by prefetch rather than
    /// demand migration; zero when nothing moved.
    pub fn prefetch_coverage(&self) -> f64 {
        let total = self.pages_migrated + self.pages_prefetched;
        if total == 0 {
            0.0
        } else {
            self.pages_prefetched as f64 / total as f64
        }
    }
}

impl Add for UvmCounters {
    type Output = UvmCounters;
    fn add(self, rhs: UvmCounters) -> UvmCounters {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for UvmCounters {
    fn add_assign(&mut self, rhs: UvmCounters) {
        self.page_faults += rhs.page_faults;
        self.fault_batches += rhs.fault_batches;
        self.pages_migrated += rhs.pages_migrated;
        self.pages_prefetched += rhs.pages_prefetched;
        self.pages_heuristic += rhs.pages_heuristic;
        self.pages_evicted += rhs.pages_evicted;
        self.refaults += rhs.refaults;
        self.fault_stall += rhs.fault_stall;
        for (a, b) in self.batch_fill.iter_mut().zip(rhs.batch_fill.iter()) {
            *a += b;
        }
        self.fill_batches += rhs.fill_batches;
        self.fill_faults += rhs.fill_faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_batches_accumulate() {
        let mut u = UvmCounters::new();
        u.record_fault_batch(200, Nanos::from_micros(38));
        u.record_fault_batch(56, Nanos::from_micros(38));
        assert_eq!(u.page_faults(), 256);
        assert_eq!(u.fault_batches(), 2);
        assert_eq!(u.fault_stall(), Nanos::from_micros(76));
        assert_eq!(u.faults_per_batch(), 128.0);
    }

    #[test]
    fn prefetch_coverage() {
        let mut u = UvmCounters::new();
        u.record_prefetched_pages(75);
        u.record_migrated_pages(25);
        assert!((u.prefetch_coverage() - 0.75).abs() < 1e-12);
        assert_eq!(UvmCounters::new().prefetch_coverage(), 0.0);
    }

    #[test]
    fn empty_rates_are_zero() {
        let u = UvmCounters::new();
        assert_eq!(u.faults_per_batch(), 0.0);
        assert_eq!(u.fault_stall(), Nanos::ZERO);
    }

    #[test]
    fn merge_sums() {
        let mut a = UvmCounters::new();
        a.record_fault_batch(10, Nanos::from_nanos(100));
        a.record_evicted_pages(3);
        let mut b = UvmCounters::new();
        b.record_migrated_pages(7);
        let c = a + b;
        assert_eq!(c.page_faults(), 10);
        assert_eq!(c.pages_migrated(), 7);
        assert_eq!(c.pages_evicted(), 3);
    }

    #[test]
    fn batch_fill_histogram_buckets_by_power_of_two() {
        let mut u = UvmCounters::new();
        u.record_batch_fill(1); // bucket 0
        u.record_batch_fill(3); // bucket 1
        u.record_batch_fill(4); // bucket 2
        u.record_batch_fill(255); // bucket 7
        u.record_batch_fill(256); // bucket 8
        u.record_batch_fill(1000); // clamped to bucket 8
        u.record_batch_fill(0); // ignored
        let h = u.batch_fill_histogram();
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h[7], 1);
        assert_eq!(h[8], 2);
        assert_eq!(h.iter().sum::<u64>(), 6);
    }

    #[test]
    fn mean_fill_and_underfilled_fraction() {
        let mut u = UvmCounters::new();
        assert_eq!(u.mean_batch_fill(), 0.0);
        assert_eq!(u.underfilled_batch_fraction(), 0.0);
        u.record_batch_fill(256);
        u.record_batch_fill(2);
        u.record_batch_fill(2);
        u.record_batch_fill(4);
        assert!((u.mean_batch_fill() - 66.0).abs() < 1e-12);
        assert!((u.underfilled_batch_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn refaults_and_heuristic_pages_merge() {
        let mut a = UvmCounters::new();
        a.record_refaults(5);
        a.record_heuristic_pages(20);
        a.record_batch_fill(8);
        let mut b = UvmCounters::new();
        b.record_refaults(2);
        b.record_batch_fill(256);
        let c = a + b;
        assert_eq!(c.refaults(), 7);
        assert_eq!(c.pages_heuristic(), 20);
        assert_eq!(c.batch_fill_histogram()[3], 1);
        assert_eq!(c.batch_fill_histogram()[8], 1);
        assert!((c.mean_batch_fill() - 132.0).abs() < 1e-12);
    }
}
