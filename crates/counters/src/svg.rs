//! A dependency-free SVG emitter for the paper's figure styles.
//!
//! Two chart shapes cover every figure in the paper: grouped bars
//! (Figs 5, 7–13: workloads × modes) and stacked bars (the breakdown
//! shades: gpu_kernel / memcpy / allocation). [`BarChart`] renders both to
//! plain SVG strings that the CLI writes next to the CSVs, so the artifact
//! produces viewable figures without a plotting stack.

use std::fmt::Write as _;

/// Chart geometry.
const WIDTH: f64 = 960.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_BOTTOM: f64 = 80.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_RIGHT: f64 = 20.0;

/// The five-series palette (one colour per transfer mode, matching the
/// paper's five setups).
const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2", "#edc948", "#9c755f",
];

/// A grouped (optionally stacked) bar chart.
///
/// # Example
///
/// ```
/// use hetsim_counters::svg::BarChart;
///
/// let mut c = BarChart::new("Fig 7 (excerpt)", "normalized time");
/// c.series("standard", &[1.0, 1.0]);
/// c.series("uvm_prefetch", &[0.47, 0.51]);
/// c.categories(&["vector_seq", "saxpy"]);
/// let svg = c.render();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("vector_seq"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    y_label: String,
    categories: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
    stacked: bool,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new<T: Into<String>, Y: Into<String>>(title: T, y_label: Y) -> Self {
        BarChart {
            title: title.into(),
            y_label: y_label.into(),
            ..BarChart::default()
        }
    }

    /// Sets the category (x axis) labels.
    pub fn categories<S: AsRef<str>>(&mut self, names: &[S]) -> &mut Self {
        self.categories = names.iter().map(|s| s.as_ref().to_string()).collect();
        self
    }

    /// Adds one series (one bar per category).
    pub fn series<S: Into<String>>(&mut self, name: S, values: &[f64]) -> &mut Self {
        self.series.push((name.into(), values.to_vec()));
        self
    }

    /// Stacks the series instead of grouping them (breakdown figures).
    pub fn stacked(&mut self, on: bool) -> &mut Self {
        self.stacked = on;
        self
    }

    /// Renders the SVG document.
    ///
    /// # Panics
    ///
    /// Panics if the series lengths disagree with the category count, or
    /// if the chart has no data.
    pub fn render(&self) -> String {
        assert!(!self.series.is_empty(), "chart has no series");
        let n_cat = self
            .categories
            .len()
            .max(self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0));
        assert!(n_cat > 0, "chart has no categories");
        for (name, v) in &self.series {
            assert_eq!(v.len(), n_cat, "series {name} has wrong length");
        }

        let max_value = if self.stacked {
            (0..n_cat)
                .map(|i| self.series.iter().map(|(_, v)| v[i].max(0.0)).sum::<f64>())
                .fold(0.0f64, f64::max)
        } else {
            self.series
                .iter()
                .flat_map(|(_, v)| v.iter())
                .fold(0.0f64, |a, &b| a.max(b))
        }
        .max(1e-12);

        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let y_of = |v: f64| MARGIN_TOP + plot_h * (1.0 - v / (max_value * 1.05));

        let mut s = String::new();
        let _ = write!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(
            s,
            r#"<text x="{}" y="20" font-size="15" font-weight="bold">{}</text>"#,
            MARGIN_LEFT,
            esc(&self.title)
        );
        // Y axis with 5 gridlines.
        for i in 0..=5 {
            let v = max_value * 1.05 * i as f64 / 5.0;
            let y = y_of(v);
            let _ = write!(
                s,
                r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/><text x="{:.1}" y="{:.1}" text-anchor="end">{v:.2}</text>"##,
                WIDTH - MARGIN_RIGHT,
                MARGIN_LEFT - 6.0,
                y + 4.0
            );
        }
        let _ = write!(
            s,
            r#"<text x="14" y="{:.1}" transform="rotate(-90 14 {:.1})" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            esc(&self.y_label)
        );

        let group_w = plot_w / n_cat as f64;
        let n_series = self.series.len() as f64;
        for (ci, _) in (0..n_cat).enumerate() {
            let gx = MARGIN_LEFT + group_w * ci as f64;
            if self.stacked {
                let bar_w = (group_w * 0.6).min(60.0);
                let x = gx + (group_w - bar_w) / 2.0;
                let mut acc = 0.0;
                for (si, (_, v)) in self.series.iter().enumerate() {
                    let v0 = acc;
                    acc += v[ci].max(0.0);
                    let y1 = y_of(acc);
                    let y0 = y_of(v0);
                    let _ = write!(
                        s,
                        r#"<rect x="{x:.1}" y="{y1:.1}" width="{bar_w:.1}" height="{:.1}" fill="{}"/>"#,
                        (y0 - y1).max(0.0),
                        PALETTE[si % PALETTE.len()]
                    );
                }
            } else {
                let bar_w = (group_w * 0.8 / n_series).min(40.0);
                for (si, (_, v)) in self.series.iter().enumerate() {
                    let x = gx + group_w * 0.1 + bar_w * si as f64;
                    let y = y_of(v[ci].max(0.0));
                    let _ = write!(
                        s,
                        r#"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{:.1}" fill="{}"/>"#,
                        (MARGIN_TOP + plot_h - y).max(0.0),
                        PALETTE[si % PALETTE.len()]
                    );
                }
            }
            // Category label.
            let label = self
                .categories
                .get(ci)
                .cloned()
                .unwrap_or_else(|| ci.to_string());
            let lx = gx + group_w / 2.0;
            let ly = MARGIN_TOP + plot_h + 14.0;
            let _ = write!(
                s,
                r#"<text x="{lx:.1}" y="{ly:.1}" text-anchor="end" transform="rotate(-35 {lx:.1} {ly:.1})">{}</text>"#,
                esc(&label)
            );
        }

        // Legend.
        for (si, (name, _)) in self.series.iter().enumerate() {
            let x = MARGIN_LEFT + 140.0 * si as f64;
            let y = HEIGHT - 14.0;
            let _ = write!(
                s,
                r#"<rect x="{x:.1}" y="{:.1}" width="12" height="12" fill="{}"/><text x="{:.1}" y="{y:.1}">{}</text>"#,
                y - 11.0,
                PALETTE[si % PALETTE.len()],
                x + 16.0,
                esc(name)
            );
        }
        s.push_str("</svg>");
        s
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        let mut c = BarChart::new("test", "y");
        c.categories(&["a", "b", "c"]);
        c.series("s1", &[1.0, 2.0, 3.0]);
        c.series("s2", &[3.0, 2.0, 1.0]);
        c
    }

    #[test]
    fn renders_valid_envelope() {
        let svg = chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // 2 series x 3 categories = 6 bars + legend swatches.
        assert_eq!(svg.matches("<rect").count(), 6 + 2);
    }

    #[test]
    fn labels_and_legend_present() {
        let svg = chart().render();
        for label in ["test", "s1", "s2", "a", "b", "c"] {
            assert!(svg.contains(label), "missing {label}");
        }
    }

    #[test]
    fn stacked_bars_one_per_category() {
        let mut c = chart();
        c.stacked(true);
        let svg = c.render();
        assert_eq!(svg.matches("<rect").count(), 6 + 2);
    }

    #[test]
    fn escapes_markup() {
        let mut c = BarChart::new("a<b&c>", "y");
        c.categories(&["x"]);
        c.series("s", &[1.0]);
        let svg = c.render();
        assert!(svg.contains("a&lt;b&amp;c&gt;"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn zero_values_render() {
        let mut c = BarChart::new("z", "y");
        c.categories(&["x"]);
        c.series("s", &[0.0]);
        let svg = c.render();
        assert!(svg.contains("<rect"));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn mismatched_series_rejected() {
        let mut c = BarChart::new("bad", "y");
        c.categories(&["a", "b"]);
        c.series("s", &[1.0]);
        let _ = c.render();
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn empty_chart_rejected() {
        let _ = BarChart::new("empty", "y").render();
    }
}
