//! # hetsim-counters
//!
//! CUPTI-like performance counters for the hetsim simulator.
//!
//! The paper's in-depth analysis (§4.2) relies on two groups of GPU hardware
//! counters — the instruction mix (Fig 9) and the unified L1/texture cache
//! global load/store miss rates (Fig 10) — plus the derived occupancy and
//! time-breakdown shares of §6. This crate defines those counter sets as
//! plain data types that the memory, GPU, and runtime models populate, and a
//! small plain-text/CSV [`report`] module the harness uses to print them.
//!
//! # Example
//!
//! ```
//! use hetsim_counters::{InstClass, InstructionMix};
//!
//! let mut mix = InstructionMix::new();
//! mix.record(InstClass::Fp, 1_000);
//! mix.record(InstClass::Control, 40);
//! assert_eq!(mix.total(), 1_040);
//! assert_eq!(mix.get(InstClass::Control), 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod inst;
pub mod occupancy;
pub mod report;
pub mod set;
pub mod svg;
pub mod transfer;
pub mod uvm;

pub use cache::CacheCounters;
pub use inst::{InstClass, InstructionMix};
pub use occupancy::Occupancy;
pub use report::Table;
pub use set::CounterSet;
pub use svg::BarChart;
pub use transfer::TransferCounters;
pub use uvm::UvmCounters;
