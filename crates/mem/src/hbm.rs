//! Device global memory (HBM2 on the A100).
//!
//! Global memory supplies the `U2`/`A2.1` stage of the paper's pipeline: SMs
//! read it through L1/L2 (or stage it into shared memory with Async
//! Memcpy). The model is a capacity + bandwidth/latency pair; residency of
//! UVM pages lives in `hetsim-uvm`, not here.

use hetsim_engine::bandwidth::{Bandwidth, Latency};
use hetsim_engine::time::Nanos;

/// Device global memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hbm {
    capacity: u64,
    bandwidth: Bandwidth,
    latency: Latency,
}

impl Hbm {
    /// Creates a device-memory model.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64, bandwidth: Bandwidth, latency: Latency) -> Self {
        assert!(capacity > 0, "device memory capacity must be non-zero");
        Hbm {
            capacity,
            bandwidth,
            latency,
        }
    }

    /// The A100's 40 GB HBM2 stack: ~1555 GB/s peak, ~290 ns load-to-use.
    pub fn a100_40gb() -> Self {
        Hbm::new(
            40 * (1u64 << 30),
            Bandwidth::from_gb_per_sec(1555.0),
            Latency::from_nanos(290),
        )
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Peak bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Access latency.
    pub fn latency(&self) -> Latency {
        self.latency
    }

    /// Time for a streaming read/write of `bytes` at peak bandwidth.
    pub fn stream_time(&self, bytes: u64) -> Nanos {
        self.latency.as_nanos() + self.bandwidth.transfer_time(bytes)
    }

    /// Whether `bytes` fits in device memory (the paper avoids
    /// oversubscription; its Mega inputs are chosen to fit 40 GB).
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_preset() {
        let h = Hbm::a100_40gb();
        assert_eq!(h.capacity(), 40 * (1u64 << 30));
        assert!((h.bandwidth().as_gb_per_sec() - 1555.0).abs() < 1e-9);
        assert_eq!(h.latency().as_nanos(), Nanos::from_nanos(290));
    }

    #[test]
    fn stream_time_includes_latency() {
        let h = Hbm::new(
            1 << 30,
            Bandwidth::from_gb_per_sec(1.0),
            Latency::from_nanos(100),
        );
        assert_eq!(h.stream_time(1_000), Nanos::from_nanos(100 + 1_000));
    }

    #[test]
    fn fits_checks_capacity() {
        let h = Hbm::a100_40gb();
        assert!(h.fits(32 * (1u64 << 30)), "Mega inputs fit");
        assert!(!h.fits(41 * (1u64 << 30)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Hbm::new(0, Bandwidth::from_gb_per_sec(1.0), Latency::ZERO);
    }
}
