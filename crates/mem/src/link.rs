//! The CPU↔GPU interconnect (`U1` in the paper's Figure 1).
//!
//! A single physical PCIe 4.0 x16 link carries four logically distinct
//! transfer paths with very different *effective* throughputs, and the gap
//! between them is the whole story of the paper's memcpy-time results:
//!
//! * **pageable `cudaMemcpy`** is bound by the host-side staging copy
//!   (bounce buffer) — a few GB/s;
//! * **pinned `cudaMemcpy`** streams at near link speed;
//! * **UVM demand migration** moves small batches with driver overhead;
//! * **UVM bulk prefetch** (`cudaMemPrefetchAsync`) streams large ranges at
//!   close to pinned speed.
//!
//! Effective bandwidths are calibrated so the relative savings match the
//! paper: UVM on-demand saves ~32% of memcpy time over pageable copies, and
//! prefetch saves ~64% (§4.1.2).

use hetsim_engine::bandwidth::{link_transfer_time, Bandwidth, Latency};
use hetsim_engine::time::Nanos;

/// The logical transfer paths over the CPU↔GPU link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkPath {
    /// `cudaMemcpy` from/to pageable host memory (staged through a bounce
    /// buffer).
    PageableCopy,
    /// `cudaMemcpy` from/to pinned host memory (pure DMA).
    PinnedCopy,
    /// UVM on-demand page migration triggered by GPU far faults.
    DemandMigration,
    /// UVM bulk range prefetch (`cudaMemPrefetchAsync`).
    BulkPrefetch,
}

impl LinkPath {
    /// All paths, for iteration in tests and reports.
    pub const ALL: [LinkPath; 4] = [
        LinkPath::PageableCopy,
        LinkPath::PinnedCopy,
        LinkPath::DemandMigration,
        LinkPath::BulkPrefetch,
    ];

    /// Stable lowercase identifier, used as the trace span name of DMA
    /// operations on this path.
    pub fn name(self) -> &'static str {
        match self {
            LinkPath::PageableCopy => "pageable_copy",
            LinkPath::PinnedCopy => "pinned_copy",
            LinkPath::DemandMigration => "demand_migration",
            LinkPath::BulkPrefetch => "bulk_prefetch",
        }
    }
}

/// The CPU↔GPU interconnect with per-path effective costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuGpuLink {
    pageable: (Latency, Bandwidth),
    pinned: (Latency, Bandwidth),
    demand: (Latency, Bandwidth),
    prefetch: (Latency, Bandwidth),
}

impl CpuGpuLink {
    /// PCIe 4.0 x16 between an EPYC host and an A100, with effective
    /// per-path throughputs calibrated to the paper's observed savings.
    pub fn pcie4_a100() -> Self {
        CpuGpuLink {
            pageable: (Latency::from_micros(10), Bandwidth::from_gb_per_sec(6.2)),
            pinned: (Latency::from_micros(8), Bandwidth::from_gb_per_sec(26.0)),
            demand: (Latency::from_micros(20), Bandwidth::from_gb_per_sec(9.3)),
            prefetch: (Latency::from_micros(15), Bandwidth::from_gb_per_sec(17.5)),
        }
    }

    /// Builds a link with explicit per-path costs (ablation studies).
    pub fn with_paths(
        pageable: (Latency, Bandwidth),
        pinned: (Latency, Bandwidth),
        demand: (Latency, Bandwidth),
        prefetch: (Latency, Bandwidth),
    ) -> Self {
        CpuGpuLink {
            pageable,
            pinned,
            demand,
            prefetch,
        }
    }

    fn path(&self, p: LinkPath) -> (Latency, Bandwidth) {
        match p {
            LinkPath::PageableCopy => self.pageable,
            LinkPath::PinnedCopy => self.pinned,
            LinkPath::DemandMigration => self.demand,
            LinkPath::BulkPrefetch => self.prefetch,
        }
    }

    /// Effective bandwidth of a path.
    pub fn bandwidth(&self, p: LinkPath) -> Bandwidth {
        self.path(p).1
    }

    /// Fixed per-operation latency of a path.
    pub fn latency(&self, p: LinkPath) -> Latency {
        self.path(p).0
    }

    /// Time for one transfer of `bytes` over `p`.
    pub fn transfer_time(&self, p: LinkPath, bytes: u64) -> Nanos {
        let (lat, bw) = self.path(p);
        link_transfer_time(lat, bw, bytes)
    }

    /// Time for `bytes` moved as `ceil(bytes/chunk)` operations, each paying
    /// the path's fixed latency — how demand migration actually behaves.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunked_transfer_time(&self, p: LinkPath, bytes: u64, chunk: u64) -> Nanos {
        assert!(chunk > 0, "chunk size must be non-zero");
        if bytes == 0 {
            return Nanos::ZERO;
        }
        let (lat, bw) = self.path(p);
        let ops = bytes.div_ceil(chunk);
        lat.times(ops) + bw.transfer_time(bytes)
    }

    /// [`CpuGpuLink::transfer_time`] for a *committed* transfer: same
    /// result, but when a trace session is active the operation also lands
    /// as a `dma` span (with a `bytes` argument) on the `dma` track.
    ///
    /// The pure query stays side-effect free for speculative cost probing;
    /// call this variant only at the point where a transfer actually
    /// happens.
    pub fn record_transfer(&self, p: LinkPath, bytes: u64) -> Nanos {
        let t = self.transfer_time(p, bytes);
        self.record_dma(p, bytes, t, 1);
        t
    }

    /// [`CpuGpuLink::chunked_transfer_time`] for a committed transfer —
    /// see [`CpuGpuLink::record_transfer`]. The span carries the burst
    /// count in its `ops` argument rather than one span per chunk, so a
    /// million-chunk migration stays one event.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn record_chunked_transfer(&self, p: LinkPath, bytes: u64, chunk: u64) -> Nanos {
        let t = self.chunked_transfer_time(p, bytes, chunk);
        if bytes > 0 {
            self.record_dma(p, bytes, t, bytes.div_ceil(chunk));
        }
        t
    }

    fn record_dma(&self, p: LinkPath, bytes: u64, t: Nanos, ops: u64) {
        if !hetsim_trace::session::enabled() {
            return;
        }
        hetsim_trace::session::with(|b| {
            let track = b.track("dma");
            let arg = if ops > 1 {
                ("ops", ops as f64)
            } else {
                ("bytes", bytes as f64)
            };
            b.detail_span(
                track,
                hetsim_trace::Category::Dma,
                p.name(),
                t.as_nanos(),
                Some(arg),
            );
            b.counter("dma.op_bytes", bytes as f64);
        });
    }
}

impl Default for CpuGpuLink {
    fn default() -> Self {
        CpuGpuLink::pcie4_a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_ordering_matches_calibration() {
        let l = CpuGpuLink::pcie4_a100();
        let pageable = l.bandwidth(LinkPath::PageableCopy).bytes_per_sec();
        let demand = l.bandwidth(LinkPath::DemandMigration).bytes_per_sec();
        let prefetch = l.bandwidth(LinkPath::BulkPrefetch).bytes_per_sec();
        let pinned = l.bandwidth(LinkPath::PinnedCopy).bytes_per_sec();
        assert!(pageable < demand && demand < prefetch && prefetch < pinned);
    }

    #[test]
    fn savings_match_paper_shape() {
        // Large bulk transfer: fixed latencies negligible.
        let l = CpuGpuLink::pcie4_a100();
        let bytes = 4 * (1u64 << 30);
        let base = l.transfer_time(LinkPath::PageableCopy, bytes).as_secs_f64();
        let uvm = l
            .transfer_time(LinkPath::DemandMigration, bytes)
            .as_secs_f64();
        let pf = l.transfer_time(LinkPath::BulkPrefetch, bytes).as_secs_f64();
        let uvm_saving = 1.0 - uvm / base;
        let pf_saving = 1.0 - pf / base;
        // Paper: ~32% savings for uvm, ~64% for uvm_prefetch.
        assert!(
            (0.25..0.42).contains(&uvm_saving),
            "uvm saving {uvm_saving}"
        );
        assert!(
            (0.55..0.72).contains(&pf_saving),
            "prefetch saving {pf_saving}"
        );
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = CpuGpuLink::pcie4_a100();
        assert_eq!(
            l.transfer_time(LinkPath::PinnedCopy, 0),
            Nanos::from_micros(8)
        );
    }

    #[test]
    fn chunked_transfer_pays_latency_per_chunk() {
        let l = CpuGpuLink::pcie4_a100();
        let one = l.transfer_time(LinkPath::DemandMigration, 1 << 20);
        let chunked = l.chunked_transfer_time(LinkPath::DemandMigration, 1 << 20, 64 * 1024);
        // 16 chunks pay 16 latencies instead of 1.
        let extra = chunked - one;
        assert_eq!(extra, Latency::from_micros(20).times(15));
        assert_eq!(
            l.chunked_transfer_time(LinkPath::DemandMigration, 0, 4096),
            Nanos::ZERO
        );
    }

    #[test]
    fn all_paths_iterable() {
        let l = CpuGpuLink::default();
        for p in LinkPath::ALL {
            assert!(l.bandwidth(p).bytes_per_sec() > 0.0);
            assert!(l.latency(p).as_nanos() >= Nanos::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        let _ = CpuGpuLink::default().chunked_transfer_time(LinkPath::PageableCopy, 10, 0);
    }
}
