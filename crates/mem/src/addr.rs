//! Typed addresses and memory accesses.

use std::fmt;
use std::ops::Add;

/// A byte address in the simulated (virtual) address space.
///
/// Workload models emit `Addr` streams; caches and page tables consume them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    pub const fn new(a: u64) -> Self {
        Addr(a)
    }

    /// Raw byte value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The containing aligned block number for a power-of-two block size
    /// (cache line, page, chunk).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block` is zero.
    pub const fn block(self, block: u64) -> u64 {
        self.0 / block
    }

    /// Byte offset within an aligned block.
    pub const fn offset_in(self, block: u64) -> u64 {
        self.0 % block
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl From<u64> for Addr {
    fn from(a: u64) -> Addr {
        Addr(a)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

impl AccessKind {
    /// True for [`AccessKind::Load`].
    pub const fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

/// The memory space an access targets.
///
/// Shared-memory accesses bypass the L1 and never fault; global accesses
/// traverse L1 → L2 → HBM and may take UVM far faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory (backed by HBM, cached in L1/L2).
    Global,
    /// Per-SM software-managed shared memory.
    Shared,
}

/// One memory access from a kernel's address stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Target address.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Global or shared space.
    pub space: MemSpace,
}

impl MemAccess {
    /// A global-memory load.
    pub const fn global_load(addr: u64) -> Self {
        MemAccess {
            addr: Addr::new(addr),
            kind: AccessKind::Load,
            space: MemSpace::Global,
        }
    }

    /// A global-memory store.
    pub const fn global_store(addr: u64) -> Self {
        MemAccess {
            addr: Addr::new(addr),
            kind: AccessKind::Store,
            space: MemSpace::Global,
        }
    }

    /// A shared-memory load.
    pub const fn shared_load(addr: u64) -> Self {
        MemAccess {
            addr: Addr::new(addr),
            kind: AccessKind::Load,
            space: MemSpace::Shared,
        }
    }

    /// A shared-memory store.
    pub const fn shared_store(addr: u64) -> Self {
        MemAccess {
            addr: Addr::new(addr),
            kind: AccessKind::Store,
            space: MemSpace::Shared,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math() {
        let a = Addr::new(4096 + 130);
        assert_eq!(a.block(4096), 1);
        assert_eq!(a.offset_in(4096), 130);
        assert_eq!(a.block(128), 33);
    }

    #[test]
    fn addr_arithmetic_and_conversion() {
        let a: Addr = 100u64.into();
        assert_eq!((a + 28).as_u64(), 128);
        assert_eq!(Addr::new(255).to_string(), "0xff");
    }

    #[test]
    fn constructors_set_fields() {
        let l = MemAccess::global_load(8);
        assert_eq!(l.kind, AccessKind::Load);
        assert_eq!(l.space, MemSpace::Global);
        assert!(l.kind.is_load());
        let s = MemAccess::shared_store(16);
        assert_eq!(s.kind, AccessKind::Store);
        assert_eq!(s.space, MemSpace::Shared);
        assert!(!s.kind.is_load());
        assert_eq!(MemAccess::global_store(1).space, MemSpace::Global);
        assert_eq!(MemAccess::shared_load(1).space, MemSpace::Shared);
    }
}
