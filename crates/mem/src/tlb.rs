//! A TLB model for UVM address translation.
//!
//! Under UVM the GPU walks host-compatible page tables; the paper attributes
//! part of the `uvm` configuration's kernel inflation to "additional page
//! walking" (§4.1.1, citing Allen & Ge). This module models the per-SM TLB
//! as a small set-associative cache over page numbers, so the translation
//! overhead of a kernel *emerges from its access stream*: dense sequential
//! walks hit a few pages repeatedly, random walks miss constantly.
//!
//! The executor replays each global access through a [`Tlb`] when a run
//! uses managed memory and derives the translation stall from the measured
//! miss count × the page-walk cost.

use crate::addr::Addr;

/// TLB geometry and costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlbConfig {
    /// Translation granularity, bytes (UVM maps at 2 MB granularity once
    /// migrated chunks coalesce; 64 KB before).
    pub page_bytes: u64,
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Page-walk latency per miss, in SM cycles.
    pub walk_cycles: f64,
}

impl TlbConfig {
    /// A100-class GPU MMU: 64-entry, 8-way, 64 KB pages under UVM, with a
    /// multi-level walk costing ~600 cycles when it leaves the page-walk
    /// caches.
    pub fn a100_uvm() -> Self {
        TlbConfig {
            page_bytes: 64 * 1024,
            entries: 64,
            ways: 8,
            walk_cycles: 600.0,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::a100_uvm()
    }
}

/// A set-associative TLB with LRU replacement.
///
/// # Example
///
/// ```
/// use hetsim_mem::tlb::{Tlb, TlbConfig};
/// use hetsim_mem::addr::Addr;
///
/// let mut tlb = Tlb::new(TlbConfig::a100_uvm());
/// assert!(!tlb.access(Addr::new(0)));      // cold miss
/// assert!(tlb.access(Addr::new(4096)));    // same 64 KB page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    sets: Vec<Vec<(u64, u64)>>, // (page tag, last_use)
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero entries/ways, or ways
    /// not dividing entries).
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0 && config.ways > 0, "zero TLB dimension");
        assert!(
            config.entries.is_multiple_of(config.ways),
            "entries must be a multiple of ways"
        );
        assert!(config.page_bytes.is_power_of_two(), "page size must be 2^n");
        let sets = (config.entries / config.ways) as usize;
        Tlb {
            config,
            sets: vec![Vec::with_capacity(config.ways as usize); sets],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Translates one access; returns `true` on TLB hit.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.clock += 1;
        let page = addr.block(self.config.page_bytes);
        let n_sets = self.sets.len() as u64;
        let set = &mut self.sets[(page % n_sets) as usize];
        let tag = page / n_sets;
        if let Some(e) = set.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() < self.config.ways as usize {
            set.push((tag, self.clock));
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|(_, lu)| *lu)
                .expect("full set non-empty");
            *victim = (tag, self.clock);
        }
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`; zero before any access.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Total page-walk cycles incurred so far.
    pub fn walk_cycles(&self) -> f64 {
        self.misses as f64 * self.config.walk_cycles
    }

    /// Clears residency and counters (between kernels).
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig::a100_uvm())
    }

    #[test]
    fn sequential_walk_hits_within_pages() {
        let mut t = tlb();
        // 64 KB pages, 128 B lines: 512 accesses per page, 1 miss each.
        for i in 0..512 * 4 {
            t.access(Addr::new(i * 128));
        }
        assert_eq!(t.misses(), 4);
        assert!(t.miss_rate() < 0.01);
    }

    #[test]
    fn random_walk_thrashes() {
        let mut t = tlb();
        // Touch 4096 distinct pages pseudo-randomly: far beyond 64 entries.
        let mut x: u64 = 0x12345;
        for _ in 0..4096 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let page = x % 4096;
            t.access(Addr::new(page * 64 * 1024));
        }
        assert!(t.miss_rate() > 0.9, "rate {}", t.miss_rate());
        assert!(t.walk_cycles() > 0.0);
    }

    #[test]
    fn strided_reuse_within_reach_hits() {
        let mut t = tlb();
        // 32 pages re-walked repeatedly: fits the 64-entry TLB.
        for _ in 0..10 {
            for p in 0..32u64 {
                t.access(Addr::new(p * 64 * 1024));
            }
        }
        let rate = t.miss_rate();
        assert!(rate < 0.15, "rate {rate}");
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = tlb();
        t.access(Addr::new(0));
        t.reset();
        assert_eq!(t.hits(), 0);
        assert_eq!(t.misses(), 0);
        assert_eq!(t.miss_rate(), 0.0);
        assert!(!t.access(Addr::new(0)), "cold again after reset");
    }

    #[test]
    fn lru_prefers_recent_pages() {
        let cfg = TlbConfig {
            page_bytes: 4096,
            entries: 2,
            ways: 2,
            walk_cycles: 100.0,
        };
        let mut t = Tlb::new(cfg);
        let page = |i: u64| Addr::new(i * 4096 * (cfg.entries as u64 / cfg.ways as u64));
        t.access(page(0));
        t.access(page(1));
        t.access(page(0)); // refresh 0; 1 is LRU
        t.access(page(2)); // evicts 1
        assert!(t.access(page(0)), "0 must survive");
        assert!(!t.access(page(1)), "1 was evicted");
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_rejected() {
        let _ = Tlb::new(TlbConfig {
            page_bytes: 4096,
            entries: 10,
            ways: 4,
            walk_cycles: 1.0,
        });
    }
}
