//! Host DRAM built from discrete chips.
//!
//! The paper's §3.3 traces the instability of Mega (32 GB) inputs to host
//! memory topology: with 64 GB DRAM chips, a footprint close to a single
//! chip's capacity has "a large chance that part of the data is stored in
//! the other DRAM chip, which adds more randomness" (its Fig 6). This module
//! models exactly that effect: an allocation is placed on one chip when it
//! fits comfortably, and a per-run random fraction spills to a second chip —
//! reached at derated bandwidth — once the footprint pressures the chip's
//! capacity.

use hetsim_engine::bandwidth::Bandwidth;
use hetsim_engine::rng::SimRng;
use std::fmt;

/// Host memory configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostConfig {
    /// Number of DRAM chips (DIMMs).
    pub chips: u32,
    /// Capacity per chip, bytes.
    pub chip_capacity: u64,
    /// Local (same-chip) streaming bandwidth.
    pub local_bandwidth: Bandwidth,
    /// Bandwidth derate factor in `(0, 1]` for data that spilled to another
    /// chip (extra hop / interleave conflict).
    pub cross_chip_derate: f64,
    /// Fraction of a chip's capacity below which an allocation never
    /// spills.
    pub spill_onset: f64,
}

impl HostConfig {
    /// The paper's host: 16 × 64 GB DDR4-3200 on an AMD EPYC 7742.
    pub fn epyc7742() -> Self {
        HostConfig {
            chips: 16,
            chip_capacity: 64 * (1u64 << 30),
            // 8 channels x 25.6 GB/s DDR4-3200.
            local_bandwidth: Bandwidth::from_gb_per_sec(204.8),
            cross_chip_derate: 0.35,
            spill_onset: 0.25,
        }
    }

    /// Total host capacity.
    pub fn total_capacity(&self) -> u64 {
        self.chips as u64 * self.chip_capacity
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig::epyc7742()
    }
}

/// Where an allocation's bytes physically landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Placement {
    /// Bytes resident on the allocation's primary chip.
    pub local_bytes: u64,
    /// Bytes spilled to a secondary chip.
    pub spilled_bytes: u64,
}

impl Placement {
    /// Total allocation size.
    pub fn total(&self) -> u64 {
        self.local_bytes + self.spilled_bytes
    }

    /// Fraction of bytes that spilled, `[0, 1]`.
    pub fn spilled_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.spilled_bytes as f64 / t as f64
        }
    }

    /// Multiplier on transfer time caused by the spilled portion moving at
    /// `derate × bandwidth`.
    ///
    /// A fully local placement returns 1.0.
    pub fn transfer_penalty(&self, derate: f64) -> f64 {
        assert!(derate > 0.0 && derate <= 1.0, "derate out of (0,1]");
        let f = self.spilled_fraction();
        (1.0 - f) + f / derate
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} local + {} spilled ({:.1}%)",
            self.local_bytes,
            self.spilled_bytes,
            self.spilled_fraction() * 100.0
        )
    }
}

/// The host memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostMemory {
    config: HostConfig,
}

impl HostMemory {
    /// Creates a host memory system.
    pub fn new(config: HostConfig) -> Self {
        HostMemory { config }
    }

    /// The configuration.
    pub fn config(&self) -> HostConfig {
        self.config
    }

    /// Places an allocation of `bytes`, drawing the per-run chip pressure
    /// from `rng`.
    ///
    /// Below `spill_onset × chip_capacity` the placement is fully local
    /// (this is why the paper's Large/Super inputs are stable). Above it,
    /// a random fraction — growing with capacity pressure — spills.
    pub fn place(&self, bytes: u64, rng: &mut SimRng) -> Placement {
        let cap = self.config.chip_capacity as f64;
        let pressure = bytes as f64 / cap;
        if pressure <= self.config.spill_onset {
            return Placement {
                local_bytes: bytes,
                spilled_bytes: 0,
            };
        }
        // The chip already holds a random amount of other data; whatever of
        // this allocation does not fit beside it spills. Squaring the draw
        // biases runs toward small spills, matching the long-tailed memcpy
        // distribution of the paper's Fig 6.
        let max_spill_fraction =
            (pressure.min(1.0) - self.config.spill_onset) / (1.0 - self.config.spill_onset);
        let f = max_spill_fraction * rng.next_f64().powi(2);
        let spilled = (bytes as f64 * f) as u64;
        if spilled > 0 && hetsim_trace::session::enabled() {
            hetsim_trace::session::with(|b| {
                let track = b.track("mem.host");
                b.instant(
                    track,
                    hetsim_trace::Category::Mem,
                    "chip_spill",
                    Some(("bytes", spilled as f64)),
                );
                b.counter("mem.spilled_bytes", spilled as f64);
            });
        }
        Placement {
            local_bytes: bytes - spilled,
            spilled_bytes: spilled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xC0FFEE)
    }

    #[test]
    fn epyc_preset_totals_1tb() {
        let c = HostConfig::epyc7742();
        assert_eq!(c.total_capacity(), 1024 * (1u64 << 30));
        assert_eq!(HostConfig::default(), c);
    }

    #[test]
    fn small_allocations_never_spill() {
        let host = HostMemory::new(HostConfig::epyc7742());
        let mut r = rng();
        // 4 GB (Super) on a 64 GB chip: pressure 0.0625 < onset 0.25.
        for _ in 0..100 {
            let p = host.place(4 * (1u64 << 30), &mut r);
            assert_eq!(p.spilled_bytes, 0);
            assert_eq!(p.transfer_penalty(0.35), 1.0);
        }
    }

    #[test]
    fn mega_allocations_spill_sometimes() {
        let host = HostMemory::new(HostConfig::epyc7742());
        let mut r = rng();
        // 32 GB (Mega): pressure 0.5 > onset.
        let placements: Vec<Placement> = (0..30)
            .map(|_| host.place(32 * (1u64 << 30), &mut r))
            .collect();
        let spilled_runs = placements.iter().filter(|p| p.spilled_bytes > 0).count();
        assert!(
            spilled_runs > 5,
            "expect many spilling runs, got {spilled_runs}"
        );
        let fractions: Vec<f64> = placements.iter().map(|p| p.spilled_fraction()).collect();
        let max = fractions.iter().cloned().fold(0.0, f64::max);
        let min = fractions.iter().cloned().fold(1.0, f64::min);
        assert!(
            max - min > 0.05,
            "spill fractions should vary (min {min}, max {max})"
        );
        // Conservation: every byte is somewhere.
        for p in &placements {
            assert_eq!(p.total(), 32 * (1u64 << 30));
        }
    }

    #[test]
    fn spill_fraction_bounded_by_pressure() {
        let host = HostMemory::new(HostConfig::epyc7742());
        let mut r = rng();
        for _ in 0..100 {
            let p = host.place(32 * (1u64 << 30), &mut r);
            // max spill fraction at pressure 0.5 is (0.5-0.25)/0.75 = 1/3.
            assert!(p.spilled_fraction() <= 1.0 / 3.0 + 1e-9);
        }
    }

    #[test]
    fn transfer_penalty_math() {
        let p = Placement {
            local_bytes: 50,
            spilled_bytes: 50,
        };
        // Half the data at 0.5x speed: 0.5 + 0.5/0.5 = 1.5x.
        assert!((p.transfer_penalty(0.5) - 1.5).abs() < 1e-12);
        let empty = Placement::default();
        assert_eq!(empty.spilled_fraction(), 0.0);
        assert_eq!(empty.transfer_penalty(0.35), 1.0);
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let host = HostMemory::new(HostConfig::epyc7742());
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        assert_eq!(
            host.place(32 * (1u64 << 30), &mut a),
            host.place(32 * (1u64 << 30), &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "derate")]
    fn penalty_rejects_bad_derate() {
        let _ = Placement::default().transfer_penalty(0.0);
    }
}
