//! The Ampere unified L1/texture-cache ↔ shared-memory partition.
//!
//! On the A100, each SM has 192 KB of unified on-chip SRAM; up to 164 KB can
//! be carved out as shared memory and the remainder serves as L1/texture
//! cache (§5.2 of the paper, swept in its Fig 13). [`Carveout`] captures one
//! partition choice and derives both capacities.

use std::fmt;

/// Total unified L1/texture/shared SRAM per SM on Ampere (bytes).
pub const UNIFIED_SRAM_BYTES: u64 = 192 * 1024;

/// Maximum shared-memory carveout per SM on Ampere (bytes).
pub const MAX_SHARED_BYTES: u64 = 164 * 1024;

/// One choice of L1-cache/shared-memory partition.
///
/// # Example
///
/// ```
/// use hetsim_mem::carveout::Carveout;
/// let c = Carveout::with_shared_kib(32).unwrap();
/// assert_eq!(c.shared_bytes(), 32 * 1024);
/// assert_eq!(c.l1_bytes(), 160 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Carveout {
    shared_bytes: u64,
}

/// Error returned for an unconfigurable carveout request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCarveout {
    requested: u64,
}

impl fmt::Display for InvalidCarveout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested shared-memory carveout of {} bytes exceeds the {} byte Ampere limit",
            self.requested, MAX_SHARED_BYTES
        )
    }
}

impl std::error::Error for InvalidCarveout {}

impl Carveout {
    /// Creates a carveout with `shared_bytes` of shared memory.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCarveout`] if the request exceeds the 164 KB Ampere
    /// shared-memory limit.
    pub fn with_shared_bytes(shared_bytes: u64) -> Result<Self, InvalidCarveout> {
        if shared_bytes > MAX_SHARED_BYTES {
            return Err(InvalidCarveout {
                requested: shared_bytes,
            });
        }
        Ok(Carveout { shared_bytes })
    }

    /// Creates a carveout with `kib` KiB of shared memory.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCarveout`] if the request exceeds the Ampere limit.
    pub fn with_shared_kib(kib: u64) -> Result<Self, InvalidCarveout> {
        Carveout::with_shared_bytes(kib * 1024)
    }

    /// The default partition used throughout the paper's main experiments:
    /// 32 KB statically allocated shared memory (see its footnote 4).
    pub fn paper_default() -> Self {
        Carveout {
            shared_bytes: 32 * 1024,
        }
    }

    /// Shared-memory capacity per SM.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    /// Remaining L1/texture-cache capacity per SM.
    pub fn l1_bytes(&self) -> u64 {
        UNIFIED_SRAM_BYTES - self.shared_bytes
    }

    /// The Fig 13 sweep points: 2 KB → 128 KB shared memory.
    pub fn fig13_sweep() -> Vec<Carveout> {
        [2u64, 4, 8, 16, 32, 64, 128]
            .iter()
            .map(|&kib| Carveout::with_shared_kib(kib).expect("sweep points are valid"))
            .collect()
    }
}

impl Default for Carveout {
    fn default() -> Self {
        Carveout::paper_default()
    }
}

impl fmt::Display for Carveout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shared={}KB l1={}KB",
            self.shared_bytes / 1024,
            self.l1_bytes() / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_sums_to_unified_sram() {
        for kib in [2u64, 16, 64, 128, 164] {
            let c = Carveout::with_shared_kib(kib).unwrap();
            assert_eq!(c.shared_bytes() + c.l1_bytes(), UNIFIED_SRAM_BYTES);
        }
    }

    #[test]
    fn rejects_over_limit() {
        let err = Carveout::with_shared_kib(165).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn max_is_accepted() {
        let c = Carveout::with_shared_bytes(MAX_SHARED_BYTES).unwrap();
        assert_eq!(c.l1_bytes(), 28 * 1024);
    }

    #[test]
    fn paper_default_is_32k() {
        assert_eq!(Carveout::default().shared_bytes(), 32 * 1024);
        assert_eq!(Carveout::paper_default().l1_bytes(), 160 * 1024);
    }

    #[test]
    fn fig13_sweep_matches_paper() {
        let sweep = Carveout::fig13_sweep();
        assert_eq!(sweep.len(), 7);
        assert_eq!(sweep[0].shared_bytes(), 2 * 1024);
        assert_eq!(sweep[6].shared_bytes(), 128 * 1024);
    }

    #[test]
    fn display_shows_both_sides() {
        let s = Carveout::paper_default().to_string();
        assert!(s.contains("shared=32KB") && s.contains("l1=160KB"));
    }
}
