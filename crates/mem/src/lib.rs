//! # hetsim-mem
//!
//! The memory-hierarchy substrate of the hetsim CPU-GPU simulator.
//!
//! The paper's entire argument is about where data sits and how it moves:
//! host DDR4 ↔ GPU HBM2 over PCIe (the `U1` stage of its Figure 1 pipeline),
//! and GPU global memory ↔ SM shared memory through the unified L1/texture
//! cache (`U2` / `A2.1`). This crate models each of those structures:
//!
//! * [`addr`] — typed addresses and memory accesses;
//! * [`cache`] — a set-associative, LRU, write-allocate cache used for both
//!   the per-SM unified L1/texture cache and the device-wide L2;
//! * [`carveout`] — the Ampere L1-cache/shared-memory partition (Fig 13's
//!   swept parameter);
//! * [`shared`] — per-SM shared memory with block-granular allocation;
//! * [`hbm`] — device global memory (40 GB HBM2 on the A100);
//! * [`host`] — host DRAM built from discrete chips, reproducing the paper's
//!   Fig 6 observation that footprints near a single chip's capacity make
//!   transfer time noisy;
//! * [`link`] — the CPU↔GPU interconnect with per-path effective bandwidths
//!   (pageable copy, pinned copy, UVM demand migration, bulk prefetch).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod carveout;
pub mod hbm;
pub mod host;
pub mod link;
pub mod shared;
pub mod tlb;

pub use addr::{AccessKind, Addr, MemAccess, MemSpace};
pub use cache::{Cache, CacheConfig};
pub use carveout::Carveout;
pub use hbm::Hbm;
pub use host::{HostConfig, HostMemory, Placement};
pub use link::{CpuGpuLink, LinkPath};
pub use shared::SharedMemory;
pub use tlb::{Tlb, TlbConfig};
