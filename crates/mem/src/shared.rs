//! Per-SM shared memory with block-granular allocation.
//!
//! Shared memory is the staging target of Async Memcpy: `cp.async` moves
//! data from global memory straight into a block's shared-memory buffer.
//! The model tracks allocations per resident block and answers the question
//! the paper's §5.1 sensitivity study turns on: *how deep a double buffer
//! does the per-thread budget allow?*

use crate::carveout::Carveout;

/// Per-SM shared memory.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    capacity: u64,
    allocations: Vec<u64>,
}

/// Error returned when a block's shared-memory request cannot be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedAllocError {
    requested: u64,
    free: u64,
}

impl std::fmt::Display for SharedAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared memory allocation of {} bytes exceeds {} free bytes",
            self.requested, self.free
        )
    }
}

impl std::error::Error for SharedAllocError {}

impl SharedMemory {
    /// Creates shared memory sized by a carveout.
    pub fn new(carveout: Carveout) -> Self {
        SharedMemory {
            capacity: carveout.shared_bytes(),
            allocations: Vec::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.allocations.iter().sum()
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Allocates `bytes` for one resident block, returning an allocation id.
    ///
    /// # Errors
    ///
    /// Returns [`SharedAllocError`] when the request exceeds the free
    /// capacity.
    pub fn alloc(&mut self, bytes: u64) -> Result<usize, SharedAllocError> {
        if bytes > self.free() {
            return Err(SharedAllocError {
                requested: bytes,
                free: self.free(),
            });
        }
        self.allocations.push(bytes);
        Ok(self.allocations.len() - 1)
    }

    /// Releases a block's allocation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live allocation id.
    pub fn release(&mut self, id: usize) {
        assert!(id < self.allocations.len(), "bad shared-memory alloc id");
        self.allocations[id] = 0;
    }

    /// How many blocks with `bytes_per_block` of shared memory fit at once.
    pub fn blocks_fitting(&self, bytes_per_block: u64) -> u32 {
        self.capacity
            .checked_div(bytes_per_block)
            .map_or(u32::MAX, |b| b as u32)
    }

    /// Per-thread staging-buffer depth (in elements of `elem_bytes`) when a
    /// block of `threads` threads splits `bytes_per_block` of shared memory
    /// into `stages` pipeline buffers.
    ///
    /// This is the quantity behind the paper's Takeaway 4: fewer threads per
    /// block leave a deeper per-thread buffer, which makes Async Memcpy more
    /// effective.
    pub fn per_thread_depth(
        bytes_per_block: u64,
        threads: u32,
        stages: u32,
        elem_bytes: u64,
    ) -> u64 {
        assert!(threads > 0 && stages > 0 && elem_bytes > 0, "zero divisor");
        bytes_per_block / (threads as u64 * stages as u64 * elem_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smem() -> SharedMemory {
        SharedMemory::new(Carveout::paper_default()) // 32 KB
    }

    #[test]
    fn capacity_tracks_carveout() {
        assert_eq!(smem().capacity(), 32 * 1024);
        let big = SharedMemory::new(Carveout::with_shared_kib(128).unwrap());
        assert_eq!(big.capacity(), 128 * 1024);
    }

    #[test]
    fn alloc_and_release() {
        let mut s = smem();
        let id = s.alloc(10 * 1024).unwrap();
        assert_eq!(s.used(), 10 * 1024);
        assert_eq!(s.free(), 22 * 1024);
        s.release(id);
        assert_eq!(s.used(), 0);
    }

    #[test]
    fn over_allocation_fails() {
        let mut s = smem();
        s.alloc(30 * 1024).unwrap();
        let err = s.alloc(4 * 1024).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn blocks_fitting() {
        let s = smem();
        assert_eq!(s.blocks_fitting(8 * 1024), 4);
        assert_eq!(s.blocks_fitting(0), u32::MAX);
    }

    #[test]
    fn per_thread_depth_deepens_with_fewer_threads() {
        // 32KB block buffer, double buffered, f32 elements.
        let d1024 = SharedMemory::per_thread_depth(32 * 1024, 1024, 2, 4);
        let d32 = SharedMemory::per_thread_depth(32 * 1024, 32, 2, 4);
        assert_eq!(d1024, 4);
        assert_eq!(d32, 128);
        assert!(d32 > d1024);
    }

    #[test]
    #[should_panic(expected = "bad shared-memory alloc id")]
    fn bad_release_panics() {
        let mut s = smem();
        s.release(3);
    }
}
