//! A set-associative, LRU, write-allocate cache model.
//!
//! One [`Cache`] instance models the per-SM unified L1/texture cache (whose
//! capacity is whatever the [carveout](crate::carveout) leaves after shared
//! memory) and another the device-wide L2. The model is functional, not
//! cycle-accurate: it classifies each access as hit or miss and maintains
//! the [`CacheCounters`] behind the paper's Fig 10.

use crate::addr::{AccessKind, Addr};
use hetsim_counters::CacheCounters;

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Creates a config, validating geometry.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two, if the capacity is not
    /// a multiple of `line * ways`, or if any field is zero.
    pub fn new(capacity: u64, line: u64, ways: u32) -> Self {
        assert!(capacity > 0 && line > 0 && ways > 0, "zero cache dimension");
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(
            capacity.is_multiple_of(line * ways as u64),
            "capacity {capacity} not divisible by line*ways"
        );
        CacheConfig {
            capacity,
            line,
            ways,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity / (self.line * self.ways as u64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineState {
    tag: u64,
    last_use: u64,
    dirty: bool,
}

/// A set-associative LRU cache.
///
/// # Example
///
/// ```
/// use hetsim_mem::cache::{Cache, CacheConfig};
/// use hetsim_mem::addr::{AccessKind, Addr};
///
/// let mut l1 = Cache::new(CacheConfig::new(16 * 1024, 128, 4));
/// assert!(!l1.access(Addr::new(0), AccessKind::Load));  // cold miss
/// assert!(l1.access(Addr::new(64), AccessKind::Load));  // same line: hit
/// assert_eq!(l1.counters().load_misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<LineState>>,
    clock: u64,
    counters: CacheCounters,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways as usize); config.sets() as usize],
            clock: 0,
            counters: CacheCounters::new(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Performs one access; returns `true` on hit.
    ///
    /// Misses allocate (write-allocate policy); stores mark the line dirty.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> bool {
        self.clock += 1;
        let line_no = addr.block(self.config.line);
        let set_idx = (line_no % self.config.sets()) as usize;
        let tag = line_no / self.config.sets();
        let set = &mut self.sets[set_idx];

        let hit = if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.last_use = self.clock;
            if !kind.is_load() {
                line.dirty = true;
            }
            true
        } else {
            let new_line = LineState {
                tag,
                last_use: self.clock,
                dirty: !kind.is_load(),
            };
            if set.len() < self.config.ways as usize {
                set.push(new_line);
            } else {
                // Evict the least recently used way.
                let victim = set
                    .iter_mut()
                    .min_by_key(|l| l.last_use)
                    .expect("non-empty full set");
                *victim = new_line;
            }
            false
        };

        match kind {
            AccessKind::Load => self.counters.record_load(hit),
            AccessKind::Store => self.counters.record_store(hit),
        }
        hit
    }

    /// Probes whether `addr` is resident without touching LRU state or
    /// counters.
    pub fn contains(&self, addr: Addr) -> bool {
        let line_no = addr.block(self.config.line);
        let set_idx = (line_no % self.config.sets()) as usize;
        let tag = line_no / self.config.sets();
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Accumulated hit/miss counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Empties the cache (e.g. between kernels) without resetting counters.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Resets the counters without touching residency.
    pub fn reset_counters(&mut self) {
        self.counters = CacheCounters::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(192 * 1024, 128, 4);
        assert_eq!(c.sets(), 384);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        let _ = CacheConfig::new(512, 96, 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_bad_capacity() {
        let _ = CacheConfig::new(500, 64, 2);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(Addr::new(0), AccessKind::Load));
        assert!(c.access(Addr::new(63), AccessKind::Load), "same line");
        assert!(!c.access(Addr::new(64), AccessKind::Load), "next line");
        assert_eq!(c.counters().loads(), 3);
        assert_eq!(c.counters().load_misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to set 0: line numbers 0, 4, 8 (4 sets).
        let a0 = Addr::new(0);
        let a1 = Addr::new(4 * 64);
        let a2 = Addr::new(8 * 64);
        c.access(a0, AccessKind::Load);
        c.access(a1, AccessKind::Load);
        c.access(a0, AccessKind::Load); // refresh a0: a1 becomes LRU
        c.access(a2, AccessKind::Load); // evicts a1
        assert!(c.contains(a0));
        assert!(!c.contains(a1));
        assert!(c.contains(a2));
    }

    #[test]
    fn stores_allocate_and_count() {
        let mut c = small();
        assert!(!c.access(Addr::new(128), AccessKind::Store));
        assert!(c.access(Addr::new(130), AccessKind::Load));
        assert_eq!(c.counters().store_misses(), 1);
        assert_eq!(c.counters().load_hits(), 1);
    }

    #[test]
    fn contains_does_not_disturb_lru_or_counters() {
        let mut c = small();
        c.access(Addr::new(0), AccessKind::Load);
        let before = c.counters();
        assert!(c.contains(Addr::new(32)));
        assert!(!c.contains(Addr::new(4096)));
        assert_eq!(c.counters(), before);
    }

    #[test]
    fn flush_clears_residency_not_counters() {
        let mut c = small();
        c.access(Addr::new(0), AccessKind::Load);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.counters().loads(), 1);
        c.reset_counters();
        assert_eq!(c.counters().loads(), 0);
    }

    #[test]
    fn capacity_bounds_residency() {
        let mut c = small();
        for i in 0..1_000 {
            c.access(Addr::new(i * 64), AccessKind::Load);
        }
        assert!(c.resident_lines() <= 8, "512B / 64B lines = 8 lines max");
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = small();
        let lines = 8u64;
        for pass in 0..3 {
            for i in 0..lines {
                let hit = c.access(Addr::new(i * 64), AccessKind::Load);
                if pass > 0 {
                    assert!(hit, "pass {pass} line {i} should hit");
                }
            }
        }
    }
}
