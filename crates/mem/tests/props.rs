//! Property-based tests for the memory hierarchy.

use hetsim_mem::addr::{AccessKind, Addr};
use hetsim_mem::cache::{Cache, CacheConfig};
use hetsim_mem::host::{HostConfig, HostMemory};
use hetsim_engine::rng::SimRng;
use proptest::prelude::*;

proptest! {
    /// Hits + misses always equals accesses; residency never exceeds
    /// capacity.
    #[test]
    fn cache_accounting(addrs in prop::collection::vec(0u64..1u64<<20, 1..500)) {
        let mut c = Cache::new(CacheConfig::new(8 * 1024, 64, 2));
        for (i, &a) in addrs.iter().enumerate() {
            let kind = if i % 3 == 0 { AccessKind::Store } else { AccessKind::Load };
            c.access(Addr::new(a), kind);
        }
        let ctr = c.counters();
        prop_assert_eq!(ctr.accesses(), addrs.len() as u64);
        prop_assert!(c.resident_lines() as u64 <= 8 * 1024 / 64);
    }

    /// Re-accessing the same address immediately is always a hit.
    #[test]
    fn immediate_rereference_hits(a in 0u64..1u64<<40) {
        let mut c = Cache::new(CacheConfig::new(8 * 1024, 64, 2));
        c.access(Addr::new(a), AccessKind::Load);
        prop_assert!(c.access(Addr::new(a), AccessKind::Load));
    }

    /// A working set that fits in one set's ways never misses after
    /// warmup under LRU.
    #[test]
    fn small_working_set_stays_resident(base in 0u64..1u64<<30) {
        let cfg = CacheConfig::new(8 * 1024, 64, 4);
        let sets = cfg.sets();
        let mut c = Cache::new(cfg);
        // 4 lines mapping to the same set (associativity 4).
        let lines: Vec<u64> = (0..4).map(|i| (base / 64 / sets * sets + i * sets) * 64).collect();
        for pass in 0..3 {
            for &l in &lines {
                let hit = c.access(Addr::new(l), AccessKind::Load);
                if pass > 0 {
                    prop_assert!(hit);
                }
            }
        }
    }

    /// Host placement conserves bytes and never spills below the onset.
    #[test]
    fn placement_conserves_bytes(bytes in 1u64..64u64<<30, seed in any::<u64>()) {
        let host = HostMemory::new(HostConfig::epyc7742());
        let mut rng = SimRng::new(seed);
        let p = host.place(bytes, &mut rng);
        prop_assert_eq!(p.total(), bytes);
        let onset = (HostConfig::epyc7742().chip_capacity as f64
            * HostConfig::epyc7742().spill_onset) as u64;
        if bytes <= onset {
            prop_assert_eq!(p.spilled_bytes, 0);
        }
        let penalty = p.transfer_penalty(0.35);
        prop_assert!(penalty >= 1.0);
    }
}
