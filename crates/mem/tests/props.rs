//! Randomized invariant tests for the memory hierarchy, driven by the
//! engine's deterministic [`SimRng`] (no external test dependencies).

use hetsim_engine::rng::SimRng;
use hetsim_mem::addr::{AccessKind, Addr};
use hetsim_mem::cache::{Cache, CacheConfig};
use hetsim_mem::host::{HostConfig, HostMemory};

const CASES: u64 = 64;

/// Hits + misses always equals accesses; residency never exceeds capacity.
#[test]
fn cache_accounting() {
    let mut rng = SimRng::seed_from_parts(&["props", "cache_accounting"], 0);
    for _ in 0..CASES {
        let n = rng.range(1, 500) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.below(1u64 << 20)).collect();
        let mut c = Cache::new(CacheConfig::new(8 * 1024, 64, 2));
        for (i, &a) in addrs.iter().enumerate() {
            let kind = if i % 3 == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            c.access(Addr::new(a), kind);
        }
        let ctr = c.counters();
        assert_eq!(ctr.accesses(), addrs.len() as u64);
        assert!(c.resident_lines() as u64 <= 8 * 1024 / 64);
    }
}

/// Re-accessing the same address immediately is always a hit.
#[test]
fn immediate_rereference_hits() {
    let mut rng = SimRng::seed_from_parts(&["props", "immediate_rereference"], 0);
    for _ in 0..CASES {
        let a = rng.below(1u64 << 40);
        let mut c = Cache::new(CacheConfig::new(8 * 1024, 64, 2));
        c.access(Addr::new(a), AccessKind::Load);
        assert!(c.access(Addr::new(a), AccessKind::Load));
    }
}

/// A working set that fits in one set's ways never misses after warmup
/// under LRU.
#[test]
fn small_working_set_stays_resident() {
    let mut rng = SimRng::seed_from_parts(&["props", "small_working_set"], 0);
    for _ in 0..CASES {
        let base = rng.below(1u64 << 30);
        let cfg = CacheConfig::new(8 * 1024, 64, 4);
        let sets = cfg.sets();
        let mut c = Cache::new(cfg);
        // 4 lines mapping to the same set (associativity 4).
        let lines: Vec<u64> = (0..4)
            .map(|i| (base / 64 / sets * sets + i * sets) * 64)
            .collect();
        for pass in 0..3 {
            for &l in &lines {
                let hit = c.access(Addr::new(l), AccessKind::Load);
                if pass > 0 {
                    assert!(hit);
                }
            }
        }
    }
}

/// Host placement conserves bytes and never spills below the onset.
#[test]
fn placement_conserves_bytes() {
    let mut cases = SimRng::seed_from_parts(&["props", "placement_conserves_bytes"], 0);
    for _ in 0..CASES {
        let bytes = cases.range(1, 64u64 << 30);
        let seed = cases.next_u64();
        let host = HostMemory::new(HostConfig::epyc7742());
        let mut rng = SimRng::new(seed);
        let p = host.place(bytes, &mut rng);
        assert_eq!(p.total(), bytes);
        let onset = (HostConfig::epyc7742().chip_capacity as f64
            * HostConfig::epyc7742().spill_onset) as u64;
        if bytes <= onset {
            assert_eq!(p.spilled_bytes, 0);
        }
        let penalty = p.transfer_penalty(0.35);
        assert!(penalty >= 1.0);
    }
}
